//! Golden-pinned prune decisions: the quick-mode fig8 sweep, run with
//! the binary's own prune policy, must keep making exactly the decision
//! set checked in under `tests/golden/fig8_prune.json`.
//!
//! This guards the *decision layer*, not just the numbers: a drift in
//! the attribution model, the axis-insensitivity rule, or the fig8
//! policy shows up here as a changed pruned/run set (or changed
//! evidence) even when every simulated cycle count is untouched. Bless
//! intentional changes with:
//!
//! ```text
//! GEMMINI_BLESS=1 cargo test --test golden_prune
//! ```

use std::path::PathBuf;

use gemmini_bench::figures::{fig8_points, fig8_prune_json, fig8_prune_policy};
use gemmini_bench::{quick_resnet, SweepOptions};
use gemmini_mem::json::Json;
use gemmini_soc::sweep::run_sweep_with;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn bless_mode() -> bool {
    std::env::var("GEMMINI_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn check_golden(name: &str, actual: &Json) {
    let path = golden_path(name);
    let encoded = actual.encode();
    if bless_mode() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, format!("{encoded}\n")).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); run with GEMMINI_BLESS=1 to create it",
            path.display()
        )
    });
    let golden = Json::parse(golden.trim()).expect("golden file parses");
    assert_eq!(
        &golden,
        actual,
        "{name}: prune decisions drifted from the golden file.\n\
         golden: {}\n\
         actual: {encoded}\n\
         If the policy/model change is intentional, regenerate with \
         GEMMINI_BLESS=1 cargo test --test golden_prune",
        golden.encode()
    );
}

#[test]
fn fig8_prune_decisions_match_golden() {
    let net = quick_resnet();
    let results = run_sweep_with(
        fig8_points(&net),
        SweepOptions {
            threads: 1,
            progress: false,
            prune: Some(fig8_prune_policy()),
            ..SweepOptions::default()
        },
    );

    // The acceptance floor the CI `pruned` job also checks end to end:
    // at least 20% of the quick grid is skipped, every skip names its
    // evidence, and no basis is ever predicted.
    let pruned: Vec<_> = results.iter().filter(|r| r.pruned.is_some()).collect();
    assert!(
        pruned.len() * 5 >= results.len(),
        "only {}/{} quick-mode fig8 points pruned (need >= 20%)",
        pruned.len(),
        results.len()
    );
    let policy = fig8_prune_policy();
    for r in &results {
        if let Some(ev) = &r.pruned {
            assert!(!ev.basis_label.is_empty());
            assert!(!policy.is_basis(&r.label), "a basis must never be pruned");
        }
    }

    check_golden("fig8_prune.json", &fig8_prune_json(&results));
}
