//! The `.gnn` model files shipped in `models/` must parse and run.

use gemmini_repro::dnn::loader::parse_network;
use gemmini_repro::soc::run::{run_networks, RunOptions};
use gemmini_repro::soc::SocConfig;

#[test]
fn shipped_model_files_parse_and_run() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("models");
    let mut found = 0;
    for entry in std::fs::read_dir(dir).expect("models/ exists") {
        let path = entry.expect("entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("gnn") {
            continue;
        }
        found += 1;
        let text = std::fs::read_to_string(&path).expect("readable");
        let net = parse_network(&text).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        assert!(!net.is_empty(), "{path:?} has layers");
        let report = run_networks(
            &SocConfig::edge_single_core(),
            std::slice::from_ref(&net),
            &RunOptions::timing(),
        )
        .unwrap_or_else(|e| panic!("{path:?} failed to run: {e}"));
        assert!(report.cores[0].total_cycles > 0);
    }
    assert!(
        found >= 3,
        "expected at least three shipped models, found {found}"
    );
}
