//! Timing-model self-validation: no simulated layer may complete faster
//! than its roofline lower bound (arithmetic peak / compulsory traffic).

use gemmini_bench::quick_resnet;
use gemmini_repro::soc::roofline::layer_roofline;
use gemmini_repro::soc::run::{run_networks, RunOptions};
use gemmini_repro::soc::SocConfig;

#[test]
fn no_layer_beats_the_roofline() {
    let net = quick_resnet();
    let cfg = SocConfig::edge_single_core();
    let accel = cfg.cores[0].accel.clone();
    let report = run_networks(&cfg, std::slice::from_ref(&net), &RunOptions::timing()).unwrap();
    for (sim, spec) in report.cores[0].layers.iter().zip(net.layers()) {
        let bound = layer_roofline(&accel, &spec.layer).cycles();
        assert!(
            sim.cycles >= bound,
            "{} simulated {} cycles, below its roofline bound of {}",
            sim.name,
            sim.cycles,
            bound
        );
    }
}

#[test]
fn roofline_is_not_vacuous() {
    // The bounds should be within an order of magnitude of the simulation
    // for the big compute-bound layers (i.e. a meaningful check, not 0).
    let net = quick_resnet();
    let cfg = SocConfig::edge_single_core();
    let accel = cfg.cores[0].accel.clone();
    let report = run_networks(&cfg, std::slice::from_ref(&net), &RunOptions::timing()).unwrap();
    let mut meaningful = 0;
    for (sim, spec) in report.cores[0].layers.iter().zip(net.layers()) {
        let bound = layer_roofline(&accel, &spec.layer).cycles();
        if bound > 0 && sim.cycles <= bound * 10 {
            meaningful += 1;
        }
    }
    assert!(
        meaningful >= net.len() / 2,
        "at least half the layers should sit within 10x of their bound ({meaningful}/{})",
        net.len()
    );
}
