//! Schema-sanity test for the Chrome `trace_event` exporter: the file a
//! `--trace` run (or `GEMMINI_TRACE`) writes must be loadable by
//! `chrome://tracing` / Perfetto — a JSON *array* of event objects, each
//! carrying `ph`/`ts`/`pid`/`tid`, with `dur` on complete events and a
//! scope on instants. Runs the same export path the binaries use.

use gemmini_core::trace::{export_chrome_trace, Tracer};
use gemmini_dnn::zoo;
use gemmini_mem::json::Json;
use gemmini_soc::run::{run_networks_traced, RunOptions};
use gemmini_soc::soc::SocConfig;

#[test]
fn exported_trace_is_valid_chrome_trace_event_json() {
    let (tracer, sink) = Tracer::buffered();
    let report = run_networks_traced(
        &SocConfig::edge_single_core(),
        &[zoo::tiny_cnn()],
        &RunOptions::timing(),
        &tracer,
    )
    .unwrap();
    let events = sink.lock().unwrap().take();
    assert!(!events.is_empty(), "a traced run must emit events");

    let path =
        std::env::temp_dir().join(format!("gemmini_trace_schema_{}.json", std::process::id()));
    export_chrome_trace(&path, &events).expect("trace export succeeds");
    let text = std::fs::read_to_string(&path).expect("trace file readable");
    std::fs::remove_file(&path).ok();

    let doc = Json::parse(text.trim()).expect("trace file is valid JSON");
    let arr = doc.as_arr().expect("chrome trace array form");
    assert_eq!(arr.len(), events.len(), "one JSON event per trace event");
    let finish = report.cores[0].total_cycles;
    for ev in arr {
        let ph = ev.field("ph").unwrap().as_str().unwrap();
        assert!(ph == "X" || ph == "i", "unexpected phase '{ph}'");
        let ts = ev.field("ts").unwrap().as_u64().unwrap();
        ev.field("pid").unwrap().as_u64().unwrap();
        ev.field("tid").unwrap().as_u64().unwrap();
        assert!(!ev.field("name").unwrap().as_str().unwrap().is_empty());
        ev.field("cat").unwrap().as_str().unwrap();
        if ph == "X" {
            let dur = ev.field("dur").unwrap().as_u64().unwrap();
            assert!(dur > 0, "complete events are non-empty");
            assert!(
                ts + dur <= finish,
                "span [{ts}, {}) extends past the {finish}-cycle run",
                ts + dur
            );
        } else {
            assert_eq!(ev.field("s").unwrap().as_str().unwrap(), "t");
        }
        // When a stall cause is attached it rides in args.cause.
        if let Ok(args) = ev.field("args") {
            assert!(!args.field("cause").unwrap().as_str().unwrap().is_empty());
        }
    }
}
