//! Golden-result regression tests: the quick-mode figure data, diffed
//! against checked-in JSON under `tests/golden/`.
//!
//! These guard the *numbers*, not the formatting — any change to a cycle
//! counter, area constant or timing model shows up as a JSON diff here
//! instead of a silently shifted table. When a model change is
//! intentional, regenerate the golden files with:
//!
//! ```text
//! GEMMINI_BLESS=1 cargo test --test golden_figures
//! ```
//!
//! and review the diff like any other code change.

use std::path::PathBuf;

use gemmini_bench::figures::{fig3_json, fig6_json, fig7_attribution_json, fig7_json, fig7_points};
use gemmini_bench::{quick_resnet, SweepOptions};
use gemmini_dnn::zoo;
use gemmini_mem::json::Json;
use gemmini_soc::sweep::run_sweep_with;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn bless_mode() -> bool {
    std::env::var("GEMMINI_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Compares `actual` against the checked-in golden file, or rewrites the
/// file under `GEMMINI_BLESS=1`.
fn check_golden(name: &str, actual: &Json) {
    let path = golden_path(name);
    let encoded = actual.encode();
    if bless_mode() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        std::fs::write(&path, format!("{encoded}\n")).expect("write golden file");
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden file {} ({e}); run with GEMMINI_BLESS=1 to create it",
            path.display()
        )
    });
    let golden = Json::parse(golden.trim()).expect("golden file parses");
    assert_eq!(
        &golden,
        actual,
        "{name}: figure data drifted from the golden file.\n\
         golden: {}\n\
         actual: {encoded}\n\
         If the model change is intentional, regenerate with \
         GEMMINI_BLESS=1 cargo test --test golden_figures",
        golden.encode()
    );
}

#[test]
fn fig3_matches_golden() {
    check_golden("fig3.json", &fig3_json());
}

#[test]
fn fig6_matches_golden() {
    check_golden("fig6.json", &fig6_json());
}

#[test]
fn fig7_quick_matches_golden() {
    // The same networks the binary uses under --quick, run serially so
    // the test is deterministic regardless of GEMMINI_THREADS.
    let nets = vec![quick_resnet(), zoo::tiny_cnn()];
    let results = run_sweep_with(
        fig7_points(&nets),
        SweepOptions {
            threads: 1,
            progress: false,
            ..SweepOptions::default()
        },
    );
    check_golden("fig7_quick.json", &fig7_json(&nets, &results));

    // The cycle-attribution view of the same sweep: pinned separately so
    // a classification change (which buckets cycles land in) is visible
    // even when the total cycle counts are untouched. The partition
    // invariant — buckets sum to the run length — holds on every point.
    for r in &results {
        let core = &r.expect_ok().cores[0];
        assert_eq!(
            core.attribution.total(),
            core.total_cycles,
            "{}: attribution buckets must sum to total_cycles",
            r.label
        );
    }
    check_golden(
        "fig7_attribution.json",
        &fig7_attribution_json(&nets, &results),
    );
}

/// The golden files themselves must round-trip through the hand-rolled
/// codec — otherwise a bless would write something the checker cannot
/// reload.
#[test]
fn golden_files_round_trip() {
    for name in [
        "fig3.json",
        "fig6.json",
        "fig7_quick.json",
        "fig7_attribution.json",
        "fig8_prune.json",
    ] {
        let path = golden_path(name);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {} ({e})", path.display()));
        let parsed = Json::parse(text.trim()).expect("golden parses");
        assert_eq!(
            parsed.encode(),
            text.trim(),
            "{name}: encode(parse(x)) != x — golden file not in canonical encoding"
        );
    }
}
