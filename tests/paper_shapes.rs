//! Shape tests: fast, scaled-down versions of every paper claim the bench
//! harness regenerates in full. These run in `cargo test` and guard the
//! reproduction's qualitative results against regressions.

use gemmini_bench::{quick_resnet, run_quick};
use gemmini_repro::core::config::GemminiConfig;
use gemmini_repro::cpu::kernels::network_cpu_cycles;
use gemmini_repro::cpu::{CpuKind, CpuModel};
use gemmini_repro::dnn::graph::LayerClass;
use gemmini_repro::soc::run::{run_networks, RunOptions};
use gemmini_repro::soc::SocConfig;
use gemmini_repro::synth::area::{soc_area, spatial_array_area_um2, CpuKind as SynthCpu};
use gemmini_repro::synth::power::spatial_array_power;
use gemmini_repro::synth::timing::fmax_ghz;
use gemmini_repro::vm::tlb::TlbConfig;

/// Fig. 3: ≈2.7x fmax, ≈1.8x area, ≈3.0x power between the extremes.
#[test]
fn fig3_ratios() {
    let pipe = GemminiConfig::tpu_like_256();
    let comb = GemminiConfig::nvdla_like_256();
    let fmax = fmax_ghz(&pipe) / fmax_ghz(&comb);
    assert!((fmax - 2.7).abs() < 0.1, "fmax ratio {fmax}");
    let area = spatial_array_area_um2(&pipe) / spatial_array_area_um2(&comb);
    assert!((area - 1.8).abs() < 0.15, "area ratio {area}");
    let p_pipe = spatial_array_power(&pipe, 1.0, 1.0);
    let p_comb = spatial_array_power(&comb, 1.0, 1.0);
    let power = (p_pipe.pe_dynamic_mw + p_pipe.reg_dynamic_mw)
        / (p_comb.pe_dynamic_mw + p_comb.reg_dynamic_mw);
    assert!((power - 3.0).abs() < 0.1, "power ratio {power}");
}

/// Fig. 4: DNN TLB miss rates spike far above CPU-workload levels, and
/// consecutive requests show the high page locality the paper reports.
#[test]
fn fig4_tlb_profile_shape() {
    let mut cfg = SocConfig::edge_single_core();
    cfg.cores[0].translation.private = TlbConfig::private(4);
    cfg.cores[0].translation.stats_window = 20_000;
    let report = run_quick(&cfg);
    let t = &report.cores[0].translation;
    let peak = t
        .miss_rate_series
        .iter()
        .map(|&(_, r)| r)
        .fold(0.0f64, f64::max);
    assert!(peak > 0.02, "miss-rate spikes exist (peak {peak})");
    assert!(
        t.consecutive_read_same_page > 0.7,
        "high read page locality"
    );
    assert!(
        t.consecutive_write_same_page > 0.7,
        "high write page locality"
    );
    assert!(
        t.private_hit_rate > 0.84,
        "paper: hit rate stayed above 84%"
    );
}

/// Fig. 6a: SRAMs dominate; component percentages within a point of the
/// published table.
#[test]
fn fig6_area_breakdown_shape() {
    let report = soc_area(&GemminiConfig::edge(), SynthCpu::Rocket);
    assert!((report.sram_fraction() - 0.671).abs() < 0.02);
    assert!((report.fraction("Spatial Array") - 0.113).abs() < 0.01);
    assert!((report.total_um2() - 1_029_000.0).abs() / 1_029_000.0 < 0.01);
}

/// Fig. 7's three headline shapes, at quick scale:
/// accelerator >> CPU; BOOM helps ~2x only when im2col is on the CPU.
#[test]
fn fig7_speedup_shape() {
    let net = quick_resnet();
    let rocket_baseline = network_cpu_cycles(&CpuModel::new(CpuKind::Rocket), &net);

    let accel = |cpu: CpuKind, unit: bool| {
        let mut cfg = SocConfig::edge_single_core();
        cfg.cores[0].cpu = cpu;
        cfg.cores[0].accel.has_im2col = unit;
        run_networks(&cfg, std::slice::from_ref(&net), &RunOptions::timing())
            .unwrap()
            .cores[0]
            .total_cycles
    };

    let with_unit = accel(CpuKind::Rocket, true);
    assert!(
        rocket_baseline / with_unit > 300,
        "accelerator speedup is orders of magnitude ({}x)",
        rocket_baseline / with_unit
    );

    let no_unit_rocket = accel(CpuKind::Rocket, false);
    let no_unit_boom = accel(CpuKind::Boom, false);
    let host_effect = no_unit_rocket as f64 / no_unit_boom as f64;
    assert!(
        host_effect > 1.3,
        "BOOM should matter when the CPU does im2col ({host_effect:.2}x)"
    );
    assert_eq!(
        accel(CpuKind::Rocket, true),
        accel(CpuKind::Boom, true),
        "host choice is irrelevant with the on-accelerator im2col block"
    );
    assert!(
        no_unit_rocket > with_unit,
        "removing the im2col block must cost performance"
    );
}

/// Fig. 8: filter registers recover most of what a tiny TLB loses.
#[test]
fn fig8_filter_register_shape() {
    let run_tlb = |filters: bool| {
        let mut cfg = SocConfig::edge_single_core();
        cfg.cores[0].translation.private = TlbConfig::private(4);
        cfg.cores[0].translation.shared = TlbConfig::shared(0);
        cfg.cores[0].translation.filter_registers = filters;
        run_quick(&cfg).cores[0].total_cycles
    };
    let without = run_tlb(false);
    let with = run_tlb(true);
    assert!(
        with < without,
        "filter registers must help a 4-entry TLB: {with} vs {without}"
    );
}

/// Fig. 9's two regimes, at quick scale (cache/scratchpad sizes scaled by
/// the same ~8x factor as the 32x32 workload; the full-scale experiment is
/// `cargo run -p gemmini-bench --bin fig9_mem_partition`):
///
/// * when the private scratchpad binds the conv working set, doubling it
///   wins (the paper's single-core BigSP result);
/// * when the shared L2 binds under dual-core contention, doubling *it*
///   wins, and residual additions are the main beneficiary (the paper's
///   dual-core BigL2 result).
#[test]
fn fig9_partitioning_regimes() {
    use gemmini_mem::cache::CacheConfig;
    let net = quick_resnet();
    let make = |sp_kb: usize, l2_kb: u64| {
        let mut cfg = SocConfig::edge_dual_core().with_partition(sp_kb, sp_kb, 1);
        cfg.mem.l2 = CacheConfig {
            size_bytes: l2_kb << 10,
            ways: 8,
            hit_latency: 16,
        };
        cfg
    };
    let run2 = |cfg: SocConfig| {
        let r = run_networks(&cfg, &[net.clone(), net.clone()], &RunOptions::timing()).unwrap();
        let total = r.cores.iter().map(|c| c.total_cycles).max().unwrap();
        let resadd: u64 = r
            .cores
            .iter()
            .map(|c| c.class_cycles(LayerClass::ResAdd))
            .sum();
        let conv: u64 = r
            .cores
            .iter()
            .map(|c| c.class_cycles(LayerClass::Conv))
            .sum();
        (total, conv, resadd, r.l2.miss_rate)
    };

    // Regime 1: scratchpad-bound (64 KiB sp). Doubling the scratchpad wins.
    let (base_t, base_conv, _, _) = run2(make(64, 128));
    let (sp_t, sp_conv, _, _) = run2(make(128, 128));
    assert!(
        sp_t < base_t,
        "BigSP wins when the scratchpad binds: {sp_t} vs {base_t}"
    );
    assert!(sp_conv < base_conv, "the gain comes from conv layers");

    // Regime 2: L2-bound under contention (ample scratchpad, small L2).
    // Doubling the shared L2 wins, resadd benefits, miss rate drops.
    let (l2base_t, _, l2base_res, l2base_miss) = run2(make(256, 128));
    let (l2big_t, _, l2big_res, l2big_miss) = run2(make(256, 256));
    assert!(
        l2big_t < l2base_t,
        "BigL2 wins when the L2 binds: {l2big_t} vs {l2base_t}"
    );
    assert!(
        l2big_res <= l2base_res,
        "residual adds benefit from the bigger L2"
    );
    assert!(
        l2big_miss < l2base_miss,
        "L2 miss rate drops with the bigger cache"
    );
}
