//! Cross-crate integration tests: the whole stack driven only through the
//! public API of the umbrella crate.

use gemmini_repro::core::config::{DataType, Dataflow, GemminiConfig};
use gemmini_repro::dnn::graph::{Activation, Layer, LayerClass, Network};
use gemmini_repro::dnn::loader::parse_network;
use gemmini_repro::dnn::zoo;
use gemmini_repro::soc::run::{run_networks, RunOptions};
use gemmini_repro::soc::runtime::reference_forward;
use gemmini_repro::soc::SocConfig;

#[test]
fn functional_end_to_end_on_tiny_cnn() {
    let net = zoo::tiny_cnn();
    let report = run_networks(
        &SocConfig::edge_single_core(),
        std::slice::from_ref(&net),
        &RunOptions::functional(),
    )
    .expect("run succeeds");
    let golden = reference_forward(&net, RunOptions::functional().seed);
    assert_eq!(report.cores[0].output.as_ref().unwrap(), &golden);
}

#[test]
fn loader_to_silicon_pipeline() {
    // A model described in the textual format runs through the whole stack.
    let net = parse_network(
        "network pipeline\n\
         conv name=c in=2 out=4 k=3 s=1 p=1 hw=6x6 act=relu\n\
         matmul name=f m=1 k=144 n=5 act=none\n",
    )
    .expect("parses");
    let report = run_networks(
        &SocConfig::edge_single_core(),
        std::slice::from_ref(&net),
        &RunOptions::functional(),
    )
    .expect("runs");
    assert_eq!(report.cores[0].output.as_ref().unwrap().len(), 5);
    assert_eq!(
        report.cores[0].output.as_ref().unwrap(),
        &reference_forward(&net, RunOptions::functional().seed)
    );
}

#[test]
fn seeds_change_data_but_not_cycles() {
    // Timing must be data-independent (same shapes, same schedule).
    let net = zoo::tiny_cnn();
    let a = run_networks(
        &SocConfig::edge_single_core(),
        std::slice::from_ref(&net),
        &RunOptions {
            functional: true,
            seed: 1,
        },
    )
    .unwrap();
    let b = run_networks(
        &SocConfig::edge_single_core(),
        &[net],
        &RunOptions {
            functional: true,
            seed: 2,
        },
    )
    .unwrap();
    assert_eq!(a.cores[0].total_cycles, b.cores[0].total_cycles);
    assert_ne!(a.cores[0].output, b.cores[0].output);
}

#[test]
fn determinism_across_runs() {
    let net = zoo::tiny_cnn();
    let opts = RunOptions::functional();
    let a = run_networks(
        &SocConfig::edge_single_core(),
        std::slice::from_ref(&net),
        &opts,
    )
    .unwrap();
    let b = run_networks(&SocConfig::edge_single_core(), &[net], &opts).unwrap();
    assert_eq!(a.cores[0].total_cycles, b.cores[0].total_cycles);
    assert_eq!(a.cores[0].output, b.cores[0].output);
    assert_eq!(
        a.cores[0].translation.requests,
        b.cores[0].translation.requests
    );
}

#[test]
fn dual_core_functional_isolation() {
    // Two cores run different networks with different seeds; each output
    // matches its own golden model — no cross-core corruption through the
    // shared memory system.
    let n1 = zoo::tiny_cnn();
    let mut n2 = Network::new("other");
    n2.push(
        "fc",
        Layer::Matmul {
            m: 4,
            k: 32,
            n: 8,
            activation: Activation::Relu,
        },
    );
    let opts = RunOptions::functional();
    let report = run_networks(
        &SocConfig::edge_dual_core(),
        &[n1.clone(), n2.clone()],
        &opts,
    )
    .unwrap();
    assert_eq!(
        report.cores[0].output.as_ref().unwrap(),
        &reference_forward(&n1, opts.seed)
    );
    assert_eq!(
        report.cores[1].output.as_ref().unwrap(),
        &reference_forward(&n2, opts.seed.wrapping_add(1))
    );
}

#[test]
fn bigger_array_is_faster_on_big_matmuls() {
    let mut net = Network::new("mm");
    net.push(
        "fc",
        Layer::Matmul {
            m: 128,
            k: 256,
            n: 128,
            activation: Activation::None,
        },
    );
    let run = |dim: usize| {
        let mut cfg = SocConfig::edge_single_core();
        cfg.cores[0].accel = GemminiConfig {
            mesh_rows: dim,
            mesh_cols: dim,
            ..GemminiConfig::edge()
        };
        run_networks(&cfg, std::slice::from_ref(&net), &RunOptions::timing())
            .unwrap()
            .cores[0]
            .total_cycles
    };
    assert!(run(32) < run(16), "32x32 array should beat 16x16");
    assert!(run(16) < run(8), "16x16 array should beat 8x8");
}

#[test]
fn fp32_configuration_validates_and_sizes_differ() {
    let cfg = GemminiConfig {
        dtype: DataType::Fp32,
        dataflow: Dataflow::OutputStationary,
        ..GemminiConfig::edge()
    };
    assert!(cfg.validate().is_ok());
    assert_eq!(cfg.sp_rows(), GemminiConfig::edge().sp_rows() / 4);
}

#[test]
fn per_class_cycles_partition_total_layer_time() {
    let net = zoo::tiny_cnn();
    let report = run_networks(
        &SocConfig::edge_single_core(),
        &[net],
        &RunOptions::timing(),
    )
    .unwrap();
    let core = &report.cores[0];
    let sum: u64 = [
        LayerClass::Conv,
        LayerClass::Matmul,
        LayerClass::ResAdd,
        LayerClass::Pool,
        LayerClass::Norm,
    ]
    .iter()
    .map(|&c| core.class_cycles(c))
    .sum();
    let direct: u64 = core.layers.iter().map(|l| l.cycles).sum();
    assert_eq!(sum, direct);
}

#[test]
fn zoo_networks_all_run_in_timing_mode_quickly() {
    // Structural smoke test: every zoo network completes and reports sane
    // statistics at reduced scale (tiny ones run full).
    let report = run_networks(
        &SocConfig::edge_single_core(),
        &[zoo::squeezenet_v11()],
        &RunOptions::timing(),
    )
    .unwrap();
    let c = &report.cores[0];
    assert!(c.total_cycles > 100_000);
    assert!(c.macs as f64 > 0.25e9);
    assert!(c.translation.requests > 1000);
    assert!(report.l2.accesses > 1000);
}
