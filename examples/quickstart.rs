//! Quickstart: generate an accelerator, run a small CNN through the full
//! stack (instruction-level simulation, virtual memory, shared L2), and
//! check the output against the golden model.
//!
//! Run with: `cargo run --release --example quickstart`

use gemmini_repro::core::config::GemminiConfig;
use gemmini_repro::dnn::zoo;
use gemmini_repro::soc::run::{run_networks, RunOptions};
use gemmini_repro::soc::runtime::reference_forward;
use gemmini_repro::soc::SocConfig;

fn main() {
    // 1. Pick a point in the generator's design space — here the paper's
    //    edge configuration — and look at the header it hands the software
    //    stack.
    let accel = GemminiConfig::edge();
    println!("Generated accelerator: {accel}");
    println!("{}", accel.header());

    // 2. Build a single-core SoC around it and run a small CNN,
    //    functionally (real bytes move through scratchpads and TLBs).
    let net = zoo::tiny_cnn();
    let options = RunOptions::functional();
    let report = run_networks(
        &SocConfig::edge_single_core(),
        std::slice::from_ref(&net),
        &options,
    )
    .expect("simulation succeeds");
    let core = &report.cores[0];

    println!("=== run report: {} ===", core.network);
    println!("total cycles      : {}", core.total_cycles);
    println!("MACs performed    : {}", core.macs);
    println!(
        "DMA traffic       : {} B in, {} B out",
        core.dma.bytes_in, core.dma.bytes_out
    );
    println!(
        "TLB               : {} requests, {:.1}% private hit rate, {} walks",
        core.translation.requests,
        core.translation.private_hit_rate * 100.0,
        core.translation.walks
    );
    println!(
        "shared L2         : {} accesses, {:.1}% miss rate",
        report.l2.accesses,
        report.l2.miss_rate * 100.0
    );
    for layer in &core.layers {
        println!(
            "  {:<8} {:<7} {:>9} cycles",
            layer.name,
            layer.class.to_string(),
            layer.cycles
        );
    }

    // 3. The whole point of the reproduction: the simulated accelerator's
    //    output is bit-identical to the reference operators.
    let golden = reference_forward(&net, options.seed);
    assert_eq!(
        core.output
            .as_ref()
            .expect("functional run captures output"),
        &golden
    );
    println!(
        "\noutput matches the golden model bit-for-bit ({} values)",
        golden.len()
    );
}
