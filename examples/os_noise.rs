//! OS effects on accelerated workloads (the paper's Section III-C point:
//! "context switches, page table evictions, and other unexpected events can
//! happen at any time" — effects a bare-metal evaluation never shows).
//!
//! Runs the same network bare-metal and under increasingly noisy
//! Linux-like environments, showing the context-switch count, the
//! translation-state flushes, and the end-to-end cost.
//!
//! Run with: `cargo run --release --example os_noise`

use gemmini_repro::dnn::zoo;
use gemmini_repro::soc::os::OsConfig;
use gemmini_repro::soc::run::{run_networks, RunOptions};
use gemmini_repro::soc::SocConfig;

fn main() {
    let net = zoo::squeezenet_v11();
    println!("workload: {net}");
    println!(
        "{:<28} {:>10} {:>9} {:>10} {:>9}",
        "environment", "cycles", "switches", "PTW walks", "slowdown"
    );

    let mut baseline = 0.0;
    for (name, os) in [
        ("bare metal", OsConfig::bare_metal()),
        ("Linux, 1 ms tick", OsConfig::linux(1_000_000)),
        ("Linux, 250 us tick", OsConfig::linux(250_000)),
        ("Linux, 50 us tick (noisy)", OsConfig::linux(50_000)),
    ] {
        let mut cfg = SocConfig::edge_single_core();
        cfg.os = os;
        let report = run_networks(&cfg, std::slice::from_ref(&net), &RunOptions::timing())
            .expect("simulation runs");
        let core = &report.cores[0];
        if baseline == 0.0 {
            baseline = core.total_cycles as f64;
        }
        println!(
            "{:<28} {:>10} {:>9} {:>10} {:>8.2}%",
            name,
            core.total_cycles,
            core.context_switches,
            core.translation.walks,
            100.0 * (core.total_cycles as f64 / baseline - 1.0)
        );
    }

    println!();
    println!("Each tick costs CPU cycles and flushes the accelerator's TLBs and");
    println!("filter registers, so the DMA re-walks the page table afterwards —");
    println!("walk counts rise with the tick rate, exactly the class of effect");
    println!("the paper argues only full-SoC, OS-capable evaluation can expose.");
}
