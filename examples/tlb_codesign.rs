//! Virtual-address-translation co-design (the Section V-A workflow):
//! sweep private/shared TLB sizes and filter registers on a real workload
//! and find the cheapest configuration within a whisker of peak.
//!
//! Run with: `cargo run --release --example tlb_codesign`

use gemmini_repro::dnn::zoo;
use gemmini_repro::soc::run::{run_networks, RunOptions};
use gemmini_repro::soc::SocConfig;
use gemmini_repro::vm::tlb::TlbConfig;

fn main() {
    let net = zoo::squeezenet_v11(); // a full network that still runs in ~1 s
    let mut results = Vec::new();

    for filters in [false, true] {
        for private in [4u32, 16] {
            for shared in [0u32, 256] {
                let mut cfg = SocConfig::edge_single_core();
                cfg.cores[0].translation.private = TlbConfig::private(private);
                cfg.cores[0].translation.shared = TlbConfig::shared(shared);
                cfg.cores[0].translation.filter_registers = filters;
                let report = run_networks(&cfg, std::slice::from_ref(&net), &RunOptions::timing())
                    .expect("simulation succeeds");
                let c = &report.cores[0];
                results.push((
                    private,
                    shared,
                    filters,
                    c.total_cycles,
                    c.translation.effective_hit_rate,
                ));
            }
        }
    }

    let best = results.iter().map(|r| r.3).min().expect("swept");
    println!(
        "TLB co-design sweep on {} ({} configs)",
        net.name(),
        results.len()
    );
    println!(
        "{:>8} {:>8} {:>8} {:>12} {:>10} {:>9}",
        "private", "L2 TLB", "filters", "cycles", "vs best", "hit rate"
    );
    for (p, s, f, cycles, hit) in &results {
        println!(
            "{:>8} {:>8} {:>8} {:>12} {:>9.1}% {:>8.1}%",
            p,
            s,
            f,
            cycles,
            100.0 * best as f64 / *cycles as f64,
            hit * 100.0
        );
    }

    // The paper's conclusion: the cheapest hardware within 2% of peak is a
    // tiny private TLB plus the two filter registers — no L2 TLB at all.
    let (p, s, f, cycles, _) = results
        .iter()
        .filter(|r| (best as f64 / r.3 as f64) > 0.96)
        .min_by_key(|r| (r.0, r.1, r.2 as u32))
        .expect("something is within 4% of peak");
    println!(
        "\ncheapest config within 4% of peak: private={p}, L2 TLB={s}, filters={f} ({cycles} cycles)"
    );
}
