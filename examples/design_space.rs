//! Design-space exploration: sweep the generator's spatial-array hierarchy
//! and local-memory sizes, and report PPA (from the synthesis model) next
//! to achieved performance (from the simulator) — the workflow Section III
//! motivates.
//!
//! Run with: `cargo run --release --example design_space`

use gemmini_repro::core::config::GemminiConfig;
use gemmini_repro::dnn::zoo;
use gemmini_repro::soc::run::{run_networks, RunOptions};
use gemmini_repro::soc::SocConfig;
use gemmini_repro::synth::area::accelerator_area;
use gemmini_repro::synth::power::spatial_array_power;
use gemmini_repro::synth::timing::fmax_ghz;

fn main() {
    let net = zoo::squeezenet_v11();
    println!(
        "{:<30} {:>9} {:>10} {:>9} {:>12} {:>10}",
        "design point", "fmax GHz", "area kum2", "mW @fmax", "cycles", "inf/s @fmax"
    );

    // Sweep the tile hierarchy at 256 PEs and two scratchpad sizes.
    for (tile, sp_kb) in [(1usize, 256usize), (1, 512), (4, 256), (16, 256)] {
        let accel = GemminiConfig {
            mesh_rows: 16 / tile,
            mesh_cols: 16 / tile,
            tile_rows: tile,
            tile_cols: tile,
            sp_capacity_kb: sp_kb,
            ..GemminiConfig::edge()
        };
        let fmax = fmax_ghz(&accel);
        let area = accelerator_area(&accel).total_um2() / 1000.0;
        let power = spatial_array_power(&accel, fmax, 0.5).total_mw();

        let mut soc = SocConfig::edge_single_core();
        soc.cores[0].accel = accel.clone();
        let report = run_networks(&soc, std::slice::from_ref(&net), &RunOptions::timing())
            .expect("simulation succeeds");
        let cycles = report.cores[0].total_cycles;
        let inf_per_s = fmax * 1e9 / cycles as f64;

        println!(
            "{:<30} {:>9.2} {:>10.0} {:>9.1} {:>12} {:>10.1}",
            format!("{}x{} tiles, {} KiB sp", tile, tile, sp_kb),
            fmax,
            area,
            power,
            cycles,
            inf_per_s
        );
    }

    println!();
    println!("The trade Fig. 3 quantifies: deeper combinational tiles shrink");
    println!("area and power but cost clock rate; cycle counts barely move, so");
    println!("end-to-end inferences/second track fmax.");
}
