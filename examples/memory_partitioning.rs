//! SoC memory partitioning (the Section V-B workflow): given 1 MiB of spare
//! SRAM, decide between bigger private scratchpads and a bigger shared L2,
//! for single- and dual-core SoCs running ResNet50.
//!
//! Run with: `cargo run --release --example memory_partitioning`

use gemmini_repro::dnn::graph::LayerClass;
use gemmini_repro::dnn::zoo;
use gemmini_repro::soc::run::{run_networks, RunOptions};
use gemmini_repro::soc::SocConfig;

fn main() {
    let net = zoo::resnet50();
    for cores in [1usize, 2] {
        println!("=== {cores}-core SoC, ResNet50 per core ===");
        let mut base_total = 0.0;
        for (name, cfg) in [
            ("Base ", SocConfig::partition_base(cores)),
            ("BigSP", SocConfig::partition_big_sp(cores)),
            ("BigL2", SocConfig::partition_big_l2(cores)),
        ] {
            let nets = vec![net.clone(); cores];
            let report =
                run_networks(&cfg, &nets, &RunOptions::timing()).expect("simulation succeeds");
            let total: u64 = report
                .cores
                .iter()
                .map(|c| c.total_cycles)
                .max()
                .unwrap_or(0);
            if name == "Base " {
                base_total = total as f64;
            }
            let class =
                |c: LayerClass| -> u64 { report.cores.iter().map(|r| r.class_cycles(c)).sum() };
            println!(
                "{name}: {total:>10} cycles ({:+.1}% vs Base) | conv {:>10} matmul {:>9} resadd {:>9} | L2 miss {:>4.1}%",
                100.0 * (base_total / total as f64 - 1.0),
                class(LayerClass::Conv),
                class(LayerClass::Matmul),
                class(LayerClass::ResAdd),
                report.l2.miss_rate * 100.0,
            );
        }
        println!();
    }
    println!("Decision rule from the paper: single-process SoCs favor private");
    println!("scratchpad; multi-process SoCs favor the shared L2, because each");
    println!("core's residual additions evict the activations the other core");
    println!("is about to re-read.");
}
