//! The push-button flow on a network description file — the reproduction's
//! analogue of "reads DNN descriptions in the ONNX file format and
//! generates software binaries that will run them".
//!
//! Run with: `cargo run --release --example onnx_flow`

use gemmini_repro::dnn::loader::{parse_network, serialize_network};
use gemmini_repro::soc::run::{run_networks, RunOptions};
use gemmini_repro::soc::SocConfig;

/// A LeNet-style description in the textual network format (what an ONNX
/// importer would emit).
const MODEL: &str = "\
network lenet_ish
conv name=c1 in=1 out=6 k=5 s=1 p=2 hw=28x28 act=relu
pool name=p1 kind=max size=2 s=2 p=0 c=6 hw=28x28
conv name=c2 in=6 out=16 k=5 s=1 p=0 hw=14x14 act=relu
pool name=p2 kind=max size=2 s=2 p=0 c=16 hw=10x10
matmul name=f5 m=1 k=400 n=120 act=relu
matmul name=f6 m=1 k=120 n=84 act=relu
matmul name=f7 m=1 k=84 n=10 act=none
";

fn main() {
    // Parse the description (errors carry line numbers, like any compiler).
    let net = parse_network(MODEL).expect("model parses");
    println!(
        "parsed {}: {} layers, {:.1} MMACs",
        net.name(),
        net.len(),
        net.total_macs() as f64 / 1e6
    );

    // Round-trip check: the flow can re-emit what it consumed.
    assert_eq!(parse_network(&serialize_network(&net)).unwrap(), net);

    // Push-button execution on the default edge SoC, functionally.
    let report = run_networks(
        &SocConfig::edge_single_core(),
        &[net],
        &RunOptions::functional(),
    )
    .expect("simulation succeeds");
    let core = &report.cores[0];

    println!("ran on the accelerator in {} cycles:", core.total_cycles);
    for layer in &core.layers {
        println!(
            "  {:<4} {:<7} {:>8} cycles",
            layer.name,
            layer.class.to_string(),
            layer.cycles
        );
    }
    let logits = core.output.as_ref().expect("functional output");
    println!("\n10-way classifier output (int8 logits): {logits:?}");
}
