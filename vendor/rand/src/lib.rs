//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this reproduction has no access to crates.io,
//! so the workspace vendors a minimal, deterministic implementation of the
//! slice of the `rand 0.8` API it actually uses: seedable generators
//! (`StdRng`, `SmallRng`), `Rng::gen`/`gen_range`, and uniform sampling
//! over integer and float ranges. The generators are *not* the upstream
//! algorithms (upstream `StdRng` is ChaCha12); they are xoshiro256**
//! seeded via SplitMix64 — high-quality, fast, and fully deterministic,
//! which is all the simulation needs. Anything relying on bit-exact
//! compatibility with upstream `rand` streams must not use this shim.

use core::ops::Range;

/// Core source of randomness: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    fn from_entropy() -> Self {
        // Deterministic on purpose: this environment favours reproducible
        // runs over true entropy.
        Self::seed_from_u64(0x9e37_79b9_7f4a_7c15)
    }
}

/// User-facing sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges that `gen_range` accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// SplitMix64: used to expand a `u64` seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256** core shared by both named generators.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Stand-in for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: i32 = rng.gen_range(-64..64);
            assert!((-64..64).contains(&v));
            let f: f32 = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 16);
    }
}
