//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a deterministic miniature of the proptest API it uses: the `proptest!`
//! macro, `Strategy` with `prop_map`/`boxed`, `any`, `Just`, ranges,
//! tuples, `collection::vec`, `sample::select`, `prop_oneof!`, and the
//! `prop_assert*` macros. Differences from upstream:
//!
//! - no shrinking: a failing case reports its inputs but is not minimised;
//! - the case seed is derived from the test name, so every run of a given
//!   test explores the same deterministic sequence of inputs;
//! - `prop_assert!`/`prop_assert_eq!` panic immediately (with the message)
//!   instead of returning `Err(TestCaseError)`.

use std::fmt::Debug;
use std::ops::Range;

/// Deterministic per-test RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Runner configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps full `cargo test` wall-clock
        // reasonable for the heavier simulation-backed properties.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// Strategies compose by reference too (mirrors upstream's blanket impl).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

pub struct BoxedStrategy<V> {
    gen: Box<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.gen)(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 10000 consecutive candidates");
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` — uniform over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, roughly symmetric around zero; avoids NaN/inf which
        // upstream also excludes by default.
        (rng.unit_f64() as f32 - 0.5) * 2.0e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.unit_f64() - 0.5) * 2.0e12
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use super::{Strategy, TestRng};

    pub fn select<T: Clone + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty set");
        Select { options }
    }

    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

/// A weighted union of boxed strategies; backs `prop_oneof!`.
pub struct Union<V> {
    branches: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs >= 1 branch");
        Union { branches }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.branches.len() as u64) as usize;
        self.branches[i].generate(rng)
    }
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            panic!(
                "prop_assert_eq failed: {} != {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            panic!("prop_assert_ne failed: both sides equal\n value: {:?}", l);
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No rejection machinery in the shim: an assumption failure
            // just skips the rest of this case (the body runs in a
            // closure, so `return` abandons only the current case).
            return;
        }
    };
}

/// The test-defining macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute comes from the source) that runs
/// `cases` deterministic iterations, printing the sampled inputs on panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                #[allow(clippy::never_loop, unreachable_code, unused_labels)]
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    // Bodies may move their inputs, so render them for the
                    // failure report before running the case.
                    let __inputs = {
                        let mut s = ::std::string::String::new();
                        $(s.push_str(&::std::format!(
                            "  {} = {:?}\n", stringify!($arg), &$arg
                        ));)+
                        s
                    };
                    let __result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| { $body }));
                    if let Err(payload) = __result {
                        eprintln!(
                            "proptest shim: {} failed at case {} with inputs:\n{}",
                            stringify!($name), __case, __inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
    };

    /// Mirrors upstream's `prelude::prop` module path.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}
