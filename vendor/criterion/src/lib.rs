//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a tiny benchmark harness with criterion's surface API: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `Throughput`, `BenchmarkId`, and the `criterion_group!`/`criterion_main!`
//! macros. It measures median wall-clock time over a fixed number of
//! timed samples (after warmup) and prints one line per benchmark —
//! no statistics engine, no HTML reports, no baseline comparisons.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

pub struct Bencher {
    /// Median nanoseconds per iteration, recorded by `iter`.
    ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up briefly, then size the batch so a sample takes ~1 ms.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < Duration::from_millis(20) {
            std_black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((1_000_000.0 / per_iter.max(1.0)).ceil() as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(25);
        for _ in 0..25 {
            let t = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} \u{00b5}s", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / ns * 1_000.0)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / ns * 1_000.0 * 953.674_316 / 1_000_000.0
            )
        }
        None => String::new(),
    };
    println!("{name:<48} {:>12}/iter{rate}", human_time(ns));
}

pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = t.into();
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.name),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.name),
            b.ns_per_iter,
            self.throughput,
        );
        self
    }

    pub fn finish(&mut self) {
        let _ = &self.parent;
    }
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = name.into();
        let mut b = Bencher { ns_per_iter: 0.0 };
        f(&mut b);
        report(&id.name, b.ns_per_iter, None);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
