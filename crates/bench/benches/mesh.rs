//! Microbenchmarks of the spatial array's functional model: how fast the
//! simulator itself executes tile matmuls (simulation throughput, not
//! modeled hardware throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gemmini_core::mesh::MatrixUnit;
use gemmini_dnn::tensor::Tensor;
use std::hint::black_box;

fn bench_tile_compute(c: &mut Criterion) {
    let mut group = c.benchmark_group("matrix_unit_compute");
    for dim in [4usize, 16, 32] {
        let a = Tensor::<i8>::random(&[dim, dim], 1);
        let b = Tensor::<i8>::random(&[dim, dim], 2);
        let a_rows: Vec<&[i8]> = (0..dim)
            .map(|r| &a.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        let b_rows: Vec<&[i8]> = (0..dim)
            .map(|r| &b.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        let mut mu = MatrixUnit::new(dim);
        mu.preload(&b_rows);
        group.throughput(Throughput::Elements((dim * dim * dim) as u64));
        group.bench_with_input(BenchmarkId::new("dim", dim), &dim, |bench, _| {
            bench.iter(|| black_box(mu.compute(black_box(&a_rows), None)));
        });
    }
    group.finish();
}

fn bench_preload(c: &mut Criterion) {
    let dim = 16;
    let b = Tensor::<i8>::random(&[dim, dim], 3);
    let b_rows: Vec<&[i8]> = (0..dim)
        .map(|r| &b.as_slice()[r * dim..(r + 1) * dim])
        .collect();
    let mut mu = MatrixUnit::new(dim);
    c.bench_function("matrix_unit_preload_16", |bench| {
        bench.iter(|| mu.preload(black_box(&b_rows)));
    });
}

criterion_group!(benches, bench_tile_compute, bench_preload);
criterion_main!(benches);
