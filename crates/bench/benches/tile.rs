//! Tile-level simulation-throughput microbenchmarks (PR: allocation-free
//! functional core).
//!
//! Two levels pin the hot path's speed:
//!
//! * `single_tile_mac` — one mesh compute, `row_api` (the retained
//!   row-slice surface, which allocates its `Vec<Vec<_>>` result) against
//!   `flat` (`compute_into` on flat strided buffers, the engine's path).
//!   The ratio is the before/after of the MAC-kernel rework.
//! * `tiled_layer` — a full `TiledMatmulKernel` layer through the
//!   engine, in timing-only and functional modes: what figure sweeps and
//!   end-to-end network runs actually pay per layer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gemmini_core::config::GemminiConfig;
use gemmini_core::mesh::MatrixUnit;
use gemmini_core::{Accelerator, MemCtx};
use gemmini_cpu::{CpuKind, CpuModel};
use gemmini_dnn::graph::Activation;
use gemmini_dnn::tensor::Tensor;
use gemmini_mem::addr::{VirtAddr, PAGE_SIZE};
use gemmini_mem::dram::MainMemory;
use gemmini_mem::MemorySystem;
use gemmini_soc::kernel::{
    ASource, Kernel, KernelEnv, MatmulParams, StepOutcome, TiledMatmulKernel,
};
use gemmini_vm::page::FrameAllocator;
use gemmini_vm::page_table::AddressSpace;
use gemmini_vm::translator::{TranslationConfig, TranslationSystem};
use std::hint::black_box;

fn bench_single_tile_mac(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_tile_mac");
    for dim in [4usize, 16, 32] {
        let a = Tensor::<i8>::random(&[dim, dim], 1);
        let b = Tensor::<i8>::random(&[dim, dim], 2);
        group.throughput(Throughput::Elements((dim * dim * dim) as u64));

        let a_rows: Vec<&[i8]> = (0..dim)
            .map(|r| &a.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        let b_rows: Vec<&[i8]> = (0..dim)
            .map(|r| &b.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        let mut mu = MatrixUnit::new(dim);
        mu.preload(&b_rows);
        group.bench_with_input(BenchmarkId::new("row_api", dim), &dim, |bench, _| {
            bench.iter(|| black_box(mu.compute(black_box(&a_rows), None)));
        });

        let mut mu_flat = MatrixUnit::new(dim);
        mu_flat.preload_flat(b.as_slice(), dim, dim, dim);
        let mut out = vec![0i32; dim * dim];
        group.bench_with_input(BenchmarkId::new("flat", dim), &dim, |bench, _| {
            bench.iter(|| {
                mu_flat.compute_into(black_box(a.as_slice()), dim, dim, dim, None, &mut out);
                black_box(out[0])
            });
        });
    }
    group.finish();
}

/// Fills `[va, va+len)` with a deterministic byte pattern, page by page
/// (virtual pages need not map to contiguous frames).
fn seed(space: &AddressSpace, data: &mut MainMemory, va: VirtAddr, len: u64) {
    let mut off = 0u64;
    while off < len {
        let chunk = (len - off).min(PAGE_SIZE);
        let bytes: Vec<u8> = (off..off + chunk).map(|i| (i % 251) as u8).collect();
        let pa = space.translate(va.add(off)).unwrap();
        data.write(pa, &bytes);
        off += chunk;
    }
}

/// Simulates one full tiled-matmul layer; `functional` additionally moves
/// and computes real bytes. Returns the modeled finish cycle.
fn simulate_layer(m: usize, k: usize, n: usize, functional: bool) -> u64 {
    let cfg = GemminiConfig::edge();
    let mut frames = FrameAllocator::new();
    let mut space = AddressSpace::new(&mut frames);
    let pages = |bytes: usize| (bytes as u64).div_ceil(PAGE_SIZE) * PAGE_SIZE + PAGE_SIZE;
    let a = space.alloc(&mut frames, pages(m * k));
    let b = space.alloc(&mut frames, pages(k * (n + 16)));
    let c = space.alloc(&mut frames, pages(m * n));
    let mut mem = MemorySystem::default();
    let mut translation = TranslationSystem::new(TranslationConfig::default());
    let mut data = MainMemory::new();
    if functional {
        seed(&space, &mut data, a, (m * k) as u64);
        seed(&space, &mut data, b, (k * n) as u64);
    }
    let mut accel = Accelerator::new(cfg.clone());
    let cpu = CpuModel::new(CpuKind::Rocket);
    let mut kernel = TiledMatmulKernel::new(
        &cfg,
        MatmulParams {
            a,
            b,
            c,
            m,
            k,
            n,
            c_stride: n,
            activation: Activation::None,
            acc_scale: 1.0,
        },
        ASource::Memory,
    );
    loop {
        let mut env = KernelEnv {
            accel: &mut accel,
            cpu: &cpu,
            ctx: MemCtx {
                space: &space,
                translation: &mut translation,
                mem: &mut mem,
                data: functional.then_some(&mut data),
                port: 0,
            },
        };
        if matches!(kernel.step(&mut env).expect("no faults"), StepOutcome::Done) {
            break;
        }
    }
    accel.stats().finish
}

fn bench_tiled_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiled_layer");
    group.sample_size(10);
    let (m, k, n) = (128usize, 128, 128);
    group.throughput(Throughput::Elements((m * k * n) as u64));
    group.bench_function(
        BenchmarkId::new("timing", format!("{m}x{k}x{n}")),
        |bench| {
            bench.iter(|| black_box(simulate_layer(m, k, n, false)));
        },
    );
    group.bench_function(
        BenchmarkId::new("functional", format!("{m}x{k}x{n}")),
        |bench| {
            bench.iter(|| black_box(simulate_layer(m, k, n, true)));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_single_tile_mac, bench_tiled_layer);
criterion_main!(benches);
