//! Sweep-executor throughput (points/sec at one worker versus several)
//! and the cost of the default-off observation layers: a run with a
//! disabled tracer should be indistinguishable from a plain run, a
//! buffered tracer bounds what `GEMMINI_TRACE` costs, and a live metrics
//! registry (relaxed atomics on the hot path) must stay within the <5%
//! overhead budget `--status`/`--metrics` promise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gemmini_core::metrics::Metrics;
use gemmini_core::trace::Tracer;
use gemmini_dnn::graph::{Activation, Layer, Network};
use gemmini_soc::run::{run_networks_metered, run_networks_traced, RunOptions};
use gemmini_soc::soc::SocConfig;
use gemmini_soc::sweep::{run_sweep_with, DesignPoint, SweepOptions};
use std::hint::black_box;

const SWEEP_POINTS: usize = 8;

fn tiny_matmul_net() -> Network {
    let mut net = Network::new("bench_mm");
    net.push(
        "fc",
        Layer::Matmul {
            m: 32,
            k: 32,
            n: 32,
            activation: Activation::None,
        },
    );
    net
}

fn points(n: usize) -> Vec<DesignPoint> {
    (0..n)
        .map(|i| {
            DesignPoint::timing(
                format!("p{i}"),
                SocConfig::edge_single_core(),
                &tiny_matmul_net(),
            )
        })
        .collect()
}

/// Whole-sweep wall clock for a fixed batch of trivial points, serial
/// versus a small worker pool (the `GEMMINI_THREADS` 1-vs-N question,
/// asked with explicit thread counts so the env var is never consulted).
fn bench_sweep_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_executor");
    group.throughput(Throughput::Elements(SWEEP_POINTS as u64));
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| {
                    let results = run_sweep_with(
                        points(SWEEP_POINTS),
                        SweepOptions {
                            threads,
                            progress: false,
                            ..SweepOptions::default()
                        },
                    );
                    black_box(results.iter().filter(|r| r.outcome.is_ok()).count())
                })
            },
        );
    }
    group.finish();
}

/// One timing-mode run with the tracer disabled (the default: every span
/// call is a single `None` branch) versus recording into a buffer.
fn bench_trace_overhead(c: &mut Criterion) {
    let net = tiny_matmul_net();
    let cfg = SocConfig::edge_single_core();
    let mut group = c.benchmark_group("trace_overhead");
    group.bench_function("disabled", |bench| {
        bench.iter(|| {
            let report = run_networks_traced(
                &cfg,
                std::slice::from_ref(&net),
                &RunOptions::timing(),
                &Tracer::disabled(),
            )
            .unwrap();
            black_box(report.cores[0].total_cycles)
        })
    });
    group.bench_function("buffered", |bench| {
        bench.iter(|| {
            let (tracer, sink) = Tracer::buffered();
            let report = run_networks_traced(
                &cfg,
                std::slice::from_ref(&net),
                &RunOptions::timing(),
                &tracer,
            )
            .unwrap();
            black_box(sink.lock().unwrap().take().len());
            black_box(report.cores[0].total_cycles)
        })
    });
    group.finish();
}

/// One timing-mode run with the metrics handle disabled (one untaken
/// branch per instrumentation site) versus a live shared registry
/// absorbing every counter increment and histogram observation — the
/// steady-state overhead of `--status`/`--metrics`.
fn bench_metrics_overhead(c: &mut Criterion) {
    let net = tiny_matmul_net();
    let cfg = SocConfig::edge_single_core();
    let mut group = c.benchmark_group("metrics_overhead");
    group.bench_function("disabled", |bench| {
        bench.iter(|| {
            let report = run_networks_metered(
                &cfg,
                std::slice::from_ref(&net),
                &RunOptions::timing(),
                &Metrics::disabled(),
            )
            .unwrap();
            black_box(report.cores[0].total_cycles)
        })
    });
    group.bench_function("enabled", |bench| {
        // One registry across iterations, as a sweep shares one across
        // points; counters saturate long before u64 wraps.
        let (metrics, registry) = Metrics::enabled();
        bench.iter(|| {
            let report = run_networks_metered(
                &cfg,
                std::slice::from_ref(&net),
                &RunOptions::timing(),
                &metrics,
            )
            .unwrap();
            black_box(report.cores[0].total_cycles)
        });
        black_box(registry.snapshot());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sweep_throughput,
    bench_trace_overhead,
    bench_metrics_overhead
);
criterion_main!(benches);
