//! Microbenchmarks of the kernel library: wall-clock simulation throughput
//! of the tiled-matmul kernel in timing-only mode (what figure sweeps pay),
//! plus the tiling planner.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gemmini_core::config::GemminiConfig;
use gemmini_core::{Accelerator, MemCtx};
use gemmini_cpu::{CpuKind, CpuModel};
use gemmini_dnn::graph::Activation;
use gemmini_mem::addr::PAGE_SIZE;
use gemmini_mem::MemorySystem;
use gemmini_soc::kernel::{
    ASource, Kernel, KernelEnv, MatmulParams, StepOutcome, TiledMatmulKernel,
};
use gemmini_soc::tiling::plan_matmul;
use gemmini_vm::page::FrameAllocator;
use gemmini_vm::page_table::AddressSpace;
use gemmini_vm::translator::{TranslationConfig, TranslationSystem};
use std::hint::black_box;

fn simulate_matmul(mkn: (usize, usize, usize)) -> u64 {
    let (m, k, n) = mkn;
    let cfg = GemminiConfig::edge();
    let mut frames = FrameAllocator::new();
    let mut space = AddressSpace::new(&mut frames);
    let a = space.alloc(
        &mut frames,
        ((m * k) as u64).div_ceil(PAGE_SIZE) * PAGE_SIZE + PAGE_SIZE,
    );
    let b = space.alloc(
        &mut frames,
        ((k * (n + 16)) as u64).div_ceil(PAGE_SIZE) * PAGE_SIZE + PAGE_SIZE,
    );
    let c = space.alloc(
        &mut frames,
        ((m * n) as u64).div_ceil(PAGE_SIZE) * PAGE_SIZE + PAGE_SIZE,
    );
    let mut mem = MemorySystem::default();
    let mut translation = TranslationSystem::new(TranslationConfig::default());
    let mut accel = Accelerator::new(cfg.clone());
    let cpu = CpuModel::new(CpuKind::Rocket);
    let mut kernel = TiledMatmulKernel::new(
        &cfg,
        MatmulParams {
            a,
            b,
            c,
            m,
            k,
            n,
            c_stride: n,
            activation: Activation::None,
            acc_scale: 1.0,
        },
        ASource::Memory,
    );
    loop {
        let mut env = KernelEnv {
            accel: &mut accel,
            cpu: &cpu,
            ctx: MemCtx {
                space: &space,
                translation: &mut translation,
                mem: &mut mem,
                data: None,
                port: 0,
            },
        };
        if matches!(kernel.step(&mut env).expect("no faults"), StepOutcome::Done) {
            break;
        }
    }
    accel.stats().finish
}

fn bench_tiled_matmul_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("tiled_matmul_timing_sim");
    group.sample_size(20);
    for (m, k, n) in [(256usize, 256usize, 256usize), (1024, 256, 64)] {
        group.throughput(Throughput::Elements((m * k * n) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{m}x{k}x{n}")),
            &(m, k, n),
            |bench, &mkn| bench.iter(|| black_box(simulate_matmul(mkn))),
        );
    }
    group.finish();
}

fn bench_planner(c: &mut Criterion) {
    let cfg = GemminiConfig::edge();
    c.bench_function("tile_planner_resnet_conv", |bench| {
        bench.iter(|| {
            black_box(plan_matmul(
                &cfg,
                black_box(3136),
                black_box(576),
                black_box(64),
            ))
        })
    });
}

criterion_group!(benches, bench_tiled_matmul_sim, bench_planner);
criterion_main!(benches);
