//! Microbenchmarks of the memory/VM substrates: L2 tag lookups, TLB
//! lookups, and full translations (simulation throughput).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gemmini_mem::addr::{PhysAddr, PAGE_SIZE};
use gemmini_mem::cache::{AccessKind, Cache, CacheConfig};
use gemmini_mem::MemorySystem;
use gemmini_vm::page::{Frame, FrameAllocator, Vpn};
use gemmini_vm::page_table::AddressSpace;
use gemmini_vm::tlb::{Tlb, TlbConfig};
use gemmini_vm::translator::{Access, TranslationConfig, TranslationSystem};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("l2_access");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("streaming_1mb", |bench| {
        let mut l2 = Cache::new(CacheConfig::l2_mb(1));
        let mut line = 0u64;
        bench.iter(|| {
            for _ in 0..1024 {
                line = line.wrapping_add(64);
                black_box(l2.access(PhysAddr::new(line % (8 << 20)), AccessKind::Read));
            }
        });
    });
    group.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb_lookup");
    for entries in [4u32, 32, 512] {
        let mut tlb = Tlb::new(TlbConfig {
            entries,
            hit_latency: 2,
        });
        for p in 0..entries as u64 {
            tlb.insert(Vpn::new(p), Frame::new(p));
        }
        group.throughput(Throughput::Elements(1));
        group.bench_function(format!("entries_{entries}"), |bench| {
            let mut p = 0u64;
            bench.iter(|| {
                p = (p + 1) % entries as u64;
                black_box(tlb.lookup(Vpn::new(p)))
            });
        });
    }
    group.finish();
}

fn bench_translation(c: &mut Criterion) {
    let mut frames = FrameAllocator::new();
    let mut space = AddressSpace::new(&mut frames);
    let base = space.alloc(&mut frames, 64 * PAGE_SIZE);
    let mut mem = MemorySystem::default();
    let mut tsys = TranslationSystem::new(TranslationConfig {
        filter_registers: true,
        ..TranslationConfig::default()
    });
    c.bench_function("translate_warm_filter_hit", |bench| {
        let mut now = 0;
        bench.iter(|| {
            let out = tsys
                .translate(&space, &mut mem, now, base.add(64), Access::Read)
                .expect("mapped");
            now += 1;
            black_box(out)
        });
    });
}

criterion_group!(benches, bench_cache, bench_tlb, bench_translation);
criterion_main!(benches);
