//! Ablation bench: modeled (not wall-clock) cycle costs across the spatial
//! array's design space — the Fig. 3 "design points in between" — measured
//! as simulator evaluations of the timing model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gemmini_core::config::GemminiConfig;
use gemmini_core::mesh::MeshTiming;
use gemmini_synth::timing::fmax_ghz;
use std::hint::black_box;

fn config_with_tile(tile: usize) -> GemminiConfig {
    GemminiConfig {
        mesh_rows: 16 / tile,
        mesh_cols: 16 / tile,
        tile_rows: tile,
        tile_cols: tile,
        ..GemminiConfig::edge()
    }
}

/// Modeled wall-clock (ns) for a 16-row compute at each hierarchy's own
/// fmax — printed once, benched as a timing-model evaluation.
fn bench_hierarchy_eval(c: &mut Criterion) {
    println!("modeled 16-row compute time at own fmax:");
    for tile in [1usize, 2, 4, 8, 16] {
        let cfg = config_with_tile(tile);
        let t = MeshTiming::from_config(&cfg);
        let ns = t.compute_cycles(16) as f64 / fmax_ghz(&cfg);
        println!("  {tile:>2}x{tile:<2} tiles: {:.1} ns", ns);
    }
    let mut group = c.benchmark_group("mesh_timing_eval");
    for tile in [1usize, 16] {
        let cfg = config_with_tile(tile);
        group.bench_with_input(BenchmarkId::new("tile", tile), &cfg, |bench, cfg| {
            bench.iter(|| {
                let t = MeshTiming::from_config(black_box(cfg));
                black_box(t.compute_cycles(black_box(16)) + t.preload_cycles(16))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hierarchy_eval);
criterion_main!(benches);
