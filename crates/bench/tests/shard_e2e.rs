//! End-to-end tests of the sharded multi-process sweep layer, driving
//! the real binaries (via `CARGO_BIN_EXE_*`) exactly as a user or CI
//! would: supervised shards with a crash injected mid-run, manual
//! shard-then-merge flows, and resume progress accounting.
//!
//! The load-bearing property throughout: every multi-process path —
//! supervised, crashed-and-retried, hung-and-watchdog-killed, manually
//! sharded and merged, or fault-injected mid-checkpoint — must produce
//! results bit-identical to the single-process sweep.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use gemmini_mem::json::ToJson;
use gemmini_soc::checkpoint::{debug_fingerprint, Checkpoint};
use gemmini_soc::run::SocReport;
use gemmini_soc::sweep::merge_memory_stats;

const SMOKE: &str = env!("CARGO_BIN_EXE_shard_smoke");
const FIG8: &str = env!("CARGO_BIN_EXE_fig8_tlb_sweep");

/// A scratch directory unique to this test and process.
fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gemmini_shard_e2e_{test}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run(bin: &str, args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(bin);
    cmd.args(args);
    // Serial workers keep checkpoint line order equal to submission
    // order, which the file-level comparisons below rely on; it also
    // makes the crash hook deterministic (exactly k points persist).
    cmd.env("GEMMINI_THREADS", "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Asserts two checkpoint files hold identical results: same labels in
/// the same order, same fingerprints, and byte-identical payload JSON.
/// Wall-clock is the one field allowed to differ (it measures host time,
/// not simulation results).
fn assert_checkpoints_equal_modulo_wall(a: &Path, b: &Path) {
    assert_checkpoints_equivalent(a, b, true);
}

/// Like [`assert_checkpoints_equal_modulo_wall`] but indifferent to line
/// order — a pruned sweep persists in phase order (bases first, members
/// as they are decided) while a merge stitches in grid order.
fn assert_checkpoints_equal_modulo_wall_and_order(a: &Path, b: &Path) {
    assert_checkpoints_equivalent(a, b, false);
}

fn assert_checkpoints_equivalent(a: &Path, b: &Path, ordered: bool) {
    let ca = Checkpoint::<SocReport>::load(a).expect("checkpoint a loads");
    let cb = Checkpoint::<SocReport>::load(b).expect("checkpoint b loads");
    assert_eq!(ca.len(), cb.len(), "{} vs {}", a.display(), b.display());
    let mut ea_sorted: Vec<_> = ca.entries().iter().collect();
    let mut eb_sorted: Vec<_> = cb.entries().iter().collect();
    if !ordered {
        ea_sorted.sort_by_key(|e| &e.label);
        eb_sorted.sort_by_key(|e| &e.label);
    }
    for (ea, eb) in ea_sorted.into_iter().zip(eb_sorted) {
        assert_eq!(ea.label, eb.label, "label sets/order must match");
        assert_eq!(ea.fingerprint, eb.fingerprint, "point '{}'", ea.label);
        assert_eq!(
            ea.payload.to_json().encode(),
            eb.payload.to_json().encode(),
            "payload for '{}' must be bit-identical",
            ea.label
        );
        assert_eq!(
            ea.pruned, eb.pruned,
            "prune evidence for '{}' must agree",
            ea.label
        );
    }
    // The exact-merge claim extends to the folded totals.
    let ra = merge_memory_stats(ca.entries().iter().map(|e| &e.payload));
    let rb = merge_memory_stats(cb.entries().iter().map(|e| &e.payload));
    assert_eq!(ra, rb, "merged MemoryRollup totals must be bit-identical");
}

#[test]
fn supervised_crash_retry_matches_single_process() {
    let dir = scratch_dir("smoke_supervised");
    let single = dir.join("single.jsonl");
    let sharded = dir.join("sharded.jsonl");

    let golden = run(SMOKE, &["--json", single.to_str().unwrap()], &[]);
    assert!(golden.status.success());

    // 2 supervised shards; shard 0 aborts after persisting 2 points and
    // must be retried from its checkpoint by the supervisor.
    let supervised = run(
        SMOKE,
        &["--json", sharded.to_str().unwrap(), "--shards", "2"],
        &[
            ("GEMMINI_TEST_CRASH_AFTER", "2"),
            ("GEMMINI_TEST_CRASH_SHARD", "0"),
        ],
    );
    let err = stderr(&supervised);
    assert!(supervised.status.success(), "supervisor recovers: {err}");
    assert!(
        err.contains("retrying from its checkpoint"),
        "the crash must actually happen and be retried: {err}"
    );
    assert!(err.contains("recovered on attempt 2"), "{err}");

    assert_eq!(
        stdout(&golden),
        stdout(&supervised),
        "rendered tables must be identical"
    );

    // The merged file matches the single-process checkpoint except for
    // wall-clock (u64 payloads here, so compare the raw JSON fields).
    let ca = Checkpoint::<u64>::load(&single).unwrap();
    let cb = Checkpoint::<u64>::load(&sharded).unwrap();
    assert_eq!(ca.len(), 8);
    assert_eq!(cb.len(), 8);
    for (ea, eb) in ca.entries().iter().zip(cb.entries()) {
        assert_eq!(
            (&ea.label, ea.fingerprint, ea.payload),
            (&eb.label, eb.fingerprint, eb.payload)
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_progress_reports_true_grid_position() {
    let dir = scratch_dir("smoke_resume");
    let ckpt = dir.join("sweep.jsonl");

    // Fresh run crashes after 5 of 8 points persist.
    let crashed = run(
        SMOKE,
        &["--json", ckpt.to_str().unwrap()],
        &[("GEMMINI_TEST_CRASH_AFTER", "5")],
    );
    assert!(!crashed.status.success(), "the crash hook must fire");
    assert_eq!(Checkpoint::<u64>::load(&ckpt).unwrap().len(), 5);

    // The resume serves 5 cached points and runs the remaining 3; its
    // progress lines must report whole-grid positions with cached
    // provenance, not [1/3]..[3/3].
    let resumed = run(SMOKE, &["--json", ckpt.to_str().unwrap(), "--resume"], &[]);
    let err = stderr(&resumed);
    assert!(resumed.status.success(), "{err}");
    assert!(err.contains("skipped 5/8 completed points"), "{err}");
    for line in ["[6/8, 5 cached]", "[7/8, 5 cached]", "[8/8, 5 cached]"] {
        assert!(
            err.contains(line),
            "expected progress line {line} in: {err}"
        );
    }
    assert!(
        !err.contains("[1/3]"),
        "progress must not restart from the to-run count: {err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manual_shards_then_merge_match_single_process() {
    let dir = scratch_dir("smoke_manual");
    let single = dir.join("single.jsonl");
    let base = dir.join("sweep.jsonl");
    let shard0 = dir.join("sweep.shard0of2.jsonl");
    let shard1 = dir.join("sweep.shard1of2.jsonl");

    let golden = run(SMOKE, &["--json", single.to_str().unwrap()], &[]);
    assert!(golden.status.success());

    // Run the two shards by hand (e.g. on two hosts sharing a filesystem).
    for spec in ["0/2", "1/2"] {
        let out = run(
            SMOKE,
            &["--json", base.to_str().unwrap(), "--shard", spec],
            &[],
        );
        assert!(out.status.success(), "shard {spec}: {}", stderr(&out));
        assert_eq!(stdout(&out), "", "shard workers render nothing");
    }
    assert!(shard0.exists() && shard1.exists());

    // Merging only one shard must fail loudly, naming missing points.
    let partial = run(
        SMOKE,
        &[
            "--json",
            base.to_str().unwrap(),
            "--merge",
            shard0.to_str().unwrap(),
        ],
        &[],
    );
    assert!(!partial.status.success(), "partial merges must not succeed");
    assert!(
        stderr(&partial).contains("missing"),
        "must report missing points: {}",
        stderr(&partial)
    );

    // Merging both stitches the full grid, identical to single-process.
    let merged = run(
        SMOKE,
        &[
            "--json",
            base.to_str().unwrap(),
            "--merge",
            shard0.to_str().unwrap(),
            shard1.to_str().unwrap(),
        ],
        &[],
    );
    assert!(merged.status.success(), "{}", stderr(&merged));
    assert_eq!(stdout(&golden), stdout(&merged));

    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance-criteria test: a 2-shard quick-mode fig8 run with one
/// shard killed and retried by the supervisor produces merged per-point
/// reports and `MemoryRollup` totals bit-identical to the single-process
/// sweep.
#[test]
fn fig8_supervised_shards_bit_identical_to_single_process() {
    let dir = scratch_dir("fig8");
    let single = dir.join("single.jsonl");
    let sharded = dir.join("sharded.jsonl");

    let golden = run(FIG8, &["--quick", "--json", single.to_str().unwrap()], &[]);
    assert!(golden.status.success(), "{}", stderr(&golden));

    let supervised = run(
        FIG8,
        &[
            "--quick",
            "--json",
            sharded.to_str().unwrap(),
            "--shards",
            "2",
        ],
        &[
            ("GEMMINI_TEST_CRASH_AFTER", "3"),
            ("GEMMINI_TEST_CRASH_SHARD", "1"),
        ],
    );
    let err = stderr(&supervised);
    assert!(supervised.status.success(), "supervisor recovers: {err}");
    assert!(
        err.contains("retrying from its checkpoint"),
        "shard 1 must crash and be retried: {err}"
    );

    assert_eq!(
        stdout(&golden),
        stdout(&supervised),
        "fig8 tables must be bit-identical between single-process and sharded runs"
    );
    assert_checkpoints_equal_modulo_wall(&single, &sharded);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The hung-shard watchdog end to end: shard 0 wedges forever after
/// persisting two points (`GEMMINI_TEST_HANG_AFTER`, scoped to one shard
/// exactly like the crash hook). The supervisor's `--watchdog` budget
/// must notice the frozen heartbeat `done` count, kill the worker, and
/// retry it; the retry resumes from the shard checkpoint (cached points
/// disarm the hang hook) and the merged output matches the
/// single-process golden bit for bit.
#[test]
fn supervised_watchdog_kills_hung_shard_and_recovers() {
    let dir = scratch_dir("smoke_watchdog");
    let single = dir.join("single.jsonl");
    let sharded = dir.join("sharded.jsonl");

    let golden = run(SMOKE, &["--json", single.to_str().unwrap()], &[]);
    assert!(golden.status.success());

    let supervised = run(
        SMOKE,
        &[
            "--json",
            sharded.to_str().unwrap(),
            "--shards",
            "2",
            "--watchdog",
            "1",
        ],
        &[
            ("GEMMINI_TEST_HANG_AFTER", "2"),
            ("GEMMINI_TEST_CRASH_SHARD", "0"),
        ],
    );
    let err = stderr(&supervised);
    assert!(
        supervised.status.success(),
        "supervisor recovers from the hang: {err}"
    );
    assert!(err.contains("hook: hanging in"), "{err}");
    assert!(err.contains("hung (no heartbeat progress"), "{err}");
    assert!(err.contains("killed by watchdog"), "{err}");
    assert!(err.contains("recovered on attempt 2"), "{err}");

    assert_eq!(
        stdout(&golden),
        stdout(&supervised),
        "rendered tables must be identical"
    );
    let ca = Checkpoint::<u64>::load(&single).unwrap();
    let cb = Checkpoint::<u64>::load(&sharded).unwrap();
    assert_eq!(ca.len(), 8);
    assert_eq!(cb.len(), 8);
    for (ea, eb) in ca.entries().iter().zip(cb.entries()) {
        assert_eq!(
            (&ea.label, ea.fingerprint, ea.payload),
            (&eb.label, eb.fingerprint, eb.payload)
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

/// `--point-timeout` end to end: a fresh run wedges in its third point,
/// the timeout monitor records a first-class `failed:timeout` entry and
/// exits 1 (the grid is incomplete — retryable); the resume *serves* the
/// recorded failure instead of re-running the hang, finishes every other
/// point, prints the terminal failure summary, and exits 3.
#[test]
fn point_timeout_records_failure_and_resume_serves_it() {
    let dir = scratch_dir("smoke_timeout");
    let ckpt = dir.join("sweep.jsonl");

    let wedged = run(
        SMOKE,
        &["--json", ckpt.to_str().unwrap(), "--point-timeout", "1"],
        &[("GEMMINI_TEST_HANG_AFTER", "2")],
    );
    let err = stderr(&wedged);
    assert_eq!(
        wedged.status.code(),
        Some(1),
        "an incomplete grid is retryable: {err}"
    );
    assert!(err.contains("exceeded --point-timeout"), "{err}");
    assert!(err.contains("recording failed:timeout"), "{err}");
    let ck = Checkpoint::<u64>::load(&ckpt).unwrap();
    assert_eq!(ck.len(), 2, "two points persisted before the hang");
    let failed = ck
        .lookup_failed("point2", debug_fingerprint(&2u64))
        .expect("the timeout must be on the books");
    assert_eq!(failed.reason, "timeout");

    // No hang hook this time: the recorded failure alone must keep the
    // point from being re-attempted.
    let resumed = run(
        SMOKE,
        &[
            "--json",
            ckpt.to_str().unwrap(),
            "--point-timeout",
            "1",
            "--resume",
        ],
        &[],
    );
    let err = stderr(&resumed);
    assert_eq!(
        resumed.status.code(),
        Some(3),
        "a complete grid with recorded failures is terminal: {err}"
    );
    assert!(
        err.contains("sweep: finished with 1 recorded point failure(s):"),
        "{err}"
    );
    assert!(err.contains("point2: recorded failure: timeout"), "{err}");
    assert!(err.contains("exiting 3"), "{err}");
    let ck = Checkpoint::<u64>::load(&ckpt).unwrap();
    assert_eq!(ck.len(), 7, "every point but the timed-out one completed");
    assert!(
        ck.lookup("point2", debug_fingerprint(&2u64)).is_none(),
        "the hung point must not be re-run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// The chaos acceptance run: a supervised 2-shard quick fig8 sweep with
/// one injected hang (shard 1, killed and retried by the watchdog) *and*
/// one injected checkpoint corruption (shard 0's fifth append torn
/// mid-line by the fault registry). The torn line is caught by the
/// worker's post-flight verification, quarantined to the `.bad` sidecar
/// on retry, and exactly that point is re-run — the merged report must
/// come out bit-identical to the clean single-process golden.
#[test]
fn fig8_chaos_hang_and_corruption_heal_bit_identical() {
    let dir = scratch_dir("fig8_chaos");
    let single = dir.join("single.jsonl");
    let sharded = dir.join("sharded.jsonl");

    let golden = run(FIG8, &["--quick", "--json", single.to_str().unwrap()], &[]);
    assert!(golden.status.success(), "{}", stderr(&golden));

    let supervised = run(
        FIG8,
        &[
            "--quick",
            "--json",
            sharded.to_str().unwrap(),
            "--shards",
            "2",
            "--watchdog",
            "2",
            "--faults",
            "checkpoint.corrupt=corrupt@5",
        ],
        &[
            ("GEMMINI_TEST_HANG_AFTER", "3"),
            ("GEMMINI_TEST_CRASH_SHARD", "1"),
            ("GEMMINI_FAULTS_SHARD", "0"),
        ],
    );
    let err = stderr(&supervised);
    assert!(
        supervised.status.success(),
        "supervisor heals both injected faults: {err}"
    );
    assert!(err.contains("hook: hanging in"), "{err}");
    assert!(err.contains("hung (no heartbeat progress"), "{err}");
    assert!(
        err.contains("quarantined 1 damaged line(s)"),
        "the torn line must be quarantined exactly once: {err}"
    );

    // The sidecar holds exactly the one torn line.
    let sidecar = dir.join("sharded.shard0of2.jsonl.bad");
    let bad = std::fs::read_to_string(&sidecar).expect("quarantine sidecar exists");
    assert_eq!(
        bad.lines().count(),
        1,
        "exactly one line quarantined: {bad}"
    );

    assert_eq!(
        stdout(&golden),
        stdout(&supervised),
        "fig8 tables must be bit-identical despite the injected faults"
    );
    assert_checkpoints_equal_modulo_wall(&single, &sharded);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Attribution-guided pruning across every multi-process path: crash
/// mid-basis-phase and resume, resume again over a fully-pruned file
/// (every entry replayed), resume past a hand-deleted group (cached and
/// pruned provenance in one progress line), and a supervised 2-shard
/// run with a crash — all bit-identical to the plain pruned sweep.
#[test]
fn fig8_prune_survives_crash_resume_and_shards() {
    let dir = scratch_dir("fig8_prune");
    let pruned = dir.join("pruned.jsonl");
    let crash = dir.join("crash.jsonl");
    let sharded = dir.join("sharded.jsonl");

    let baseline = run(
        FIG8,
        &["--quick", "--prune", "--json", pruned.to_str().unwrap()],
        &[],
    );
    let err = stderr(&baseline);
    assert!(baseline.status.success(), "{err}");
    assert!(
        err.contains("sweep: pruned 24/32 point(s) via tlb-entries attribution"),
        "quick fig8 must prune 24 of 32 points: {err}"
    );
    let entries = Checkpoint::<SocReport>::load(&pruned).unwrap();
    assert_eq!(entries.len(), 32);
    for e in entries.entries() {
        if let Some(ev) = &e.pruned {
            assert!(
                e.label.starts_with(&format!(
                    "{} shared=",
                    ev.basis_label.split(" shared=").next().unwrap()
                )),
                "evidence must name the point's own group basis: {} vs {}",
                e.label,
                ev.basis_label
            );
        }
    }

    // Crash after 3 of the 8 basis points; the retry resumes past the
    // cached bases, finishes the rest, and prunes the members.
    let crashed = run(
        FIG8,
        &["--quick", "--prune", "--json", crash.to_str().unwrap()],
        &[("GEMMINI_TEST_CRASH_AFTER", "3")],
    );
    assert!(!crashed.status.success(), "the crash hook must fire");
    let resumed = run(
        FIG8,
        &[
            "--quick",
            "--prune",
            "--json",
            crash.to_str().unwrap(),
            "--resume",
        ],
        &[],
    );
    let err = stderr(&resumed);
    assert!(resumed.status.success(), "{err}");
    assert!(err.contains("skipped 3/32 completed points"), "{err}");
    assert_eq!(stdout(&baseline), stdout(&resumed), "crash+resume drifts");

    // A second resume replays every entry — run *and* pruned — without
    // simulating anything.
    let replayed = run(
        FIG8,
        &[
            "--quick",
            "--prune",
            "--json",
            crash.to_str().unwrap(),
            "--resume",
        ],
        &[],
    );
    let err = stderr(&replayed);
    assert!(replayed.status.success(), "{err}");
    assert!(
        err.contains("skipped 32/32 completed points (24 pruned replayed)"),
        "{err}"
    );
    assert_eq!(stdout(&baseline), stdout(&replayed), "full replay drifts");

    // Delete one whole group (basis + its three pruned members) from the
    // checkpoint: the resume must re-run the basis — with both cached
    // and pruned provenance in its progress line — and re-prune the
    // members from fresh evidence.
    let text = std::fs::read_to_string(&crash).unwrap();
    let kept: Vec<&str> = text
        .lines()
        .filter(|l| !(l.contains("\"label\":\"private=32 ") && l.contains("filters=true")))
        .collect();
    assert_eq!(kept.len(), 28, "one group of four removed");
    std::fs::write(&crash, format!("{}\n", kept.join("\n"))).unwrap();
    let regrown = run(
        FIG8,
        &[
            "--quick",
            "--prune",
            "--json",
            crash.to_str().unwrap(),
            "--resume",
        ],
        &[],
    );
    let err = stderr(&regrown);
    assert!(regrown.status.success(), "{err}");
    assert!(
        err.contains("skipped 28/32 completed points (21 pruned replayed)"),
        "{err}"
    );
    assert!(
        err.contains("[29/32, 7 cached, 21 pruned] private=32 shared=0 filters=true"),
        "progress must carry cached and pruned provenance: {err}"
    );
    assert_eq!(stdout(&baseline), stdout(&regrown), "group regrow drifts");

    // Supervised 2-shard run with a crash: whole groups stay on one
    // shard, each worker prunes its own members, and the merged file
    // matches the plain pruned sweep — evidence included.
    let supervised = run(
        FIG8,
        &[
            "--quick",
            "--prune",
            "--json",
            sharded.to_str().unwrap(),
            "--shards",
            "2",
        ],
        &[
            ("GEMMINI_TEST_CRASH_AFTER", "2"),
            ("GEMMINI_TEST_CRASH_SHARD", "0"),
        ],
    );
    let err = stderr(&supervised);
    assert!(supervised.status.success(), "supervisor recovers: {err}");
    assert!(err.contains("retrying from its checkpoint"), "{err}");
    assert!(
        err.contains("sweep: pruned 24/32 point(s) across shards (8 simulated)"),
        "{err}"
    );
    assert_eq!(stdout(&baseline), stdout(&supervised), "sharded drifts");
    assert_checkpoints_equal_modulo_wall_and_order(&pruned, &sharded);

    let _ = std::fs::remove_dir_all(&dir);
}
