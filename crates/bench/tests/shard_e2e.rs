//! End-to-end tests of the sharded multi-process sweep layer, driving
//! the real binaries (via `CARGO_BIN_EXE_*`) exactly as a user or CI
//! would: supervised shards with a crash injected mid-run, manual
//! shard-then-merge flows, and resume progress accounting.
//!
//! The load-bearing property throughout: every multi-process path —
//! supervised, crashed-and-retried, manually sharded and merged — must
//! produce results bit-identical to the single-process sweep.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use gemmini_mem::json::ToJson;
use gemmini_soc::checkpoint::Checkpoint;
use gemmini_soc::run::SocReport;
use gemmini_soc::sweep::merge_memory_stats;

const SMOKE: &str = env!("CARGO_BIN_EXE_shard_smoke");
const FIG8: &str = env!("CARGO_BIN_EXE_fig8_tlb_sweep");

/// A scratch directory unique to this test and process.
fn scratch_dir(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gemmini_shard_e2e_{test}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn run(bin: &str, args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(bin);
    cmd.args(args);
    // Serial workers keep checkpoint line order equal to submission
    // order, which the file-level comparisons below rely on; it also
    // makes the crash hook deterministic (exactly k points persist).
    cmd.env("GEMMINI_THREADS", "1");
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Asserts two checkpoint files hold identical results: same labels in
/// the same order, same fingerprints, and byte-identical payload JSON.
/// Wall-clock is the one field allowed to differ (it measures host time,
/// not simulation results).
fn assert_checkpoints_equal_modulo_wall(a: &Path, b: &Path) {
    let ca = Checkpoint::<SocReport>::load(a).expect("checkpoint a loads");
    let cb = Checkpoint::<SocReport>::load(b).expect("checkpoint b loads");
    assert_eq!(ca.len(), cb.len(), "{} vs {}", a.display(), b.display());
    for (ea, eb) in ca.entries().iter().zip(cb.entries()) {
        assert_eq!(ea.label, eb.label, "label order must match");
        assert_eq!(ea.fingerprint, eb.fingerprint, "point '{}'", ea.label);
        assert_eq!(
            ea.payload.to_json().encode(),
            eb.payload.to_json().encode(),
            "payload for '{}' must be bit-identical",
            ea.label
        );
    }
    // The exact-merge claim extends to the folded totals.
    let ra = merge_memory_stats(ca.entries().iter().map(|e| &e.payload));
    let rb = merge_memory_stats(cb.entries().iter().map(|e| &e.payload));
    assert_eq!(ra, rb, "merged MemoryRollup totals must be bit-identical");
}

#[test]
fn supervised_crash_retry_matches_single_process() {
    let dir = scratch_dir("smoke_supervised");
    let single = dir.join("single.jsonl");
    let sharded = dir.join("sharded.jsonl");

    let golden = run(SMOKE, &["--json", single.to_str().unwrap()], &[]);
    assert!(golden.status.success());

    // 2 supervised shards; shard 0 aborts after persisting 2 points and
    // must be retried from its checkpoint by the supervisor.
    let supervised = run(
        SMOKE,
        &["--json", sharded.to_str().unwrap(), "--shards", "2"],
        &[
            ("GEMMINI_TEST_CRASH_AFTER", "2"),
            ("GEMMINI_TEST_CRASH_SHARD", "0"),
        ],
    );
    let err = stderr(&supervised);
    assert!(supervised.status.success(), "supervisor recovers: {err}");
    assert!(
        err.contains("retrying from its checkpoint"),
        "the crash must actually happen and be retried: {err}"
    );
    assert!(err.contains("recovered on attempt 2"), "{err}");

    assert_eq!(
        stdout(&golden),
        stdout(&supervised),
        "rendered tables must be identical"
    );

    // The merged file matches the single-process checkpoint except for
    // wall-clock (u64 payloads here, so compare the raw JSON fields).
    let ca = Checkpoint::<u64>::load(&single).unwrap();
    let cb = Checkpoint::<u64>::load(&sharded).unwrap();
    assert_eq!(ca.len(), 8);
    assert_eq!(cb.len(), 8);
    for (ea, eb) in ca.entries().iter().zip(cb.entries()) {
        assert_eq!(
            (&ea.label, ea.fingerprint, ea.payload),
            (&eb.label, eb.fingerprint, eb.payload)
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_progress_reports_true_grid_position() {
    let dir = scratch_dir("smoke_resume");
    let ckpt = dir.join("sweep.jsonl");

    // Fresh run crashes after 5 of 8 points persist.
    let crashed = run(
        SMOKE,
        &["--json", ckpt.to_str().unwrap()],
        &[("GEMMINI_TEST_CRASH_AFTER", "5")],
    );
    assert!(!crashed.status.success(), "the crash hook must fire");
    assert_eq!(Checkpoint::<u64>::load(&ckpt).unwrap().len(), 5);

    // The resume serves 5 cached points and runs the remaining 3; its
    // progress lines must report whole-grid positions, not [1/3]..[3/3].
    let resumed = run(SMOKE, &["--json", ckpt.to_str().unwrap(), "--resume"], &[]);
    let err = stderr(&resumed);
    assert!(resumed.status.success(), "{err}");
    assert!(err.contains("skipped 5/8 completed points"), "{err}");
    for line in ["[6/8]", "[7/8]", "[8/8]"] {
        assert!(
            err.contains(line),
            "expected progress line {line} in: {err}"
        );
    }
    assert!(
        !err.contains("[1/3]"),
        "progress must not restart from the to-run count: {err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn manual_shards_then_merge_match_single_process() {
    let dir = scratch_dir("smoke_manual");
    let single = dir.join("single.jsonl");
    let base = dir.join("sweep.jsonl");
    let shard0 = dir.join("sweep.shard0of2.jsonl");
    let shard1 = dir.join("sweep.shard1of2.jsonl");

    let golden = run(SMOKE, &["--json", single.to_str().unwrap()], &[]);
    assert!(golden.status.success());

    // Run the two shards by hand (e.g. on two hosts sharing a filesystem).
    for spec in ["0/2", "1/2"] {
        let out = run(
            SMOKE,
            &["--json", base.to_str().unwrap(), "--shard", spec],
            &[],
        );
        assert!(out.status.success(), "shard {spec}: {}", stderr(&out));
        assert_eq!(stdout(&out), "", "shard workers render nothing");
    }
    assert!(shard0.exists() && shard1.exists());

    // Merging only one shard must fail loudly, naming missing points.
    let partial = run(
        SMOKE,
        &[
            "--json",
            base.to_str().unwrap(),
            "--merge",
            shard0.to_str().unwrap(),
        ],
        &[],
    );
    assert!(!partial.status.success(), "partial merges must not succeed");
    assert!(
        stderr(&partial).contains("missing"),
        "must report missing points: {}",
        stderr(&partial)
    );

    // Merging both stitches the full grid, identical to single-process.
    let merged = run(
        SMOKE,
        &[
            "--json",
            base.to_str().unwrap(),
            "--merge",
            shard0.to_str().unwrap(),
            shard1.to_str().unwrap(),
        ],
        &[],
    );
    assert!(merged.status.success(), "{}", stderr(&merged));
    assert_eq!(stdout(&golden), stdout(&merged));

    let _ = std::fs::remove_dir_all(&dir);
}

/// The acceptance-criteria test: a 2-shard quick-mode fig8 run with one
/// shard killed and retried by the supervisor produces merged per-point
/// reports and `MemoryRollup` totals bit-identical to the single-process
/// sweep.
#[test]
fn fig8_supervised_shards_bit_identical_to_single_process() {
    let dir = scratch_dir("fig8");
    let single = dir.join("single.jsonl");
    let sharded = dir.join("sharded.jsonl");

    let golden = run(FIG8, &["--quick", "--json", single.to_str().unwrap()], &[]);
    assert!(golden.status.success(), "{}", stderr(&golden));

    let supervised = run(
        FIG8,
        &[
            "--quick",
            "--json",
            sharded.to_str().unwrap(),
            "--shards",
            "2",
        ],
        &[
            ("GEMMINI_TEST_CRASH_AFTER", "3"),
            ("GEMMINI_TEST_CRASH_SHARD", "1"),
        ],
    );
    let err = stderr(&supervised);
    assert!(supervised.status.success(), "supervisor recovers: {err}");
    assert!(
        err.contains("retrying from its checkpoint"),
        "shard 1 must crash and be retried: {err}"
    );

    assert_eq!(
        stdout(&golden),
        stdout(&supervised),
        "fig8 tables must be bit-identical between single-process and sharded runs"
    );
    assert_checkpoints_equal_modulo_wall(&single, &sharded);

    let _ = std::fs::remove_dir_all(&dir);
}
