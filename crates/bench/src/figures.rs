//! Machine-readable figure data, shared by the figure binaries and the
//! golden regression tests.
//!
//! Each function here computes one figure's underlying numbers and can
//! render them as a [`Json`] document. The binaries format the same
//! rows for stdout and write the JSON next to it under `--json`; the
//! golden tests (`tests/golden_figures.rs`) call the functions directly
//! and diff the JSON against the checked-in files under `tests/golden/`,
//! so any counter drift in the models fails `cargo test` — not just a
//! human eyeballing a table.
//!
//! Everything emitted here is deterministic: cycle counters are exact
//! integers, and every float is pure arithmetic over model constants
//! (no wall-clock, no environment).

use gemmini_core::config::GemminiConfig;
use gemmini_cpu::kernels::network_cpu_cycles;
use gemmini_cpu::{CpuKind, CpuModel};
use gemmini_dnn::graph::Network;
use gemmini_mem::json::{Json, ToJson};
use gemmini_soc::run::SocReport;
use gemmini_soc::sweep::{DesignPoint, SweepResult};
use gemmini_soc::SocConfig;
use gemmini_synth::area::{soc_area, CpuKind as SynthCpu};
use gemmini_synth::power::spatial_array_power;
use gemmini_synth::timing::SpatialArrayTiming;
use gemmini_vm::tlb::TlbConfig;

/// One Fig. 3 design point: a 256-PE spatial array at the given tile
/// (combinational block) edge length.
pub struct Fig3Row {
    /// Tile edge (1 = fully pipelined, 16 = fully combinational).
    pub tile: usize,
    /// Display name of the design point.
    pub name: String,
    /// Maximum clock frequency in GHz.
    pub fmax_ghz: f64,
    /// Spatial-array area in kµm².
    pub area_kum2: f64,
    /// Spatial-array power in mW at 1 GHz.
    pub power_mw: f64,
    /// Combinational MAC-chain depth.
    pub chain_depth: usize,
}

fn fig3_config(tile: usize) -> GemminiConfig {
    GemminiConfig {
        mesh_rows: 16 / tile,
        mesh_cols: 16 / tile,
        tile_rows: tile,
        tile_cols: tile,
        ..GemminiConfig::edge()
    }
}

/// The Fig. 3 design-space rows: both extremes plus the hybrid points.
pub fn fig3_rows() -> Vec<Fig3Row> {
    [1usize, 2, 4, 8, 16]
        .into_iter()
        .map(|tile| {
            let cfg = fig3_config(tile);
            let t = SpatialArrayTiming::from_config(&cfg);
            let p = spatial_array_power(&cfg, 1.0, 1.0);
            Fig3Row {
                tile,
                name: match tile {
                    1 => "TPU-like (fully pipelined)".to_string(),
                    16 => "NVDLA-like (combinational)".to_string(),
                    _ => format!("hybrid ({tile}x{tile} tiles)"),
                },
                fmax_ghz: t.fmax_ghz,
                area_kum2: gemmini_synth::area::spatial_array_area_um2(&cfg) / 1000.0,
                power_mw: p.total_mw(),
                chain_depth: t.chain_depth,
            }
        })
        .collect()
}

/// Fig. 3 as JSON: every row plus the paper's headline extreme ratios.
pub fn fig3_json() -> Json {
    let rows = fig3_rows();
    let pipe = rows.first().expect("tile=1 present");
    let comb = rows.last().expect("tile=16 present");
    Json::obj([
        ("figure", Json::from("fig3_spatial_tradeoffs")),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj([
                            ("tile", Json::from(r.tile)),
                            ("name", Json::from(r.name.clone())),
                            ("fmax_ghz", Json::from(r.fmax_ghz)),
                            ("area_kum2", Json::from(r.area_kum2)),
                            ("power_mw_at_1ghz", Json::from(r.power_mw)),
                            ("chain_depth", Json::from(r.chain_depth)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "extreme_ratios",
            Json::obj([
                ("fmax", Json::from(pipe.fmax_ghz / comb.fmax_ghz)),
                ("area", Json::from(pipe.area_kum2 / comb.area_kum2)),
                ("power", Json::from(pipe.power_mw / comb.power_mw)),
            ]),
        ),
    ])
}

/// Fig. 6a as JSON: the edge-configuration area breakdown.
pub fn fig6_json() -> Json {
    let report = soc_area(&GemminiConfig::edge(), SynthCpu::Rocket);
    let total = report.total_um2();
    Json::obj([
        ("figure", Json::from("fig6_area_breakdown")),
        (
            "components",
            Json::Arr(
                report
                    .components
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("name", Json::from(c.name.clone())),
                            ("area_um2", Json::from(c.area_um2)),
                            ("fraction", Json::from(c.area_um2 / total)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total_um2", Json::from(total)),
        ("sram_fraction", Json::from(report.sram_fraction())),
    ])
}

/// The Fig. 8 private-TLB sizes (entries).
pub const FIG8_PRIVATES: [u32; 4] = [4, 8, 16, 32];

/// The Fig. 8 shared-L2-TLB sizes (entries; `0` = no L2 TLB).
pub const FIG8_SHAREDS: [u32; 4] = [0, 128, 256, 512];

/// The Fig. 8 grid coordinates `(private, shared, filters)`, in sweep
/// submission order: filters-off block first, then filters-on, each in
/// private-major order. The binary and the shard-merge tests both derive
/// the grid from here so their orders can never diverge.
pub fn fig8_grid() -> Vec<(u32, u32, bool)> {
    let mut grid = Vec::new();
    for &filters in &[false, true] {
        for &p in &FIG8_PRIVATES {
            for &s in &FIG8_SHAREDS {
                grid.push((p, s, filters));
            }
        }
    }
    grid
}

/// The Fig. 8 sweep: one design point per [`fig8_grid`] coordinate,
/// running `net` on the edge SoC with that TLB configuration.
pub fn fig8_points(net: &Network) -> Vec<DesignPoint> {
    fig8_grid()
        .into_iter()
        .map(|(p, s, filters)| {
            let mut cfg = SocConfig::edge_single_core();
            cfg.cores[0].translation.private = TlbConfig::private(p);
            cfg.cores[0].translation.shared = TlbConfig::shared(s);
            cfg.cores[0].translation.filter_registers = filters;
            DesignPoint::timing(
                format!("private={p} shared={s} filters={filters}"),
                cfg,
                net,
            )
        })
        .collect()
}

/// The Fig. 8 prune policy: the grid's swept axis is TLB sizing, so the
/// groups hold the four shared-L2-TLB settings of each
/// `(private, filters)` pair, based on the `shared=0` point — the most
/// TLB-starved setting along the axis, where the tlb-stall share is
/// largest. If even that point's dominant bucket is out of the axis's
/// reach (and its tlb-stall share is within tolerance), growing the
/// shared TLB cannot move the group, and the other three settings are
/// skipped. 24 of the 32 grid points are members, so a fully
/// compute-bound workload prunes 75% of the grid.
pub fn fig8_prune_policy() -> gemmini_soc::PrunePolicy {
    use gemmini_mem::stats::SweepAxis;
    let label = |p: u32, s: u32, filters: bool| format!("private={p} shared={s} filters={filters}");
    let mut policy = gemmini_soc::PrunePolicy::new(SweepAxis::TlbEntries, 0.05);
    for &filters in &[false, true] {
        for &p in &FIG8_PRIVATES {
            let basis = label(p, FIG8_SHAREDS[0], filters);
            let members = FIG8_SHAREDS[1..]
                .iter()
                .map(|&s| label(p, s, filters))
                .collect::<Vec<_>>();
            policy = policy.group(basis, members);
        }
    }
    policy
}

/// The Fig. 8 prune decision set as JSON: for every grid point (in
/// submission order) whether it was pruned, and for pruned points the
/// recorded evidence. The golden tests pin the quick-mode decisions so a
/// policy or attribution drift cannot silently change which points get
/// simulated.
///
/// # Panics
///
/// Panics if `results` does not hold one successful result per
/// [`fig8_grid`] point in submission order.
pub fn fig8_prune_json(results: &[SweepResult<SocReport>]) -> Json {
    assert_eq!(results.len(), fig8_grid().len());
    let summary = gemmini_soc::prune::summarize(results);
    Json::obj([
        ("figure", Json::from("fig8_prune_decisions")),
        ("summary", summary.to_json()),
        (
            "points",
            Json::Arr(
                results
                    .iter()
                    .map(|r| {
                        let mut fields = vec![
                            ("label", Json::from(r.label.clone())),
                            ("pruned", Json::from(r.pruned.is_some())),
                            (
                                "total_cycles",
                                Json::from(r.expect_ok().cores[0].total_cycles),
                            ),
                        ];
                        if let Some(ev) = &r.pruned {
                            fields.push(("basis", Json::from(ev.basis_label.clone())));
                            fields.push(("dominant", ev.dominant.to_json()));
                            fields.push(("rule", Json::from(ev.rule())));
                        }
                        Json::obj(fields)
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The four Fig. 7 accelerator variants per network:
/// (label, host CPU, im2col on the accelerator).
pub const FIG7_VARIANTS: [(&str, CpuKind, bool); 4] = [
    ("Rocket host, im2col on CPU", CpuKind::Rocket, false),
    ("BOOM host, im2col on CPU", CpuKind::Boom, false),
    ("Rocket host, im2col on accel", CpuKind::Rocket, true),
    ("BOOM host, im2col on accel", CpuKind::Boom, true),
];

/// The Fig. 7 sweep: one design point per (network, variant), in
/// row-major order (all variants of a network are adjacent).
pub fn fig7_points(nets: &[Network]) -> Vec<DesignPoint> {
    nets.iter()
        .flat_map(|net| {
            FIG7_VARIANTS.iter().map(|&(label, cpu, im2col)| {
                let mut cfg = SocConfig::edge_single_core();
                cfg.cores[0].cpu = cpu;
                cfg.cores[0].accel.has_im2col = im2col;
                DesignPoint::timing(format!("{} / {label}", net.name()), cfg, net)
            })
        })
        .collect()
}

/// Fig. 7 cycle attribution as JSON: for every (network, variant) point,
/// core 0's attribution record — buckets that sum exactly to that
/// point's `total_cycles`. The golden tests pin the quick-mode values so
/// the cycle classification cannot drift silently.
///
/// # Panics
///
/// Panics if `results` does not hold one successful report per
/// (network, variant) pair in [`fig7_points`] order.
pub fn fig7_attribution_json(nets: &[Network], results: &[SweepResult<SocReport>]) -> Json {
    assert_eq!(results.len(), nets.len() * FIG7_VARIANTS.len());
    Json::obj([
        ("figure", Json::from("fig7_attribution")),
        (
            "points",
            Json::Arr(
                nets.iter()
                    .zip(results.chunks(FIG7_VARIANTS.len()))
                    .flat_map(|(net, chunk)| {
                        FIG7_VARIANTS
                            .iter()
                            .zip(chunk)
                            .map(move |(&(label, _, _), r)| {
                                let core = &r.expect_ok().cores[0];
                                Json::obj([
                                    ("network", Json::from(net.name())),
                                    ("variant", Json::from(label)),
                                    ("total_cycles", Json::from(core.total_cycles)),
                                    ("attribution", core.attribution.to_json()),
                                ])
                            })
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Fig. 7 as JSON: per network, the CPU baselines and each variant's
/// cycle count (everything downstream — FPS, speedups — is derived).
///
/// # Panics
///
/// Panics if `results` does not hold one successful report per
/// (network, variant) pair in [`fig7_points`] order.
pub fn fig7_json(nets: &[Network], results: &[SweepResult<SocReport>]) -> Json {
    assert_eq!(results.len(), nets.len() * FIG7_VARIANTS.len());
    let rocket = CpuModel::new(CpuKind::Rocket);
    let boom = CpuModel::new(CpuKind::Boom);
    Json::obj([
        ("figure", Json::from("fig7_speedup")),
        (
            "networks",
            Json::Arr(
                nets.iter()
                    .zip(results.chunks(FIG7_VARIANTS.len()))
                    .map(|(net, chunk)| {
                        Json::obj([
                            ("network", Json::from(net.name())),
                            (
                                "rocket_baseline_cycles",
                                Json::from(network_cpu_cycles(&rocket, net)),
                            ),
                            (
                                "boom_baseline_cycles",
                                Json::from(network_cpu_cycles(&boom, net)),
                            ),
                            (
                                "variants",
                                Json::Arr(
                                    FIG7_VARIANTS
                                        .iter()
                                        .zip(chunk)
                                        .map(|(&(label, _, _), r)| {
                                            Json::obj([
                                                ("label", Json::from(label)),
                                                (
                                                    "cycles",
                                                    Json::from(r.expect_ok().cores[0].total_cycles),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
