//! Shared helpers for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see `DESIGN.md`'s per-experiment index). This library holds
//! the bits they share: simple table/series printing and the common
//! command-line conventions (`--quick` runs a scaled-down workload so the
//! binary finishes in seconds; the default reproduces the full experiment).

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;
use std::time::Duration;

use gemmini_core::metrics::Metrics;
use gemmini_core::trace::{export_chrome_trace, Tracer};
use gemmini_core::AccelError;
use gemmini_dnn::graph::{Activation, Layer, Network, PoolKind};
use gemmini_mem::json::{FromJson, Json, ToJson};
use gemmini_soc::prune::{summarize, Attributed, PrunePolicy};
use gemmini_soc::run::{
    run_networks, run_networks_metered, run_networks_traced, RunOptions, SocReport,
};
use gemmini_soc::shard::{run_sharded, ShardCli, ShardError, ShardSpec};
use gemmini_soc::sweep::EXIT_RECORDED_FAILURES;
use gemmini_soc::SocConfig;

pub mod figures;

/// The shared design-space sweep executor (re-exported so the figure
/// binaries have one import path for both printing helpers and sweeps).
pub use gemmini_soc::shard;
pub use gemmini_soc::sweep;
pub use gemmini_soc::sweep::{run_sweep, DesignPoint, SweepOptions, SweepResult};

/// Prints a named section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints a two-column table of (label, value) rows.
pub fn table2(header: (&str, &str), rows: &[(String, String)]) {
    let w = rows
        .iter()
        .map(|(a, _)| a.len())
        .chain([header.0.len()])
        .max()
        .unwrap_or(10)
        + 2;
    println!("{:<w$} {}", header.0, header.1);
    println!("{}", "-".repeat(w + header.1.len() + 8));
    for (a, b) in rows {
        println!("{a:<w$} {b}");
    }
}

/// Renders a horizontal ASCII bar of `value` relative to `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round().max(0.0) as usize;
    "#".repeat(n.min(width))
}

/// Whether `--quick` was passed (scaled-down workloads for smoke runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Returns the argument following `flag`, if present.
pub fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The `--json <path>` argument: where to persist machine-readable
/// per-point results (the sweep checkpoint file).
pub fn json_path() -> Option<PathBuf> {
    arg_value("--json").map(PathBuf::from)
}

/// Whether `--resume` was passed (skip points already completed in the
/// `--json` checkpoint file).
pub fn resume_flag() -> bool {
    std::env::args().any(|a| a == "--resume")
}

/// Whether attribution-guided pruning was requested: the last of
/// `--prune` / `--no-prune` on the command line wins, and the default is
/// off — pruning must always be an explicit opt-in because it replaces
/// simulations with predictions.
pub fn prune_flag() -> bool {
    std::env::args()
        .rfind(|a| a == "--prune" || a == "--no-prune")
        .is_some_and(|a| a == "--prune")
}

/// The `--trace <path>` argument: where to write a Chrome `trace_event`
/// JSON file for one representative run (open it in `chrome://tracing`
/// or Perfetto).
pub fn trace_path() -> Option<PathBuf> {
    arg_value("--trace").map(PathBuf::from)
}

/// The `--status <path>` argument: where the sweep rewrites its live
/// JSON heartbeat ([`gemmini_soc::telemetry::Heartbeat`]) — atomically,
/// on every point completion and every ~2 s. `watch cat <path>` is the
/// intended consumer; under `--shards` the supervisor aggregates its
/// children's heartbeats here.
pub fn status_path() -> Option<PathBuf> {
    arg_value("--status").map(PathBuf::from)
}

/// The `--metrics <path>` argument: where to write the final live-metrics
/// registry snapshot as Prometheus text exposition when the sweep ends.
pub fn metrics_path() -> Option<PathBuf> {
    arg_value("--metrics").map(PathBuf::from)
}

/// Parses a `--flag <secs>` duration argument (fractional seconds
/// allowed). Exits with status `2` on a non-positive or unparseable
/// value — a mistyped budget must not silently disable the feature.
fn duration_flag(flag: &str) -> Option<Duration> {
    let v = arg_value(flag)?;
    match v.trim().parse::<f64>() {
        Ok(secs) if secs > 0.0 && secs.is_finite() => Some(Duration::from_secs_f64(secs)),
        _ => {
            eprintln!("error: {flag} requires a positive number of seconds (got '{v}')");
            std::process::exit(2);
        }
    }
}

/// The `--point-timeout <secs>` argument: per-point wall-clock budget.
/// A point exceeding it is recorded as a first-class `failed:timeout`
/// checkpoint entry and the sweep finishes with a failure summary and a
/// non-zero exit (see [`gemmini_soc::sweep::SweepOptions`]).
pub fn point_timeout_flag() -> Option<Duration> {
    duration_flag("--point-timeout")
}

/// The `--watchdog <secs>` argument: the `--shards` supervisor kills and
/// retries any worker whose heartbeat `done` count does not advance for
/// this long (see [`gemmini_soc::shard::SupervisorOptions`]).
pub fn watchdog_flag() -> Option<Duration> {
    duration_flag("--watchdog")
}

/// The status base the watchdog falls back to when `--watchdog` is given
/// without `--status`: `sweep.jsonl` → `sweep.status.json` next to the
/// checkpoint. Workers and the supervisor both derive this from the
/// forwarded `--json`/`--watchdog` flags, so they agree on where the
/// heartbeats live without any extra plumbing.
fn derived_status_path(json: &Path) -> PathBuf {
    let stem = json.file_stem().and_then(|s| s.to_str()).unwrap_or("sweep");
    json.with_file_name(format!("{stem}.status.json"))
}

/// The process-wide live-metrics handle: one shared registry, enabled
/// iff `--status` or `--metrics` was passed; otherwise the disabled
/// (free) handle. Shared so the sweep executor's point counters and
/// every simulated point's engine/DMA/TLB/DRAM instrumentation land in
/// the same registry that the heartbeat and exposition files export.
pub fn cli_metrics() -> Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS
        .get_or_init(|| {
            if status_path().is_some() || metrics_path().is_some() {
                Metrics::enabled().0
            } else {
                Metrics::disabled()
            }
        })
        .clone()
}

/// Re-runs one design point in timing mode with a buffered tracer and
/// writes the collected events to `path` as Chrome `trace_event` JSON —
/// the shared implementation behind every figure binary's `--trace`.
///
/// # Panics
///
/// Panics if the simulation fails or the file cannot be written — a run
/// asked to produce a trace must not silently drop it.
pub fn export_trace_run(path: &Path, label: &str, config: &SocConfig, nets: &[Network]) {
    let (tracer, sink) = Tracer::buffered();
    run_networks_traced(config, nets, &RunOptions::timing(), &tracer).expect("trace run succeeds");
    let events = sink.lock().expect("trace sink lock").take();
    export_chrome_trace(path, &events)
        .unwrap_or_else(|e| panic!("cannot write trace {}: {e}", path.display()));
    eprintln!(
        "trace: wrote {} events for '{label}' to {}",
        events.len(),
        path.display()
    );
}

/// Sweep options resolved from the shared CLI conventions: `--json`
/// wires the checkpoint path, `--resume` enables skip-completed mode.
pub fn sweep_cli_options() -> SweepOptions {
    sweep_cli_options_with(None)
}

/// [`sweep_cli_options`] plus this sweep's prune policy: `--prune`
/// activates `policy` (and warns when the binary has no
/// axis-insensitivity rule for its grid, in which case every point still
/// runs); `--no-prune`, or neither flag, leaves pruning off.
pub fn sweep_cli_options_with(policy: Option<PrunePolicy>) -> SweepOptions {
    let checkpoint = json_path();
    let resume = resume_flag();
    if resume && checkpoint.is_none() {
        eprintln!("warning: --resume has no effect without --json <path>");
    }
    let prune = if prune_flag() {
        if policy.is_none() {
            eprintln!(
                "warning: --prune: no axis-insensitivity rule for this sweep's grid; \
                 running every point"
            );
        }
        policy
    } else {
        None
    };
    if let Some(schedule) = arg_value("--faults") {
        // Set the schedule in our environment so shard worker children
        // inherit it, and arm eagerly so a typo'd schedule is reported
        // before the sweep starts rather than silently ignored mid-run.
        std::env::set_var(gemmini_soc::fault::FAULTS_ENV, &schedule);
        gemmini_soc::fault::arm();
    }
    let watchdog = watchdog_flag();
    let mut status = status_path();
    if watchdog.is_some() && status.is_none() {
        // The watchdog reads worker heartbeats; without --status it
        // derives a status base from the checkpoint path. Workers derive
        // the same base from their forwarded flags, so supervisor and
        // children agree without extra plumbing.
        status = checkpoint.as_deref().map(derived_status_path);
        match &status {
            Some(path) => eprintln!(
                "watchdog: no --status given; deriving heartbeat base {}",
                path.display()
            ),
            None => eprintln!(
                "warning: --watchdog without --json or --status has no heartbeats to watch"
            ),
        }
    }
    SweepOptions {
        checkpoint,
        resume,
        prune,
        metrics: cli_metrics(),
        status,
        prometheus: metrics_path(),
        point_timeout: point_timeout_flag(),
        watchdog,
        ..SweepOptions::default()
    }
}

/// The process's own arguments minus the sharding flags — what a shard
/// worker child should inherit. `--shard`/`--shards` (and values),
/// `--merge` (and its paths) and `--resume` are stripped; the supervisor
/// re-appends `--shard i/N --resume` per child. Everything else
/// (`--quick`, `--json`, `--only`, …) passes through unchanged.
fn forwarded_args<A>(args: A) -> Vec<String>
where
    A: IntoIterator<Item = String>,
{
    let mut out = Vec::new();
    let mut it = args.into_iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" | "--shard" => {
                it.next();
            }
            "--merge" => {
                while it.peek().is_some_and(|a| !a.starts_with("--")) {
                    it.next();
                }
            }
            "--resume" => {}
            _ => out.push(arg),
        }
    }
    out
}

/// Builds the worker-process command for one shard: the current binary,
/// re-invoked with the same arguments plus `--shard i/N --resume` (resume
/// so a supervisor *retry* of a crashed shard picks up from its
/// checkpoint instead of starting over).
///
/// # Panics
///
/// Panics if the current executable path cannot be resolved.
pub fn shard_child_command(spec: ShardSpec) -> Command {
    let exe = std::env::current_exe().expect("current executable path");
    let mut cmd = Command::new(exe);
    cmd.args(forwarded_args(std::env::args().skip(1)));
    cmd.arg("--shard").arg(spec.to_string()).arg("--resume");
    cmd
}

/// The generic sharded sweep entry point for the figure binaries: parses
/// the sharding CLI (`--shard i/N` / `--shards N` / `--merge <file>…`)
/// alongside the usual sweep flags and dispatches through
/// [`gemmini_soc::shard::run_sharded`].
///
/// Returns `None` when this process was a shard worker (`--shard`): its
/// job was producing the shard checkpoint file, there is nothing to
/// render, and `main` should simply return. In every other mode the
/// full-grid results come back in submission order.
///
/// Exits the process with status `2` on a malformed sharding CLI, `1`
/// on an execution error (supervisor exhaustion, incomplete merge, or
/// failed shard points — the non-zero exit is what tells a supervisor to
/// retry this worker), and [`EXIT_RECORDED_FAILURES`] when the grid
/// finished but carries recorded point failures (e.g. `--point-timeout`
/// entries): the checkpoint is complete, a terminal failure summary is
/// printed, and retrying would not improve the result.
pub fn sharded_sweep_map<I, T, F>(items: Vec<(String, u64, I)>, f: F) -> Option<Vec<SweepResult<T>>>
where
    I: Send,
    T: ToJson + FromJson + Clone + Attributed + Send,
    F: Fn(I) -> Result<T, AccelError> + Sync,
{
    sharded_sweep_map_with(items, None, f)
}

/// [`sharded_sweep_map`] plus the sweep's prune policy (activated only
/// under `--prune`, see [`sweep_cli_options_with`]). When results come
/// back from a merge or a supervised run, a prune summary is printed
/// from the stitched entries, mirroring the in-process executor's line.
pub fn sharded_sweep_map_with<I, T, F>(
    items: Vec<(String, u64, I)>,
    policy: Option<PrunePolicy>,
    f: F,
) -> Option<Vec<SweepResult<T>>>
where
    I: Send,
    T: ToJson + FromJson + Clone + Attributed + Send,
    F: Fn(I) -> Result<T, AccelError> + Sync,
{
    let cli = match ShardCli::from_args(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let opts = sweep_cli_options_with(policy);
    let prune_active = opts.prune.is_some();
    let stitched = cli.supervise.is_some() || !cli.merge.is_empty();
    match run_sharded(items, &cli, opts, shard_child_command, f) {
        Ok(results) => {
            if let (Some(results), true, true) = (&results, prune_active, stitched) {
                let s = summarize(results);
                eprintln!(
                    "sweep: pruned {}/{} point(s) across shards ({} simulated)",
                    s.pruned,
                    s.total(),
                    s.ran
                );
            }
            // The grid may carry recorded failures (e.g. point timeouts
            // served from a checkpoint on resume, or stitched in by a
            // merge): the sweep *finished* — every point is on the books
            // — but the figure cannot be rendered from an incomplete
            // grid. Print the terminal failure summary and exit with the
            // recorded-failures status instead of handing `Err` outcomes
            // to a renderer that expects successes.
            if let Some(results) = &results {
                let recorded: Vec<&SweepResult<T>> =
                    results.iter().filter(|r| r.outcome.is_err()).collect();
                if !recorded.is_empty() {
                    eprintln!(
                        "sweep: finished with {} recorded point failure(s):",
                        recorded.len()
                    );
                    for r in &recorded {
                        if let Err(e) = &r.outcome {
                            eprintln!("  {}: {e}", r.label);
                        }
                    }
                    eprintln!(
                        "sweep: grid is fully accounted for but incomplete; \
                         exiting {EXIT_RECORDED_FAILURES}"
                    );
                    std::process::exit(EXIT_RECORDED_FAILURES);
                }
            }
            results
        }
        Err(e) => {
            eprintln!("error: {e}");
            let code = match &e {
                // A complete slice with recorded failures is terminal:
                // the supervisor must accept it rather than retry it.
                ShardError::RecordedFailures { .. } => EXIT_RECORDED_FAILURES,
                _ => 1,
            };
            std::process::exit(code);
        }
    }
}

/// [`sharded_sweep_map`] instantiated for [`DesignPoint`] sweeps — the
/// drop-in sharded replacement for `run_sweep_with(points,
/// sweep_cli_options())` in the figure binaries.
pub fn sharded_sweep(points: Vec<DesignPoint>) -> Option<Vec<SweepResult<SocReport>>> {
    sharded_sweep_with(points, None)
}

/// [`sharded_sweep`] plus the sweep's prune policy (activated only under
/// `--prune`).
pub fn sharded_sweep_with(
    points: Vec<DesignPoint>,
    policy: Option<PrunePolicy>,
) -> Option<Vec<SweepResult<SocReport>>> {
    let items = points
        .into_iter()
        .map(|p| (p.label.clone(), p.fingerprint(), p))
        .collect();
    let metrics = cli_metrics();
    sharded_sweep_map_with(items, policy, move |p: DesignPoint| {
        run_networks_metered(&p.config, &p.networks, &p.options, &metrics)
    })
}

/// Writes one JSON document as a single line to `path` (the non-sweep
/// figures' `--json` output; sweep binaries persist per-point lines via
/// the checkpoint instead).
///
/// # Panics
///
/// Panics if the file cannot be written — a figure run asked to persist
/// results must not silently drop them.
pub fn write_json_doc(path: &Path, doc: &Json) {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", parent.display()));
        }
    }
    std::fs::write(path, format!("{}\n", doc.encode()))
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

/// Runs the quick ResNet-style workload on `cfg` in timing mode — the
/// shared helper behind the shape tests and quick-mode figure paths.
///
/// # Panics
///
/// Panics if the simulation reports an accelerator error.
pub fn run_quick(cfg: &SocConfig) -> SocReport {
    run_networks(cfg, &[quick_resnet()], &RunOptions::timing()).expect("quick run succeeds")
}

/// The ResNet-class workload for the current mode: full ResNet50, or
/// the reduced [`quick_resnet`] under `--quick`.
pub fn resnet_workload() -> Network {
    if quick_mode() {
        quick_resnet()
    } else {
        gemmini_dnn::zoo::resnet50()
    }
}

/// A reduced-resolution ResNet-style network for `--quick` runs: the same
/// layer mix (conv / matmul / residual-add / pool) at 32×32 so a full
/// simulated inference takes seconds instead of minutes.
pub fn quick_resnet() -> Network {
    let mut net = Network::new("resnet_quick");
    net.push(
        "conv1",
        Layer::Conv {
            in_channels: 3,
            out_channels: 32,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_hw: (32, 32),
            activation: Activation::Relu,
        },
    );
    net.push(
        "pool1",
        Layer::Pool {
            kind: PoolKind::Max,
            size: 2,
            stride: 2,
            padding: 0,
            channels: 32,
            in_hw: (32, 32),
        },
    );
    let mut hw = 16;
    let mut ch = 32;
    for stage in 0..3 {
        let out = ch * 2;
        for b in 0..2 {
            let stride = if b == 0 && stage > 0 { 2 } else { 1 };
            let out_hw = hw / stride;
            net.push(
                format!("s{stage}b{b}_a"),
                Layer::Conv {
                    in_channels: ch,
                    out_channels: out,
                    kernel: 3,
                    stride,
                    padding: 1,
                    in_hw: (hw, hw),
                    activation: Activation::Relu,
                },
            );
            net.push(
                format!("s{stage}b{b}_b"),
                Layer::Conv {
                    in_channels: out,
                    out_channels: out,
                    kernel: 3,
                    stride: 1,
                    padding: 1,
                    in_hw: (out_hw, out_hw),
                    activation: Activation::None,
                },
            );
            if b == 0 {
                net.push(
                    format!("s{stage}b{b}_proj"),
                    Layer::Conv {
                        in_channels: ch,
                        out_channels: out,
                        kernel: 1,
                        stride,
                        padding: 0,
                        in_hw: (hw, hw),
                        activation: Activation::None,
                    },
                );
            }
            net.push(
                format!("s{stage}b{b}_add"),
                Layer::ResAdd {
                    elements: out * out_hw * out_hw,
                },
            );
            hw = out_hw;
            ch = out;
        }
    }
    net.push(
        "fc",
        Layer::Matmul {
            m: 1,
            k: ch * hw * hw,
            n: 10,
            activation: Activation::None,
        },
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemmini_dnn::graph::LayerClass;

    #[test]
    fn quick_resnet_has_all_classes() {
        let net = quick_resnet();
        assert!(net.count_of_class(LayerClass::Conv) > 5);
        assert!(net.count_of_class(LayerClass::ResAdd) >= 6);
        assert_eq!(net.count_of_class(LayerClass::Matmul), 1);
        assert!(net.total_macs() < 200_000_000);
    }

    #[test]
    fn forwarded_args_strip_only_sharding_flags() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            forwarded_args(args(&[
                "--quick",
                "--shards",
                "4",
                "--json",
                "out.jsonl",
                "--resume"
            ])),
            args(&["--quick", "--json", "out.jsonl"])
        );
        assert_eq!(
            forwarded_args(args(&["--shard", "1/2", "--only", "resnet"])),
            args(&["--only", "resnet"])
        );
        assert_eq!(
            forwarded_args(args(&["--merge", "a.jsonl", "b.jsonl", "--quick"])),
            args(&["--quick"])
        );
        // Telemetry flags forward unchanged: each child derives its own
        // per-shard status/metrics paths from the base paths.
        assert_eq!(
            forwarded_args(args(&[
                "--shards",
                "2",
                "--status",
                "status.json",
                "--metrics",
                "metrics.prom"
            ])),
            args(&["--status", "status.json", "--metrics", "metrics.prom"])
        );
    }

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(10.0, 10.0, 10), "##########");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
