//! Push-button runner for network description files — the user-facing
//! entry point of the "ONNX" flow:
//!
//! ```sh
//! cargo run --release -p gemmini-bench --bin run_gnn -- models/lenet.gnn
//! cargo run --release -p gemmini-bench --bin run_gnn -- models/lenet.gnn --cores 2 --functional
//! ```

use gemmini_bench::arg_value;
use gemmini_dnn::loader::parse_network;
use gemmini_soc::run::{run_networks, RunOptions};
use gemmini_soc::soc::SocConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: run_gnn <model.gnn> [--cores N] [--functional]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let net = match parse_network(&text) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cores: usize = arg_value("--cores")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let functional = std::env::args().any(|a| a == "--functional");

    println!(
        "{}: {} layers, {:.2} GMACs, {} core(s), {} mode",
        net.name(),
        net.len(),
        net.total_macs() as f64 / 1e9,
        cores,
        if functional { "functional" } else { "timing" }
    );

    let cfg = if cores == 1 {
        SocConfig::edge_single_core()
    } else {
        SocConfig {
            cores: vec![gemmini_soc::soc::CoreConfig::edge(); cores],
            ..SocConfig::edge_single_core()
        }
    };
    let opts = if functional {
        RunOptions::functional()
    } else {
        RunOptions::timing()
    };
    let report = match run_networks(&cfg, &vec![net; cores], &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simulation error: {e}");
            return ExitCode::FAILURE;
        }
    };

    for (idx, core) in report.cores.iter().enumerate() {
        println!(
            "\ncore {idx}: {} cycles ({:.2} ms @1GHz, {:.1} inf/s)",
            core.total_cycles,
            core.total_cycles as f64 / 1e6,
            core.fps(1.0),
        );
        println!(
            "  dma {:.2} MB in / {:.2} MB out | tlb {:.1}% private hits, {} walks",
            core.dma.bytes_in as f64 / 1e6,
            core.dma.bytes_out as f64 / 1e6,
            core.translation.private_hit_rate * 100.0,
            core.translation.walks
        );
        for l in &core.layers {
            println!(
                "  {:<20} {:<7} {:>10} cycles ({:>4.1}%)",
                l.name,
                l.class.to_string(),
                l.cycles,
                100.0 * l.cycles as f64 / core.total_cycles as f64
            );
        }
        if let Some(out) = &core.output {
            let preview: Vec<i8> = out.iter().take(16).copied().collect();
            println!("  output[..16] = {preview:?}");
        }
    }
    println!(
        "\nshared L2: {:.1}% miss rate | DRAM: {:.2} MB",
        report.l2.miss_rate * 100.0,
        report.dram_bytes as f64 / 1e6
    );
    ExitCode::SUCCESS
}
