//! Regenerates Fig. 6: the area breakdown table (6a) and a layout sketch
//! (6b) for the paper's edge configuration — 16×16 array, 256 KiB
//! scratchpad, 64 KiB accumulator, Rocket host — in the calibrated
//! Intel-22FFL analytical model.
//!
//! Paper numbers to hold: spatial array 11.3%, scratchpad 52.9%,
//! accumulator 14.2%, CPU 16.6%, total ≈1,029 kµm²; SRAMs ≈67.1%.

use gemmini_bench::figures::fig6_json;
use gemmini_bench::{json_path, section, write_json_doc};
use gemmini_core::config::GemminiConfig;
use gemmini_synth::area::{soc_area, CpuKind};
use gemmini_synth::floorplan::Floorplan;
use gemmini_synth::report::area_table;

fn main() {
    let cfg = GemminiConfig::edge();
    let report = soc_area(&cfg, CpuKind::Rocket);

    section("Fig. 6a: area breakdown (Intel 22FFL-calibrated model)");
    print!("{}", area_table(&report));
    println!(
        "\nSRAM share of system area: {:.1}% (paper: 67.1%)",
        report.sram_fraction() * 100.0
    );

    section("Fig. 6b: layout sketch (slicing floorplan)");
    let plan = Floorplan::from_area(&report);
    println!(
        "die: {:.0} x {:.0} um ({:.3} mm^2)",
        plan.die_w,
        plan.die_h,
        plan.die_w * plan.die_h / 1e6
    );
    print!("{}", plan.render(48, 16));
    for b in &plan.blocks {
        println!(
            "  {} = {} ({:.0} x {:.0} um)",
            b.name.chars().next().unwrap_or('?').to_ascii_uppercase(),
            b.name,
            b.w,
            b.h
        );
    }

    section("Sensitivity: BigSP and fp32 variants");
    for (name, cfg) in [
        (
            "BigSP (512 KiB sp / 512 KiB acc)",
            GemminiConfig {
                sp_capacity_kb: 512,
                acc_capacity_kb: 512,
                ..GemminiConfig::edge()
            },
        ),
        (
            "fp32 datapath",
            GemminiConfig {
                dtype: gemmini_core::config::DataType::Fp32,
                ..GemminiConfig::edge()
            },
        ),
    ] {
        let r = soc_area(&cfg, CpuKind::Rocket);
        println!("{name}: total {:.0} kum2", r.total_um2() / 1000.0);
    }

    if let Some(path) = json_path() {
        write_json_doc(&path, &fig6_json());
        eprintln!("fig6: wrote {}", path.display());
    }
}
