//! Regenerates Fig. 8: ResNet50 performance across private / shared-L2 TLB
//! sizes, (a) without and (b) with the filter registers, plus the Section
//! V-A headline statistics.
//!
//! Paper shapes to hold:
//! * private TLB size dominates: 4→16 entries buys up to ~11%, while even
//!   512 shared-L2-TLB entries never buy more than ~8%;
//! * with filter registers, a 4-entry private TLB and **no** L2 TLB lands
//!   within ~2% of the best configuration observed;
//! * effective hit rate (incl. filters) ≈90%; consecutive same-page rates
//!   ≈87% (reads) / ≈83% (writes).

//!
//! `--json <path>` persists every design point as one JSON line (the
//! sweep checkpoint format); `--resume` skips points already present in
//! that file — CI exercises exactly this interrupt/resume path.
//! `--shards N` runs the grid as N supervised worker processes (crashed
//! workers are retried from their shard checkpoints); `--shard i/N` runs
//! one worker's slice; `--merge <shard.jsonl>...` stitches existing shard
//! checkpoints without simulating. `--trace <path>` writes a Chrome
//! `trace_event` timeline of the first design point. `--prune` activates
//! attribution-guided pruning along the TLB axis (see
//! [`gemmini_bench::figures::fig8_prune_policy`]): shared-L2-TLB settings
//! whose `shared=0` basis is provably insensitive to the axis are skipped
//! and their reports predicted from the basis, with the evidence recorded
//! in the checkpoint.
//!
//! Robustness flags (shared by every sweep binary): `--watchdog <secs>`
//! has the `--shards` supervisor kill and retry a worker whose heartbeat
//! stops advancing; `--point-timeout <secs>` records a wedged point as a
//! first-class `failed:timeout` checkpoint entry and finishes the sweep
//! with a failure summary and exit 3 instead of hanging; `--faults
//! <schedule>` arms the deterministic fault-injection registry
//! ([`gemmini_soc::fault`]) for chaos testing.

use gemmini_bench::figures::{
    fig8_grid, fig8_points, fig8_prune_policy, FIG8_PRIVATES, FIG8_SHAREDS,
};
use gemmini_bench::{export_trace_run, resnet_workload, section, sharded_sweep_with, trace_path};
use gemmini_soc::sweep::merge_memory_stats;

struct Point {
    private: u32,
    shared: u32,
    filters: bool,
    cycles: u64,
    eff_hit: f64,
    rd_same: f64,
    wr_same: f64,
}

fn main() {
    let net = resnet_workload();
    let privates = FIG8_PRIVATES;
    let shareds = FIG8_SHAREDS;
    let grid = fig8_grid();
    let sweep = fig8_points(&net);

    let trace_point = trace_path().map(|path| (path, sweep[0].clone()));
    let Some(results) = sharded_sweep_with(sweep, Some(fig8_prune_policy())) else {
        return; // shard worker: the checkpoint file is the output
    };
    if let Some((path, point)) = trace_point {
        export_trace_run(&path, &point.label, &point.config, &point.networks);
    }
    let rollup = merge_memory_stats(results.iter().filter_map(|r| r.ok()));
    let points: Vec<Point> = grid
        .iter()
        .zip(&results)
        .map(|(&(private, shared, filters), r)| {
            let c = &r.expect_ok().cores[0];
            Point {
                private,
                shared,
                filters,
                cycles: c.total_cycles,
                eff_hit: c.translation.effective_hit_rate,
                rd_same: c.translation.consecutive_read_same_page,
                wr_same: c.translation.consecutive_write_same_page,
            }
        })
        .collect();
    eprintln!(
        "sweep totals: {} points, L2 {} accesses ({:.1}% miss), DRAM {:.1} MB",
        rollup.reports,
        rollup.l2.accesses(),
        rollup.l2.miss_rate() * 100.0,
        rollup.dram.total_bytes() as f64 / 1e6
    );
    let best = points.iter().map(|p| p.cycles).min().expect("points exist") as f64;

    for &filters in &[false, true] {
        section(&format!(
            "Fig. 8{}: normalized performance ({} filter registers)",
            if filters { "b" } else { "a" },
            if filters { "with" } else { "without" }
        ));
        print!("{:>14}", "private\\shared");
        for s in shareds {
            print!(" {s:>8}");
        }
        println!();
        for p in privates {
            print!("{p:>14}");
            for s in shareds {
                let pt = points
                    .iter()
                    .find(|x| x.private == p && x.shared == s && x.filters == filters)
                    .expect("swept");
                print!(" {:>8.3}", best / pt.cycles as f64);
            }
            println!();
        }
    }

    section("Section V-A headline checks");
    let tiny_no_l2 = points
        .iter()
        .find(|x| x.private == 4 && x.shared == 0 && x.filters)
        .expect("swept");
    println!(
        "4-entry private + filter registers + NO L2 TLB: {:.1}% of best (paper: within ~2%)",
        100.0 * best / tiny_no_l2.cycles as f64
    );
    println!(
        "effective hit rate incl. filters: {:.1}% (paper: ~90%)",
        tiny_no_l2.eff_hit * 100.0
    );
    println!(
        "consecutive same-page: reads {:.1}% / writes {:.1}% (paper: 87% / 83%)",
        tiny_no_l2.rd_same * 100.0,
        tiny_no_l2.wr_same * 100.0
    );

    // Private vs shared sensitivity (no filters).
    let base = points
        .iter()
        .find(|x| x.private == 4 && x.shared == 0 && !x.filters)
        .expect("swept");
    let grow_private = points
        .iter()
        .find(|x| x.private == 16 && x.shared == 0 && !x.filters)
        .expect("swept");
    let grow_shared = points
        .iter()
        .find(|x| x.private == 4 && x.shared == 512 && !x.filters)
        .expect("swept");
    println!(
        "growing private 4->16: +{:.1}% (paper: up to ~11%); adding 512-entry L2 TLB: +{:.1}% (paper: <8%)",
        100.0 * (base.cycles as f64 / grow_private.cycles as f64 - 1.0),
        100.0 * (base.cycles as f64 / grow_shared.cycles as f64 - 1.0),
    );
}
