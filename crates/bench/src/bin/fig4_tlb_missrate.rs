//! Regenerates Fig. 4: "TLB miss rate over a full ResNet50 inference,
//! profiled on a Gemmini-generated accelerator".
//!
//! Paper shape to hold: the private-TLB miss rate over time spikes to
//! 20–30% around layer transitions (tiled workloads touch fresh pages in
//! bursts), orders of magnitude above classic CPU workload TLB miss rates.

use gemmini_bench::{bar, quick_mode, resnet_workload, section};
use gemmini_soc::run::{run_networks, RunOptions};
use gemmini_soc::soc::SocConfig;

fn main() {
    let net = resnet_workload();
    let mut cfg = SocConfig::edge_single_core();
    // Fig. 4 profiles the small private TLB of the edge co-design study.
    cfg.cores[0].translation.private.entries = 4;
    cfg.cores[0].translation.stats_window = if quick_mode() { 20_000 } else { 200_000 };

    section(&format!(
        "Fig. 4: TLB miss rate over a full {} inference",
        net.name()
    ));
    let report = run_networks(&cfg, &[net], &RunOptions::timing()).expect("run succeeds");
    let core = &report.cores[0];
    let t = &core.translation;

    println!(
        "total: {} cycles, {} TLB requests, {} walks, private hit rate {:.1}%",
        core.total_cycles,
        t.requests,
        t.walks,
        t.private_hit_rate * 100.0
    );
    println!(
        "consecutive same-page: reads {:.1}% writes {:.1}% (paper: 87% / 83%)",
        t.consecutive_read_same_page * 100.0,
        t.consecutive_write_same_page * 100.0
    );

    let peak = t
        .miss_rate_series
        .iter()
        .map(|&(_, r)| r)
        .fold(0.0f64, f64::max);
    println!(
        "peak windowed miss rate: {:.1}% (paper: spikes of 20-30%)",
        peak * 100.0
    );

    section("miss-rate series (window start Mcycles | miss % | profile)");
    // Downsample to at most ~60 printed rows.
    let series = &t.miss_rate_series;
    let stride = (series.len() / 60).max(1);
    for chunk in series.chunks(stride) {
        let start = chunk[0].0;
        let rate = chunk.iter().map(|&(_, r)| r).fold(0.0f64, f64::max);
        println!(
            "{:>9.2} | {:>5.1}% | {}",
            start as f64 / 1e6,
            rate * 100.0,
            bar(rate, peak.max(1e-9), 50)
        );
    }
}
