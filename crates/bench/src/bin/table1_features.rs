//! Regenerates Table I: the qualitative feature comparison of DNN
//! accelerator generators. (The table is documentation-level; it is printed
//! here so the benchmark harness covers every table in the paper, and the
//! Gemmini column is cross-checked against what this reproduction actually
//! implements.)

use gemmini_bench::section;
use gemmini_core::config::GemminiConfig;

fn main() {
    section("Table I: Comparison of DNN accelerator generators");
    let rows = [
        (
            "Property",
            "NVDLA",
            "VTA",
            "PolySA",
            "DNNBuilder",
            "MAGNet",
            "DNNWeaver",
            "MAERI",
            "Gemmini",
        ),
        (
            "Datatypes",
            "Int/Float",
            "Int",
            "Int",
            "Int",
            "Int",
            "Int",
            "Int",
            "Int/Float",
        ),
        (
            "Dataflows",
            "fixed",
            "fixed",
            "fixed",
            "fixed",
            "flex",
            "fixed",
            "flex",
            "WS+OS",
        ),
        (
            "Spatial array",
            "vector",
            "vector",
            "systolic",
            "systolic",
            "vector",
            "vector",
            "vector",
            "vector+systolic",
        ),
        (
            "Direct conv",
            "yes",
            "no",
            "no",
            "yes",
            "yes",
            "yes",
            "yes",
            "yes",
        ),
        (
            "Software", "Compiler", "TVM", "SDAccel", "Caffe", "C", "Caffe", "Custom", "ONNX/C",
        ),
        (
            "Virtual memory",
            "no",
            "no",
            "no",
            "no",
            "no",
            "no",
            "no",
            "YES",
        ),
        ("Full SoC", "no", "no", "no", "no", "no", "no", "no", "YES"),
        (
            "OS support",
            "yes",
            "yes",
            "no",
            "no",
            "no",
            "no",
            "no",
            "YES",
        ),
    ];
    for r in rows {
        println!(
            "{:<16}{:<11}{:<9}{:<10}{:<12}{:<9}{:<11}{:<9}{}",
            r.0, r.1, r.2, r.3, r.4, r.5, r.6, r.7, r.8
        );
    }

    section("Cross-check: what this reproduction's Gemmini column rests on");
    let cfg = GemminiConfig::edge();
    println!(
        "- Datatypes: int8 (functional+timing) and fp32 (timing/area) — DataType in config: {:?}",
        cfg.dtype
    );
    println!(
        "- Dataflows: design-time+runtime selectable — {:?}",
        cfg.dataflow
    );
    println!(
        "- Spatial array: two-level mesh/tile template covers systolic (tile 1x1) and vector (mesh 1x1): {}x{} mesh of {}x{} tiles",
        cfg.mesh_rows, cfg.mesh_cols, cfg.tile_rows, cfg.tile_cols
    );
    println!(
        "- Direct convolution: on-the-fly im2col block = {}",
        cfg.has_im2col
    );
    println!("- Software: textual network format (ONNX stand-in) + low-level kernel API");
    println!("- Virtual memory: private TLB + shared L2 TLB + PTW + filter registers (gemmini-vm)");
    println!("- Full SoC: multi-core, shared L2/DRAM (gemmini-soc)");
    println!("- OS support: context-switch/TLB-flush injection (gemmini-soc::os)");
    println!(
        "\nGenerated header for the software stack:\n{}",
        cfg.header()
    );
}
