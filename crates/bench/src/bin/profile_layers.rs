//! Per-layer profiler: runs one zoo network (timing mode) and prints every
//! layer that contributes ≥1% of total cycles — the tool used to find
//! bottlenecks while calibrating this reproduction.
//!
//! ```sh
//! cargo run --release -p gemmini-bench --bin profile_layers -- resnet50
//! ```

use gemmini_soc::run::{run_networks, RunOptions};
use gemmini_soc::soc::SocConfig;
use std::process::ExitCode;

fn main() -> ExitCode {
    let name = std::env::args().nth(1).unwrap_or_else(|| "resnet50".into());
    let Some(net) = gemmini_dnn::zoo::all()
        .into_iter()
        .find(|n| n.name().contains(&name))
    else {
        eprintln!(
            "unknown network `{name}`; available: {}",
            gemmini_dnn::zoo::all()
                .iter()
                .map(|n| n.name().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::FAILURE;
    };

    let report = run_networks(
        &SocConfig::edge_single_core(),
        &[net],
        &RunOptions::timing(),
    )
    .expect("simulation succeeds");
    let core = &report.cores[0];

    println!(
        "{}: {} cycles total, {} MACs ({:.1}% of peak at 256 MACs/cycle)",
        core.network,
        core.total_cycles,
        core.macs,
        100.0 * core.macs as f64 / (core.total_cycles as f64 * 256.0)
    );
    println!("layers contributing >= 1% of total:");
    for l in &core.layers {
        if l.cycles * 100 >= core.total_cycles {
            println!(
                "  {:<22} {:<7} {:>12} cycles ({:>4.1}%)",
                l.name,
                l.class.to_string(),
                l.cycles,
                100.0 * l.cycles as f64 / core.total_cycles as f64
            );
        }
    }
    ExitCode::SUCCESS
}
