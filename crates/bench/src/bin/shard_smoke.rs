//! Deterministic micro-sweep for exercising the sharded executor end to
//! end without paying for real simulations: eight labelled points whose
//! payloads are a pure integer-mixing function of their index, driven
//! through exactly the same CLI as the figure binaries (`--json`,
//! `--resume`, `--shards N`, `--shard i/N`, `--merge <shard.jsonl>...`).
//!
//! The shard end-to-end tests (`tests/shard_e2e.rs`) and anyone smoke
//! testing the supervisor by hand use this: a full 2-shard supervised
//! run with a crash and retry finishes in well under a second.
//!
//! Robustness flags (shared by every sweep binary): `--watchdog <secs>`
//! has the `--shards` supervisor kill and retry a worker whose heartbeat
//! stops advancing; `--point-timeout <secs>` records a wedged point as a
//! first-class `failed:timeout` checkpoint entry and finishes the sweep
//! with a failure summary and exit 3 instead of hanging; `--faults
//! <schedule>` arms the deterministic fault-injection registry
//! ([`gemmini_soc::fault`]) for chaos testing.

use gemmini_bench::{section, sharded_sweep_map};
use gemmini_soc::checkpoint::debug_fingerprint;

/// A pure, platform-independent integer mix (splitmix64 finalizer): the
/// payload depends only on the point index, so any two runs — sharded,
/// serial, resumed, merged — must agree exactly.
fn mix(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn main() {
    let points: Vec<(String, u64, u64)> = (0..8u64)
        .map(|i| (format!("point{i}"), debug_fingerprint(&i), i))
        .collect();
    let Some(results) = sharded_sweep_map(points, |i| Ok(mix(i))) else {
        return; // shard worker: the checkpoint file is the output
    };
    section("shard smoke payloads");
    for r in &results {
        println!("{} {}", r.label, r.expect_ok());
    }
}
