//! Energy ablation (extension beyond the paper's figures): per-inference
//! energy and TOPS/W for each evaluated network and for the Fig. 3 spatial
//! array extremes, combining the simulator's activity counters with the
//! synthesis model's energy constants.

use gemmini_bench::{quick_mode, quick_resnet, section};
use gemmini_dnn::zoo;
use gemmini_soc::run::{run_networks, RunOptions};
use gemmini_soc::soc::SocConfig;
use gemmini_synth::energy::{inference_energy, RunActivity};
use gemmini_synth::timing::fmax_ghz;

fn main() {
    let nets = if quick_mode() {
        vec![quick_resnet()]
    } else {
        zoo::all()
    };

    section("Per-inference energy on the edge configuration (1 GHz)");
    println!(
        "{:<18} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "network", "cycles", "mac uJ", "sram uJ", "dram uJ", "leak uJ", "total mJ", "TOPS/W"
    );
    for net in &nets {
        eprintln!("running {} ...", net.name());
        let cfg = SocConfig::edge_single_core();
        let report =
            run_networks(&cfg, std::slice::from_ref(net), &RunOptions::timing()).expect("runs");
        let core = &report.cores[0];
        let accel = &cfg.cores[0].accel;
        let activity = RunActivity {
            macs: core.macs,
            local_bytes: core.dma.bytes_in + core.dma.bytes_out,
            dram_bytes: report.dram_bytes,
            cycles: core.total_cycles,
        };
        let e = inference_energy(accel, activity, accel.clock_ghz);
        println!(
            "{:<18} {:>10} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.3} {:>8.2}",
            net.name(),
            core.total_cycles,
            e.mac_uj,
            e.sram_uj,
            e.dram_uj,
            e.leakage_uj,
            e.total_uj() / 1000.0,
            e.tops_per_watt(core.macs, core.total_cycles, accel.clock_ghz),
        );
    }

    section("Fig. 3 extremes at their own fmax: energy per ResNet-style inference");
    let net = if quick_mode() {
        quick_resnet()
    } else {
        zoo::resnet50()
    };
    for (name, accel) in [
        (
            "TPU-like (pipelined)",
            gemmini_core::config::GemminiConfig::tpu_like_256(),
        ),
        (
            "NVDLA-like (combinational)",
            gemmini_core::config::GemminiConfig::nvdla_like_256(),
        ),
    ] {
        let clock = fmax_ghz(&accel);
        let mut cfg = SocConfig::edge_single_core();
        cfg.cores[0].accel = accel.clone();
        let report =
            run_networks(&cfg, std::slice::from_ref(&net), &RunOptions::timing()).expect("runs");
        let core = &report.cores[0];
        let activity = RunActivity {
            macs: core.macs,
            local_bytes: core.dma.bytes_in + core.dma.bytes_out,
            dram_bytes: report.dram_bytes,
            cycles: core.total_cycles,
        };
        let e = inference_energy(&accel, activity, clock);
        println!(
            "{name}: {:.2} GHz, {:.1} ms/inf, {:.2} mJ/inf, {:.2} TOPS/W",
            clock,
            core.total_cycles as f64 / (clock * 1e9) * 1e3,
            e.total_uj() / 1000.0,
            e.tops_per_watt(core.macs, core.total_cycles, clock)
        );
    }
    println!("\nThe vector design trades latency (lower clock) for energy (no");
    println!("pipeline registers); the energy gap is smaller than the power gap");
    println!("because the run also takes longer, accruing leakage.");
}
