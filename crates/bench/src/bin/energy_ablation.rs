//! Energy ablation (extension beyond the paper's figures): per-inference
//! energy and TOPS/W for each evaluated network and for the Fig. 3 spatial
//! array extremes, combining the simulator's activity counters with the
//! synthesis model's energy constants.
//!
//! Shares the sweep CLI: `--json` / `--resume` checkpointing, and
//! `--shards N` / `--shard i/N` / `--merge <shard.jsonl>...` for
//! supervised multi-process execution. `--prune` is accepted but inert
//! (no axis-insensitivity rule covers a network sweep). `--trace <path>`
//! exports a Chrome `trace_event` JSON of the ResNet-style workload on
//! the edge configuration.
//!
//! Robustness flags (shared by every sweep binary): `--watchdog <secs>`
//! has the `--shards` supervisor kill and retry a worker whose heartbeat
//! stops advancing; `--point-timeout <secs>` records a wedged point as a
//! first-class `failed:timeout` checkpoint entry and finishes the sweep
//! with a failure summary and exit 3 instead of hanging; `--faults
//! <schedule>` arms the deterministic fault-injection registry
//! ([`gemmini_soc::fault`]) for chaos testing.

use gemmini_bench::{
    export_trace_run, quick_mode, quick_resnet, resnet_workload, section, sharded_sweep, trace_path,
};
use gemmini_dnn::zoo;
use gemmini_soc::run::{CoreReport, SocReport};
use gemmini_soc::sweep::DesignPoint;
use gemmini_soc::SocConfig;
use gemmini_synth::energy::{inference_energy, RunActivity};
use gemmini_synth::timing::fmax_ghz;

fn activity(report: &SocReport, core: &CoreReport) -> RunActivity {
    RunActivity {
        macs: core.macs,
        local_bytes: core.dma.bytes_in + core.dma.bytes_out,
        dram_bytes: report.dram_bytes,
        cycles: core.total_cycles,
    }
}

fn main() {
    let nets = if quick_mode() {
        vec![quick_resnet()]
    } else {
        zoo::all()
    };
    let extreme_net = resnet_workload();
    let extremes = [
        (
            "TPU-like (pipelined)",
            gemmini_core::config::GemminiConfig::tpu_like_256(),
        ),
        (
            "NVDLA-like (combinational)",
            gemmini_core::config::GemminiConfig::nvdla_like_256(),
        ),
    ];

    // One sweep: every network on the edge configuration, then the two
    // Fig. 3 spatial-array extremes on the ResNet-style network.
    let mut sweep: Vec<DesignPoint> = nets
        .iter()
        .map(|net| DesignPoint::timing(net.name(), SocConfig::edge_single_core(), net))
        .collect();
    for (name, accel) in &extremes {
        let mut cfg = SocConfig::edge_single_core();
        cfg.cores[0].accel = accel.clone();
        sweep.push(DesignPoint::timing(*name, cfg, &extreme_net));
    }
    let Some(results) = sharded_sweep(sweep) else {
        return; // shard worker: the checkpoint file is the output
    };

    if let Some(path) = trace_path() {
        export_trace_run(
            &path,
            extreme_net.name(),
            &SocConfig::edge_single_core(),
            std::slice::from_ref(&extreme_net),
        );
    }

    section("Per-inference energy on the edge configuration (1 GHz)");
    println!(
        "{:<18} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "network", "cycles", "mac uJ", "sram uJ", "dram uJ", "leak uJ", "total mJ", "TOPS/W"
    );
    let edge_accel = &SocConfig::edge_single_core().cores[0].accel.clone();
    for (net, r) in nets.iter().zip(&results) {
        let report = r.expect_ok();
        let core = &report.cores[0];
        let e = inference_energy(edge_accel, activity(report, core), edge_accel.clock_ghz);
        println!(
            "{:<18} {:>10} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.3} {:>8.2}",
            net.name(),
            core.total_cycles,
            e.mac_uj,
            e.sram_uj,
            e.dram_uj,
            e.leakage_uj,
            e.total_uj() / 1000.0,
            e.tops_per_watt(core.macs, core.total_cycles, edge_accel.clock_ghz),
        );
    }

    section("Fig. 3 extremes at their own fmax: energy per ResNet-style inference");
    for ((name, accel), r) in extremes.iter().zip(&results[nets.len()..]) {
        let clock = fmax_ghz(accel);
        let report = r.expect_ok();
        let core = &report.cores[0];
        let e = inference_energy(accel, activity(report, core), clock);
        println!(
            "{name}: {:.2} GHz, {:.1} ms/inf, {:.2} mJ/inf, {:.2} TOPS/W",
            clock,
            core.total_cycles as f64 / (clock * 1e9) * 1e3,
            e.total_uj() / 1000.0,
            e.tops_per_watt(core.macs, core.total_cycles, clock)
        );
    }
    println!("\nThe vector design trades latency (lower clock) for energy (no");
    println!("pipeline registers); the energy gap is smaller than the power gap");
    println!("because the run also takes longer, accruing leakage.");
}
