//! Regenerates Fig. 7: end-to-end speedup of Gemmini-generated accelerators
//! over an in-order CPU baseline, for five DNNs, two host CPUs and two
//! accelerator variants (with / without the on-the-fly im2col block).
//!
//! Paper shapes to hold:
//! * ResNet50 ≈2,670× over Rocket / ≈1,130× over BOOM (22.8 FPS @1 GHz);
//! * AlexNet ≈79 FPS; MobileNetV2 only ≈127× (depthwise layers map badly);
//!   SqueezeNet ≈1,760×; BERT ≈144×;
//! * without the im2col block, a BOOM host roughly doubles CNN performance
//!   over a Rocket host; with it, the host choice barely matters.
//!
//! `--json <path>` persists every design point as one JSON line (the
//! sweep checkpoint format); `--resume` skips points already in that
//! file; `--shards N` / `--shard i/N` / `--merge <shard.jsonl>...` run
//! the sweep as supervised multi-process shards; `--trace <path>` writes
//! a Chrome `trace_event` JSON timeline of the first design point.
//! `--prune` is accepted but inert: this grid sweeps hosts and
//! accelerator variants, for which no axis-insensitivity rule exists, so
//! every point always runs. `tests/golden_figures.rs` guards the
//! quick-mode numbers.
//!
//! Robustness flags (shared by every sweep binary): `--watchdog <secs>`
//! has the `--shards` supervisor kill and retry a worker whose heartbeat
//! stops advancing; `--point-timeout <secs>` records a wedged point as a
//! first-class `failed:timeout` checkpoint entry and finishes the sweep
//! with a failure summary and exit 3 instead of hanging; `--faults
//! <schedule>` arms the deterministic fault-injection registry
//! ([`gemmini_soc::fault`]) for chaos testing.

use gemmini_bench::figures::{fig7_points, FIG7_VARIANTS};
use gemmini_bench::{
    arg_value, export_trace_run, quick_mode, quick_resnet, section, sharded_sweep, trace_path,
};
use gemmini_cpu::kernels::network_cpu_cycles;
use gemmini_cpu::{CpuKind, CpuModel};
use gemmini_dnn::graph::Network;
use gemmini_dnn::zoo;

struct Row {
    net: String,
    rocket_baseline: u64,
    boom_baseline: u64,
    accel: Vec<(String, u64)>, // (variant, cycles)
}

fn main() {
    let nets: Vec<Network> = if quick_mode() {
        vec![quick_resnet(), zoo::tiny_cnn()]
    } else if let Some(name) = arg_value("--only") {
        zoo::all()
            .into_iter()
            .filter(|n| n.name().contains(&name))
            .collect()
    } else {
        zoo::all()
    };

    let rocket = CpuModel::new(CpuKind::Rocket);
    let boom = CpuModel::new(CpuKind::Boom);
    let clock = 1.0; // GHz, as in the paper's FPS numbers

    // One sweep point per (network, variant), in row-major order.
    let Some(results) = sharded_sweep(fig7_points(&nets)) else {
        return; // shard worker: the checkpoint file is the output
    };

    if let Some(path) = trace_path() {
        let point = fig7_points(&nets)
            .into_iter()
            .next()
            .expect("fig7 has at least one point");
        export_trace_run(&path, &point.label, &point.config, &point.networks);
    }

    let rows: Vec<Row> = nets
        .iter()
        .zip(results.chunks(FIG7_VARIANTS.len()))
        .map(|(net, chunk)| Row {
            net: net.name().to_string(),
            rocket_baseline: network_cpu_cycles(&rocket, net),
            boom_baseline: network_cpu_cycles(&boom, net),
            accel: FIG7_VARIANTS
                .iter()
                .zip(chunk)
                .map(|(&(label, _, _), r)| (label.to_string(), r.expect_ok().cores[0].total_cycles))
                .collect(),
        })
        .collect();

    section("Fig. 7: speedup over the in-order (Rocket) CPU baseline");
    for r in &rows {
        println!();
        println!(
            "{}  (Rocket baseline {:.2} Gcycles, BOOM baseline {:.2} Gcycles)",
            r.net,
            r.rocket_baseline as f64 / 1e9,
            r.boom_baseline as f64 / 1e9
        );
        for (name, cycles) in &r.accel {
            let speedup_rocket = r.rocket_baseline as f64 / *cycles as f64;
            let speedup_boom = r.boom_baseline as f64 / *cycles as f64;
            let fps = clock * 1e9 / *cycles as f64;
            println!(
                "  {:<30} {:>12} cycles  {:>8.1} FPS  {:>8.0}x vs Rocket  {:>7.0}x vs BOOM",
                name, cycles, fps, speedup_rocket, speedup_boom
            );
        }
        // The paper's host-CPU observation.
        let no_unit_rocket = r.accel[0].1 as f64;
        let no_unit_boom = r.accel[1].1 as f64;
        let unit_rocket = r.accel[2].1 as f64;
        let unit_boom = r.accel[3].1 as f64;
        println!(
            "  host-CPU effect: {:.2}x without im2col unit, {:.2}x with (paper: ~2.0x -> ~1x)",
            no_unit_rocket / no_unit_boom,
            unit_rocket / unit_boom
        );
    }

    section("Paper anchors (full runs only)");
    println!("ResNet50: 2,670x vs Rocket / 1,130x vs BOOM / 22.8 FPS (accel im2col, Rocket host)");
    println!("AlexNet: 79.3 FPS; MobileNetV2: 127x, 18.7 FPS; SqueezeNet: 1,760x; BERT: 144x");
}
