//! Regenerates Fig. 9: the system-level memory-partitioning case study.
//! Three SoC configurations (Base / BigSP / BigL2, Fig. 9a) × single- and
//! dual-core, running ResNet50 per core; performance reported per layer
//! class and overall, normalized to Base.
//!
//! Paper shapes to hold:
//! * single-core: BigSP wins overall (conv ≈+10%, matmul ≈+1%, residual
//!   adds flat-to-slightly-worse);
//! * dual-core: BigL2 wins overall (≈+8.0% vs BigSP's ≈+4.2%) because each
//!   core's residual additions evict the other's data from the shared L2
//!   (resadd ≈+22% on BigL2; L2 miss rate drops ≈7 points).
//!
//! Shares the sweep CLI: `--json` / `--resume` checkpointing, and
//! `--shards N` / `--shard i/N` / `--merge <shard.jsonl>...` for
//! supervised multi-process execution. `--prune` attaches the
//! memory-partition axis rule per core count (basis: Base); since the
//! whole point of this figure is that repartitioning moves DRAM and L2
//! behaviour, the rule should (correctly) refuse to prune anything — the
//! flag here demonstrates the soundness gate, not a speedup.
//!
//! Robustness flags (shared by every sweep binary): `--watchdog <secs>`
//! has the `--shards` supervisor kill and retry a worker whose heartbeat
//! stops advancing; `--point-timeout <secs>` records a wedged point as a
//! first-class `failed:timeout` checkpoint entry and finishes the sweep
//! with a failure summary and exit 3 instead of hanging; `--faults
//! <schedule>` arms the deterministic fault-injection registry
//! ([`gemmini_soc::fault`]) for chaos testing.

use gemmini_bench::{export_trace_run, resnet_workload, section, sharded_sweep_with, trace_path};
use gemmini_dnn::graph::LayerClass;
use gemmini_mem::stats::SweepAxis;
use gemmini_soc::run::SocReport;
use gemmini_soc::sweep::{merge_memory_stats, DesignPoint};
use gemmini_soc::PrunePolicy;
use gemmini_soc::SocConfig;

struct Outcome {
    name: &'static str,
    report: SocReport,
}

fn class_cycles(o: &Outcome, class: LayerClass) -> f64 {
    o.report
        .cores
        .iter()
        .map(|c| c.class_cycles(class) as f64)
        .sum()
}

fn total_cycles(o: &Outcome) -> f64 {
    o.report
        .cores
        .iter()
        .map(|c| c.total_cycles as f64)
        .max_by(f64::total_cmp)
        .unwrap_or(0.0)
}

fn main() {
    let net = resnet_workload();

    section("Fig. 9a: resource-contention SoC configurations");
    println!("Base : 256 KB scratchpad + 256 KB accumulator per core, 1 MB L2");
    println!("BigSP: 512 KB scratchpad + 512 KB accumulator per core, 1 MB L2");
    println!("BigL2: 256 KB scratchpad + 256 KB accumulator per core, 2 MB L2");

    // All six (configuration, core-count) points run in one sweep.
    type ConfigMaker = fn(usize) -> SocConfig;
    let configs: [(&str, ConfigMaker); 3] = [
        ("Base", SocConfig::partition_base),
        ("BigSP", SocConfig::partition_big_sp),
        ("BigL2", SocConfig::partition_big_l2),
    ];
    let sweep = [1usize, 2]
        .iter()
        .flat_map(|&cores| configs.iter().map(move |&(name, make)| (cores, name, make)))
        .map(|(cores, name, make)| {
            DesignPoint::timing(format!("{name} x{cores}"), make(cores), &net)
        })
        .collect::<Vec<_>>();
    let mut policy = PrunePolicy::new(SweepAxis::MemoryPartition, 0.05);
    for cores in [1usize, 2] {
        policy = policy.group(
            format!("Base x{cores}"),
            ["BigSP", "BigL2"].map(|name| format!("{name} x{cores}")),
        );
    }
    let trace_point = trace_path().map(|path| (path, sweep[0].clone()));
    let Some(results) = sharded_sweep_with(sweep, Some(policy)) else {
        return; // shard worker: the checkpoint file is the output
    };
    if let Some((path, point)) = trace_point {
        export_trace_run(&path, &point.label, &point.config, &point.networks);
    }
    let rollup = merge_memory_stats(results.iter().filter_map(|r| r.ok()));
    eprintln!(
        "sweep totals: {} points, L2 {} accesses ({:.1}% miss), DRAM {:.1} MB",
        rollup.reports,
        rollup.l2.accesses(),
        rollup.l2.miss_rate() * 100.0,
        rollup.dram.total_bytes() as f64 / 1e6
    );

    for (i, cores) in [1usize, 2].into_iter().enumerate() {
        let outcomes: Vec<Outcome> = configs
            .iter()
            .zip(&results[i * configs.len()..(i + 1) * configs.len()])
            .map(|(&(name, _), r)| Outcome {
                name,
                report: r.expect_ok().clone(),
            })
            .collect();
        let base = &outcomes[0];

        section(&format!(
            "Fig. 9{}: {}-core performance normalized to Base",
            if cores == 1 { 'b' } else { 'c' },
            cores
        ));
        println!(
            "{:<8} {:>8} {:>8} {:>8} {:>8}   {:>10} {:>10}",
            "config", "conv", "matmul", "resadd", "overall", "L2 miss%", "DRAM MB"
        );
        for o in &outcomes {
            let speedup = |class| {
                let b = class_cycles(base, class);
                let v = class_cycles(o, class);
                if v == 0.0 {
                    1.0
                } else {
                    b / v
                }
            };
            println!(
                "{:<8} {:>8.3} {:>8.3} {:>8.3} {:>8.3}   {:>9.1}% {:>10.1}",
                o.name,
                speedup(LayerClass::Conv),
                speedup(LayerClass::Matmul),
                speedup(LayerClass::ResAdd),
                total_cycles(base) / total_cycles(o),
                o.report.l2.miss_rate * 100.0,
                o.report.dram_bytes as f64 / 1e6,
            );
        }
        if cores == 2 {
            let big_l2 = &outcomes[2];
            println!(
                "\nL2 miss-rate change Base -> BigL2: {:.1} -> {:.1} points (paper: -7.1 points)",
                base.report.l2.miss_rate * 100.0,
                big_l2.report.l2.miss_rate * 100.0
            );
        }
    }

    section("Paper anchors");
    println!("single-core: BigSP best (conv +10%, matmul +1%, resadd 0/-1-4%)");
    println!("dual-core: BigL2 best overall (+8.0% vs BigSP +4.2%; resadd +22%)");
}
