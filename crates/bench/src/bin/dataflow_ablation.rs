//! Dataflow ablation (a design choice the paper's template makes
//! runtime-selectable): weight-stationary vs output-stationary cycle counts
//! on single-tile-column GEMMs, programmed directly at the instruction
//! level.
//!
//! The trade: WS reuses the stationary B across tall A stripes but pays an
//! accumulator read-modify-write (and its pipeline drain) per K-slice; OS
//! keeps the output resident in the PEs across the whole K reduction but
//! must stream B every compute.
//!
//! Shares the sweep CLI: `--json` / `--resume` checkpointing, and
//! `--shards N` / `--shard i/N` / `--merge <shard.jsonl>...` for
//! supervised multi-process execution. `--prune` is accepted but inert
//! (the dataflow axis has no insensitivity rule — both dataflows always
//! simulate). `--trace <path>` re-runs one representative shape per
//! dataflow with a buffered tracer (WS on pid lane 0, OS on lane 1) and
//! exports the combined Chrome `trace_event` JSON.
//!
//! Robustness flags (shared by every sweep binary): `--watchdog <secs>`
//! has the `--shards` supervisor kill and retry a worker whose heartbeat
//! stops advancing; `--point-timeout <secs>` records a wedged point as a
//! first-class `failed:timeout` checkpoint entry and finishes the sweep
//! with a failure summary and exit 3 instead of hanging; `--faults
//! <schedule>` arms the deterministic fault-injection registry
//! ([`gemmini_soc::fault`]) for chaos testing.

use gemmini_bench::{section, sharded_sweep_map, trace_path};
use gemmini_soc::checkpoint::debug_fingerprint;

use gemmini_core::config::{Dataflow, GemminiConfig};
use gemmini_core::isa::{Instruction, LocalAddr};
use gemmini_core::trace::{export_chrome_trace, Tracer};
use gemmini_core::{Accelerator, MemCtx};
use gemmini_dnn::graph::Activation;
use gemmini_mem::addr::PAGE_SIZE;
use gemmini_mem::MemorySystem;
use gemmini_vm::page::FrameAllocator;
use gemmini_vm::page_table::AddressSpace;
use gemmini_vm::translator::{TranslationConfig, TranslationSystem};

/// Runs a (dim·mb) × (dim·kb) × dim GEMM column with the given dataflow,
/// timing-only; returns total cycles. `tracer` feeds the `--trace`
/// export and is the disabled (free) handle on sweep runs.
fn run(dataflow: Dataflow, mb: usize, kb: usize, tracer: Tracer) -> u64 {
    let cfg = GemminiConfig::edge();
    let dim = cfg.dim() as u16;
    let mut frames = FrameAllocator::new();
    let mut space = AddressSpace::new(&mut frames);
    let base = space.alloc(&mut frames, 4096 * PAGE_SIZE);
    let mut mem = MemorySystem::default();
    let mut translation = TranslationSystem::new(TranslationConfig::default());
    let mut accel = Accelerator::new(cfg);
    accel.set_tracer(tracer);
    let mut ctx = MemCtx {
        space: &space,
        translation: &mut translation,
        mem: &mut mem,
        data: None,
        port: 0,
    };

    let sp = |row: u32| LocalAddr::Sp { row };
    accel
        .issue(
            &mut ctx,
            Instruction::ConfigEx {
                dataflow,
                activation: Activation::None,
                acc_scale: 1.0,
            },
        )
        .expect("config");

    // Load A stripes (mb blocks) and B column (kb blocks).
    let a_base = 0u32;
    let b_base = (mb * kb) as u32 * dim as u32;
    for blk in 0..(mb * kb + kb) as u32 {
        accel
            .issue(
                &mut ctx,
                Instruction::Mvin {
                    dram_addr: base.add(blk as u64 * dim as u64 * dim as u64),
                    local: sp(blk * dim as u32),
                    rows: dim,
                    cols: dim,
                },
            )
            .expect("mvin");
    }

    match dataflow {
        Dataflow::OutputStationary => {
            // One armed output block per A stripe; stream all K slices.
            for ib in 0..mb as u32 {
                accel
                    .issue(
                        &mut ctx,
                        Instruction::Preload {
                            b: LocalAddr::None,
                            c: LocalAddr::Acc {
                                row: ib * dim as u32,
                                accumulate: false,
                            },
                            b_rows: 0,
                            b_cols: dim,
                        },
                    )
                    .expect("arm");
                for kbi in 0..kb as u32 {
                    accel
                        .issue(
                            &mut ctx,
                            Instruction::ComputePreloaded {
                                a: sp(a_base + (ib * kb as u32 + kbi) * dim as u32),
                                d: sp(b_base + kbi * dim as u32),
                                a_rows: dim,
                                a_cols: dim,
                            },
                        )
                        .expect("compute");
                }
            }
            accel.issue(&mut ctx, Instruction::Flush).expect("flush");
        }
        _ => {
            // Weight-stationary: per K slice, preload B once and stream all
            // A stripes against it, accumulating in the accumulator.
            for kbi in 0..kb as u32 {
                for ib in 0..mb as u32 {
                    let b_operand = if ib == 0 {
                        sp(b_base + kbi * dim as u32)
                    } else {
                        LocalAddr::None
                    };
                    accel
                        .issue(
                            &mut ctx,
                            Instruction::Preload {
                                b: b_operand,
                                c: LocalAddr::Acc {
                                    row: ib * dim as u32,
                                    accumulate: kbi > 0,
                                },
                                b_rows: if ib == 0 { dim } else { 0 },
                                b_cols: dim,
                            },
                        )
                        .expect("preload");
                    accel
                        .issue(
                            &mut ctx,
                            Instruction::ComputePreloaded {
                                a: sp(a_base + (ib * kb as u32 + kbi) * dim as u32),
                                d: LocalAddr::None,
                                a_rows: dim,
                                a_cols: dim,
                            },
                        )
                        .expect("compute");
                }
            }
        }
    }
    accel.stats().finish
}

fn main() {
    section("Dataflow ablation: WS vs OS, 16-wide GEMM columns (cycles)");
    println!(
        "{:>6} {:>6} {:>12} {:>12} {:>10}",
        "m blks", "k blks", "WS cycles", "OS cycles", "OS/WS"
    );
    let shapes = [(1usize, 16usize), (2, 8), (4, 4), (8, 2), (16, 1), (16, 16)];
    // One sweep task per (shape, dataflow), WS/OS adjacent per shape.
    // Each task carries its own fingerprint so `--json`/`--resume`
    // checkpointing can tell the points apart across restarts.
    let tasks = shapes
        .iter()
        .flat_map(|&(mb, kb)| {
            [Dataflow::WeightStationary, Dataflow::OutputStationary]
                .into_iter()
                .map(move |df| {
                    (
                        format!("{df:?} m={mb} k={kb}"),
                        debug_fingerprint(&(df, mb, kb)),
                        (df, mb, kb),
                    )
                })
        })
        .collect();
    let Some(results) = sharded_sweep_map(tasks, |(df, mb, kb)| {
        Ok(run(df, mb, kb, Tracer::disabled()))
    }) else {
        return; // shard worker: the checkpoint file is the output
    };
    for (&(mb, kb), pair) in shapes.iter().zip(results.chunks(2)) {
        let ws = *pair[0].expect_ok();
        let os = *pair[1].expect_ok();
        println!(
            "{:>6} {:>6} {:>12} {:>12} {:>10.3}",
            mb,
            kb,
            ws,
            os,
            os as f64 / ws as f64
        );
    }
    println!();
    println!("Deep-K shapes favor OS (one accumulator trip per output block);");
    println!("tall-M shapes favor WS (the stationary operand amortizes).");

    // --trace: both dataflows on the balanced 4×4 shape into one file,
    // each in its own pid lane so Perfetto shows them side by side.
    if let Some(path) = trace_path() {
        let (tracer, sink) = Tracer::buffered();
        run(Dataflow::WeightStationary, 4, 4, tracer.with_pid(0));
        run(Dataflow::OutputStationary, 4, 4, tracer.with_pid(1));
        let events = sink.lock().expect("trace sink lock").take();
        export_chrome_trace(&path, &events)
            .unwrap_or_else(|e| panic!("cannot write trace {}: {e}", path.display()));
        eprintln!(
            "trace: wrote {} events for 'WS/OS m=4 k=4' to {}",
            events.len(),
            path.display()
        );
    }
}
