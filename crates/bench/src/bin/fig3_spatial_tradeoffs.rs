//! Regenerates Fig. 3 / Section III-A: the systolic-vs-vector spatial-array
//! comparison at 256 PEs, plus the intermediate design points the paper
//! alludes to ("any other design points in between these two extremes").
//!
//! Paper claims to hold: the fully-pipelined (TPU-like) design achieves
//! ≈2.7× the fmax of the fully-combinational (NVDLA-like) design, at ≈1.8×
//! the area and ≈3.0× the power.

use gemmini_bench::section;
use gemmini_core::config::GemminiConfig;
use gemmini_synth::area::spatial_array_area_um2;
use gemmini_synth::power::spatial_array_power;
use gemmini_synth::timing::SpatialArrayTiming;

fn config_with_tile(tile: usize) -> GemminiConfig {
    GemminiConfig {
        mesh_rows: 16 / tile,
        mesh_cols: 16 / tile,
        tile_rows: tile,
        tile_cols: tile,
        ..GemminiConfig::edge()
    }
}

fn main() {
    section("Fig. 3: 256-PE spatial-array design space (16x16 total PEs)");
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>12}",
        "Design point", "fmax(GHz)", "area(kum2)", "power(mW)@1G", "chain depth"
    );
    let mut rows = Vec::new();
    for tile in [1usize, 2, 4, 8, 16] {
        let cfg = config_with_tile(tile);
        let t = SpatialArrayTiming::from_config(&cfg);
        let area = spatial_array_area_um2(&cfg) / 1000.0;
        let p = spatial_array_power(&cfg, 1.0, 1.0);
        let name = match tile {
            1 => "TPU-like (fully pipelined)".to_string(),
            16 => "NVDLA-like (combinational)".to_string(),
            _ => format!("hybrid ({tile}x{tile} tiles)"),
        };
        println!(
            "{:<28} {:>10.2} {:>10.1} {:>12.2} {:>12}",
            name,
            t.fmax_ghz,
            area,
            p.total_mw(),
            t.chain_depth
        );
        rows.push((tile, t.fmax_ghz, area, p.total_mw()));
    }

    let pipe = rows.first().expect("tile=1 present");
    let comb = rows.last().expect("tile=16 present");
    section("Headline ratios (paper: 2.7x fmax, 1.8x area, 3.0x power)");
    println!(
        "fmax ratio  (pipelined / combinational): {:.2}x",
        pipe.1 / comb.1
    );
    println!(
        "area ratio  (pipelined / combinational): {:.2}x",
        pipe.2 / comb.2
    );
    println!(
        "power ratio (pipelined / combinational): {:.2}x",
        pipe.3 / comb.3
    );

    section("Throughput-per-area at each design's own fmax");
    for (tile, fmax, area, _) in &rows {
        let peak_gmacs = 256.0 * fmax; // GMAC/s at fmax
        println!(
            "tile {tile:>2}: {:.0} GMAC/s peak, {:.2} GMAC/s per kum2",
            peak_gmacs,
            peak_gmacs / area
        );
    }
}
