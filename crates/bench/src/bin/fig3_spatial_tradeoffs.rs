//! Regenerates Fig. 3 / Section III-A: the systolic-vs-vector spatial-array
//! comparison at 256 PEs, plus the intermediate design points the paper
//! alludes to ("any other design points in between these two extremes").
//!
//! Paper claims to hold: the fully-pipelined (TPU-like) design achieves
//! ≈2.7× the fmax of the fully-combinational (NVDLA-like) design, at ≈1.8×
//! the area and ≈3.0× the power.
//!
//! `--json <path>` writes the same rows as a machine-readable document
//! (the exact document the golden regression test checks in).

use gemmini_bench::figures::{fig3_json, fig3_rows};
use gemmini_bench::{json_path, section, write_json_doc};

fn main() {
    let rows = fig3_rows();

    section("Fig. 3: 256-PE spatial-array design space (16x16 total PEs)");
    println!(
        "{:<28} {:>10} {:>10} {:>12} {:>12}",
        "Design point", "fmax(GHz)", "area(kum2)", "power(mW)@1G", "chain depth"
    );
    for r in &rows {
        println!(
            "{:<28} {:>10.2} {:>10.1} {:>12.2} {:>12}",
            r.name, r.fmax_ghz, r.area_kum2, r.power_mw, r.chain_depth
        );
    }

    let pipe = rows.first().expect("tile=1 present");
    let comb = rows.last().expect("tile=16 present");
    section("Headline ratios (paper: 2.7x fmax, 1.8x area, 3.0x power)");
    println!(
        "fmax ratio  (pipelined / combinational): {:.2}x",
        pipe.fmax_ghz / comb.fmax_ghz
    );
    println!(
        "area ratio  (pipelined / combinational): {:.2}x",
        pipe.area_kum2 / comb.area_kum2
    );
    println!(
        "power ratio (pipelined / combinational): {:.2}x",
        pipe.power_mw / comb.power_mw
    );

    section("Throughput-per-area at each design's own fmax");
    for r in &rows {
        let peak_gmacs = 256.0 * r.fmax_ghz; // GMAC/s at fmax
        println!(
            "tile {:>2}: {:.0} GMAC/s peak, {:.2} GMAC/s per kum2",
            r.tile,
            peak_gmacs,
            peak_gmacs / r.area_kum2
        );
    }

    if let Some(path) = json_path() {
        write_json_doc(&path, &fig3_json());
        eprintln!("fig3: wrote {}", path.display());
    }
}
