//! Property-based tests for the memory substrate's invariants.

use gemmini_mem::addr::{line_count, lines_in_range, pages_in_range, PhysAddr, VirtAddr};
use gemmini_mem::cache::{AccessKind, Cache, CacheConfig};
use gemmini_mem::dram::{DramConfig, DramModel, MainMemory};
use gemmini_mem::hierarchy::{MemorySystem, MemorySystemConfig};
use gemmini_mem::json::{FromJson, ToJson};
use gemmini_mem::metrics::{bucket_index, bucket_upper_bound, Log2Histogram, HIST_BUCKETS};
use gemmini_mem::stats::{CycleAttribution, HitMissStats, TrafficStats, WindowedRate};
use gemmini_mem::trace::{AttributionKind, AttributionLog};
use proptest::prelude::*;

/// Every attribution kind, in priority order (highest first) — mirrors
/// the declaration order the sweep-line partition charges by.
const ATTR_KINDS: [AttributionKind; 6] = [
    AttributionKind::Compute,
    AttributionKind::TlbStall,
    AttributionKind::BankConflict,
    AttributionKind::Dram,
    AttributionKind::Load,
    AttributionKind::Store,
];

/// The bucket counter a kind feeds, on a mutable attribution record.
fn attr_bucket(attr: &mut CycleAttribution, kind: AttributionKind) -> &mut u64 {
    match kind {
        AttributionKind::Compute => &mut attr.compute,
        AttributionKind::TlbStall => &mut attr.tlb_stall,
        AttributionKind::BankConflict => &mut attr.bank_conflict,
        AttributionKind::Dram => &mut attr.dram,
        AttributionKind::Load => &mut attr.load,
        AttributionKind::Store => &mut attr.store,
    }
}

/// Builds a windowed series by replaying `events` (cycle, hit) into a
/// fresh collector with the given window width.
fn windowed(window: u64, events: &[(u64, bool)]) -> WindowedRate {
    let mut w = WindowedRate::new(window);
    for &(cycle, hit) in events {
        w.record(cycle, hit);
    }
    w
}

/// Records every value into a fresh log2 histogram.
fn hist(values: &[u64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Replays `(read, bytes)` transfers into fresh traffic counters.
fn traffic(events: &[(bool, u64)]) -> TrafficStats {
    let mut t = TrafficStats::new();
    for &(read, bytes) in events {
        if read {
            t.record_read(bytes);
        } else {
            t.record_write(bytes);
        }
    }
    t
}

proptest! {
    /// The line iterator and the count agree, and every yielded line is
    /// aligned and inside the range's span.
    #[test]
    fn line_iteration_invariants(start in 0u64..1_000_000, len in 0u64..10_000) {
        let lines: Vec<PhysAddr> = lines_in_range(PhysAddr::new(start), len).collect();
        prop_assert_eq!(lines.len() as u64, line_count(start, len));
        for (i, l) in lines.iter().enumerate() {
            prop_assert_eq!(l.raw() % 64, 0);
            if i > 0 {
                prop_assert_eq!(l.raw() - lines[i - 1].raw(), 64);
            }
        }
        if len > 0 {
            prop_assert!(lines.first().unwrap().raw() <= start);
            prop_assert!(lines.last().unwrap().raw() < start + len);
        }
    }

    /// Page iteration covers exactly the bytes of the range.
    #[test]
    fn page_iteration_covers_range(start in 0u64..1_000_000, len in 1u64..100_000) {
        let pages: Vec<u64> = pages_in_range(VirtAddr::new(start), len)
            .map(|p| p.page_number())
            .collect();
        prop_assert_eq!(*pages.first().unwrap(), start >> 12);
        prop_assert_eq!(*pages.last().unwrap(), (start + len - 1) >> 12);
        for w in pages.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
    }

    /// Cache valid-line count never exceeds capacity, and hits + misses
    /// equals accesses.
    #[test]
    fn cache_occupancy_and_conservation(
        lines in proptest::collection::vec(0u64..512, 1..300),
        ways in prop::sample::select(vec![1u32, 2, 4, 8]),
    ) {
        let capacity_lines = 64usize; // 4 KiB / 64 B
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 4096,
            ways,
            hit_latency: 1,
        });
        for l in &lines {
            cache.access(PhysAddr::new(l * 64), AccessKind::Read);
            prop_assert!(cache.valid_lines() <= capacity_lines);
        }
        prop_assert_eq!(
            cache.stats().hits() + cache.stats().misses(),
            lines.len() as u64
        );
    }

    /// A probe immediately after an access always finds the line (it was
    /// just filled), regardless of the access mix before it.
    #[test]
    fn accessed_line_is_resident(
        warmup in proptest::collection::vec((0u64..256, any::<bool>()), 0..100),
        line in 0u64..256,
    ) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 4096,
            ways: 4,
            hit_latency: 1,
        });
        for (l, write) in warmup {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            cache.access(PhysAddr::new(l * 64), kind);
        }
        cache.access(PhysAddr::new(line * 64), AccessKind::Read);
        prop_assert!(cache.probe(PhysAddr::new(line * 64)));
    }

    /// DRAM and bus completions are monotone in request order for
    /// same-time requests, and never precede the request time.
    #[test]
    fn dram_completion_monotonicity(sizes in proptest::collection::vec(1u64..4096, 1..50)) {
        let mut dram = DramModel::new(DramConfig::default());
        let mut last = 0;
        for s in sizes {
            let done = dram.transfer(0, s);
            prop_assert!(done >= last);
            prop_assert!(done >= DramConfig::default().latency);
            last = done;
        }
    }

    /// MainMemory read-after-write returns exactly what was written, for
    /// arbitrary (possibly overlapping, cross-page) writes.
    #[test]
    fn main_memory_read_your_writes(
        writes in proptest::collection::vec((0u64..20_000, proptest::collection::vec(any::<u8>(), 1..200)), 1..20),
    ) {
        let mut mem = MainMemory::new();
        let mut model = std::collections::HashMap::<u64, u8>::new();
        for (addr, bytes) in &writes {
            mem.write(PhysAddr::new(*addr), bytes);
            for (i, b) in bytes.iter().enumerate() {
                model.insert(addr + i as u64, *b);
            }
        }
        for (addr, bytes) in &writes {
            let mut buf = vec![0u8; bytes.len()];
            mem.read(PhysAddr::new(*addr), &mut buf);
            for (i, got) in buf.iter().enumerate() {
                prop_assert_eq!(*got, model[&(addr + i as u64)]);
            }
        }
    }

    /// Through the full hierarchy, a re-read of the same line is never
    /// slower than its cold read took (warm path exists).
    #[test]
    fn hierarchy_warm_reads_are_not_slower(addr in 0u64..(1u64 << 30)) {
        let mut mem = MemorySystem::new(MemorySystemConfig::default());
        let aligned = PhysAddr::new(addr).line_aligned();
        let cold_done = mem.read(0, 0, aligned, 64);
        let warm_done = mem.read(0, cold_done, aligned, 64);
        prop_assert!(warm_done - cold_done <= cold_done);
    }

    /// Scalar hit/miss merging is a commutative monoid: order never
    /// matters, grouping never matters, and the zeroed counters are the
    /// identity. This is what makes sharded sweep rollups well-defined
    /// regardless of completion order.
    #[test]
    fn hit_miss_merge_is_commutative_monoid(
        a in (0u64..1_000_000, 0u64..1_000_000),
        b in (0u64..1_000_000, 0u64..1_000_000),
        c in (0u64..1_000_000, 0u64..1_000_000),
    ) {
        let (sa, sb, sc) = (
            HitMissStats::from_counts(a.0, a.1),
            HitMissStats::from_counts(b.0, b.1),
            HitMissStats::from_counts(c.0, c.1),
        );
        // Commutativity: a+b == b+a.
        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
        // Associativity: (a+b)+c == a+(b+c).
        let mut ab_c = ab;
        ab_c.merge(&sc);
        let mut bc = sb;
        bc.merge(&sc);
        let mut a_bc = sa;
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
        // Identity: a + 0 == a.
        let mut a_zero = sa;
        a_zero.merge(&HitMissStats::new());
        prop_assert_eq!(a_zero, sa);
    }

    /// Traffic counters form the same commutative monoid under merge.
    #[test]
    fn traffic_merge_is_commutative_monoid(
        ea in proptest::collection::vec((any::<bool>(), 0u64..1_000_000), 0..20),
        eb in proptest::collection::vec((any::<bool>(), 0u64..1_000_000), 0..20),
        ec in proptest::collection::vec((any::<bool>(), 0u64..1_000_000), 0..20),
    ) {
        let (ta, tb, tc) = (traffic(&ea), traffic(&eb), traffic(&ec));
        let mut ab = ta;
        ab.merge(&tb);
        let mut ba = tb;
        ba.merge(&ta);
        prop_assert_eq!(ab, ba);
        let mut ab_c = ab;
        ab_c.merge(&tc);
        let mut bc = tb;
        bc.merge(&tc);
        let mut a_bc = ta;
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
        let mut a_zero = ta;
        a_zero.merge(&TrafficStats::new());
        prop_assert_eq!(a_zero, ta);
    }

    /// Windowed-series merging is commutative, associative, has the
    /// empty series as identity, and — the defining property — equals
    /// what one collector observing the interleaved event stream would
    /// have recorded.
    #[test]
    fn windowed_rate_merge_is_commutative_monoid(
        window in prop::sample::select(vec![64u64, 100, 1000]),
        ea in proptest::collection::vec((0u64..50_000, any::<bool>()), 0..60),
        eb in proptest::collection::vec((0u64..50_000, any::<bool>()), 0..60),
        ec in proptest::collection::vec((0u64..50_000, any::<bool>()), 0..60),
    ) {
        let (wa, wb, wc) = (
            windowed(window, &ea),
            windowed(window, &eb),
            windowed(window, &ec),
        );
        // Commutativity.
        let mut ab = wa.clone();
        ab.merge(&wb);
        let mut ba = wb.clone();
        ba.merge(&wa);
        prop_assert_eq!(&ab, &ba);
        // Associativity.
        let mut ab_c = ab.clone();
        ab_c.merge(&wc);
        let mut bc = wb.clone();
        bc.merge(&wc);
        let mut a_bc = wa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // Identity: merging an empty series changes nothing.
        let mut a_zero = wa.clone();
        a_zero.merge(&WindowedRate::new(window));
        prop_assert_eq!(&a_zero, &wa);
        // Merge == single collector over the concatenated event stream.
        let mut all = ea.clone();
        all.extend(&eb);
        all.extend(&ec);
        prop_assert_eq!(&ab_c, &windowed(window, &all));
    }

    /// The sweep-line partition in `AttributionLog::finish` equals a
    /// naive per-cycle classification (charge each cycle to the
    /// highest-priority kind covering it; uncovered cycles are idle),
    /// for arbitrary overlapping span soups — and compacting at an
    /// arbitrary frontier first never changes the answer. Together with
    /// `idle` as the remainder, the buckets always sum to `total`.
    #[test]
    fn attribution_partition_matches_per_cycle_classification(
        raw in proptest::collection::vec((0usize..6, 0u64..200, 0u64..40), 0..40),
        frontier in 0u64..260,
    ) {
        let mut log = AttributionLog::new();
        let mut spans = Vec::new();
        let mut max_end = 0u64;
        for &(k, start, len) in &raw {
            let kind = ATTR_KINDS[k];
            log.record(kind, start, start + len);
            if len > 0 {
                spans.push((kind, start, start + len));
                max_end = max_end.max(start + len);
            }
        }
        let total = max_end + 7; // leave a guaranteed idle tail
        let got = log.finish(total);

        // Oracle: classify every cycle independently.
        let mut want = CycleAttribution::new();
        for c in 0..total {
            match ATTR_KINDS
                .iter()
                .find(|&&k| spans.iter().any(|&(sk, s, e)| sk == k && s <= c && c < e))
            {
                Some(&k) => *attr_bucket(&mut want, k) += 1,
                None => want.idle += 1,
            }
        }
        prop_assert_eq!(got, want);
        prop_assert_eq!(got.total(), total);

        // Compaction is invisible in the final report.
        let mut compacted = log.clone();
        compacted.compact(frontier.min(total));
        prop_assert_eq!(compacted.finish(total), got);
    }

    /// `CycleAttribution::merge` is a commutative monoid (the sweep
    /// rollup algebra), and the record survives a JSON text round-trip
    /// bit-for-bit.
    #[test]
    fn cycle_attribution_merge_monoid_and_json_round_trip(
        a in proptest::collection::vec(0u64..1 << 40, 7..8),
        b in proptest::collection::vec(0u64..1 << 40, 7..8),
        c in proptest::collection::vec(0u64..1 << 40, 7..8),
    ) {
        let attr = |v: &[u64]| CycleAttribution {
            compute: v[0],
            load: v[1],
            store: v[2],
            tlb_stall: v[3],
            bank_conflict: v[4],
            dram: v[5],
            idle: v[6],
        };
        let (ra, rb, rc) = (attr(&a), attr(&b), attr(&c));
        let mut ab = ra;
        ab.merge(&rb);
        let mut ba = rb;
        ba.merge(&ra);
        prop_assert_eq!(ab, ba);
        let mut ab_c = ab;
        ab_c.merge(&rc);
        let mut bc = rb;
        bc.merge(&rc);
        let mut a_bc = ra;
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
        let mut a_zero = ra;
        a_zero.merge(&CycleAttribution::new());
        prop_assert_eq!(a_zero, ra);

        let text = ra.to_json().encode();
        let reparsed = gemmini_mem::json::Json::parse(&text).unwrap();
        prop_assert_eq!(CycleAttribution::from_json(&reparsed).unwrap(), ra);
    }

    /// Log2-histogram merging is a commutative monoid, and — the
    /// property sharded heartbeat rollups rely on — folding per-shard
    /// histograms in any order or grouping equals one histogram that
    /// observed every value: bucket-exact, with exact sum and count.
    #[test]
    fn log2_histogram_merge_is_commutative_monoid(
        va in proptest::collection::vec(any::<u64>(), 0..60),
        vb in proptest::collection::vec(any::<u64>(), 0..60),
        vc in proptest::collection::vec(any::<u64>(), 0..60),
    ) {
        let (ha, hb, hc) = (hist(&va), hist(&vb), hist(&vc));
        // Commutativity: a+b == b+a.
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        // Associativity: (a+b)+c == a+(b+c).
        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);
        // Identity: merging the empty histogram changes nothing.
        let mut a_zero = ha.clone();
        a_zero.merge(&Log2Histogram::new());
        prop_assert_eq!(&a_zero, &ha);
        // Merge-of-shards == whole-run (bucket-exact, sum wraps the same
        // way a single recorder's would).
        let mut all = va.clone();
        all.extend(&vb);
        all.extend(&vc);
        prop_assert_eq!(&ab_c, &hist(&all));
        prop_assert_eq!(ab_c.count, (va.len() + vb.len() + vc.len()) as u64);
    }

    /// Every recorded value lands in the bucket whose range covers it,
    /// quantiles are monotone in `q` and always name an occupied
    /// bucket's upper bound that bounds at least the asked-for rank, and
    /// the sparse JSON encoding round-trips bit-for-bit.
    #[test]
    fn log2_histogram_buckets_quantiles_and_json(
        vals in proptest::collection::vec(any::<u64>(), 1..80),
        q in 0.0f64..1.0,
    ) {
        let h = hist(&vals);
        for &v in &vals {
            let k = bucket_index(v);
            prop_assert!(k < HIST_BUCKETS);
            prop_assert!(v <= bucket_upper_bound(k));
            if k > 0 {
                prop_assert!(v > bucket_upper_bound(k - 1));
            }
        }
        // Quantiles: monotone, and the maximum value is covered by p100.
        let (p50, p95, p99, p100) = (
            h.quantile(0.5),
            h.quantile(0.95),
            h.quantile(0.99),
            h.quantile(1.0),
        );
        prop_assert!(p50 <= p95 && p95 <= p99 && p99 <= p100);
        prop_assert!(vals.iter().all(|&v| v <= p100));
        // An arbitrary quantile's bucket covers at least ceil(q*count)
        // of the recorded values.
        let bound = h.quantile(q);
        let rank = ((q * vals.len() as f64).ceil() as u64).max(1);
        let covered = vals.iter().filter(|&&v| v <= bound).count() as u64;
        prop_assert!(covered >= rank, "bound {bound} covers {covered} < rank {rank}");
        // Sparse JSON encoding is lossless, including through text.
        let text = h.to_json().encode();
        let reparsed = gemmini_mem::json::Json::parse(&text).unwrap();
        prop_assert_eq!(&Log2Histogram::from_json(&reparsed).unwrap(), &h);
    }

    /// JSON round-trip: decode(encode(x)) == x for every stats type, for
    /// arbitrary recorded contents, including through a text re-parse.
    #[test]
    fn stats_json_round_trip(
        hits in 0u64..u64::MAX / 2,
        misses in 0u64..u64::MAX / 2,
        tr in proptest::collection::vec((any::<bool>(), 0u64..1_000_000), 0..20),
        window in prop::sample::select(vec![64u64, 1000]),
        events in proptest::collection::vec((0u64..50_000, any::<bool>()), 0..60),
    ) {
        let hm = HitMissStats::from_counts(hits, misses);
        prop_assert_eq!(HitMissStats::from_json(&hm.to_json()).unwrap(), hm);

        let t = traffic(&tr);
        prop_assert_eq!(TrafficStats::from_json(&t.to_json()).unwrap(), t);

        let w = windowed(window, &events);
        prop_assert_eq!(&WindowedRate::from_json(&w.to_json()).unwrap(), &w);

        // And through the full text encoding, as the checkpoint file does.
        let text = w.to_json().encode();
        let reparsed = gemmini_mem::json::Json::parse(&text).unwrap();
        prop_assert_eq!(&WindowedRate::from_json(&reparsed).unwrap(), &w);
    }
}
