//! Property-based tests for the memory substrate's invariants.

use gemmini_mem::addr::{line_count, lines_in_range, pages_in_range, PhysAddr, VirtAddr};
use gemmini_mem::cache::{AccessKind, Cache, CacheConfig};
use gemmini_mem::dram::{DramConfig, DramModel, MainMemory};
use gemmini_mem::hierarchy::{MemorySystem, MemorySystemConfig};
use proptest::prelude::*;

proptest! {
    /// The line iterator and the count agree, and every yielded line is
    /// aligned and inside the range's span.
    #[test]
    fn line_iteration_invariants(start in 0u64..1_000_000, len in 0u64..10_000) {
        let lines: Vec<PhysAddr> = lines_in_range(PhysAddr::new(start), len).collect();
        prop_assert_eq!(lines.len() as u64, line_count(start, len));
        for (i, l) in lines.iter().enumerate() {
            prop_assert_eq!(l.raw() % 64, 0);
            if i > 0 {
                prop_assert_eq!(l.raw() - lines[i - 1].raw(), 64);
            }
        }
        if len > 0 {
            prop_assert!(lines.first().unwrap().raw() <= start);
            prop_assert!(lines.last().unwrap().raw() < start + len);
        }
    }

    /// Page iteration covers exactly the bytes of the range.
    #[test]
    fn page_iteration_covers_range(start in 0u64..1_000_000, len in 1u64..100_000) {
        let pages: Vec<u64> = pages_in_range(VirtAddr::new(start), len)
            .map(|p| p.page_number())
            .collect();
        prop_assert_eq!(*pages.first().unwrap(), start >> 12);
        prop_assert_eq!(*pages.last().unwrap(), (start + len - 1) >> 12);
        for w in pages.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
    }

    /// Cache valid-line count never exceeds capacity, and hits + misses
    /// equals accesses.
    #[test]
    fn cache_occupancy_and_conservation(
        lines in proptest::collection::vec(0u64..512, 1..300),
        ways in prop::sample::select(vec![1u32, 2, 4, 8]),
    ) {
        let capacity_lines = 64usize; // 4 KiB / 64 B
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 4096,
            ways,
            hit_latency: 1,
        });
        for l in &lines {
            cache.access(PhysAddr::new(l * 64), AccessKind::Read);
            prop_assert!(cache.valid_lines() <= capacity_lines);
        }
        prop_assert_eq!(
            cache.stats().hits() + cache.stats().misses(),
            lines.len() as u64
        );
    }

    /// A probe immediately after an access always finds the line (it was
    /// just filled), regardless of the access mix before it.
    #[test]
    fn accessed_line_is_resident(
        warmup in proptest::collection::vec((0u64..256, any::<bool>()), 0..100),
        line in 0u64..256,
    ) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 4096,
            ways: 4,
            hit_latency: 1,
        });
        for (l, write) in warmup {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            cache.access(PhysAddr::new(l * 64), kind);
        }
        cache.access(PhysAddr::new(line * 64), AccessKind::Read);
        prop_assert!(cache.probe(PhysAddr::new(line * 64)));
    }

    /// DRAM and bus completions are monotone in request order for
    /// same-time requests, and never precede the request time.
    #[test]
    fn dram_completion_monotonicity(sizes in proptest::collection::vec(1u64..4096, 1..50)) {
        let mut dram = DramModel::new(DramConfig::default());
        let mut last = 0;
        for s in sizes {
            let done = dram.transfer(0, s);
            prop_assert!(done >= last);
            prop_assert!(done >= DramConfig::default().latency);
            last = done;
        }
    }

    /// MainMemory read-after-write returns exactly what was written, for
    /// arbitrary (possibly overlapping, cross-page) writes.
    #[test]
    fn main_memory_read_your_writes(
        writes in proptest::collection::vec((0u64..20_000, proptest::collection::vec(any::<u8>(), 1..200)), 1..20),
    ) {
        let mut mem = MainMemory::new();
        let mut model = std::collections::HashMap::<u64, u8>::new();
        for (addr, bytes) in &writes {
            mem.write(PhysAddr::new(*addr), bytes);
            for (i, b) in bytes.iter().enumerate() {
                model.insert(addr + i as u64, *b);
            }
        }
        for (addr, bytes) in &writes {
            let mut buf = vec![0u8; bytes.len()];
            mem.read(PhysAddr::new(*addr), &mut buf);
            for (i, got) in buf.iter().enumerate() {
                prop_assert_eq!(*got, model[&(addr + i as u64)]);
            }
        }
    }

    /// Through the full hierarchy, a re-read of the same line is never
    /// slower than its cold read took (warm path exists).
    #[test]
    fn hierarchy_warm_reads_are_not_slower(addr in 0u64..(1u64 << 30)) {
        let mut mem = MemorySystem::new(MemorySystemConfig::default());
        let aligned = PhysAddr::new(addr).line_aligned();
        let cold_done = mem.read(0, 0, aligned, 64);
        let warm_done = mem.read(0, cold_done, aligned, 64);
        prop_assert!(warm_done - cold_done <= cold_done);
    }
}
