#![warn(missing_docs)]

//! Memory substrate for the Gemmini reproduction.
//!
//! This crate models every shared-memory component of the simulated SoC:
//!
//! * [`addr`] — address newtypes ([`PhysAddr`], [`VirtAddr`]) and
//!   line/page arithmetic helpers.
//! * [`sram`] — banked scratchpad-style SRAM timing (bank conflicts, ports).
//! * [`cache`] — a set-associative, write-back/write-allocate cache with LRU
//!   replacement, used as the SoC's shared L2.
//! * [`dram`] — main-memory timing (fixed latency + finite bandwidth) and
//!   [`dram::MainMemory`], the functional byte store backing physical memory.
//! * [`bus`] — the system bus connecting accelerators and CPUs to the L2.
//! * [`hierarchy`] — [`hierarchy::MemorySystem`], the composed
//!   bus → L2 → DRAM pipeline that the rest of the stack talks to.
//! * [`stats`] — counters and windowed time series used to regenerate the
//!   paper's profile figures, including the per-run
//!   [`stats::CycleAttribution`] breakdown.
//! * [`trace`] — the observability substrate: a zero-overhead-when-disabled
//!   event sink ([`trace::Tracer`]) components emit spans into, the
//!   always-on [`trace::AttributionLog`] the cycle-attribution report is
//!   computed from, and a Chrome `trace_event` JSON exporter for
//!   `chrome://tracing`/Perfetto.
//! * [`json`] — a hand-rolled serde-free JSON value model shared by the
//!   sweep checkpoint files and the figure binaries' machine-readable
//!   output (the build environment has no crates.io access).
//! * [`metrics`] — the live-telemetry substrate: a lock-free
//!   [`metrics::MetricsRegistry`] of atomic counters, gauges and
//!   log2-bucketed histograms behind a disabled-by-default
//!   [`metrics::Metrics`] handle, with exact snapshot merging and
//!   Prometheus text exposition.
//!
//! Timing and data are deliberately decoupled: the cache and DRAM models track
//! only tags and busy-times, while [`dram::MainMemory`] holds actual bytes.
//! This lets the SoC run in a fast timing-only mode (identical address
//! streams, no data movement) for the large figure sweeps, and in a
//! functionally-exact mode for correctness tests.
//!
//! # Example
//!
//! ```
//! use gemmini_mem::hierarchy::{MemorySystem, MemorySystemConfig};
//! use gemmini_mem::addr::PhysAddr;
//!
//! let mut mem = MemorySystem::new(MemorySystemConfig::default());
//! let done = mem.read(0, 0, PhysAddr::new(0x8000_0000), 64);
//! assert!(done > 0); // a cold miss takes L2 + DRAM latency
//! ```

pub mod addr;
pub mod bus;
pub mod cache;
pub mod dram;
pub mod hierarchy;
pub mod json;
pub mod metrics;
pub mod sram;
pub mod stats;
pub mod trace;

pub use addr::{PhysAddr, VirtAddr};
pub use cache::{Cache, CacheConfig};
pub use dram::{DramConfig, DramModel, MainMemory};
pub use hierarchy::{MemorySystem, MemorySystemConfig};

/// Simulation time, in accelerator clock cycles.
///
/// A plain alias rather than a newtype: cycle values are combined
/// arithmetically on nearly every line of the timing model, and the
/// physical/virtual address distinction (which *is* newtyped) is where the
/// real confusion bugs live.
pub type Cycle = u64;
