//! The composed memory hierarchy: bus → shared L2 → DRAM.
//!
//! [`MemorySystem`] is the single object the rest of the stack (accelerator
//! DMA engines, CPU models, the page-table walker) uses to account for
//! off-accelerator memory time. It is shared state: in multi-core SoCs every
//! core's traffic flows through one `MemorySystem`, which is how the Fig. 9
//! contention effects arise.

use crate::addr::{lines_in_range, PhysAddr};
use crate::bus::{Bus, BusConfig};
use crate::cache::{AccessKind, Cache, CacheConfig};
use crate::dram::{DramConfig, DramModel};
use crate::metrics::{Counter, HistKind, Metrics};
use crate::stats::TrafficStats;
use crate::trace::{Component, StallCause, Tracer};
use crate::Cycle;
use std::collections::HashMap;

/// Configuration for the whole off-chip memory path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemorySystemConfig {
    /// System-bus parameters.
    pub bus: BusConfig,
    /// Shared L2 parameters.
    pub l2: CacheConfig,
    /// DRAM channel parameters.
    pub dram: DramConfig,
}

impl MemorySystemConfig {
    /// Validates every component configuration.
    ///
    /// # Errors
    ///
    /// Returns the first component error encountered.
    pub fn validate(&self) -> Result<(), String> {
        self.bus.validate()?;
        self.l2.validate()?;
        self.dram.validate()
    }
}

/// Identifies which requestor issued an access, for per-port statistics.
pub type PortId = usize;

/// Composed bus → L2 → DRAM timing model with per-port traffic statistics.
///
/// Accesses are line-granular: a request for `bytes` starting at `addr` is
/// split into cache-line accesses, each looked up in the L2; misses pay the
/// DRAM latency and occupy the shared DRAM channel.
///
/// # Example
///
/// ```
/// use gemmini_mem::hierarchy::{MemorySystem, MemorySystemConfig};
/// use gemmini_mem::addr::PhysAddr;
///
/// let mut mem = MemorySystem::new(MemorySystemConfig::default());
/// let miss = mem.read(0, 0, PhysAddr::new(0x8000_0000), 64);
/// let hit = mem.read(0, miss, PhysAddr::new(0x8000_0000), 64);
/// assert!(hit - miss < miss); // the hit is much cheaper than the cold miss
/// ```
#[derive(Debug, Clone)]
pub struct MemorySystem {
    config: MemorySystemConfig,
    bus: Bus,
    l2: Cache,
    dram: DramModel,
    port_traffic: HashMap<PortId, TrafficStats>,
    tracer: Tracer,
    metrics: Metrics,
}

impl MemorySystem {
    /// Builds the hierarchy from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MemorySystemConfig::validate`].
    pub fn new(config: MemorySystemConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid memory-system configuration: {e}");
        }
        Self {
            config,
            bus: Bus::new(config.bus),
            l2: Cache::new(config.l2),
            dram: DramModel::new(config.dram),
            port_traffic: HashMap::new(),
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
        }
    }

    /// Attaches a trace-event sink; L2 misses emit DRAM line-fill spans
    /// into it. Disabled by default (one branch per access).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a live-metrics handle; L2 misses count line fills and
    /// record DRAM service latency. Disabled by default.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &MemorySystemConfig {
        &self.config
    }

    fn port_stats_mut(&mut self, port: PortId) -> &mut TrafficStats {
        self.port_traffic.entry(port).or_default()
    }

    fn access(
        &mut self,
        port: PortId,
        now: Cycle,
        addr: PhysAddr,
        bytes: u64,
        kind: AccessKind,
    ) -> Cycle {
        // Bus transfer for the whole burst.
        let bus_done = self.bus.transfer(now, bytes);
        // L2 lookup per line; misses serialize on the DRAM channel.
        let mut done = bus_done;
        for line in lines_in_range(addr, bytes) {
            let res = self.l2.access(line, kind);
            let line_done = if res.hit {
                bus_done + res.latency
            } else {
                let fill_done = self
                    .dram
                    .transfer(bus_done + res.latency, crate::addr::LINE_SIZE);
                self.tracer.span(
                    Component::Dram,
                    "line-fill",
                    bus_done + res.latency,
                    fill_done,
                    StallCause::CacheMiss,
                );
                self.metrics.inc(Counter::DramLineFills);
                self.metrics.observe(
                    HistKind::DramServiceCycles,
                    fill_done.saturating_sub(bus_done + res.latency),
                );
                if res.writeback {
                    // The dirty victim's writeback occupies the DRAM channel
                    // (delaying later requests) but the demand fill does not
                    // wait for it to finish.
                    let _ = self
                        .dram
                        .transfer(bus_done + res.latency, crate::addr::LINE_SIZE);
                }
                fill_done
            };
            done = done.max(line_done);
        }
        let stats = self.port_stats_mut(port);
        match kind {
            AccessKind::Read => stats.record_read(bytes),
            AccessKind::Write => stats.record_write(bytes),
        }
        done
    }

    /// Reads `bytes` starting at `addr` on behalf of `port`; returns the
    /// completion cycle.
    pub fn read(&mut self, port: PortId, now: Cycle, addr: PhysAddr, bytes: u64) -> Cycle {
        self.access(port, now, addr, bytes, AccessKind::Read)
    }

    /// Writes `bytes` starting at `addr` on behalf of `port`; returns the
    /// completion cycle.
    pub fn write(&mut self, port: PortId, now: Cycle, addr: PhysAddr, bytes: u64) -> Cycle {
        self.access(port, now, addr, bytes, AccessKind::Write)
    }

    /// The shared L2 (for statistics and probing).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Mutable access to the shared L2 (e.g. to flush it on OS events).
    pub fn l2_mut(&mut self) -> &mut Cache {
        &mut self.l2
    }

    /// The DRAM channel model.
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// The system bus model.
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Ideal (uncontended, all-hits-free) streaming time for `bytes`:
    /// the bus service time alone. Cycle-attribution uses this to split
    /// a transfer's memory time into bandwidth-limited streaming versus
    /// stalling on the L2/DRAM path behind it.
    pub fn streaming_cycles(&self, bytes: u64) -> u64 {
        self.config.bus.service_cycles(bytes)
    }

    /// Traffic generated by `port`, if any was recorded.
    pub fn port_traffic(&self, port: PortId) -> Option<&TrafficStats> {
        self.port_traffic.get(&port)
    }

    /// Resets all statistics (tag state and channel occupancy are preserved).
    pub fn reset_stats(&mut self) {
        self.l2.reset_stats();
        self.dram.reset_stats();
        self.bus.reset_stats();
        self.port_traffic.clear();
    }
}

impl Default for MemorySystem {
    fn default() -> Self {
        Self::new(MemorySystemConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemorySystem {
        MemorySystem::new(MemorySystemConfig::default())
    }

    #[test]
    fn read_signature_misses_then_hits() {
        let mut m = sys();
        let a = PhysAddr::new(0x8000_0000);
        let t1 = m.read(0, 0, a, 64);
        let t2 = m.read(0, t1, a, 64);
        // Cold miss pays DRAM latency; hit pays only bus + L2 latency.
        assert!(t1 >= m.config().dram.latency);
        assert!(t2 - t1 <= m.config().bus.arbitration_latency + 4 + m.config().l2.hit_latency);
        assert_eq!(m.l2().stats().hits(), 1);
        assert_eq!(m.l2().stats().misses(), 1);
    }

    #[test]
    fn multi_line_burst_touches_every_line() {
        let mut m = sys();
        m.read(0, 0, PhysAddr::new(0), 256);
        assert_eq!(m.l2().stats().accesses(), 4);
    }

    #[test]
    fn unaligned_burst_touches_extra_line() {
        let mut m = sys();
        m.read(0, 0, PhysAddr::new(32), 64);
        assert_eq!(m.l2().stats().accesses(), 2);
    }

    #[test]
    fn per_port_traffic_is_separated() {
        let mut m = sys();
        m.read(0, 0, PhysAddr::new(0), 64);
        m.write(1, 0, PhysAddr::new(4096), 128);
        assert_eq!(m.port_traffic(0).unwrap().bytes_read, 64);
        assert_eq!(m.port_traffic(1).unwrap().bytes_written, 128);
        assert!(m.port_traffic(2).is_none());
    }

    #[test]
    fn two_ports_contend_on_dram() {
        let mut m = sys();
        // Two cold misses at the same time: the second completes later
        // because the DRAM channel serializes.
        let t1 = m.read(0, 0, PhysAddr::new(0x1000_0000), 64);
        let t2 = m.read(1, 0, PhysAddr::new(0x2000_0000), 64);
        assert!(t2 > t1);
    }

    #[test]
    fn writes_mark_lines_dirty_and_evictions_write_back() {
        // Tiny L2 to force evictions quickly.
        let mut m = MemorySystem::new(MemorySystemConfig {
            l2: CacheConfig {
                size_bytes: 8 * 64,
                ways: 1,
                hit_latency: 2,
            },
            ..MemorySystemConfig::default()
        });
        // Write 8 lines (fills the direct-mapped cache), then read 8 more
        // lines that map onto the same sets -> dirty evictions.
        for i in 0..8u64 {
            m.write(0, 0, PhysAddr::new(i * 64), 64);
        }
        for i in 0..8u64 {
            m.read(0, 0, PhysAddr::new(8 * 64 + i * 64), 64);
        }
        assert_eq!(m.l2().writebacks(), 8);
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut m = sys();
        m.read(0, 0, PhysAddr::new(0), 64);
        m.reset_stats();
        assert_eq!(m.l2().stats().accesses(), 0);
        assert!(m.port_traffic(0).is_none());
    }
}
