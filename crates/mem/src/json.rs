//! A miniature hand-rolled JSON value model, encoder and parser.
//!
//! The sweep checkpoint files and the figure binaries' `--json` output
//! need machine-readable persistence, but the build environment has no
//! crates.io access, so serde is unavailable. This module is the shared
//! substitute: a small [`Json`] value enum, a compact single-line
//! encoder, a recursive-descent parser, and the [`ToJson`] / [`FromJson`]
//! conversion traits the stat and report types implement.
//!
//! Scope and guarantees:
//!
//! * integers are kept exact — `u64` / `i64` are distinct variants, never
//!   routed through `f64` (cycle and byte counters exceed 2^53);
//! * `f64` values are emitted with Rust's shortest round-trip formatting
//!   (`{:?}`), so `decode(encode(x)) == x` bit-for-bit for finite values;
//!   non-finite values are rejected at encode time;
//! * object key order is preserved (encode is deterministic), and the
//!   encoder always emits one line — newline-delimited JSON files get one
//!   record per line by construction.
//!
//! # Example
//!
//! ```
//! use gemmini_mem::json::Json;
//! let v = Json::obj([("label", Json::from("p0")), ("cycles", Json::from(123u64))]);
//! let text = v.encode();
//! assert_eq!(text, r#"{"label":"p0","cycles":123}"#);
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (kept exact; counters routinely exceed 2^53).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A non-integral number (finite only).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Why a parse or a typed field access failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description, including position for parse errors.
    pub message: String,
}

impl JsonError {
    /// Creates an error from any displayable message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for JsonError {}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::U64(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::U64(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Json::U64(v as u64)
        } else {
            Json::I64(v)
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::F64(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks up a key in an object, failing with a named error.
    ///
    /// # Errors
    ///
    /// Returns an error naming the missing key.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError::new(format!("missing field '{key}'")))
    }

    /// The value as a `u64` (accepts only exact non-negative integers).
    ///
    /// # Errors
    ///
    /// Returns an error if the value is not a non-negative integer.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::U64(v) => Ok(*v),
            other => Err(JsonError::new(format!("expected u64, got {other:?}"))),
        }
    }

    /// The value as an `f64` (integers widen losslessly where possible).
    ///
    /// # Errors
    ///
    /// Returns an error if the value is not numeric.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::F64(v) => Ok(*v),
            Json::U64(v) => Ok(*v as f64),
            Json::I64(v) => Ok(*v as f64),
            other => Err(JsonError::new(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as a `bool`.
    ///
    /// # Errors
    ///
    /// Returns an error if the value is not a boolean.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(v) => Ok(*v),
            other => Err(JsonError::new(format!("expected bool, got {other:?}"))),
        }
    }

    /// The value as a string slice.
    ///
    /// # Errors
    ///
    /// Returns an error if the value is not a string.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::new(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Returns an error if the value is not an array.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::new(format!("expected array, got {other:?}"))),
        }
    }

    /// Encodes the value as compact single-line JSON.
    ///
    /// # Panics
    ///
    /// Panics on non-finite `f64` values (JSON has no representation for
    /// them, and every serialized statistic is finite by construction).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                assert!(v.is_finite(), "cannot encode non-finite f64 as JSON");
                // Debug formatting is Rust's shortest round-trip form.
                out.push_str(&format!("{v:?}"));
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text` (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with byte position on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes, then handle the interesting one.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // encoder (it only \u-escapes control chars).
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if fractional {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(&format!("bad number '{text}'")))?;
            Ok(Json::F64(v))
        } else if let Some(stripped) = text.strip_prefix('-') {
            let v: i64 = format!("-{stripped}")
                .parse()
                .map_err(|_| self.err(&format!("bad integer '{text}'")))?;
            Ok(Json::I64(v))
        } else {
            let v: u64 = text
                .parse()
                .map_err(|_| self.err(&format!("bad integer '{text}'")))?;
            Ok(Json::U64(v))
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Renders `self` as a JSON value.
    fn to_json(&self) -> Json;
}

/// Conversion from a [`Json`] value.
pub trait FromJson: Sized {
    /// Reconstructs `Self` from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first shape mismatch.
    fn from_json(value: &Json) -> Result<Self, JsonError>;
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::U64(*self)
    }
}

impl FromJson for u64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_u64()
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_f64()
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_str().map(str::to_string)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        value.as_arr()?.iter().map(T::from_json).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::U64(0),
            Json::U64(u64::MAX),
            Json::I64(-42),
            Json::I64(i64::MIN),
            Json::F64(0.25),
            Json::F64(-1.5e-9),
            Json::Str("hello \"quoted\" \\ path\nline".to_string()),
        ] {
            let text = v.encode();
            assert_eq!(Json::parse(&text).unwrap(), v, "from {text}");
        }
    }

    #[test]
    fn u64_beyond_f64_precision_is_exact() {
        let v = Json::U64((1 << 53) + 1);
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            ("label", Json::from("private=4 shared=0")),
            (
                "series",
                Json::Arr(vec![
                    Json::obj([("start", Json::from(0u64)), ("rate", Json::from(0.125))]),
                    Json::obj([("start", Json::from(20_000u64)), ("rate", Json::from(0.5))]),
                ]),
            ),
            ("output", Json::Null),
            ("ok", Json::from(true)),
        ]);
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , -2 , 3.5 ] , \"s\" : \"π → µm²\" } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "π → µm²");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1}garbage",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn field_accessors_report_shape_errors() {
        let v = Json::parse(r#"{"n": 3, "neg": -1, "s": "x"}"#).unwrap();
        assert_eq!(v.field("n").unwrap().as_u64().unwrap(), 3);
        assert!(v.field("missing").is_err());
        assert!(v.field("neg").unwrap().as_u64().is_err());
        assert!(v.field("s").unwrap().as_f64().is_err());
        assert_eq!(v.field("neg").unwrap().as_f64().unwrap(), -1.0);
    }

    #[test]
    fn control_characters_escape_and_return() {
        let v = Json::Str("a\u{1}b".to_string());
        let text = v.encode();
        assert!(text.contains("\\u0001"));
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn vec_round_trip_via_traits() {
        let xs: Vec<u64> = vec![1, 2, 3];
        assert_eq!(Vec::<u64>::from_json(&xs.to_json()).unwrap(), xs);
    }
}
