//! Counters and windowed time-series statistics.
//!
//! The paper's profile figures (e.g. Fig. 4, TLB miss rate over a full
//! ResNet50 inference) plot a *rate over time*. [`WindowedRate`] collects
//! (cycle, hit/miss) events into fixed-width windows so the benchmark harness
//! can print the same series.

use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::Cycle;

/// Hit/miss counters for any cache-like structure.
///
/// # Example
///
/// ```
/// use gemmini_mem::stats::HitMissStats;
/// let mut s = HitMissStats::default();
/// s.record(true);
/// s.record(false);
/// assert_eq!(s.accesses(), 2);
/// assert!((s.hit_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitMissStats {
    hits: u64,
    misses: u64,
}

impl HitMissStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access; `hit` selects which counter is incremented.
    #[inline]
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Number of hits recorded.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses recorded.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total number of accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of accesses that hit; `0.0` when no accesses were recorded.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }

    /// Fraction of accesses that missed; `0.0` when no accesses were recorded.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &HitMissStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Resets both counters to zero.
    pub fn reset(&mut self) {
        *self = Self::default();
    }

    /// Reconstructs counters from raw hit/miss counts (checkpoint decode).
    pub fn from_counts(hits: u64, misses: u64) -> Self {
        Self { hits, misses }
    }
}

impl ToJson for HitMissStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("hits", Json::from(self.hits)),
            ("misses", Json::from(self.misses)),
        ])
    }
}

impl FromJson for HitMissStats {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self::from_counts(
            value.field("hits")?.as_u64()?,
            value.field("misses")?.as_u64()?,
        ))
    }
}

/// One point of a windowed rate series: the window's start cycle, its event
/// counts, and the miss rate within the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowPoint {
    /// First cycle covered by the window.
    pub start_cycle: Cycle,
    /// Accesses that hit in this window.
    pub hits: u64,
    /// Accesses that missed in this window.
    pub misses: u64,
}

impl WindowPoint {
    /// Miss rate within this window; `0.0` for an empty window.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Collects hit/miss events into fixed-width cycle windows.
///
/// Used to regenerate the paper's Fig. 4: the DMA's TLB requests over a full
/// inference, bucketed by time, showing miss-rate spikes at layer boundaries.
///
/// # Example
///
/// ```
/// use gemmini_mem::stats::WindowedRate;
/// let mut w = WindowedRate::new(100);
/// w.record(10, false);
/// w.record(150, true);
/// let series = w.series();
/// assert_eq!(series.len(), 2);
/// assert!((series[0].miss_rate() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct WindowedRate {
    window: Cycle,
    points: Vec<WindowPoint>,
}

impl WindowedRate {
    /// Creates a series with the given window width in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: Cycle) -> Self {
        assert!(window > 0, "window width must be non-zero");
        Self {
            window,
            points: Vec::new(),
        }
    }

    /// Window width in cycles.
    pub fn window(&self) -> Cycle {
        self.window
    }

    /// Records one event at simulation time `now`.
    ///
    /// Events may arrive slightly out of order (overlapped load/store
    /// streams); each is bucketed by its own timestamp.
    pub fn record(&mut self, now: Cycle, hit: bool) {
        let idx = (now / self.window) as usize;
        if idx >= self.points.len() {
            let base = self.points.len();
            self.points.extend((base..=idx).map(|i| WindowPoint {
                start_cycle: i as Cycle * self.window,
                hits: 0,
                misses: 0,
            }));
        }
        let p = &mut self.points[idx];
        if hit {
            p.hits += 1;
        } else {
            p.misses += 1;
        }
    }

    /// Returns the collected series, one point per window, in time order.
    pub fn series(&self) -> &[WindowPoint] {
        &self.points
    }

    /// Merges another series into this one, window by window.
    ///
    /// The merged series is exactly what a single collector observing
    /// both event streams would have recorded: per-window hit and miss
    /// counts add, and the merged length is the longer of the two. This
    /// is the windowed-series analogue of [`HitMissStats::merge`] —
    /// without it, sharded sweeps could sum scalar counters but silently
    /// drop the rate-over-time series (and with it `peak_miss_rate`).
    ///
    /// # Panics
    ///
    /// Panics if the window widths differ — pointwise addition of
    /// differently-bucketed series would be meaningless.
    pub fn merge(&mut self, other: &WindowedRate) {
        assert_eq!(
            self.window, other.window,
            "cannot merge windowed series with different window widths"
        );
        if other.points.len() > self.points.len() {
            let base = self.points.len();
            self.points
                .extend((base..other.points.len()).map(|i| WindowPoint {
                    start_cycle: i as Cycle * self.window,
                    hits: 0,
                    misses: 0,
                }));
        }
        for (mine, theirs) in self.points.iter_mut().zip(&other.points) {
            mine.hits += theirs.hits;
            mine.misses += theirs.misses;
        }
    }

    /// The maximum per-window miss rate observed (ignoring empty windows).
    pub fn peak_miss_rate(&self) -> f64 {
        self.points
            .iter()
            .filter(|p| p.hits + p.misses > 0)
            .map(|p| p.miss_rate())
            .fold(0.0, f64::max)
    }
}

impl PartialEq for WindowedRate {
    fn eq(&self, other: &Self) -> bool {
        self.window == other.window && self.points == other.points
    }
}

impl ToJson for WindowPoint {
    fn to_json(&self) -> Json {
        Json::obj([
            ("start_cycle", Json::from(self.start_cycle)),
            ("hits", Json::from(self.hits)),
            ("misses", Json::from(self.misses)),
        ])
    }
}

impl FromJson for WindowPoint {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            start_cycle: value.field("start_cycle")?.as_u64()?,
            hits: value.field("hits")?.as_u64()?,
            misses: value.field("misses")?.as_u64()?,
        })
    }
}

impl ToJson for WindowedRate {
    fn to_json(&self) -> Json {
        Json::obj([
            ("window", Json::from(self.window)),
            ("points", self.points.to_json()),
        ])
    }
}

impl FromJson for WindowedRate {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let window = value.field("window")?.as_u64()?;
        if window == 0 {
            return Err(JsonError::new("windowed series with zero window width"));
        }
        Ok(Self {
            window,
            points: Vec::<WindowPoint>::from_json(value.field("points")?)?,
        })
    }
}

/// Traffic counters for a memory component: bytes moved and transactions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Bytes read through the component.
    pub bytes_read: u64,
    /// Bytes written through the component.
    pub bytes_written: u64,
    /// Read transactions.
    pub reads: u64,
    /// Write transactions.
    pub writes: u64,
}

impl TrafficStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read of `bytes` bytes.
    #[inline]
    pub fn record_read(&mut self, bytes: u64) {
        self.reads += 1;
        self.bytes_read += bytes;
    }

    /// Records a write of `bytes` bytes.
    #[inline]
    pub fn record_write(&mut self, bytes: u64) {
        self.writes += 1;
        self.bytes_written += bytes;
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.reads += other.reads;
        self.writes += other.writes;
    }
}

impl ToJson for TrafficStats {
    fn to_json(&self) -> Json {
        Json::obj([
            ("bytes_read", Json::from(self.bytes_read)),
            ("bytes_written", Json::from(self.bytes_written)),
            ("reads", Json::from(self.reads)),
            ("writes", Json::from(self.writes)),
        ])
    }
}

impl FromJson for TrafficStats {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            bytes_read: value.field("bytes_read")?.as_u64()?,
            bytes_written: value.field("bytes_written")?.as_u64()?,
            reads: value.field("reads")?.as_u64()?,
            writes: value.field("writes")?.as_u64()?,
        })
    }
}

/// Exclusive classification of every simulated cycle of a run.
///
/// Produced by [`crate::trace::AttributionLog::finish`]: each cycle of
/// `[0, total)` lands in exactly one bucket, so the buckets always sum
/// to the run's total cycle count ([`CycleAttribution::total`]). Merging
/// is plain field-wise addition — a commutative monoid like
/// [`HitMissStats`] — so per-core attributions fold into an SoC-level
/// one and sharded sweeps can roll points up in any order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleAttribution {
    /// Cycles the spatial array (or an execute-unit peripheral) was busy.
    pub compute: u64,
    /// Cycles the load unit was streaming data in at bus bandwidth
    /// (stall cycles are attributed to a more specific bucket below).
    pub load: u64,
    /// Cycles the store unit was streaming data out (same exclusion).
    pub store: u64,
    /// Cycles a DMA stream was stalled on the TLB hierarchy.
    pub tlb_stall: u64,
    /// Cycles a local-memory access waited on a busy SRAM bank.
    pub bank_conflict: u64,
    /// Cycles a DMA stream waited on the bus → L2 → DRAM path beyond
    /// the ideal streaming time (contention, L2 latency, DRAM fills).
    pub dram: u64,
    /// Cycles no unit was doing anything the buckets above cover.
    pub idle: u64,
}

/// One of the seven exclusive [`CycleAttribution`] buckets, as a value.
///
/// The variants are ordered exactly like [`CycleAttribution::rows`], so
/// dominance ties (rare, but possible on tiny synthetic runs) resolve to
/// the earlier report row deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CycleBucket {
    /// Spatial-array (or execute-unit) busy cycles.
    Compute,
    /// Load-unit streaming cycles.
    Load,
    /// Store-unit streaming cycles.
    Store,
    /// DMA cycles stalled on the TLB hierarchy.
    TlbStall,
    /// Local-memory cycles waiting on a busy SRAM bank.
    BankConflict,
    /// DMA cycles waiting on the bus → L2 → DRAM path.
    Dram,
    /// Cycles no unit was busy.
    Idle,
}

impl CycleBucket {
    /// Every bucket, in report order.
    pub const ALL: [CycleBucket; 7] = [
        CycleBucket::Compute,
        CycleBucket::Load,
        CycleBucket::Store,
        CycleBucket::TlbStall,
        CycleBucket::BankConflict,
        CycleBucket::Dram,
        CycleBucket::Idle,
    ];

    /// The bucket's report-row name (matches [`CycleAttribution::rows`]).
    pub fn name(self) -> &'static str {
        match self {
            CycleBucket::Compute => "compute",
            CycleBucket::Load => "load",
            CycleBucket::Store => "store",
            CycleBucket::TlbStall => "tlb-stall",
            CycleBucket::BankConflict => "bank-conflict",
            CycleBucket::Dram => "dram",
            CycleBucket::Idle => "idle",
        }
    }

    /// Parses a report-row name back into a bucket.
    pub fn parse(name: &str) -> Option<CycleBucket> {
        CycleBucket::ALL.into_iter().find(|b| b.name() == name)
    }
}

impl ToJson for CycleBucket {
    fn to_json(&self) -> Json {
        Json::from(self.name())
    }
}

impl FromJson for CycleBucket {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let name = value.as_str()?;
        CycleBucket::parse(name)
            .ok_or_else(|| JsonError::new(format!("unknown cycle bucket '{name}'")))
    }
}

/// A swept hardware axis, classified by which attribution buckets it can
/// move. This is the sensitivity side of attribution-guided pruning: a
/// point whose dominant bucket an axis cannot touch — and whose movable
/// share of cycles is already small — will land within tolerance of its
/// basis point no matter where the axis is set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepAxis {
    /// TLB sizing (private/shared entries, filter registers): can only
    /// move cycles that are stalled on translation.
    TlbEntries,
    /// Scratchpad/accumulator banking: can only move bank-conflict
    /// cycles.
    ScratchpadBanks,
    /// Memory-system partitioning (scratchpad vs L2 capacity): moves the
    /// whole DRAM path and the streaming cycles behind it.
    MemoryPartition,
}

impl SweepAxis {
    /// The axis's stable report name.
    pub fn name(self) -> &'static str {
        match self {
            SweepAxis::TlbEntries => "tlb-entries",
            SweepAxis::ScratchpadBanks => "scratchpad-banks",
            SweepAxis::MemoryPartition => "memory-partition",
        }
    }

    /// Parses a report name back into an axis.
    pub fn parse(name: &str) -> Option<SweepAxis> {
        [
            SweepAxis::TlbEntries,
            SweepAxis::ScratchpadBanks,
            SweepAxis::MemoryPartition,
        ]
        .into_iter()
        .find(|a| a.name() == name)
    }

    /// The buckets this axis can move. Everything outside this set is
    /// structurally insensitive to the axis: compute cycles do not care
    /// how many TLB entries exist, and DRAM service time does not care
    /// how the scratchpad is banked.
    pub fn movable_buckets(self) -> &'static [CycleBucket] {
        match self {
            SweepAxis::TlbEntries => &[CycleBucket::TlbStall],
            SweepAxis::ScratchpadBanks => &[CycleBucket::BankConflict],
            SweepAxis::MemoryPartition => &[
                CycleBucket::Dram,
                CycleBucket::BankConflict,
                CycleBucket::Load,
                CycleBucket::Store,
            ],
        }
    }

    /// Whether `bucket` is in this axis's movable set.
    pub fn can_move(self, bucket: CycleBucket) -> bool {
        self.movable_buckets().contains(&bucket)
    }
}

impl ToJson for SweepAxis {
    fn to_json(&self) -> Json {
        Json::from(self.name())
    }
}

impl FromJson for SweepAxis {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let name = value.as_str()?;
        SweepAxis::parse(name).ok_or_else(|| JsonError::new(format!("unknown sweep axis '{name}'")))
    }
}

impl CycleAttribution {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cycle count of one bucket.
    pub fn of(&self, bucket: CycleBucket) -> u64 {
        match bucket {
            CycleBucket::Compute => self.compute,
            CycleBucket::Load => self.load,
            CycleBucket::Store => self.store,
            CycleBucket::TlbStall => self.tlb_stall,
            CycleBucket::BankConflict => self.bank_conflict,
            CycleBucket::Dram => self.dram,
            CycleBucket::Idle => self.idle,
        }
    }

    /// The bucket holding the most cycles. Ties resolve to the earlier
    /// report row; an all-zero attribution is dominated by `Idle`.
    pub fn dominant(&self) -> CycleBucket {
        let mut best = CycleBucket::Idle;
        let mut best_cycles = 0u64;
        // Strict `>` in report order: the first maximal row sticks.
        for bucket in CycleBucket::ALL {
            let cycles = self.of(bucket);
            if cycles > best_cycles {
                best = bucket;
                best_cycles = cycles;
            }
        }
        if best_cycles == 0 {
            CycleBucket::Idle
        } else {
            best
        }
    }

    /// Fraction of total cycles in one bucket; `0.0` for an empty
    /// attribution.
    pub fn fraction(&self, bucket: CycleBucket) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.of(bucket) as f64 / self.total() as f64
        }
    }

    /// Combined fraction of total cycles across a set of buckets; `0.0`
    /// for an empty attribution.
    pub fn fraction_of(&self, buckets: &[CycleBucket]) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            let sum: u64 = buckets.iter().map(|&b| self.of(b)).sum();
            sum as f64 / self.total() as f64
        }
    }

    /// Sum of every bucket — by construction the run's total cycles.
    pub fn total(&self) -> u64 {
        self.busy() + self.idle
    }

    /// Sum of the non-idle buckets.
    pub fn busy(&self) -> u64 {
        self.compute + self.load + self.store + self.tlb_stall + self.bank_conflict + self.dram
    }

    /// Fraction of total cycles spent in non-idle buckets; `0.0` for an
    /// empty attribution.
    pub fn utilization(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.busy() as f64 / self.total() as f64
        }
    }

    /// Fraction of total cycles spent waiting on the memory system
    /// (tlb-stall + bank-conflict + dram); `0.0` for an empty attribution.
    pub fn memory_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            (self.tlb_stall + self.bank_conflict + self.dram) as f64 / self.total() as f64
        }
    }

    /// Merges another attribution into this one (field-wise addition).
    pub fn merge(&mut self, other: &CycleAttribution) {
        self.compute += other.compute;
        self.load += other.load;
        self.store += other.store;
        self.tlb_stall += other.tlb_stall;
        self.bank_conflict += other.bank_conflict;
        self.dram += other.dram;
        self.idle += other.idle;
    }

    /// The buckets as `(name, cycles)` rows in report order.
    pub fn rows(&self) -> [(&'static str, u64); 7] {
        [
            ("compute", self.compute),
            ("load", self.load),
            ("store", self.store),
            ("tlb-stall", self.tlb_stall),
            ("bank-conflict", self.bank_conflict),
            ("dram", self.dram),
            ("idle", self.idle),
        ]
    }
}

impl ToJson for CycleAttribution {
    fn to_json(&self) -> Json {
        Json::obj([
            ("compute", Json::from(self.compute)),
            ("load", Json::from(self.load)),
            ("store", Json::from(self.store)),
            ("tlb_stall", Json::from(self.tlb_stall)),
            ("bank_conflict", Json::from(self.bank_conflict)),
            ("dram", Json::from(self.dram)),
            ("idle", Json::from(self.idle)),
        ])
    }
}

impl FromJson for CycleAttribution {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            compute: value.field("compute")?.as_u64()?,
            load: value.field("load")?.as_u64()?,
            store: value.field("store")?.as_u64()?,
            tlb_stall: value.field("tlb_stall")?.as_u64()?,
            bank_conflict: value.field("bank_conflict")?.as_u64()?,
            dram: value.field("dram")?.as_u64()?,
            idle: value.field("idle")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_rates() {
        let mut s = HitMissStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        for _ in 0..3 {
            s.record(true);
        }
        s.record(false);
        assert_eq!(s.hits(), 3);
        assert_eq!(s.misses(), 1);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hit_miss_merge_and_reset() {
        let mut a = HitMissStats::new();
        a.record(true);
        let mut b = HitMissStats::new();
        b.record(false);
        a.merge(&b);
        assert_eq!(a.accesses(), 2);
        a.reset();
        assert_eq!(a.accesses(), 0);
    }

    #[test]
    fn windowed_rate_buckets_by_time() {
        let mut w = WindowedRate::new(10);
        w.record(0, true);
        w.record(9, false);
        w.record(25, false);
        let s = w.series();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].hits, 1);
        assert_eq!(s[0].misses, 1);
        assert_eq!(s[1].hits + s[1].misses, 0);
        assert_eq!(s[2].misses, 1);
        assert_eq!(s[1].start_cycle, 10);
    }

    #[test]
    fn windowed_rate_out_of_order_events() {
        let mut w = WindowedRate::new(10);
        w.record(25, false);
        w.record(5, true); // earlier than previous event
        assert_eq!(w.series()[0].hits, 1);
        assert_eq!(w.series()[2].misses, 1);
    }

    #[test]
    fn peak_miss_rate_ignores_empty_windows() {
        let mut w = WindowedRate::new(10);
        w.record(0, true);
        w.record(50, false);
        assert!((w.peak_miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "window width")]
    fn zero_window_panics() {
        let _ = WindowedRate::new(0);
    }

    #[test]
    fn windowed_merge_equals_serial_collection() {
        // Split one event stream across two shards; the merged series
        // must equal what a single collector would have recorded.
        let events = [
            (3u64, true),
            (12, false),
            (17, true),
            (44, false),
            (45, false),
            (90, true),
        ];
        let mut serial = WindowedRate::new(10);
        let mut shard_a = WindowedRate::new(10);
        let mut shard_b = WindowedRate::new(10);
        for (i, &(cycle, hit)) in events.iter().enumerate() {
            serial.record(cycle, hit);
            if i % 2 == 0 {
                shard_a.record(cycle, hit);
            } else {
                shard_b.record(cycle, hit);
            }
        }
        let mut merged = shard_a.clone();
        merged.merge(&shard_b);
        assert_eq!(merged.series(), serial.series());
        assert_eq!(merged.peak_miss_rate(), serial.peak_miss_rate());
        // Merge is symmetric in content.
        let mut merged_rev = shard_b;
        merged_rev.merge(&shard_a);
        assert_eq!(merged_rev.series(), serial.series());
    }

    #[test]
    #[should_panic(expected = "different window widths")]
    fn windowed_merge_rejects_mismatched_windows() {
        let mut a = WindowedRate::new(10);
        let b = WindowedRate::new(20);
        a.merge(&b);
    }

    #[test]
    fn attribution_totals_and_merge() {
        let a = CycleAttribution {
            compute: 50,
            load: 20,
            store: 10,
            tlb_stall: 5,
            bank_conflict: 1,
            dram: 4,
            idle: 10,
        };
        assert_eq!(a.busy(), 90);
        assert_eq!(a.total(), 100);
        assert!((a.utilization() - 0.9).abs() < 1e-12);
        assert!((a.memory_fraction() - 0.1).abs() < 1e-12);
        let mut m = a;
        m.merge(&a);
        assert_eq!(m.total(), 200);
        assert_eq!(m.compute, 100);
        // Identity.
        let mut id = a;
        id.merge(&CycleAttribution::default());
        assert_eq!(id, a);
        // Round trip.
        assert_eq!(CycleAttribution::from_json(&a.to_json()).unwrap(), a);
        assert_eq!(a.rows().iter().map(|&(_, v)| v).sum::<u64>(), a.total());
    }

    #[test]
    fn bucket_names_match_report_rows() {
        let a = CycleAttribution {
            compute: 1,
            load: 2,
            store: 3,
            tlb_stall: 4,
            bank_conflict: 5,
            dram: 6,
            idle: 7,
        };
        for (bucket, (name, cycles)) in CycleBucket::ALL.into_iter().zip(a.rows()) {
            assert_eq!(bucket.name(), name);
            assert_eq!(a.of(bucket), cycles);
            assert_eq!(CycleBucket::parse(name), Some(bucket));
            assert_eq!(CycleBucket::from_json(&bucket.to_json()).unwrap(), bucket);
        }
        assert_eq!(CycleBucket::parse("nope"), None);
    }

    #[test]
    fn dominance_and_fractions() {
        let a = CycleAttribution {
            compute: 50,
            load: 20,
            store: 10,
            tlb_stall: 5,
            bank_conflict: 1,
            dram: 4,
            idle: 10,
        };
        assert_eq!(a.dominant(), CycleBucket::Compute);
        assert!((a.fraction(CycleBucket::Compute) - 0.5).abs() < 1e-12);
        assert!((a.fraction_of(&[CycleBucket::TlbStall, CycleBucket::Dram]) - 0.09).abs() < 1e-12);
        // Ties resolve to the earlier report row.
        let tied = CycleAttribution {
            load: 7,
            store: 7,
            ..CycleAttribution::default()
        };
        assert_eq!(tied.dominant(), CycleBucket::Load);
        // Empty attributions are idle-dominated with zero fractions.
        let empty = CycleAttribution::default();
        assert_eq!(empty.dominant(), CycleBucket::Idle);
        assert_eq!(empty.fraction(CycleBucket::Compute), 0.0);
        assert_eq!(empty.fraction_of(&[CycleBucket::Dram]), 0.0);
    }

    #[test]
    fn sweep_axis_sensitivity() {
        assert!(SweepAxis::TlbEntries.can_move(CycleBucket::TlbStall));
        assert!(!SweepAxis::TlbEntries.can_move(CycleBucket::Compute));
        assert!(!SweepAxis::TlbEntries.can_move(CycleBucket::Dram));
        assert!(SweepAxis::ScratchpadBanks.can_move(CycleBucket::BankConflict));
        assert!(!SweepAxis::ScratchpadBanks.can_move(CycleBucket::Dram));
        assert!(SweepAxis::MemoryPartition.can_move(CycleBucket::Dram));
        assert!(SweepAxis::MemoryPartition.can_move(CycleBucket::Load));
        assert!(!SweepAxis::MemoryPartition.can_move(CycleBucket::Compute));
        for axis in [
            SweepAxis::TlbEntries,
            SweepAxis::ScratchpadBanks,
            SweepAxis::MemoryPartition,
        ] {
            assert_eq!(SweepAxis::parse(axis.name()), Some(axis));
            assert_eq!(SweepAxis::from_json(&axis.to_json()).unwrap(), axis);
        }
        assert_eq!(SweepAxis::parse("nope"), None);
    }

    #[test]
    fn traffic_counters() {
        let mut t = TrafficStats::new();
        t.record_read(64);
        t.record_write(128);
        assert_eq!(t.total_bytes(), 192);
        assert_eq!(t.reads, 1);
        assert_eq!(t.writes, 1);
        let mut u = TrafficStats::new();
        u.merge(&t);
        assert_eq!(u.total_bytes(), 192);
    }
}
