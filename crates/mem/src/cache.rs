//! Set-associative cache timing model (tags only).
//!
//! Models the SoC's shared L2: physically-indexed, write-back,
//! write-allocate, true-LRU replacement. Only tag state is tracked — the
//! functional bytes live in [`crate::dram::MainMemory`] — so one cache
//! instance can serve both the timing-only figure sweeps and the
//! functionally-exact correctness runs.

use crate::addr::{PhysAddr, LINE_SHIFT, LINE_SIZE};
use crate::stats::HitMissStats;

/// Whether an access reads or writes the line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read (load / DMA mvin / instruction fetch).
    Read,
    /// A write (store / DMA mvout).
    Write,
}

/// Configuration of a set-associative cache.
///
/// # Example
///
/// ```
/// use gemmini_mem::cache::CacheConfig;
/// let cfg = CacheConfig::l2_mb(1);
/// assert_eq!(cfg.size_bytes, 1 << 20);
/// assert_eq!(cfg.num_sets(), (1 << 20) / (8 * 64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes. Must be a multiple of `ways * LINE_SIZE`.
    pub size_bytes: u64,
    /// Associativity (lines per set). Must be non-zero.
    pub ways: u32,
    /// Latency of a hit, in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// A shared L2 configuration: `megabytes` MiB, 8-way, 16-cycle hits —
    /// the defaults used by the paper's Chipyard SoCs.
    pub fn l2_mb(megabytes: u64) -> Self {
        Self {
            size_bytes: megabytes << 20,
            ways: 8,
            hit_latency: 16,
        }
    }

    /// Number of sets implied by the capacity, associativity and line size.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * LINE_SIZE)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 {
            return Err("cache must have at least one way".to_string());
        }
        if self.size_bytes == 0 {
            return Err("cache capacity must be non-zero".to_string());
        }
        let set_bytes = self.ways as u64 * LINE_SIZE;
        if !self.size_bytes.is_multiple_of(set_bytes) {
            return Err(format!(
                "capacity {} is not a multiple of ways*line ({})",
                self.size_bytes, set_bytes
            ));
        }
        let sets = self.size_bytes / set_bytes;
        if !sets.is_power_of_two() {
            return Err(format!("number of sets {sets} is not a power of two"));
        }
        Ok(())
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self::l2_mb(1)
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// Whether a dirty line had to be written back to make room.
    pub writeback: bool,
    /// Latency contributed by the cache itself (hit latency; the miss path's
    /// DRAM latency is added by the caller, who owns the DRAM model).
    pub latency: u64,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic use stamp for true-LRU.
    lru: u64,
}

impl Way {
    const fn invalid() -> Self {
        Self {
            tag: 0,
            valid: false,
            dirty: false,
            lru: 0,
        }
    }
}

/// A set-associative, write-back, write-allocate cache (tags only).
///
/// # Example
///
/// ```
/// use gemmini_mem::cache::{Cache, CacheConfig, AccessKind};
/// use gemmini_mem::addr::PhysAddr;
///
/// let mut l2 = Cache::new(CacheConfig::l2_mb(1));
/// let a = PhysAddr::new(0x8000_0000);
/// assert!(!l2.access(a, AccessKind::Read).hit); // cold miss
/// assert!(l2.access(a, AccessKind::Read).hit); // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Way>,
    set_mask: u64,
    ways: usize,
    stamp: u64,
    stats: HitMissStats,
    evictions: u64,
    writebacks: u64,
}

impl Cache {
    /// Builds a cache from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`CacheConfig::validate`].
    pub fn new(config: CacheConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid cache configuration: {e}");
        }
        let sets = config.num_sets();
        Self {
            config,
            sets: vec![Way::invalid(); (sets * config.ways as u64) as usize],
            set_mask: sets - 1,
            ways: config.ways as usize,
            stamp: 0,
            stats: HitMissStats::new(),
            evictions: 0,
            writebacks: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    #[inline]
    fn set_and_tag(&self, addr: PhysAddr) -> (usize, u64) {
        let line = addr.raw() >> LINE_SHIFT;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_mask.count_ones();
        (set, tag)
    }

    /// Accesses the line containing `addr`, updating tag state, LRU order and
    /// statistics. On a miss the line is allocated (write-allocate for both
    /// reads and writes), evicting the LRU way.
    pub fn access(&mut self, addr: PhysAddr, kind: AccessKind) -> CacheAccess {
        self.stamp += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        let ways = &mut self.sets[base..base + self.ways];

        // Hit path.
        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.stamp;
            if kind == AccessKind::Write {
                way.dirty = true;
            }
            self.stats.record(true);
            return CacheAccess {
                hit: true,
                writeback: false,
                latency: self.config.hit_latency,
            };
        }

        // Miss: pick victim (invalid way first, else LRU).
        let victim = ways
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| if w.valid { w.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("cache set has at least one way");
        let v = &mut ways[victim];
        let writeback = v.valid && v.dirty;
        if v.valid {
            self.evictions += 1;
        }
        if writeback {
            self.writebacks += 1;
        }
        *v = Way {
            tag,
            valid: true,
            dirty: kind == AccessKind::Write,
            lru: self.stamp,
        };
        self.stats.record(false);
        CacheAccess {
            hit: false,
            writeback,
            latency: self.config.hit_latency,
        }
    }

    /// Returns whether the line containing `addr` is currently resident,
    /// without perturbing LRU state or statistics.
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.ways;
        self.sets[base..base + self.ways]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates every line (e.g. after a simulated context switch with
    /// cache flushing); dirty lines are counted as writebacks.
    pub fn flush(&mut self) {
        for w in &mut self.sets {
            if w.valid && w.dirty {
                self.writebacks += 1;
            }
            *w = Way::invalid();
        }
    }

    /// Hit/miss statistics since construction (or the last [`Self::reset_stats`]).
    pub fn stats(&self) -> &HitMissStats {
        &self.stats
    }

    /// Number of valid lines evicted to make room for fills.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of dirty lines written back to memory.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Resets statistics counters without touching tag state.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
        self.evictions = 0;
        self.writebacks = 0;
    }

    /// Number of currently valid lines (for occupancy checks in tests).
    pub fn valid_lines(&self) -> usize {
        self.sets.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B = 256 B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            hit_latency: 4,
        })
    }

    fn addr(set: u64, tag: u64) -> PhysAddr {
        // 2 sets -> 1 set-index bit above the 6 line-offset bits.
        PhysAddr::new((tag << 7) | (set << 6))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        let a = addr(0, 1);
        let first = c.access(a, AccessKind::Read);
        assert!(!first.hit);
        assert!(!first.writeback);
        let second = c.access(a, AccessKind::Read);
        assert!(second.hit);
        assert_eq!(second.latency, 4);
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = tiny();
        c.access(addr(0, 1), AccessKind::Read);
        c.access(addr(0, 2), AccessKind::Read);
        // Touch tag 1 so tag 2 becomes LRU.
        c.access(addr(0, 1), AccessKind::Read);
        // Fill a third tag: tag 2 must be evicted.
        c.access(addr(0, 3), AccessKind::Read);
        assert!(c.probe(addr(0, 1)));
        assert!(!c.probe(addr(0, 2)));
        assert!(c.probe(addr(0, 3)));
    }

    #[test]
    fn dirty_eviction_triggers_writeback() {
        let mut c = tiny();
        c.access(addr(0, 1), AccessKind::Write);
        c.access(addr(0, 2), AccessKind::Read);
        let third = c.access(addr(0, 3), AccessKind::Read); // evicts dirty tag 1
        assert!(third.writeback);
        assert_eq!(c.writebacks(), 1);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(addr(0, 1), AccessKind::Read);
        c.access(addr(0, 2), AccessKind::Read);
        let third = c.access(addr(0, 3), AccessKind::Read);
        assert!(!third.writeback);
        assert_eq!(c.writebacks(), 0);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(addr(0, 1), AccessKind::Read);
        c.access(addr(0, 2), AccessKind::Read);
        // Filling set 1 must not evict set 0's lines.
        c.access(addr(1, 1), AccessKind::Read);
        c.access(addr(1, 2), AccessKind::Read);
        assert!(c.probe(addr(0, 1)));
        assert!(c.probe(addr(0, 2)));
        assert_eq!(c.valid_lines(), 4);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(addr(0, 1), AccessKind::Read);
        c.access(addr(0, 1), AccessKind::Write); // hit, marks dirty
        c.access(addr(0, 2), AccessKind::Read);
        let evicting = c.access(addr(0, 3), AccessKind::Read); // evicts LRU = tag 2? no: tag1 used later
                                                               // tag 1 was used most recently before tag 2's fill; LRU is tag 1? Order:
                                                               // t1(r,stamp1) t1(w,stamp2) t2(r,stamp3) -> LRU is tag1(stamp2)
        assert!(evicting.writeback, "dirty tag 1 is the LRU victim");
    }

    #[test]
    fn flush_invalidates_and_counts_dirty_writebacks() {
        let mut c = tiny();
        c.access(addr(0, 1), AccessKind::Write);
        c.access(addr(1, 1), AccessKind::Read);
        c.flush();
        assert_eq!(c.valid_lines(), 0);
        assert_eq!(c.writebacks(), 1);
        assert!(!c.probe(addr(0, 1)));
    }

    #[test]
    fn probe_does_not_perturb_lru() {
        let mut c = tiny();
        c.access(addr(0, 1), AccessKind::Read);
        c.access(addr(0, 2), AccessKind::Read);
        // Probing tag 1 must NOT refresh it; tag 1 remains LRU and is evicted.
        assert!(c.probe(addr(0, 1)));
        c.access(addr(0, 3), AccessKind::Read);
        assert!(!c.probe(addr(0, 1)));
    }

    #[test]
    #[should_panic(expected = "invalid cache configuration")]
    fn invalid_config_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 100, // not a multiple of ways*line
            ways: 2,
            hit_latency: 1,
        });
    }

    #[test]
    fn config_validation_messages() {
        assert!(CacheConfig {
            size_bytes: 0,
            ways: 1,
            hit_latency: 1
        }
        .validate()
        .is_err());
        assert!(CacheConfig {
            size_bytes: 64,
            ways: 0,
            hit_latency: 1
        }
        .validate()
        .is_err());
        // 3 sets: not a power of two.
        assert!(CacheConfig {
            size_bytes: 3 * 64,
            ways: 1,
            hit_latency: 1
        }
        .validate()
        .is_err());
        assert!(CacheConfig::l2_mb(2).validate().is_ok());
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        // 256B cache, stream 1 KiB repeatedly: second pass should still miss
        // (LRU with a circular working set 4x the capacity never hits).
        let mut c = tiny();
        for _pass in 0..2 {
            for i in 0..16u64 {
                c.access(PhysAddr::new(i * 64), AccessKind::Read);
            }
        }
        assert_eq!(c.stats().hits(), 0);
        assert_eq!(c.stats().misses(), 32);
    }

    #[test]
    fn working_set_fitting_in_cache_hits_on_second_pass() {
        let mut c = tiny();
        for i in 0..4u64 {
            c.access(PhysAddr::new(i * 64), AccessKind::Read);
        }
        for i in 0..4u64 {
            assert!(c.access(PhysAddr::new(i * 64), AccessKind::Read).hit);
        }
    }
}
