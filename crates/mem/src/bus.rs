//! System-bus timing model.
//!
//! The bus connects each accelerator's DMA and each CPU to the shared L2.
//! It is a single shared channel with a configurable width in bytes per
//! cycle; transfers from different requestors serialize, which is the first
//! of the two contention points (the other being the DRAM channel) in the
//! multi-core case study of Section V-B.

use crate::stats::TrafficStats;
use crate::Cycle;

/// Bus configuration. The default (16 B/cycle, 1-cycle arbitration) matches
/// the TileLink SBus width used by the paper's edge SoC configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Transfer width in bytes per cycle.
    pub bytes_per_cycle: u64,
    /// Fixed arbitration/routing latency per transaction, in cycles.
    pub arbitration_latency: u64,
}

impl BusConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.bytes_per_cycle == 0 {
            return Err("bus width must be non-zero".to_string());
        }
        Ok(())
    }

    /// Cycles an uncontended transfer of `bytes` occupies the bus
    /// (beats plus arbitration) — the ideal streaming time a requestor
    /// pays even when the rest of the memory path is free.
    pub fn service_cycles(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.bytes_per_cycle).max(1) + self.arbitration_latency
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        Self {
            bytes_per_cycle: 16,
            arbitration_latency: 1,
        }
    }
}

/// A shared bus: transfers occupy the bus for `bytes / width` cycles and
/// serialize in arrival order.
///
/// # Example
///
/// ```
/// use gemmini_mem::bus::{Bus, BusConfig};
/// let mut bus = Bus::new(BusConfig { bytes_per_cycle: 16, arbitration_latency: 1 });
/// assert_eq!(bus.transfer(0, 64), 5); // 1 arb + 4 beats
/// assert_eq!(bus.transfer(0, 64), 9); // queued behind the first
/// ```
#[derive(Debug, Clone)]
pub struct Bus {
    config: BusConfig,
    free_at: Cycle,
    stats: TrafficStats,
}

impl Bus {
    /// Builds a bus from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`BusConfig::validate`].
    pub fn new(config: BusConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid bus configuration: {e}");
        }
        Self {
            config,
            free_at: 0,
            stats: TrafficStats::new(),
        }
    }

    /// The configuration this bus was built with.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// Schedules a transfer of `bytes` requested at `now`; returns its
    /// completion cycle.
    pub fn transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let beats = bytes.div_ceil(self.config.bytes_per_cycle).max(1);
        let start = now.max(self.free_at);
        self.free_at = start + beats;
        self.stats.record_read(bytes);
        self.free_at + self.config.arbitration_latency
    }

    /// Cycle at which the bus next becomes free.
    pub fn free_at(&self) -> Cycle {
        self.free_at
    }

    /// Traffic moved over the bus.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets traffic statistics (occupancy is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_beats_plus_arbitration() {
        let mut b = Bus::new(BusConfig {
            bytes_per_cycle: 16,
            arbitration_latency: 2,
        });
        assert_eq!(b.transfer(0, 32), 4); // 2 beats + 2 arb
    }

    #[test]
    fn transfers_serialize() {
        let mut b = Bus::new(BusConfig::default());
        let a = b.transfer(0, 160); // 10 beats
        let c = b.transfer(5, 16); // queued: starts at 10
        assert_eq!(a, 11);
        assert_eq!(c, 12);
    }

    #[test]
    fn idle_bus_starts_at_request_time() {
        let mut b = Bus::new(BusConfig::default());
        assert_eq!(b.transfer(100, 16), 102);
    }

    #[test]
    fn partial_beat_rounds_up() {
        let mut b = Bus::new(BusConfig {
            bytes_per_cycle: 16,
            arbitration_latency: 0,
        });
        assert_eq!(b.transfer(0, 17), 2);
    }

    #[test]
    #[should_panic(expected = "invalid bus configuration")]
    fn zero_width_panics() {
        let _ = Bus::new(BusConfig {
            bytes_per_cycle: 0,
            arbitration_latency: 0,
        });
    }
}
