//! Address newtypes and line/page arithmetic.
//!
//! Physical and virtual addresses are distinct types so that the translation
//! boundary (the `gemmini-vm` crate's job) can never be crossed accidentally: a DMA
//! engine holding a [`VirtAddr`] must go through the TLB to obtain a
//! [`PhysAddr`] before it can touch the cache hierarchy.

use std::fmt;

/// Size of a memory page in bytes (4 KiB, as in sv39).
pub const PAGE_SIZE: u64 = 4096;
/// Log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Size of a cache line in bytes.
pub const LINE_SIZE: u64 = 64;
/// Log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;

/// A physical memory address.
///
/// # Example
///
/// ```
/// use gemmini_mem::addr::PhysAddr;
/// let a = PhysAddr::new(0x8000_1234);
/// assert_eq!(a.line_index(), 0x8000_1234 >> 6);
/// assert_eq!(a.offset_in_page(), 0x234);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

/// A virtual memory address, meaningful only within one address space.
///
/// # Example
///
/// ```
/// use gemmini_mem::addr::VirtAddr;
/// let v = VirtAddr::new(0x1000);
/// assert_eq!(v.page_number(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

macro_rules! addr_common {
    ($ty:ident) => {
        impl $ty {
            /// Creates an address from a raw integer value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw integer value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the address advanced by `bytes`.
            #[inline]
            pub const fn add(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }

            /// Returns the page number (address divided by [`PAGE_SIZE`]).
            #[inline]
            pub const fn page_number(self) -> u64 {
                self.0 >> PAGE_SHIFT
            }

            /// Returns the byte offset within the page.
            #[inline]
            pub const fn offset_in_page(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// Returns the cache-line index (address divided by [`LINE_SIZE`]).
            #[inline]
            pub const fn line_index(self) -> u64 {
                self.0 >> LINE_SHIFT
            }

            /// Returns the address rounded down to its cache-line boundary.
            #[inline]
            pub const fn line_aligned(self) -> Self {
                Self(self.0 & !(LINE_SIZE - 1))
            }

            /// Returns the address rounded down to its page boundary.
            #[inline]
            pub const fn page_aligned(self) -> Self {
                Self(self.0 & !(PAGE_SIZE - 1))
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $ty {
            fn from(raw: u64) -> Self {
                Self::new(raw)
            }
        }

        impl From<$ty> for u64 {
            fn from(a: $ty) -> u64 {
                a.raw()
            }
        }
    };
}

addr_common!(PhysAddr);
addr_common!(VirtAddr);

/// Iterates over the cache lines touched by the byte range `[start, start + len)`.
///
/// Yields line-aligned addresses of the same type as `start`.
///
/// # Example
///
/// ```
/// use gemmini_mem::addr::{lines_in_range, PhysAddr, LINE_SIZE};
/// let lines: Vec<_> = lines_in_range(PhysAddr::new(60), 10).collect();
/// assert_eq!(lines, vec![PhysAddr::new(0), PhysAddr::new(64)]);
/// ```
pub fn lines_in_range(start: PhysAddr, len: u64) -> impl Iterator<Item = PhysAddr> {
    let first = start.line_index();
    let last = if len == 0 {
        first
    } else {
        (start.raw() + len - 1) >> LINE_SHIFT
    };
    let count = if len == 0 { 0 } else { last - first + 1 };
    (0..count).map(move |i| PhysAddr::new((first + i) << LINE_SHIFT))
}

/// Returns the number of cache lines touched by a byte range of length `len`
/// starting at `start`.
pub fn line_count(start: u64, len: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    let first = start >> LINE_SHIFT;
    let last = (start + len - 1) >> LINE_SHIFT;
    last - first + 1
}

/// Iterates over the virtual pages touched by `[start, start + len)`.
///
/// # Example
///
/// ```
/// use gemmini_mem::addr::{pages_in_range, VirtAddr};
/// let pages: Vec<_> = pages_in_range(VirtAddr::new(4090), 10).map(|p| p.page_number()).collect();
/// assert_eq!(pages, vec![0, 1]);
/// ```
pub fn pages_in_range(start: VirtAddr, len: u64) -> impl Iterator<Item = VirtAddr> {
    let first = start.page_number();
    let last = if len == 0 {
        first
    } else {
        (start.raw() + len - 1) >> PAGE_SHIFT
    };
    let count = if len == 0 { 0 } else { last - first + 1 };
    (0..count).map(move |i| VirtAddr::new((first + i) << PAGE_SHIFT))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_and_line_arithmetic() {
        let a = PhysAddr::new(0x1234);
        assert_eq!(a.page_number(), 1);
        assert_eq!(a.offset_in_page(), 0x234);
        assert_eq!(a.line_aligned(), PhysAddr::new(0x1200));
        assert_eq!(a.page_aligned(), PhysAddr::new(0x1000));
    }

    #[test]
    fn zero_length_ranges_touch_nothing() {
        assert_eq!(lines_in_range(PhysAddr::new(100), 0).count(), 0);
        assert_eq!(pages_in_range(VirtAddr::new(100), 0).count(), 0);
        assert_eq!(line_count(100, 0), 0);
    }

    #[test]
    fn single_byte_touches_one_line_and_page() {
        assert_eq!(lines_in_range(PhysAddr::new(63), 1).count(), 1);
        assert_eq!(lines_in_range(PhysAddr::new(63), 2).count(), 2);
        assert_eq!(pages_in_range(VirtAddr::new(4095), 1).count(), 1);
        assert_eq!(pages_in_range(VirtAddr::new(4095), 2).count(), 2);
    }

    #[test]
    fn exact_line_spans() {
        // A full line starting at a line boundary touches exactly one line.
        assert_eq!(lines_in_range(PhysAddr::new(128), 64).count(), 1);
        // Starting mid-line, the same length spills into a second line.
        assert_eq!(lines_in_range(PhysAddr::new(130), 64).count(), 2);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(PhysAddr::new(0xabc).to_string(), "0xabc");
        assert_eq!(format!("{:x}", VirtAddr::new(0xabc)), "abc");
    }

    #[test]
    fn conversions_roundtrip() {
        let a = PhysAddr::from(42u64);
        assert_eq!(u64::from(a), 42);
    }

    #[test]
    fn line_count_matches_iterator() {
        for start in [0u64, 1, 63, 64, 65, 4095] {
            for len in [0u64, 1, 63, 64, 65, 128, 4096] {
                assert_eq!(
                    line_count(start, len),
                    lines_in_range(PhysAddr::new(start), len).count() as u64,
                    "start={start} len={len}"
                );
            }
        }
    }
}
