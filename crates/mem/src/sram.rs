//! Banked SRAM timing for the accelerator's local scratchpad.
//!
//! Gemmini's scratchpad is built from single-ported SRAM banks; the DMA and
//! the spatial array contend for banks, and same-cycle accesses to the same
//! bank serialize. This module models that contention at row granularity.
//! (Functional scratchpad *contents* live in `gemmini-core`; this is the
//! timing/occupancy model only.)

use crate::metrics::{Counter, Metrics};
use crate::Cycle;

/// Banked-SRAM configuration.
///
/// The paper's edge configuration uses a 256 KiB scratchpad of 4 banks, each
/// row as wide as the spatial array (e.g. 16 bytes for a 16×16 int8 mesh).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramConfig {
    /// Number of banks.
    pub banks: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Row width in bytes.
    pub row_bytes: u32,
    /// Access latency of one row, in cycles.
    pub access_latency: u64,
}

impl SramConfig {
    /// Creates a configuration with `capacity_kb` KiB split across `banks`
    /// banks of `row_bytes`-byte rows, 1-cycle access.
    ///
    /// # Panics
    ///
    /// Panics if the capacity does not divide evenly into banks and rows.
    pub fn with_capacity_kb(capacity_kb: u32, banks: u32, row_bytes: u32) -> Self {
        let total = capacity_kb as u64 * 1024;
        let per_bank = total / banks as u64;
        assert_eq!(
            total % banks as u64,
            0,
            "capacity must divide evenly into banks"
        );
        assert_eq!(
            per_bank % row_bytes as u64,
            0,
            "bank capacity must divide evenly into rows"
        );
        Self {
            banks,
            rows_per_bank: (per_bank / row_bytes as u64) as u32,
            row_bytes,
            access_latency: 1,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.banks as u64 * self.rows_per_bank as u64 * self.row_bytes as u64
    }

    /// Total number of addressable rows across all banks.
    pub fn total_rows(&self) -> u32 {
        self.banks * self.rows_per_bank
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.banks == 0 {
            return Err("SRAM must have at least one bank".to_string());
        }
        if self.rows_per_bank == 0 {
            return Err("SRAM bank must have at least one row".to_string());
        }
        if self.row_bytes == 0 {
            return Err("SRAM row width must be non-zero".to_string());
        }
        Ok(())
    }
}

impl Default for SramConfig {
    fn default() -> Self {
        // 256 KiB, 4 banks, 16-byte rows: the paper's edge scratchpad.
        Self::with_capacity_kb(256, 4, 16)
    }
}

/// Banked SRAM timing model: rows are interleaved across banks
/// (row *r* lives in bank `r % banks`), and each bank is single-ported.
///
/// # Example
///
/// ```
/// use gemmini_mem::sram::{BankedSram, SramConfig};
/// let mut sp = BankedSram::new(SramConfig::with_capacity_kb(256, 4, 16));
/// // Two same-cycle accesses to rows in the same bank serialize:
/// let a = sp.access_row(0, 0);
/// let b = sp.access_row(0, 4); // row 4 -> bank 0 again
/// assert_eq!(a, 1);
/// assert_eq!(b, 2);
/// ```
#[derive(Debug, Clone)]
pub struct BankedSram {
    config: SramConfig,
    bank_free_at: Vec<Cycle>,
    accesses: u64,
    conflicts: u64,
    metrics: Metrics,
    in_conflict_run: bool,
}

impl BankedSram {
    /// Builds the model from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SramConfig::validate`].
    pub fn new(config: SramConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid SRAM configuration: {e}");
        }
        Self {
            bank_free_at: vec![0; config.banks as usize],
            config,
            accesses: 0,
            conflicts: 0,
            metrics: Metrics::disabled(),
            in_conflict_run: false,
        }
    }

    /// Attaches a live-metrics handle; conflicting accesses count both
    /// individual conflicts and maximal conflict *runs* (consecutive
    /// delayed accesses with no clean access between them). Disabled by
    /// default.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &SramConfig {
        &self.config
    }

    /// The bank holding row `row`.
    #[inline]
    pub fn bank_of(&self, row: u32) -> u32 {
        row % self.config.banks
    }

    /// Accesses one row at time `now`; returns the completion cycle,
    /// accounting for a busy bank (a bank conflict delays the access).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn access_row(&mut self, now: Cycle, row: u32) -> Cycle {
        assert!(
            row < self.config.total_rows(),
            "scratchpad row {row} out of range (total {})",
            self.config.total_rows()
        );
        let bank = self.bank_of(row) as usize;
        let start = now.max(self.bank_free_at[bank]);
        if start > now {
            self.conflicts += 1;
            self.metrics.inc(Counter::SramBankConflicts);
            if !self.in_conflict_run {
                self.in_conflict_run = true;
                self.metrics.inc(Counter::SramConflictRuns);
            }
        } else {
            self.in_conflict_run = false;
        }
        self.accesses += 1;
        self.bank_free_at[bank] = start + 1; // one row per cycle per bank
        start + self.config.access_latency
    }

    /// Accesses `count` consecutive rows starting at `row`; returns the cycle
    /// at which the last row completes. Consecutive rows hit different banks,
    /// so a burst streams at one row per cycle when `count >= banks`.
    pub fn access_rows(&mut self, now: Cycle, row: u32, count: u32) -> Cycle {
        let mut done = now;
        for i in 0..count {
            done = done.max(self.access_row(now + i as Cycle, row + i));
        }
        done
    }

    /// Total accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that were delayed by a busy bank.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_math() {
        let c = SramConfig::with_capacity_kb(256, 4, 16);
        assert_eq!(c.capacity_bytes(), 256 * 1024);
        assert_eq!(c.rows_per_bank, 4096);
        assert_eq!(c.total_rows(), 16384);
    }

    #[test]
    fn rows_interleave_across_banks() {
        let sp = BankedSram::new(SramConfig::with_capacity_kb(64, 4, 16));
        assert_eq!(sp.bank_of(0), 0);
        assert_eq!(sp.bank_of(1), 1);
        assert_eq!(sp.bank_of(4), 0);
    }

    #[test]
    fn same_bank_same_cycle_conflicts() {
        let mut sp = BankedSram::new(SramConfig::with_capacity_kb(64, 4, 16));
        let a = sp.access_row(10, 0);
        let b = sp.access_row(10, 4);
        assert_eq!(a, 11);
        assert_eq!(b, 12);
        assert_eq!(sp.conflicts(), 1);
    }

    #[test]
    fn different_banks_same_cycle_do_not_conflict() {
        let mut sp = BankedSram::new(SramConfig::with_capacity_kb(64, 4, 16));
        let a = sp.access_row(10, 0);
        let b = sp.access_row(10, 1);
        assert_eq!(a, 11);
        assert_eq!(b, 11);
        assert_eq!(sp.conflicts(), 0);
    }

    #[test]
    fn burst_streams_one_row_per_cycle() {
        let mut sp = BankedSram::new(SramConfig::with_capacity_kb(64, 4, 16));
        // 8 consecutive rows starting at cycle 0: last completes at 8.
        let done = sp.access_rows(0, 0, 8);
        assert_eq!(done, 8);
        assert_eq!(sp.conflicts(), 0);
    }

    #[test]
    fn conflict_runs_count_maximal_streaks() {
        use crate::metrics::{Counter, Metrics};
        let (metrics, registry) = Metrics::enabled();
        let mut sp = BankedSram::new(SramConfig::with_capacity_kb(64, 4, 16));
        sp.set_metrics(metrics);
        // Streak 1: three back-to-back conflicts on bank 0.
        sp.access_row(0, 0);
        sp.access_row(0, 4);
        sp.access_row(0, 8);
        sp.access_row(0, 12);
        // A clean access (far future, bank free) ends the run.
        sp.access_row(100, 0);
        // Streak 2: one conflict.
        sp.access_row(100, 4);
        assert_eq!(registry.counter(Counter::SramBankConflicts), 4);
        assert_eq!(registry.counter(Counter::SramConflictRuns), 2);
        assert_eq!(sp.conflicts(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_row_panics() {
        let mut sp = BankedSram::new(SramConfig::with_capacity_kb(1, 1, 16));
        sp.access_row(0, 9999);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_capacity_panics() {
        let _ = SramConfig::with_capacity_kb(1, 3, 16);
    }

    #[test]
    fn validation_rejects_zero_fields() {
        for broken in [
            SramConfig {
                banks: 0,
                ..SramConfig::default()
            },
            SramConfig {
                rows_per_bank: 0,
                ..SramConfig::default()
            },
            SramConfig {
                row_bytes: 0,
                ..SramConfig::default()
            },
        ] {
            assert!(broken.validate().is_err(), "{broken:?}");
        }
    }
}
