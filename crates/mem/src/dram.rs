//! DRAM timing model and the functional physical-memory byte store.
//!
//! [`DramModel`] is purely a timing device: a fixed access latency plus a
//! finite-bandwidth channel shared by all requestors (this is where dual-core
//! contention in the Fig. 9 case study comes from). [`MainMemory`] is purely
//! functional: a sparse, page-granular byte store with no timing at all.

use crate::addr::{PhysAddr, PAGE_SHIFT, PAGE_SIZE};
use crate::stats::TrafficStats;
use crate::Cycle;
use std::collections::HashMap;

/// DRAM channel configuration.
///
/// Defaults model a single LPDDR4-class channel behind an edge SoC:
/// ~120-cycle access latency at 1 GHz and 8 B/cycle of peak bandwidth
/// (≈8 GB/s — a single x32 LPDDR4-2133 channel), which also calibrates the
/// accelerator's end-to-end ResNet50 time to the paper's 22.8 FPS anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Latency from request to first beat, in cycles.
    pub latency: u64,
    /// Peak transfer bandwidth in bytes per cycle.
    pub bytes_per_cycle: u64,
}

impl DramConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.bytes_per_cycle == 0 {
            return Err("DRAM bandwidth must be non-zero".to_string());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            latency: 120,
            bytes_per_cycle: 8,
        }
    }
}

/// Shared-channel DRAM timing model.
///
/// The channel serializes transfers: a transfer occupies the channel for
/// `bytes / bytes_per_cycle` cycles starting no earlier than both the request
/// time and the channel's previous completion. The returned completion time
/// additionally includes the access latency. This first-come-first-served
/// occupancy model is what makes two cores' memory streams slow each other
/// down.
///
/// # Example
///
/// ```
/// use gemmini_mem::dram::{DramModel, DramConfig};
/// let mut dram = DramModel::new(DramConfig { latency: 100, bytes_per_cycle: 16 });
/// let first = dram.transfer(0, 64);
/// assert_eq!(first, 100 + 4);
/// // Second transfer queues behind the first one's channel occupancy.
/// let second = dram.transfer(0, 64);
/// assert_eq!(second, 100 + 8);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    channel_free_at: Cycle,
    stats: TrafficStats,
}

impl DramModel {
    /// Builds a DRAM model from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`DramConfig::validate`].
    pub fn new(config: DramConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid DRAM configuration: {e}");
        }
        Self {
            config,
            channel_free_at: 0,
            stats: TrafficStats::new(),
        }
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Schedules a transfer of `bytes` requested at time `now`; returns the
    /// cycle at which the data is fully delivered.
    pub fn transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let occupancy = bytes.div_ceil(self.config.bytes_per_cycle).max(1);
        let start = now.max(self.channel_free_at);
        self.channel_free_at = start + occupancy;
        self.stats.record_read(bytes);
        self.channel_free_at + self.config.latency
    }

    /// Cycle at which the channel next becomes free.
    pub fn channel_free_at(&self) -> Cycle {
        self.channel_free_at
    }

    /// Traffic moved through the channel.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets traffic statistics (channel occupancy is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::new();
    }
}

/// Sparse, page-granular physical-memory byte store (functional only).
///
/// Pages are allocated lazily and zero-filled, mirroring how an OS hands out
/// zeroed frames. There is no timing here — all latency accounting lives in
/// [`DramModel`] and [`crate::cache::Cache`].
///
/// # Example
///
/// ```
/// use gemmini_mem::dram::MainMemory;
/// use gemmini_mem::addr::PhysAddr;
///
/// let mut mem = MainMemory::new();
/// mem.write(PhysAddr::new(0x1000), &[1, 2, 3]);
/// let mut buf = [0u8; 3];
/// mem.read(PhysAddr::new(0x1000), &mut buf);
/// assert_eq!(buf, [1, 2, 3]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MainMemory {
    pages: HashMap<u64, Box<[u8]>>,
}

impl MainMemory {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn page_mut(&mut self, page_number: u64) -> &mut [u8] {
        self.pages
            .entry(page_number)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Reads `buf.len()` bytes starting at `addr`. Unwritten memory reads as
    /// zero.
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) {
        let mut off = 0usize;
        let mut cur = addr.raw();
        while off < buf.len() {
            let page = cur >> PAGE_SHIFT;
            let in_page = (cur & (PAGE_SIZE - 1)) as usize;
            let n = (PAGE_SIZE as usize - in_page).min(buf.len() - off);
            match self.pages.get(&page) {
                Some(p) => buf[off..off + n].copy_from_slice(&p[in_page..in_page + n]),
                None => buf[off..off + n].fill(0),
            }
            off += n;
            cur += n as u64;
        }
    }

    /// Writes `data` starting at `addr`, allocating pages as needed.
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) {
        let mut off = 0usize;
        let mut cur = addr.raw();
        while off < data.len() {
            let page = cur >> PAGE_SHIFT;
            let in_page = (cur & (PAGE_SIZE - 1)) as usize;
            let n = (PAGE_SIZE as usize - in_page).min(data.len() - off);
            self.page_mut(page)[in_page..in_page + n].copy_from_slice(&data[off..off + n]);
            off += n;
            cur += n as u64;
        }
    }

    /// Reads a single byte.
    pub fn read_u8(&self, addr: PhysAddr) -> u8 {
        let mut b = [0u8; 1];
        self.read(addr, &mut b);
        b[0]
    }

    /// Writes a single byte.
    pub fn write_u8(&mut self, addr: PhysAddr, value: u8) {
        self.write(addr, &[value]);
    }

    /// Reads a little-endian `i32`.
    pub fn read_i32(&self, addr: PhysAddr) -> i32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        i32::from_le_bytes(b)
    }

    /// Writes a little-endian `i32`.
    pub fn write_i32(&mut self, addr: PhysAddr, value: i32) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Reads a little-endian `f32`.
    pub fn read_f32(&self, addr: PhysAddr) -> f32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        f32::from_le_bytes(b)
    }

    /// Writes a little-endian `f32`.
    pub fn write_f32(&mut self, addr: PhysAddr, value: f32) {
        self.write(addr, &value.to_le_bytes());
    }

    /// Number of pages currently materialized.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_includes_latency_and_occupancy() {
        let mut d = DramModel::new(DramConfig {
            latency: 100,
            bytes_per_cycle: 16,
        });
        assert_eq!(d.transfer(0, 64), 104);
    }

    #[test]
    fn back_to_back_transfers_queue_on_the_channel() {
        let mut d = DramModel::new(DramConfig {
            latency: 100,
            bytes_per_cycle: 16,
        });
        let a = d.transfer(0, 160); // occupies channel for 10 cycles
        let b = d.transfer(0, 160); // starts at cycle 10
        assert_eq!(a, 110);
        assert_eq!(b, 120);
    }

    #[test]
    fn idle_channel_starts_at_request_time() {
        let mut d = DramModel::new(DramConfig {
            latency: 10,
            bytes_per_cycle: 16,
        });
        let done = d.transfer(1000, 16);
        assert_eq!(done, 1011);
    }

    #[test]
    fn zero_byte_transfer_still_occupies_one_cycle() {
        let mut d = DramModel::new(DramConfig {
            latency: 10,
            bytes_per_cycle: 16,
        });
        assert_eq!(d.transfer(0, 0), 11);
    }

    #[test]
    fn traffic_is_counted() {
        let mut d = DramModel::new(DramConfig::default());
        d.transfer(0, 64);
        d.transfer(0, 64);
        assert_eq!(d.stats().total_bytes(), 128);
    }

    #[test]
    #[should_panic(expected = "invalid DRAM configuration")]
    fn zero_bandwidth_panics() {
        let _ = DramModel::new(DramConfig {
            latency: 1,
            bytes_per_cycle: 0,
        });
    }

    #[test]
    fn main_memory_roundtrip() {
        let mut m = MainMemory::new();
        m.write(PhysAddr::new(10), &[1, 2, 3, 4]);
        let mut buf = [0u8; 4];
        m.read(PhysAddr::new(10), &mut buf);
        assert_eq!(buf, [1, 2, 3, 4]);
    }

    #[test]
    fn main_memory_cross_page_write_and_read() {
        let mut m = MainMemory::new();
        let addr = PhysAddr::new(PAGE_SIZE - 2);
        m.write(addr, &[9, 8, 7, 6]);
        let mut buf = [0u8; 4];
        m.read(addr, &mut buf);
        assert_eq!(buf, [9, 8, 7, 6]);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = MainMemory::new();
        let mut buf = [0xffu8; 8];
        m.read(PhysAddr::new(12345), &mut buf);
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn typed_accessors_roundtrip() {
        let mut m = MainMemory::new();
        m.write_i32(PhysAddr::new(100), -123456);
        assert_eq!(m.read_i32(PhysAddr::new(100)), -123456);
        m.write_f32(PhysAddr::new(200), 3.25);
        assert_eq!(m.read_f32(PhysAddr::new(200)), 3.25);
        m.write_u8(PhysAddr::new(300), 0xab);
        assert_eq!(m.read_u8(PhysAddr::new(300)), 0xab);
    }
}
