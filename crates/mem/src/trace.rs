//! The trace-event substrate behind the cycle-attribution profiler and
//! the Chrome `trace_event` export.
//!
//! Two layers share this module:
//!
//! * [`Tracer`] — a cloneable handle to an optional, shared [`EventSink`]
//!   trait object. The disabled handle (the default) is a `None` check on
//!   every emission site, so instrumented components pay nothing when
//!   tracing is off. Components across the stack (engine units, DMA,
//!   TLB/PTW, L2/DRAM) hold clones of one handle, each tagged with a
//!   `pid` lane, and emit spans and instant events into the same sink.
//! * [`AttributionLog`] — the always-on, exact record of *busy intervals*
//!   that the cycle-attribution report is computed from. Intervals carry
//!   an [`AttributionKind`]; [`AttributionLog::finish`] partitions the
//!   timeline by a fixed priority so every simulated cycle lands in
//!   exactly one bucket of
//!   [`CycleAttribution`](crate::stats::CycleAttribution). The log
//!   coalesces adjacent same-kind intervals on insert and folds settled
//!   prefixes into bucket counters on demand, so memory stays bounded on
//!   full-network runs.
//!
//! Exported traces use the Chrome `trace_event` *array form* — a JSON
//! array of objects with `ph`/`ts`/`dur`/`pid`/`tid` keys — loadable
//! directly in `chrome://tracing` or Perfetto. One simulated cycle is
//! encoded as one microsecond of trace time.

use crate::json::Json;
use crate::stats::CycleAttribution;
use crate::Cycle;
use std::fmt;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// The `pid` lane used for shared (not per-core) SoC components such as
/// the L2 and the DRAM channel. Per-core lanes use the core id.
pub const SOC_TRACE_PID: u64 = 1000;

/// Which component emitted an event. Becomes the Chrome trace `tid`
/// lane (within the emitting component's `pid`) and the event category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// The engine's load (mvin) unit.
    LoadUnit,
    /// The engine's execute unit (preloads, peripheral work).
    ExecuteUnit,
    /// The engine's store (mvout) unit.
    StoreUnit,
    /// The spatial array itself (compute occupancy).
    Mesh,
    /// The scratchpad's banked SRAM.
    Scratchpad,
    /// The stream DMA engine.
    Dma,
    /// The TLB hierarchy (filter registers, private/shared TLBs).
    Tlb,
    /// The page-table walker.
    Ptw,
    /// The shared L2 cache.
    L2,
    /// The DRAM channel.
    Dram,
    /// The software runtime (layer boundaries).
    Runtime,
}

impl Component {
    /// Stable lane number for the Chrome trace `tid` field.
    pub fn lane(self) -> u64 {
        match self {
            Self::Runtime => 0,
            Self::LoadUnit => 1,
            Self::ExecuteUnit => 2,
            Self::Mesh => 3,
            Self::StoreUnit => 4,
            Self::Dma => 5,
            Self::Scratchpad => 6,
            Self::Tlb => 7,
            Self::Ptw => 8,
            Self::L2 => 9,
            Self::Dram => 10,
        }
    }

    /// Short category label used in the Chrome trace `cat` field.
    pub fn label(self) -> &'static str {
        match self {
            Self::LoadUnit => "load",
            Self::ExecuteUnit => "execute",
            Self::StoreUnit => "store",
            Self::Mesh => "mesh",
            Self::Scratchpad => "scratchpad",
            Self::Dma => "dma",
            Self::Tlb => "tlb",
            Self::Ptw => "ptw",
            Self::L2 => "l2",
            Self::Dram => "dram",
            Self::Runtime => "runtime",
        }
    }
}

/// Why a span spent time stalled, if it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StallCause {
    /// Not a stall (plain occupancy).
    #[default]
    None,
    /// Waiting on the TLB hierarchy (hit pipeline latency or a walk).
    TlbMiss,
    /// Waiting on a busy scratchpad bank.
    BankConflict,
    /// Waiting on the bus → L2 → DRAM path.
    DramAccess,
    /// A shared-L2 miss forced a DRAM line fill.
    CacheMiss,
}

impl StallCause {
    /// Short label for the Chrome trace `args.cause` field.
    pub fn label(self) -> &'static str {
        match self {
            Self::None => "none",
            Self::TlbMiss => "tlb-miss",
            Self::BankConflict => "bank-conflict",
            Self::DramAccess => "dram-access",
            Self::CacheMiss => "cache-miss",
        }
    }
}

/// One emitted event: a span (`dur > 0`) or an instant (`dur == 0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Process lane: the core id, or [`SOC_TRACE_PID`] for shared state.
    pub pid: u64,
    /// Emitting component (becomes the thread lane and category).
    pub component: Component,
    /// Event name shown in the viewer.
    pub name: String,
    /// First cycle covered.
    pub start: Cycle,
    /// Covered cycles (`0` renders as an instant event).
    pub dur: Cycle,
    /// Stall classification, if any.
    pub cause: StallCause,
}

/// Destination for emitted events. The "no-op default" is simply a
/// disabled [`Tracer`] (no sink at all); [`NullSink`] exists for callers
/// that need an explicit do-nothing object.
pub trait EventSink: Send + fmt::Debug {
    /// Receives one event.
    fn record(&mut self, event: TraceEvent);
}

/// An [`EventSink`] that drops everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}
}

/// An [`EventSink`] that buffers events in memory for later export.
#[derive(Debug, Default)]
pub struct BufferSink {
    events: Vec<TraceEvent>,
}

impl BufferSink {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffered events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drains and returns the buffered events.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl EventSink for BufferSink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Cloneable handle to an optional shared event sink.
///
/// The default handle is *disabled*: every emission method is a single
/// `Option` check, which is what makes instrumentation free when tracing
/// is off. Clones share the same sink; [`Tracer::with_pid`] re-tags a
/// clone with a different `pid` lane so one sink collects events from
/// every core and shared component.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    sink: Option<Arc<Mutex<dyn EventSink>>>,
    pid: u64,
}

impl Tracer {
    /// The disabled handle (same as `Tracer::default()`).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Wraps `sink` in a new enabled handle with `pid` lane 0.
    pub fn new(sink: impl EventSink + 'static) -> Self {
        Self::from_shared(Arc::new(Mutex::new(sink)))
    }

    /// Builds a handle around an existing shared sink (the caller keeps
    /// its typed `Arc` to read results back out).
    pub fn from_shared(sink: Arc<Mutex<dyn EventSink>>) -> Self {
        Self {
            sink: Some(sink),
            pid: 0,
        }
    }

    /// Convenience: an enabled handle plus the typed buffer behind it.
    pub fn buffered() -> (Self, Arc<Mutex<BufferSink>>) {
        let buffer = Arc::new(Mutex::new(BufferSink::new()));
        let sink: Arc<Mutex<dyn EventSink>> = buffer.clone();
        (Self::from_shared(sink), buffer)
    }

    /// A clone of this handle tagged with a different `pid` lane.
    pub fn with_pid(&self, pid: u64) -> Self {
        Self {
            sink: self.sink.clone(),
            pid,
        }
    }

    /// Whether a sink is attached. Emission sites that must format
    /// dynamic names should check this first.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits a span covering `[start, end)`. No-op when disabled or when
    /// the span is empty.
    #[inline]
    pub fn span(
        &self,
        component: Component,
        name: &str,
        start: Cycle,
        end: Cycle,
        cause: StallCause,
    ) {
        if let Some(sink) = &self.sink {
            if end > start {
                sink.lock().expect("trace sink lock").record(TraceEvent {
                    pid: self.pid,
                    component,
                    name: name.to_string(),
                    start,
                    dur: end - start,
                    cause,
                });
            }
        }
    }

    /// Emits an instant event at `at`. No-op when disabled.
    #[inline]
    pub fn instant(&self, component: Component, name: &str, at: Cycle, cause: StallCause) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("trace sink lock").record(TraceEvent {
                pid: self.pid,
                component,
                name: name.to_string(),
                start: at,
                dur: 0,
                cause,
            });
        }
    }
}

/// Kind of busy interval recorded into an [`AttributionLog`].
///
/// Declaration order is *attribution priority*: when intervals of
/// different kinds overlap, each cycle is charged to the earliest listed
/// kind covering it. Compute wins over everything (an overlapped stall
/// is hidden, exactly the overlap the decoupled engine exists to
/// create); specific stall causes win over the generic load/store
/// occupancy that contains them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AttributionKind {
    /// The spatial array (or a peripheral on the execute unit) was busy.
    Compute,
    /// A DMA stream was stalled on the TLB hierarchy.
    TlbStall,
    /// A local-memory access waited on a busy SRAM bank.
    BankConflict,
    /// A DMA stream was waiting on the bus → L2 → DRAM path.
    Dram,
    /// The load unit was otherwise busy streaming data in.
    Load,
    /// The store unit was otherwise busy streaming data out.
    Store,
}

/// The number of [`AttributionKind`] variants (sweep-line scratch size).
const KIND_COUNT: usize = 6;

/// All kinds in priority order (index = `as usize` discriminant).
const KINDS: [AttributionKind; KIND_COUNT] = [
    AttributionKind::Compute,
    AttributionKind::TlbStall,
    AttributionKind::BankConflict,
    AttributionKind::Dram,
    AttributionKind::Load,
    AttributionKind::Store,
];

/// One recorded busy interval: `[start, end)` of `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttributionSpan {
    /// Interval kind (and priority).
    pub kind: AttributionKind,
    /// First busy cycle.
    pub start: Cycle,
    /// One past the last busy cycle.
    pub end: Cycle,
}

/// Spans kept in memory before the log folds a settled prefix.
const COMPACT_THRESHOLD: usize = 16 * 1024;

/// The always-on interval record behind the cycle-attribution report.
///
/// `record` is O(1) (amortized) and coalesces against the previous span;
/// `maybe_compact` folds every interval that ends before a caller-proved
/// *frontier* — a cycle no future interval can start before — into
/// bucket counters, bounding memory on long runs without changing the
/// final partition; `finish` produces the exact, exclusive
/// [`CycleAttribution`] for `[0, total)`.
#[derive(Debug, Clone, Default)]
pub struct AttributionLog {
    spans: Vec<AttributionSpan>,
    folded: CycleAttribution,
    folded_until: Cycle,
    /// Retained scratch for `compact`: settled spans awaiting the fold.
    /// Capacity is kept across calls so steady-state compaction performs
    /// no heap allocation.
    settle_scratch: Vec<AttributionSpan>,
    /// Retained scratch for the sweep-line boundary events.
    event_scratch: Vec<(Cycle, usize, bool)>,
}

impl AttributionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a busy interval `[start, end)`. Empty intervals are
    /// ignored; an interval overlapping or adjacent to the previous
    /// record of the same kind extends it in place.
    #[inline]
    pub fn record(&mut self, kind: AttributionKind, start: Cycle, end: Cycle) {
        if end <= start {
            return;
        }
        if let Some(last) = self.spans.last_mut() {
            if last.kind == kind && start <= last.end && end > last.start {
                last.start = last.start.min(start);
                last.end = last.end.max(end);
                return;
            }
        }
        self.spans.push(AttributionSpan { kind, start, end });
    }

    /// Number of spans currently held (folded prefixes excluded).
    pub fn pending_spans(&self) -> usize {
        self.spans.len()
    }

    /// Folds settled intervals into bucket counters once the log grows
    /// past an internal threshold. `frontier` must be a cycle no
    /// *future* interval can start before (the engine passes the minimum
    /// of its units' free times); intervals crossing it are split.
    #[inline]
    pub fn maybe_compact(&mut self, frontier: Cycle) {
        if self.spans.len() >= COMPACT_THRESHOLD {
            self.compact(frontier);
        }
    }

    /// Unconditionally folds everything below `frontier`.
    ///
    /// Kept (unsettled) spans are compacted in place — every input span
    /// yields at most one kept entry, so the write index never passes the
    /// read index — and the settled side reuses a retained scratch vector,
    /// making steady-state compaction allocation-free.
    pub fn compact(&mut self, frontier: Cycle) {
        if frontier <= self.folded_until {
            return;
        }
        let mut settled = std::mem::take(&mut self.settle_scratch);
        settled.clear();
        let mut kept = 0;
        for read in 0..self.spans.len() {
            let span = self.spans[read];
            if span.end <= frontier {
                settled.push(span);
            } else if span.start >= frontier {
                self.spans[kept] = span;
                kept += 1;
            } else {
                settled.push(AttributionSpan {
                    end: frontier,
                    ..span
                });
                self.spans[kept] = AttributionSpan {
                    start: frontier,
                    ..span
                };
                kept += 1;
            }
        }
        self.spans.truncate(kept);
        partition_with(
            &mut self.event_scratch,
            &settled,
            self.folded_until,
            frontier,
            &mut self.folded,
        );
        self.settle_scratch = settled;
        self.folded_until = frontier;
    }

    /// The exact attribution of `[0, total)`: folded prefixes plus a
    /// partition of the remaining spans, with `idle` as the remainder.
    ///
    /// # Panics
    ///
    /// Panics if a recorded interval extends past `total` — by
    /// construction every engine interval ends at or before the finish
    /// cycle, so this indicates an instrumentation bug.
    pub fn finish(&self, total: Cycle) -> CycleAttribution {
        if let Some(span) = self.spans.iter().find(|s| s.end > total) {
            panic!(
                "attribution interval [{}, {}) extends past the {total}-cycle run",
                span.start, span.end
            );
        }
        let mut out = self.folded;
        partition_into(&self.spans, self.folded_until, total, &mut out);
        let busy = out.busy();
        debug_assert!(busy <= total);
        out.idle = total - busy;
        out
    }
}

/// Sweep-line partition of `[lo, hi)`: each cycle covered by at least
/// one span is charged to the highest-priority covering kind; the
/// resulting bucket cycles are added to `out`. Spans are clamped to
/// `[lo, hi)`.
fn partition_into(spans: &[AttributionSpan], lo: Cycle, hi: Cycle, out: &mut CycleAttribution) {
    let mut events = Vec::new();
    partition_with(&mut events, spans, lo, hi, out);
}

/// [`partition_into`] with a caller-provided event buffer so hot callers
/// (the log's own `compact`) can reuse capacity across invocations.
fn partition_with(
    events: &mut Vec<(Cycle, usize, bool)>,
    spans: &[AttributionSpan],
    lo: Cycle,
    hi: Cycle,
    out: &mut CycleAttribution,
) {
    events.clear();
    if spans.is_empty() || hi <= lo {
        return;
    }
    // Boundary events: (position, kind, open/close).
    events.reserve(spans.len() * 2);
    for span in spans {
        let start = span.start.max(lo);
        let end = span.end.min(hi);
        if end > start {
            events.push((start, span.kind as usize, true));
            events.push((end, span.kind as usize, false));
        }
    }
    events.sort_unstable();
    let mut active = [0u64; KIND_COUNT];
    let mut prev: Cycle = 0;
    let mut have_prev = false;
    for &(pos, kind, open) in events.iter() {
        if have_prev && pos > prev {
            // Charge the elementary interval to the highest-priority
            // active kind, if any.
            if let Some(k) = (0..KIND_COUNT).find(|&i| active[i] > 0) {
                *bucket_mut(out, KINDS[k]) += pos - prev;
            }
        }
        if open {
            active[kind] += 1;
        } else {
            active[kind] -= 1;
        }
        prev = pos;
        have_prev = true;
    }
}

fn bucket_mut(attr: &mut CycleAttribution, kind: AttributionKind) -> &mut u64 {
    match kind {
        AttributionKind::Compute => &mut attr.compute,
        AttributionKind::TlbStall => &mut attr.tlb_stall,
        AttributionKind::BankConflict => &mut attr.bank_conflict,
        AttributionKind::Dram => &mut attr.dram,
        AttributionKind::Load => &mut attr.load,
        AttributionKind::Store => &mut attr.store,
    }
}

/// Renders events as a Chrome `trace_event` JSON array. Spans become
/// complete events (`ph: "X"`); instants become thread-scoped instant
/// events (`ph: "i"`). One cycle = one microsecond of `ts`.
pub fn chrome_trace_json(events: &[TraceEvent]) -> Json {
    Json::Arr(
        events
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("name", Json::from(e.name.clone())),
                    ("cat", Json::from(e.component.label())),
                    ("ph", Json::from(if e.dur == 0 { "i" } else { "X" })),
                    ("ts", Json::from(e.start)),
                    ("pid", Json::from(e.pid)),
                    ("tid", Json::from(e.component.lane())),
                ];
                if e.dur == 0 {
                    fields.push(("s", Json::from("t")));
                } else {
                    fields.push(("dur", Json::from(e.dur)));
                }
                if e.cause != StallCause::None {
                    fields.push(("args", Json::obj([("cause", Json::from(e.cause.label()))])));
                }
                Json::obj(fields)
            })
            .collect(),
    )
}

/// Writes `events` to `path` as a Chrome `trace_event` JSON array.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export_chrome_trace(path: &Path, events: &[TraceEvent]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, format!("{}\n", chrome_trace_json(events).encode()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_emits_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        // Emission on a disabled handle must be a no-op, not a panic.
        t.span(Component::Dma, "x", 0, 10, StallCause::None);
        t.instant(Component::Tlb, "y", 5, StallCause::TlbMiss);
    }

    #[test]
    fn buffered_tracer_collects_events_across_clones() {
        let (t, buf) = Tracer::buffered();
        t.span(Component::LoadUnit, "mvin", 0, 8, StallCause::None);
        t.with_pid(3)
            .instant(Component::Ptw, "walk", 4, StallCause::TlbMiss);
        let events = buf.lock().unwrap().take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].pid, 0);
        assert_eq!(events[0].dur, 8);
        assert_eq!(events[1].pid, 3);
        assert_eq!(events[1].dur, 0);
    }

    #[test]
    fn empty_spans_are_dropped() {
        let (t, buf) = Tracer::buffered();
        t.span(Component::Dma, "empty", 7, 7, StallCause::None);
        assert!(buf.lock().unwrap().events().is_empty());
    }

    #[test]
    fn chrome_export_has_required_keys() {
        let events = vec![
            TraceEvent {
                pid: 0,
                component: Component::Mesh,
                name: "compute".into(),
                start: 10,
                dur: 5,
                cause: StallCause::None,
            },
            TraceEvent {
                pid: 1,
                component: Component::Tlb,
                name: "miss".into(),
                start: 12,
                dur: 0,
                cause: StallCause::TlbMiss,
            },
        ];
        let doc = chrome_trace_json(&events);
        let arr = doc.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        for e in arr {
            for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
                assert!(e.get(key).is_some(), "missing {key}");
            }
        }
        assert_eq!(arr[0].field("ph").unwrap().as_str().unwrap(), "X");
        assert_eq!(arr[0].field("dur").unwrap().as_u64().unwrap(), 5);
        assert_eq!(arr[1].field("ph").unwrap().as_str().unwrap(), "i");
        assert_eq!(
            arr[1]
                .field("args")
                .unwrap()
                .field("cause")
                .unwrap()
                .as_str()
                .unwrap(),
            "tlb-miss"
        );
    }

    #[test]
    fn log_partitions_by_priority() {
        let mut log = AttributionLog::new();
        // Load busy 0..100, compute overlaps 20..60, tlb stall 0..10
        // (inside the load), dram wait 10..30.
        log.record(AttributionKind::Load, 0, 100);
        log.record(AttributionKind::Compute, 20, 60);
        log.record(AttributionKind::TlbStall, 0, 10);
        log.record(AttributionKind::Dram, 10, 30);
        let a = log.finish(120);
        assert_eq!(a.compute, 40); // 20..60
        assert_eq!(a.tlb_stall, 10); // 0..10
        assert_eq!(a.dram, 10); // 10..20 (20..30 hidden under compute)
        assert_eq!(a.load, 40); // 60..100 — the rest is charged elsewhere
        assert_eq!(a.store, 0);
        assert_eq!(a.idle, 20); // 100..120
        assert_eq!(a.total(), 120);
    }

    #[test]
    fn coalescing_merges_adjacent_same_kind_spans() {
        let mut log = AttributionLog::new();
        log.record(AttributionKind::TlbStall, 0, 2);
        log.record(AttributionKind::TlbStall, 2, 4);
        log.record(AttributionKind::TlbStall, 3, 9);
        assert_eq!(log.pending_spans(), 1);
        let a = log.finish(10);
        assert_eq!(a.tlb_stall, 9);
        assert_eq!(a.idle, 1);
    }

    #[test]
    fn compaction_does_not_change_the_partition() {
        let mut a = AttributionLog::new();
        let mut b = AttributionLog::new();
        let spans = [
            (AttributionKind::Load, 0u64, 50u64),
            (AttributionKind::Compute, 10, 30),
            (AttributionKind::Store, 40, 80),
            (AttributionKind::Dram, 45, 60),
            (AttributionKind::Compute, 70, 90),
        ];
        for &(k, s, e) in &spans {
            a.record(k, s, e);
            b.record(k, s, e);
        }
        b.compact(55);
        b.compact(75);
        assert_eq!(a.finish(100), b.finish(100));
    }

    #[test]
    #[should_panic(expected = "extends past")]
    fn finish_rejects_intervals_past_total() {
        let mut log = AttributionLog::new();
        log.record(AttributionKind::Compute, 0, 50);
        let _ = log.finish(10);
    }
}
