//! Live metrics substrate: lock-free atomic counters/gauges, fixed-size
//! log2-bucketed histograms, and their exposition formats.
//!
//! Post-mortem observability (the attribution buckets of
//! [`crate::stats`], Chrome traces from [`crate::trace`]) answers "where
//! did the cycles go" after a run finishes; this module answers "what is
//! the simulation doing right now" while a multi-hour sweep executes.
//! The design constraints mirror the tracer's:
//!
//! * **Pure observation** — recording a metric never changes simulated
//!   timing or report contents; runs are bit-identical with metrics on
//!   or off.
//! * **Allocation-free hot path** — a [`MetricsRegistry`] is fixed
//!   arrays of `AtomicU64`; `inc`/`add`/`observe` are one relaxed
//!   atomic op (plus one branch through the [`Metrics`] handle, which
//!   is disabled by default exactly like [`crate::trace::Tracer`]).
//! * **Exact merge monoid** — a [`Log2Histogram`] snapshot merges
//!   bucket-wise, so per-shard histograms folded in any order equal the
//!   whole-run histogram bit-for-bit, the same law the stats monoids
//!   obey (see `crates/mem/tests/properties.rs`).
//!
//! Two exposition formats, both hand-rolled (no dependencies, the
//! build is offline): a JSON snapshot embedded in the sweep heartbeat
//! files, and Prometheus text exposition ([`prometheus_text`]).

use crate::json::{FromJson, Json, JsonError, ToJson};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fixed bucket count of every histogram: bucket `k` holds values whose
/// bit length is `k`, i.e. bucket 0 = {0}, bucket `k` = `[2^(k-1),
/// 2^k - 1]`, with the top bucket absorbing everything that would
/// overflow the range.
pub const HIST_BUCKETS: usize = 64;

/// The bucket a value lands in: its bit length, clamped to the top
/// bucket.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// The largest value bucket `k` can hold (inclusive). The top bucket is
/// unbounded and reports `u64::MAX`.
#[inline]
pub fn bucket_upper_bound(k: usize) -> u64 {
    if k >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// Monotonically increasing event counters. Every variant is one slot of
/// the registry's fixed counter array; [`Counter::ALL`] fixes the report
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Compute tiles dispatched to the spatial array.
    TilesIssued,
    /// Compute tiles that completed (retired with a finish cycle).
    TilesRetired,
    /// DMA burst transfers (mvin + mvout).
    DmaBursts,
    /// Bytes moved by DMA bursts.
    DmaBytes,
    /// Scratchpad accesses delayed by a busy SRAM bank.
    SramBankConflicts,
    /// Maximal runs of consecutive conflicting scratchpad accesses.
    SramConflictRuns,
    /// Translation requests served by the filter registers or a TLB.
    TlbHits,
    /// Translation requests that missed every TLB level and walked.
    TlbMisses,
    /// DRAM line fills (L2 misses serviced by the DRAM channel).
    DramLineFills,
    /// Sweep points simulated to completion.
    PointsCompleted,
    /// Sweep points served from a checkpoint without running.
    PointsCached,
    /// Sweep points skipped by attribution-guided pruning.
    PointsPruned,
    /// Sweep points that failed (simulation error or panic).
    PointsFailed,
    /// Crashed shard children retried by the supervisor.
    ShardRetries,
}

impl Counter {
    /// Every counter, in report order.
    pub const ALL: [Counter; 14] = [
        Counter::TilesIssued,
        Counter::TilesRetired,
        Counter::DmaBursts,
        Counter::DmaBytes,
        Counter::SramBankConflicts,
        Counter::SramConflictRuns,
        Counter::TlbHits,
        Counter::TlbMisses,
        Counter::DramLineFills,
        Counter::PointsCompleted,
        Counter::PointsCached,
        Counter::PointsPruned,
        Counter::PointsFailed,
        Counter::ShardRetries,
    ];

    /// Number of counters (registry array size).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable metric name (snake_case, no suffix; Prometheus exposition
    /// appends `_total`).
    pub fn name(self) -> &'static str {
        match self {
            Counter::TilesIssued => "tiles_issued",
            Counter::TilesRetired => "tiles_retired",
            Counter::DmaBursts => "dma_bursts",
            Counter::DmaBytes => "dma_bytes",
            Counter::SramBankConflicts => "sram_bank_conflicts",
            Counter::SramConflictRuns => "sram_conflict_runs",
            Counter::TlbHits => "tlb_hits",
            Counter::TlbMisses => "tlb_misses",
            Counter::DramLineFills => "dram_line_fills",
            Counter::PointsCompleted => "points_completed",
            Counter::PointsCached => "points_cached",
            Counter::PointsPruned => "points_pruned",
            Counter::PointsFailed => "points_failed",
            Counter::ShardRetries => "shard_retries",
        }
    }

    /// One-line description for `# HELP`.
    pub fn help(self) -> &'static str {
        match self {
            Counter::TilesIssued => "Compute tiles dispatched to the spatial array",
            Counter::TilesRetired => "Compute tiles retired",
            Counter::DmaBursts => "DMA burst transfers (mvin + mvout)",
            Counter::DmaBytes => "Bytes moved by DMA bursts",
            Counter::SramBankConflicts => "Scratchpad accesses delayed by a busy bank",
            Counter::SramConflictRuns => "Maximal runs of consecutive bank conflicts",
            Counter::TlbHits => "Translations served by filter registers or a TLB",
            Counter::TlbMisses => "Translations that required a full page-table walk",
            Counter::DramLineFills => "DRAM line fills serving L2 misses",
            Counter::PointsCompleted => "Sweep points simulated to completion",
            Counter::PointsCached => "Sweep points served from a checkpoint",
            Counter::PointsPruned => "Sweep points skipped by attribution-guided pruning",
            Counter::PointsFailed => "Sweep points that failed",
            Counter::ShardRetries => "Crashed shard children retried by the supervisor",
        }
    }
}

/// Last-value gauges (set rather than accumulated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Gauge {
    /// Sweep points currently executing on a worker.
    PointsInFlight,
    /// Worker threads of the current sweep phase.
    SweepWorkers,
}

impl Gauge {
    /// Every gauge, in report order.
    pub const ALL: [Gauge; 2] = [Gauge::PointsInFlight, Gauge::SweepWorkers];

    /// Number of gauges (registry array size).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable metric name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::PointsInFlight => "points_in_flight",
            Gauge::SweepWorkers => "sweep_workers",
        }
    }

    /// One-line description for `# HELP`.
    pub fn help(self) -> &'static str {
        match self {
            Gauge::PointsInFlight => "Sweep points currently executing",
            Gauge::SweepWorkers => "Worker threads of the current sweep phase",
        }
    }
}

/// Log2-bucketed latency/size distributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistKind {
    /// Cycles one DMA burst occupied its stream (issue to finish).
    DmaBurstCycles,
    /// Cycles one full page-table walk took.
    PtwWalkCycles,
    /// Cycles one DRAM line fill took on the channel.
    DramServiceCycles,
    /// Wall-clock microseconds one sweep point's simulation took.
    PointWallMicros,
}

impl HistKind {
    /// Every histogram, in report order.
    pub const ALL: [HistKind; 4] = [
        HistKind::DmaBurstCycles,
        HistKind::PtwWalkCycles,
        HistKind::DramServiceCycles,
        HistKind::PointWallMicros,
    ];

    /// Number of histograms (registry array size).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable metric name.
    pub fn name(self) -> &'static str {
        match self {
            HistKind::DmaBurstCycles => "dma_burst_cycles",
            HistKind::PtwWalkCycles => "ptw_walk_cycles",
            HistKind::DramServiceCycles => "dram_service_cycles",
            HistKind::PointWallMicros => "point_wall_micros",
        }
    }

    /// One-line description for `# HELP`.
    pub fn help(self) -> &'static str {
        match self {
            HistKind::DmaBurstCycles => "Cycles one DMA burst occupied its stream",
            HistKind::PtwWalkCycles => "Cycles one page-table walk took",
            HistKind::DramServiceCycles => "Cycles one DRAM line fill took",
            HistKind::PointWallMicros => "Simulation wall-clock per sweep point (us)",
        }
    }
}

/// A plain (non-atomic) log2 histogram: the snapshot/merge/quantile type.
///
/// `merge` is an exact commutative monoid (bucket-wise addition with the
/// zero histogram as identity), so shard-local histograms folded in any
/// order or grouping equal the single-process histogram bit-for-bit.
#[derive(Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    /// Per-bucket observation counts (`buckets[bucket_index(v)]`).
    pub buckets: [u64; HIST_BUCKETS],
    /// Exact sum of every observed value (wrapping on overflow).
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl std::fmt::Debug for Log2Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Log2Histogram {{ count: {}, sum: {}, buckets:",
            self.count, self.sum
        )?;
        for (k, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                write!(f, " [{k}]={n}")?;
            }
        }
        write!(f, " }}")
    }
}

impl Log2Histogram {
    /// An empty histogram (the merge identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.sum = self.sum.wrapping_add(value);
        self.count += 1;
    }

    /// Folds another histogram in (exact, commutative, associative).
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.count += other.count;
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Upper bound of the bucket holding the `q`-quantile observation
    /// (`q` in `[0, 1]`): the first bucket whose cumulative count
    /// reaches `ceil(q * count)`. Returns 0 on an empty histogram. The
    /// bucket bound over-estimates by at most 2x — the price of fixed
    /// storage.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return bucket_upper_bound(k);
            }
        }
        bucket_upper_bound(HIST_BUCKETS - 1)
    }

    /// Exact mean of the observed values (0 on an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

impl ToJson for Log2Histogram {
    fn to_json(&self) -> Json {
        // Sparse encoding: only non-empty buckets, as [index, count]
        // pairs — heartbeat files stay small and the round trip exact.
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(k, &n)| Json::Arr(vec![Json::from(k as u64), Json::from(n)]))
            .collect();
        Json::obj([
            ("count", Json::from(self.count)),
            ("sum", Json::from(self.sum)),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

impl FromJson for Log2Histogram {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let mut hist = Log2Histogram::new();
        hist.count = value.field("count")?.as_u64()?;
        hist.sum = value.field("sum")?.as_u64()?;
        for pair in value.field("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return Err(JsonError::new(
                    "histogram bucket is not an [index, count] pair",
                ));
            }
            let k = pair[0].as_u64()? as usize;
            if k >= HIST_BUCKETS {
                return Err(JsonError::new(format!(
                    "histogram bucket index {k} out of range"
                )));
            }
            hist.buckets[k] = pair[1].as_u64()?;
        }
        Ok(hist)
    }
}

/// One histogram of the live registry: fixed atomic buckets.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl AtomicHistogram {
    /// Records one observation: three relaxed atomic adds, no locks, no
    /// allocation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// A plain copy of the current contents. Buckets are read
    /// individually (relaxed), so a snapshot taken during concurrent
    /// recording may be mid-update; totals are exact once recording
    /// quiesces.
    pub fn snapshot(&self) -> Log2Histogram {
        Log2Histogram {
            buckets: std::array::from_fn(|k| self.buckets[k].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// The live registry: one fixed slot per [`Counter`], [`Gauge`] and
/// [`HistKind`]. Shared by every instrumented component via
/// `Arc<MetricsRegistry>`; all operations are lock-free relaxed atomics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    hists: [AtomicHistogram; HistKind::COUNT],
}

impl MetricsRegistry {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn counter_slot(c: Counter) -> usize {
        Counter::ALL
            .iter()
            .position(|&x| x == c)
            .expect("counter in ALL")
    }

    fn gauge_slot(g: Gauge) -> usize {
        Gauge::ALL
            .iter()
            .position(|&x| x == g)
            .expect("gauge in ALL")
    }

    fn hist_slot(h: HistKind) -> usize {
        HistKind::ALL
            .iter()
            .position(|&x| x == h)
            .expect("hist in ALL")
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.counters[Self::counter_slot(c)].fetch_add(n, Ordering::Relaxed);
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Current value of a counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[Self::counter_slot(c)].load(Ordering::Relaxed)
    }

    /// Sets a gauge.
    #[inline]
    pub fn set_gauge(&self, g: Gauge, value: u64) {
        self.gauges[Self::gauge_slot(g)].store(value, Ordering::Relaxed);
    }

    /// Adds to a gauge.
    #[inline]
    pub fn gauge_add(&self, g: Gauge, n: u64) {
        self.gauges[Self::gauge_slot(g)].fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts from a gauge (saturating via wrapping sub on u64 is
    /// avoided: callers only decrement what they incremented).
    #[inline]
    pub fn gauge_sub(&self, g: Gauge, n: u64) {
        self.gauges[Self::gauge_slot(g)].fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value of a gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[Self::gauge_slot(g)].load(Ordering::Relaxed)
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&self, h: HistKind, value: u64) {
        self.hists[Self::hist_slot(h)].record(value);
    }

    /// A plain copy of every counter, gauge and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            gauges: std::array::from_fn(|i| self.gauges[i].load(Ordering::Relaxed)),
            hists: std::array::from_fn(|i| self.hists[i].snapshot()),
        }
    }
}

/// A plain copy of a registry's contents: the unit embedded in heartbeat
/// files, merged across shards, and rendered as Prometheus text.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    counters: [u64; Counter::COUNT],
    gauges: [u64; Gauge::COUNT],
    hists: [Log2Histogram; HistKind::COUNT],
}

impl MetricsSnapshot {
    /// An all-zero snapshot (the merge identity).
    pub fn new() -> Self {
        Self::default()
    }

    /// Value of one counter.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[MetricsRegistry::counter_slot(c)]
    }

    /// Value of one gauge.
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[MetricsRegistry::gauge_slot(g)]
    }

    /// One histogram.
    pub fn hist(&self, h: HistKind) -> &Log2Histogram {
        &self.hists[MetricsRegistry::hist_slot(h)]
    }

    /// Folds another snapshot in: counters and gauges add, histograms
    /// merge bucket-wise — the fleet-aggregation primitive (a supervisor
    /// folds its shards' snapshots into one view). Exact and
    /// commutative, like every stats monoid in this crate.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for (a, b) in self.gauges.iter_mut().zip(&other.gauges) {
            *a += b;
        }
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
    }
}

impl ToJson for MetricsSnapshot {
    fn to_json(&self) -> Json {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name(), Json::from(self.counter(c))))
            .collect::<Vec<_>>();
        let gauges = Gauge::ALL
            .iter()
            .map(|&g| (g.name(), Json::from(self.gauge(g))))
            .collect::<Vec<_>>();
        let hists = HistKind::ALL
            .iter()
            .map(|&h| (h.name(), self.hist(h).to_json()))
            .collect::<Vec<_>>();
        Json::obj([
            ("counters", Json::obj(counters)),
            ("gauges", Json::obj(gauges)),
            ("histograms", Json::obj(hists)),
        ])
    }
}

impl FromJson for MetricsSnapshot {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let mut snap = MetricsSnapshot::new();
        let counters = value.field("counters")?;
        for (i, c) in Counter::ALL.iter().enumerate() {
            snap.counters[i] = counters.field(c.name())?.as_u64()?;
        }
        let gauges = value.field("gauges")?;
        for (i, g) in Gauge::ALL.iter().enumerate() {
            snap.gauges[i] = gauges.field(g.name())?.as_u64()?;
        }
        let hists = value.field("histograms")?;
        for (i, h) in HistKind::ALL.iter().enumerate() {
            snap.hists[i] = Log2Histogram::from_json(hists.field(h.name())?)?;
        }
        Ok(snap)
    }
}

/// Renders a snapshot in Prometheus text exposition format (version
/// 0.0.4): counters as `<prefix>_<name>_total`, gauges bare, histograms
/// as cumulative `_bucket{le="..."}` series with `_sum`/`_count`. Bucket
/// boundaries are the log2 upper bounds; empty leading/trailing buckets
/// are elided (the `+Inf` bucket always appears).
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let prefix = "gemmini";
    for &c in &Counter::ALL {
        let name = c.name();
        let _ = writeln!(out, "# HELP {prefix}_{name}_total {}", c.help());
        let _ = writeln!(out, "# TYPE {prefix}_{name}_total counter");
        let _ = writeln!(out, "{prefix}_{name}_total {}", snap.counter(c));
    }
    for &g in &Gauge::ALL {
        let name = g.name();
        let _ = writeln!(out, "# HELP {prefix}_{name} {}", g.help());
        let _ = writeln!(out, "# TYPE {prefix}_{name} gauge");
        let _ = writeln!(out, "{prefix}_{name} {}", snap.gauge(g));
    }
    for &h in &HistKind::ALL {
        let name = h.name();
        let hist = snap.hist(h);
        let _ = writeln!(out, "# HELP {prefix}_{name} {}", h.help());
        let _ = writeln!(out, "# TYPE {prefix}_{name} histogram");
        let top = hist
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |k| (k + 1).min(HIST_BUCKETS - 1));
        let mut cumulative = 0u64;
        for k in 0..=top {
            cumulative += hist.buckets[k];
            let _ = writeln!(
                out,
                "{prefix}_{name}_bucket{{le=\"{}\"}} {cumulative}",
                bucket_upper_bound(k)
            );
        }
        let _ = writeln!(out, "{prefix}_{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{prefix}_{name}_sum {}", hist.sum);
        let _ = writeln!(out, "{prefix}_{name}_count {}", hist.count);
    }
    out
}

/// The cloneable handle instrumentation sites hold — `None` (disabled,
/// the default) costs one untaken branch per record, exactly the
/// [`crate::trace::Tracer`] discipline. Cloning shares the registry.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    registry: Option<Arc<MetricsRegistry>>,
}

impl Metrics {
    /// The disabled handle: every record is a no-op.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A fresh enabled handle plus the shared registry behind it.
    pub fn enabled() -> (Self, Arc<MetricsRegistry>) {
        let registry = Arc::new(MetricsRegistry::new());
        (Self::from_shared(registry.clone()), registry)
    }

    /// An enabled handle over an existing registry.
    pub fn from_shared(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            registry: Some(registry),
        }
    }

    /// Whether a registry is attached.
    #[inline]
    pub fn enabled_registry(&self) -> bool {
        self.registry.is_some()
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        if let Some(r) = &self.registry {
            r.add(c, n);
        }
    }

    /// Increments a counter.
    #[inline]
    pub fn inc(&self, c: Counter) {
        if let Some(r) = &self.registry {
            r.inc(c);
        }
    }

    /// Sets a gauge.
    #[inline]
    pub fn set_gauge(&self, g: Gauge, value: u64) {
        if let Some(r) = &self.registry {
            r.set_gauge(g, value);
        }
    }

    /// Adds to a gauge.
    #[inline]
    pub fn gauge_add(&self, g: Gauge, n: u64) {
        if let Some(r) = &self.registry {
            r.gauge_add(g, n);
        }
    }

    /// Subtracts from a gauge.
    #[inline]
    pub fn gauge_sub(&self, g: Gauge, n: u64) {
        if let Some(r) = &self.registry {
            r.gauge_sub(g, n);
        }
    }

    /// Records one histogram observation.
    #[inline]
    pub fn observe(&self, h: HistKind, value: u64) {
        if let Some(r) = &self.registry {
            r.observe(h, value);
        }
    }

    /// A plain copy of the registry, if one is attached.
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        self.registry.as_ref().map(|r| r.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_bit_lengths() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(255), 8);
        assert_eq!(bucket_index(256), 9);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // Every bucket's upper bound lands back in that bucket.
        for k in 1..HIST_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper_bound(k)), k, "bucket {k}");
            assert_eq!(bucket_index(bucket_upper_bound(k) + 1), k + 1);
        }
    }

    #[test]
    fn histogram_records_and_quantiles() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 1, 2, 3, 10, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 1117);
        assert_eq!(h.buckets[0], 1); // {0}
        assert_eq!(h.buckets[1], 2); // {1}
        assert_eq!(h.buckets[2], 2); // {2, 3}
                                     // p50 of 8 observations: rank 4 -> bucket 2 (upper bound 3).
        assert_eq!(h.quantile(0.5), 3);
        // p100 -> bucket of 1000 (bit length 10, upper bound 1023).
        assert_eq!(h.quantile(1.0), 1023);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(Log2Histogram::new().quantile(0.5), 0);
        assert!((h.mean() - 1117.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_equals_serial_collection() {
        let values: Vec<u64> = (0..500).map(|i| (i * 2654435761u64) >> 16).collect();
        let mut whole = Log2Histogram::new();
        for &v in &values {
            whole.record(v);
        }
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        let mut merged = Log2Histogram::new();
        merged.merge(&b);
        merged.merge(&a);
        assert_eq!(merged, whole, "merge is exact and order-independent");
    }

    #[test]
    fn histogram_json_round_trips() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 7, 7, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let back = Log2Histogram::from_json(&h.to_json()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn registry_counts_and_snapshots() {
        let (m, registry) = Metrics::enabled();
        m.inc(Counter::TilesIssued);
        m.add(Counter::DmaBytes, 4096);
        m.set_gauge(Gauge::SweepWorkers, 4);
        m.gauge_add(Gauge::PointsInFlight, 2);
        m.gauge_sub(Gauge::PointsInFlight, 1);
        m.observe(HistKind::PtwWalkCycles, 120);
        assert_eq!(registry.counter(Counter::TilesIssued), 1);
        assert_eq!(registry.counter(Counter::DmaBytes), 4096);
        assert_eq!(registry.gauge(Gauge::PointsInFlight), 1);
        let snap = m.snapshot().unwrap();
        assert_eq!(snap.counter(Counter::DmaBytes), 4096);
        assert_eq!(snap.gauge(Gauge::SweepWorkers), 4);
        assert_eq!(snap.hist(HistKind::PtwWalkCycles).count, 1);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let m = Metrics::disabled();
        m.inc(Counter::TilesIssued);
        m.observe(HistKind::DmaBurstCycles, 9);
        assert!(!m.enabled_registry());
        assert!(m.snapshot().is_none());
    }

    #[test]
    fn snapshot_merge_is_exact() {
        let (ma, ra) = Metrics::enabled();
        let (mb, rb) = Metrics::enabled();
        ma.add(Counter::TlbHits, 10);
        mb.add(Counter::TlbHits, 5);
        ma.observe(HistKind::DramServiceCycles, 33);
        mb.observe(HistKind::DramServiceCycles, 900);
        let mut merged = ra.snapshot();
        merged.merge(&rb.snapshot());
        assert_eq!(merged.counter(Counter::TlbHits), 15);
        assert_eq!(merged.hist(HistKind::DramServiceCycles).count, 2);
        assert_eq!(merged.hist(HistKind::DramServiceCycles).sum, 933);
        // Commutative.
        let mut other = rb.snapshot();
        other.merge(&ra.snapshot());
        assert_eq!(merged, other);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let (m, registry) = Metrics::enabled();
        m.add(Counter::PointsCompleted, 3);
        m.set_gauge(Gauge::SweepWorkers, 2);
        m.observe(HistKind::PointWallMicros, 1500);
        let snap = registry.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let (m, registry) = Metrics::enabled();
        m.add(Counter::DmaBursts, 7);
        m.observe(HistKind::DmaBurstCycles, 5);
        m.observe(HistKind::DmaBurstCycles, 300);
        let text = prometheus_text(&registry.snapshot());
        assert!(text.contains("# TYPE gemmini_dma_bursts_total counter"));
        assert!(text.contains("gemmini_dma_bursts_total 7"));
        assert!(text.contains("# TYPE gemmini_points_in_flight gauge"));
        assert!(text.contains("# TYPE gemmini_dma_burst_cycles histogram"));
        assert!(text.contains("gemmini_dma_burst_cycles_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("gemmini_dma_burst_cycles_sum 305"));
        assert!(text.contains("gemmini_dma_burst_cycles_count 2"));
        // Cumulative buckets are monotonically non-decreasing.
        let mut last = 0u64;
        for line in text
            .lines()
            .filter(|l| l.starts_with("gemmini_dma_burst_cycles_bucket"))
        {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative buckets must not decrease: {line}");
            last = v;
        }
    }
}
