//! Page/frame newtypes, permissions, and the physical frame allocator.

use gemmini_mem::addr::{PhysAddr, VirtAddr, PAGE_SHIFT};
use std::fmt;

/// A virtual page number.
///
/// # Example
///
/// ```
/// use gemmini_vm::page::Vpn;
/// use gemmini_mem::VirtAddr;
/// assert_eq!(Vpn::of(VirtAddr::new(0x2345)), Vpn::new(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(u64);

impl Vpn {
    /// Creates a VPN from a raw page number.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The VPN containing a virtual address.
    pub const fn of(addr: VirtAddr) -> Self {
        Self(addr.raw() >> PAGE_SHIFT)
    }

    /// The raw page number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The base virtual address of this page.
    pub const fn base(self) -> VirtAddr {
        VirtAddr::new(self.0 << PAGE_SHIFT)
    }

    /// The sv39-style 9-bit index at radix level `level` (0 = root).
    pub const fn index_at_level(self, level: u32) -> u64 {
        (self.0 >> (9 * (2 - level))) & 0x1ff
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// A physical frame number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Frame(u64);

impl Frame {
    /// Creates a frame from a raw frame number.
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// The raw frame number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The base physical address of this frame.
    pub const fn base(self) -> PhysAddr {
        PhysAddr::new(self.0 << PAGE_SHIFT)
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "frame:{:#x}", self.0)
    }
}

/// Page permissions. The paper notes that running under a full OS uncovered
/// accelerator reads "from certain regions of physical memory without the
/// proper permissions" that bare-metal runs silently ignored — permissions
/// are therefore checked on every translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PagePermissions {
    /// Page may be read.
    pub read: bool,
    /// Page may be written.
    pub write: bool,
}

impl PagePermissions {
    /// Read-write permissions.
    pub const RW: Self = Self {
        read: true,
        write: true,
    };
    /// Read-only permissions.
    pub const RO: Self = Self {
        read: true,
        write: false,
    };

    /// Whether an access of the given direction is allowed.
    pub fn allows(self, write: bool) -> bool {
        if write {
            self.write
        } else {
            self.read
        }
    }
}

impl Default for PagePermissions {
    fn default() -> Self {
        Self::RW
    }
}

/// Bump allocator for physical frames, shared by every address space on the
/// SoC so that distinct processes receive disjoint physical memory.
///
/// Frames start at 2 GiB (`0x8000_0000`), the conventional DRAM base of
/// RISC-V SoCs.
///
/// # Example
///
/// ```
/// use gemmini_vm::page::FrameAllocator;
/// let mut fa = FrameAllocator::new();
/// let a = fa.alloc();
/// let b = fa.alloc();
/// assert_ne!(a, b);
/// assert_eq!(a.base().raw(), 0x8000_0000);
/// ```
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    next: u64,
}

impl FrameAllocator {
    /// DRAM base frame number (2 GiB / 4 KiB).
    pub const DRAM_BASE_FRAME: u64 = 0x8000_0000 >> PAGE_SHIFT;

    /// Creates an allocator starting at the DRAM base.
    pub fn new() -> Self {
        Self {
            next: Self::DRAM_BASE_FRAME,
        }
    }

    /// Allocates one fresh frame.
    pub fn alloc(&mut self) -> Frame {
        let f = Frame::new(self.next);
        self.next += 1;
        f
    }

    /// Number of frames allocated so far.
    pub fn allocated(&self) -> u64 {
        self.next - Self::DRAM_BASE_FRAME
    }
}

impl Default for FrameAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_of_address() {
        assert_eq!(Vpn::of(VirtAddr::new(0)), Vpn::new(0));
        assert_eq!(Vpn::of(VirtAddr::new(4095)), Vpn::new(0));
        assert_eq!(Vpn::of(VirtAddr::new(4096)), Vpn::new(1));
        assert_eq!(Vpn::new(3).base(), VirtAddr::new(3 * 4096));
    }

    #[test]
    fn sv39_level_indices() {
        // vpn = 0b[l0:9][l1:9][l2:9]
        let vpn = Vpn::new((5 << 18) | (7 << 9) | 9);
        assert_eq!(vpn.index_at_level(0), 5);
        assert_eq!(vpn.index_at_level(1), 7);
        assert_eq!(vpn.index_at_level(2), 9);
    }

    #[test]
    fn frame_base_address() {
        assert_eq!(Frame::new(0x80000).base(), PhysAddr::new(0x8000_0000));
    }

    #[test]
    fn permissions_allow() {
        assert!(PagePermissions::RW.allows(true));
        assert!(PagePermissions::RW.allows(false));
        assert!(!PagePermissions::RO.allows(true));
        assert!(PagePermissions::RO.allows(false));
    }

    #[test]
    fn allocator_hands_out_distinct_frames_from_dram_base() {
        let mut fa = FrameAllocator::new();
        let a = fa.alloc();
        let b = fa.alloc();
        assert_eq!(a.raw() + 1, b.raw());
        assert_eq!(a.base().raw(), 0x8000_0000);
        assert_eq!(fa.allocated(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Vpn::new(0x10).to_string(), "vpn:0x10");
        assert_eq!(Frame::new(0x10).to_string(), "frame:0x10");
    }
}
