//! The composed virtual-address translation system.
//!
//! [`TranslationSystem`] chains the Section V-A hardware:
//! filter registers → private TLB → shared L2 TLB → shared page-table
//! walker. Every knob the paper sweeps in Fig. 8 is a field of
//! [`TranslationConfig`]: private TLB entries, shared L2 TLB entries
//! (including zero), and whether the filter registers exist.

use crate::filter::FilterPair;
use crate::page::{Frame, Vpn};
use crate::page_table::AddressSpace;
use crate::ptw::{PageTableWalker, PtwConfig};
use crate::tlb::{Tlb, TlbConfig};
use gemmini_mem::addr::{PhysAddr, VirtAddr};
use gemmini_mem::metrics::{Counter, HistKind, Metrics};
use gemmini_mem::stats::WindowedRate;
use gemmini_mem::trace::{Component, StallCause, Tracer};
use gemmini_mem::{Cycle, MemorySystem};
use std::error::Error;
use std::fmt;

/// Direction of the access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// DMA read (mvin) stream.
    Read,
    /// DMA write (mvout) stream.
    Write,
}

/// Where in the hierarchy a translation was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Filter-register hit: zero cycles.
    Filter,
    /// Private TLB hit.
    Private,
    /// Shared L2 TLB hit.
    Shared,
    /// Full page-table walk.
    Walk,
}

/// A failed translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateError {
    /// The page is not mapped in the address space.
    PageFault {
        /// The faulting page.
        vpn: Vpn,
    },
    /// The page is mapped but does not permit this access — the class of bug
    /// the paper says only surfaced when running under a real OS.
    PermissionDenied {
        /// The offending page.
        vpn: Vpn,
        /// Whether the denied access was a write.
        write: bool,
    },
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::PageFault { vpn } => write!(f, "page fault at {vpn}"),
            Self::PermissionDenied { vpn, write } => write!(
                f,
                "permission denied for {} at {vpn}",
                if *write { "write" } else { "read" }
            ),
        }
    }
}

impl Error for TranslateError {}

/// Configuration of the full translation system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationConfig {
    /// The accelerator's private TLB.
    pub private: TlbConfig,
    /// The shared L2 TLB the private TLB falls back on (0 entries = absent).
    pub shared: TlbConfig,
    /// Whether the read/write filter registers exist.
    pub filter_registers: bool,
    /// Page-table walker parameters.
    pub ptw: PtwConfig,
    /// Window width (cycles) for the miss-rate time series (Fig. 4).
    pub stats_window: Cycle,
}

impl Default for TranslationConfig {
    /// The paper's baseline co-design point: 4-entry private TLB, no shared
    /// L2 TLB, no filter registers.
    fn default() -> Self {
        Self {
            private: TlbConfig::private(4),
            shared: TlbConfig::shared(0),
            filter_registers: false,
            ptw: PtwConfig::default(),
            stats_window: 100_000,
        }
    }
}

/// A successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The translated physical address.
    pub paddr: PhysAddr,
    /// Cycles spent translating (0 for a filter hit).
    pub latency: u64,
    /// Where the translation was satisfied.
    pub level: HitLevel,
}

/// Per-stream tracker for the paper's consecutive-same-page statistic
/// (87% of consecutive reads / 83% of consecutive writes hit the same page).
#[derive(Debug, Clone, Copy, Default)]
struct SamePageTracker {
    last: Option<Vpn>,
    same: u64,
    total: u64,
}

impl SamePageTracker {
    fn record(&mut self, vpn: Vpn) {
        if self.total > 0 || self.last.is_some() {
            // Only count transitions (i.e. requests after the first).
        }
        if let Some(last) = self.last {
            self.total += 1;
            if last == vpn {
                self.same += 1;
            }
        }
        self.last = Some(vpn);
    }

    fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.same as f64 / self.total as f64
        }
    }
}

/// The composed filter → private TLB → shared TLB → PTW pipeline.
///
/// # Example
///
/// ```
/// use gemmini_vm::translator::{TranslationSystem, TranslationConfig, Access};
/// use gemmini_vm::page_table::AddressSpace;
/// use gemmini_vm::page::FrameAllocator;
/// use gemmini_mem::MemorySystem;
///
/// let mut frames = FrameAllocator::new();
/// let mut space = AddressSpace::new(&mut frames);
/// let va = space.alloc(&mut frames, 4096);
/// let mut mem = MemorySystem::default();
/// let mut tsys = TranslationSystem::new(TranslationConfig::default());
///
/// let cold = tsys.translate(&space, &mut mem, 0, va, Access::Read)?;
/// let warm = tsys.translate(&space, &mut mem, cold.latency, va, Access::Read)?;
/// assert!(warm.latency < cold.latency);
/// # Ok::<(), gemmini_vm::TranslateError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TranslationSystem {
    config: TranslationConfig,
    private: Tlb,
    shared: Tlb,
    filters: FilterPair,
    ptw: PageTableWalker,
    window: WindowedRate,
    read_tracker: SamePageTracker,
    write_tracker: SamePageTracker,
    requests: u64,
    filter_hits: u64,
    walks_taken: u64,
    tracer: Tracer,
    metrics: Metrics,
}

impl TranslationSystem {
    /// Creates a cold translation system.
    pub fn new(config: TranslationConfig) -> Self {
        Self {
            private: Tlb::new(config.private),
            shared: Tlb::new(config.shared),
            filters: FilterPair::new(),
            ptw: PageTableWalker::new(config.ptw),
            window: WindowedRate::new(config.stats_window),
            read_tracker: SamePageTracker::default(),
            write_tracker: SamePageTracker::default(),
            requests: 0,
            filter_hits: 0,
            walks_taken: 0,
            tracer: Tracer::disabled(),
            metrics: Metrics::disabled(),
            config,
        }
    }

    /// Attaches a trace-event sink; walks emit page-table-walker spans
    /// into it. Disabled by default (a single branch per walk).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attaches a live-metrics handle; translations count TLB hits and
    /// misses and walks record their latency. Disabled by default.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &TranslationConfig {
        &self.config
    }

    /// Translates `va` for an access of direction `access` starting at `now`.
    ///
    /// # Errors
    ///
    /// * [`TranslateError::PageFault`] if the page is unmapped (discovered by
    ///   the walk, whose latency has already been paid).
    /// * [`TranslateError::PermissionDenied`] if the mapping forbids the
    ///   access direction.
    pub fn translate(
        &mut self,
        space: &AddressSpace,
        mem: &mut MemorySystem,
        now: Cycle,
        va: VirtAddr,
        access: Access,
    ) -> Result<Translation, TranslateError> {
        let vpn = Vpn::of(va);
        self.requests += 1;
        match access {
            Access::Read => self.read_tracker.record(vpn),
            Access::Write => self.write_tracker.record(vpn),
        }

        // Permission check against the authoritative mapping. Hardware
        // caches permission bits in each TLB entry; since our entries come
        // from the same mapping, checking the mapping is equivalent.
        if let Some((_, perms)) = space.lookup(vpn) {
            if !perms.allows(access == Access::Write) {
                return Err(TranslateError::PermissionDenied {
                    vpn,
                    write: access == Access::Write,
                });
            }
        }

        // 1. Filter registers: 0-cycle hit.
        if self.config.filter_registers {
            let reg = match access {
                Access::Read => &mut self.filters.read,
                Access::Write => &mut self.filters.write,
            };
            if let Some(frame) = reg.lookup(vpn) {
                self.filter_hits += 1;
                self.metrics.inc(Counter::TlbHits);
                self.window.record(now, true);
                return Ok(Translation {
                    paddr: frame.base().add(va.offset_in_page()),
                    latency: 0,
                    level: HitLevel::Filter,
                });
            }
        }

        // 2. Private TLB.
        if let Some(frame) = self.private.lookup(vpn) {
            self.metrics.inc(Counter::TlbHits);
            self.window.record(now, true);
            self.update_filter(access, vpn, frame);
            return Ok(Translation {
                paddr: frame.base().add(va.offset_in_page()),
                latency: self.config.private.hit_latency,
                level: HitLevel::Private,
            });
        }
        self.window.record(now, false);
        let mut latency = self.config.private.hit_latency;

        // 3. Shared L2 TLB (if present).
        if self.config.shared.entries > 0 {
            if let Some(frame) = self.shared.lookup(vpn) {
                self.metrics.inc(Counter::TlbHits);
                latency += self.config.shared.hit_latency;
                self.private.insert(vpn, frame);
                self.update_filter(access, vpn, frame);
                return Ok(Translation {
                    paddr: frame.base().add(va.offset_in_page()),
                    latency,
                    level: HitLevel::Shared,
                });
            }
            latency += self.config.shared.hit_latency;
        }

        // 4. Full walk.
        self.walks_taken += 1;
        self.metrics.inc(Counter::TlbMisses);
        let outcome = self.ptw.walk(space, mem, now + latency, vpn);
        self.tracer.span(
            Component::Ptw,
            "walk",
            now + latency,
            outcome.done,
            StallCause::TlbMiss,
        );
        self.metrics.observe(
            HistKind::PtwWalkCycles,
            outcome.done.saturating_sub(now + latency),
        );
        let total_latency = outcome.done.saturating_sub(now);
        if !outcome.mapped {
            return Err(TranslateError::PageFault { vpn });
        }
        let (frame, _) = space.lookup(vpn).expect("walk said mapped");
        self.private.insert(vpn, frame);
        self.shared.insert(vpn, frame);
        self.update_filter(access, vpn, frame);
        Ok(Translation {
            paddr: frame.base().add(va.offset_in_page()),
            latency: total_latency,
            level: HitLevel::Walk,
        })
    }

    fn update_filter(&mut self, access: Access, vpn: Vpn, frame: Frame) {
        if self.config.filter_registers {
            match access {
                Access::Read => self.filters.read.update(vpn, frame),
                Access::Write => self.filters.write.update(vpn, frame),
            }
        }
    }

    /// Flushes all cached translation state (context switch / sfence.vma).
    pub fn flush(&mut self) {
        self.private.flush();
        self.shared.flush();
        self.filters.flush();
    }

    /// Invalidates one page everywhere (single-page shootdown).
    pub fn invalidate(&mut self, vpn: Vpn) {
        self.private.invalidate(vpn);
        self.shared.invalidate(vpn);
        self.filters.invalidate(vpn);
    }

    /// The private TLB (for its hit/miss statistics).
    pub fn private_tlb(&self) -> &Tlb {
        &self.private
    }

    /// The shared L2 TLB (for its hit/miss statistics).
    pub fn shared_tlb(&self) -> &Tlb {
        &self.shared
    }

    /// The filter-register pair (for per-stream hit rates).
    pub fn filters(&self) -> &FilterPair {
        &self.filters
    }

    /// The page-table walker (for walk counts and mean latency).
    pub fn ptw(&self) -> &PageTableWalker {
        &self.ptw
    }

    /// Total translation requests.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Requests satisfied by the filter registers.
    pub fn filter_hits(&self) -> u64 {
        self.filter_hits
    }

    /// Requests that required a full walk.
    pub fn walks_taken(&self) -> u64 {
        self.walks_taken
    }

    /// Hit rate *including* filter hits — the paper's "private TLB hit rate
    /// (including hits on the filter registers) reached 90%" metric.
    pub fn effective_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            return 0.0;
        }
        let hits = self.filter_hits + self.private.stats().hits();
        hits as f64 / self.requests as f64
    }

    /// Fraction of consecutive read requests to the same page (paper: 87%).
    pub fn consecutive_read_same_page_rate(&self) -> f64 {
        self.read_tracker.rate()
    }

    /// Fraction of consecutive write requests to the same page (paper: 83%).
    pub fn consecutive_write_same_page_rate(&self) -> f64 {
        self.write_tracker.rate()
    }

    /// The windowed miss-rate series (Fig. 4). A "miss" is a request that
    /// left the filter/private level.
    pub fn miss_rate_series(&self) -> &WindowedRate {
        &self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::FrameAllocator;
    use gemmini_mem::addr::PAGE_SIZE;

    fn setup(
        config: TranslationConfig,
    ) -> (AddressSpace, MemorySystem, TranslationSystem, VirtAddr) {
        let mut fa = FrameAllocator::new();
        let mut sp = AddressSpace::new(&mut fa);
        let va = sp.alloc(&mut fa, 64 * PAGE_SIZE);
        (
            sp,
            MemorySystem::default(),
            TranslationSystem::new(config),
            va,
        )
    }

    #[test]
    fn cold_miss_walks_then_private_hits() {
        let (sp, mut mem, mut t, va) = setup(TranslationConfig::default());
        let cold = t.translate(&sp, &mut mem, 0, va, Access::Read).unwrap();
        assert_eq!(cold.level, HitLevel::Walk);
        let warm = t.translate(&sp, &mut mem, 1000, va, Access::Read).unwrap();
        assert_eq!(warm.level, HitLevel::Private);
        assert_eq!(warm.latency, 2);
        assert!(cold.latency > warm.latency);
    }

    #[test]
    fn translation_is_functionally_correct() {
        let (sp, mut mem, mut t, va) = setup(TranslationConfig::default());
        let addr = va.add(PAGE_SIZE + 17);
        let out = t.translate(&sp, &mut mem, 0, addr, Access::Read).unwrap();
        assert_eq!(Some(out.paddr), sp.translate(addr));
    }

    #[test]
    fn filter_registers_give_zero_cycle_hits() {
        let cfg = TranslationConfig {
            filter_registers: true,
            ..TranslationConfig::default()
        };
        let (sp, mut mem, mut t, va) = setup(cfg);
        t.translate(&sp, &mut mem, 0, va, Access::Read).unwrap();
        let second = t
            .translate(&sp, &mut mem, 10, va.add(64), Access::Read)
            .unwrap();
        assert_eq!(second.level, HitLevel::Filter);
        assert_eq!(second.latency, 0);
        assert_eq!(t.filter_hits(), 1);
    }

    #[test]
    fn filters_decouple_read_and_write_streams() {
        // 1-entry private TLB: interleaved read/write to two pages would
        // thrash it, but the per-stream filters keep hitting.
        let cfg = TranslationConfig {
            private: TlbConfig {
                entries: 1,
                hit_latency: 2,
            },
            filter_registers: true,
            ..TranslationConfig::default()
        };
        let (sp, mut mem, mut t, va) = setup(cfg);
        let rd = va;
        let wr = va.add(PAGE_SIZE);
        // Prime both streams.
        t.translate(&sp, &mut mem, 0, rd, Access::Read).unwrap();
        t.translate(&sp, &mut mem, 0, wr, Access::Write).unwrap();
        // Now interleave: every access is a filter hit despite TLB thrash.
        for i in 0..10 {
            let r = t
                .translate(&sp, &mut mem, 100 + i, rd, Access::Read)
                .unwrap();
            let w = t
                .translate(&sp, &mut mem, 100 + i, wr, Access::Write)
                .unwrap();
            assert_eq!(r.level, HitLevel::Filter);
            assert_eq!(w.level, HitLevel::Filter);
        }
    }

    #[test]
    fn without_filters_interleaved_streams_thrash_a_tiny_tlb() {
        let cfg = TranslationConfig {
            private: TlbConfig {
                entries: 1,
                hit_latency: 2,
            },
            ..TranslationConfig::default()
        };
        let (sp, mut mem, mut t, va) = setup(cfg);
        let rd = va;
        let wr = va.add(PAGE_SIZE);
        let mut now = 0;
        for _ in 0..5 {
            now = now
                + t.translate(&sp, &mut mem, now, rd, Access::Read)
                    .unwrap()
                    .latency;
            now = now
                + t.translate(&sp, &mut mem, now, wr, Access::Write)
                    .unwrap()
                    .latency;
        }
        // Every access after the first pair still misses: reads and writes
        // evict each other's entry, the paper's observed contention.
        assert_eq!(t.private_tlb().stats().hits(), 0);
    }

    #[test]
    fn shared_tlb_catches_private_evictions() {
        let cfg = TranslationConfig {
            private: TlbConfig {
                entries: 1,
                hit_latency: 2,
            },
            shared: TlbConfig::shared(128),
            ..TranslationConfig::default()
        };
        let (sp, mut mem, mut t, va) = setup(cfg);
        let a = va;
        let b = va.add(PAGE_SIZE);
        t.translate(&sp, &mut mem, 0, a, Access::Read).unwrap(); // walk
        t.translate(&sp, &mut mem, 0, b, Access::Read).unwrap(); // walk, evicts a from private
        let again = t.translate(&sp, &mut mem, 0, a, Access::Read).unwrap();
        assert_eq!(again.level, HitLevel::Shared);
        assert_eq!(t.walks_taken(), 2);
    }

    #[test]
    fn page_fault_on_unmapped_page() {
        let (sp, mut mem, mut t, _va) = setup(TranslationConfig::default());
        let err = t
            .translate(&sp, &mut mem, 0, VirtAddr::new(0xdead_0000), Access::Read)
            .unwrap_err();
        assert!(matches!(err, TranslateError::PageFault { .. }));
    }

    #[test]
    fn permission_denied_on_readonly_write() {
        let mut fa = FrameAllocator::new();
        let mut sp = AddressSpace::new(&mut fa);
        let va = sp.alloc_readonly(&mut fa, PAGE_SIZE);
        let mut mem = MemorySystem::default();
        let mut t = TranslationSystem::new(TranslationConfig::default());
        assert!(t.translate(&sp, &mut mem, 0, va, Access::Read).is_ok());
        let err = t
            .translate(&sp, &mut mem, 0, va, Access::Write)
            .unwrap_err();
        assert!(matches!(
            err,
            TranslateError::PermissionDenied { write: true, .. }
        ));
        assert_eq!(
            err.to_string(),
            format!("permission denied for write at {}", Vpn::of(va))
        );
    }

    #[test]
    fn flush_forces_rewalk() {
        let (sp, mut mem, mut t, va) = setup(TranslationConfig::default());
        t.translate(&sp, &mut mem, 0, va, Access::Read).unwrap();
        t.flush();
        let after = t.translate(&sp, &mut mem, 0, va, Access::Read).unwrap();
        assert_eq!(after.level, HitLevel::Walk);
        assert_eq!(t.walks_taken(), 2);
    }

    #[test]
    fn invalidate_single_page_only() {
        let (sp, mut mem, mut t, va) = setup(TranslationConfig::default());
        let b = va.add(PAGE_SIZE);
        t.translate(&sp, &mut mem, 0, va, Access::Read).unwrap();
        t.translate(&sp, &mut mem, 0, b, Access::Read).unwrap();
        t.invalidate(Vpn::of(va));
        assert_eq!(
            t.translate(&sp, &mut mem, 0, va, Access::Read)
                .unwrap()
                .level,
            HitLevel::Walk
        );
        assert_eq!(
            t.translate(&sp, &mut mem, 0, b, Access::Read)
                .unwrap()
                .level,
            HitLevel::Private
        );
    }

    #[test]
    fn consecutive_same_page_rates() {
        let (sp, mut mem, mut t, va) = setup(TranslationConfig::default());
        // 4 reads: same, same, different -> 2/3 same.
        t.translate(&sp, &mut mem, 0, va, Access::Read).unwrap();
        t.translate(&sp, &mut mem, 0, va.add(8), Access::Read)
            .unwrap();
        t.translate(&sp, &mut mem, 0, va.add(16), Access::Read)
            .unwrap();
        t.translate(&sp, &mut mem, 0, va.add(PAGE_SIZE), Access::Read)
            .unwrap();
        assert!((t.consecutive_read_same_page_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.consecutive_write_same_page_rate(), 0.0);
    }

    #[test]
    fn effective_hit_rate_includes_filters() {
        let cfg = TranslationConfig {
            filter_registers: true,
            ..TranslationConfig::default()
        };
        let (sp, mut mem, mut t, va) = setup(cfg);
        t.translate(&sp, &mut mem, 0, va, Access::Read).unwrap(); // walk
        for _ in 0..9 {
            t.translate(&sp, &mut mem, 0, va, Access::Read).unwrap(); // filter hits
        }
        assert!((t.effective_hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn miss_rate_series_records_requests() {
        let (sp, mut mem, mut t, va) = setup(TranslationConfig::default());
        t.translate(&sp, &mut mem, 0, va, Access::Read).unwrap();
        t.translate(&sp, &mut mem, 0, va, Access::Read).unwrap();
        let series = t.miss_rate_series().series();
        assert_eq!(series[0].hits + series[0].misses, 2);
    }
}
