//! A generic TLB with LRU replacement.
//!
//! Used for both the accelerator's private TLB (typically 4–32 entries,
//! fully associative) and the larger shared L2 TLB (0–512 entries). A
//! zero-entry TLB is a valid configuration — the Fig. 8 sweep includes the
//! design point where the shared L2 TLB is absent.

use crate::page::{Frame, Vpn};
use gemmini_mem::stats::HitMissStats;

/// TLB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries; zero means the TLB is absent (every lookup misses).
    pub entries: u32,
    /// Latency of a hit, in cycles.
    pub hit_latency: u64,
}

impl TlbConfig {
    /// A private accelerator TLB: fully associative, `entries` entries,
    /// 2-cycle hits (the paper notes its private TLB hit latency was
    /// "several cycles").
    pub fn private(entries: u32) -> Self {
        Self {
            entries,
            hit_latency: 2,
        }
    }

    /// A shared L2 TLB: `entries` entries, 8-cycle hits (it sits at the L2).
    pub fn shared(entries: u32) -> Self {
        Self {
            entries,
            hit_latency: 8,
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self::private(4)
    }
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    vpn: Vpn,
    frame: Frame,
    lru: u64,
}

/// Fully-associative, true-LRU TLB.
///
/// # Example
///
/// ```
/// use gemmini_vm::tlb::{Tlb, TlbConfig};
/// use gemmini_vm::page::{Vpn, Frame};
///
/// let mut tlb = Tlb::new(TlbConfig::private(4));
/// assert!(tlb.lookup(Vpn::new(1)).is_none());
/// tlb.insert(Vpn::new(1), Frame::new(100));
/// assert_eq!(tlb.lookup(Vpn::new(1)), Some(Frame::new(100)));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    entries: Vec<Entry>,
    stamp: u64,
    stats: HitMissStats,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        Self {
            config,
            entries: Vec::with_capacity(config.entries as usize),
            stamp: 0,
            stats: HitMissStats::new(),
        }
    }

    /// The configuration this TLB was built with.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Looks up a page, updating LRU order and hit/miss statistics.
    /// Returns the mapped frame on a hit.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<Frame> {
        self.stamp += 1;
        let stamp = self.stamp;
        let found = self.entries.iter_mut().find(|e| e.vpn == vpn);
        match found {
            Some(e) => {
                e.lru = stamp;
                self.stats.record(true);
                Some(e.frame)
            }
            None => {
                self.stats.record(false);
                None
            }
        }
    }

    /// Probes for a page without touching LRU order or statistics.
    pub fn probe(&self, vpn: Vpn) -> Option<Frame> {
        self.entries.iter().find(|e| e.vpn == vpn).map(|e| e.frame)
    }

    /// Inserts a translation, evicting the LRU entry if full. Inserting into
    /// a zero-entry TLB is a no-op. Re-inserting an existing page refreshes
    /// its mapping and LRU position.
    pub fn insert(&mut self, vpn: Vpn, frame: Frame) {
        if self.config.entries == 0 {
            return;
        }
        self.stamp += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.vpn == vpn) {
            e.frame = frame;
            e.lru = self.stamp;
            return;
        }
        let entry = Entry {
            vpn,
            frame,
            lru: self.stamp,
        };
        if self.entries.len() < self.config.entries as usize {
            self.entries.push(entry);
        } else {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("non-empty TLB");
            self.entries[victim] = entry;
        }
    }

    /// Removes one page's translation (e.g. on an OS unmap / shootdown of a
    /// single page). Returns whether it was present.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.vpn != vpn);
        before != self.entries.len()
    }

    /// Invalidates every entry (sfence.vma / context switch).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Number of currently valid entries.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Hit/miss statistics since construction (or the last [`Self::reset_stats`]).
    pub fn stats(&self) -> &HitMissStats {
        &self.stats
    }

    /// Resets statistics without touching entries.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u64) -> Vpn {
        Vpn::new(n)
    }
    fn f(n: u64) -> Frame {
        Frame::new(n)
    }

    #[test]
    fn miss_then_hit() {
        let mut t = Tlb::new(TlbConfig::private(4));
        assert!(t.lookup(v(1)).is_none());
        t.insert(v(1), f(10));
        assert_eq!(t.lookup(v(1)), Some(f(10)));
        assert_eq!(t.stats().hits(), 1);
        assert_eq!(t.stats().misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut t = Tlb::new(TlbConfig::private(2));
        t.insert(v(1), f(1));
        t.insert(v(2), f(2));
        t.lookup(v(1)); // refresh 1; 2 becomes LRU
        t.insert(v(3), f(3)); // evicts 2
        assert!(t.probe(v(1)).is_some());
        assert!(t.probe(v(2)).is_none());
        assert!(t.probe(v(3)).is_some());
    }

    #[test]
    fn zero_entry_tlb_always_misses() {
        let mut t = Tlb::new(TlbConfig::shared(0));
        t.insert(v(1), f(1));
        assert!(t.lookup(v(1)).is_none());
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.stats().misses(), 1);
    }

    #[test]
    fn reinsert_updates_mapping_without_duplicating() {
        let mut t = Tlb::new(TlbConfig::private(4));
        t.insert(v(1), f(1));
        t.insert(v(1), f(99));
        assert_eq!(t.occupancy(), 1);
        assert_eq!(t.probe(v(1)), Some(f(99)));
    }

    #[test]
    fn invalidate_single_page() {
        let mut t = Tlb::new(TlbConfig::private(4));
        t.insert(v(1), f(1));
        t.insert(v(2), f(2));
        assert!(t.invalidate(v(1)));
        assert!(!t.invalidate(v(1)));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn flush_clears_everything() {
        let mut t = Tlb::new(TlbConfig::private(4));
        t.insert(v(1), f(1));
        t.insert(v(2), f(2));
        t.flush();
        assert_eq!(t.occupancy(), 0);
        assert!(t.lookup(v(1)).is_none());
    }

    #[test]
    fn probe_does_not_affect_lru_or_stats() {
        let mut t = Tlb::new(TlbConfig::private(2));
        t.insert(v(1), f(1));
        t.insert(v(2), f(2));
        t.probe(v(1)); // must NOT refresh
        t.insert(v(3), f(3)); // evicts 1 (the true LRU)
        assert!(t.probe(v(1)).is_none());
        assert_eq!(t.stats().accesses(), 0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut t = Tlb::new(TlbConfig::private(4));
        for i in 0..10 {
            t.insert(v(i), f(i));
        }
        assert_eq!(t.occupancy(), 4);
        // The four most recent survive.
        for i in 6..10 {
            assert!(t.probe(v(i)).is_some());
        }
    }
}
