//! Filter registers: the paper's Section V-A optimization.
//!
//! > "a single register that caches the last TLB hit for read operations,
//! > and another register that caches TLB hits for write operations. These
//! > two registers allow the DMA to 'skip' the TLB request if two
//! > consecutive requests are made to the same virtual page number, and help
//! > reduce the possibility of read-write contention over the TLB."
//!
//! A filter-register hit costs **zero** cycles. Because each stream (read /
//! write) has its own register, overlapped read and write bursts no longer
//! evict each other's most-recent translation.

use crate::page::{Frame, Vpn};

/// A single filter register: the last translation seen by one stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct FilterRegister {
    entry: Option<(Vpn, Frame)>,
    hits: u64,
    lookups: u64,
}

impl FilterRegister {
    /// Creates an empty register.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks the register; a hit returns the cached frame at zero cost.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<Frame> {
        self.lookups += 1;
        match self.entry {
            Some((v, f)) if v == vpn => {
                self.hits += 1;
                Some(f)
            }
            _ => None,
        }
    }

    /// Records the translation most recently produced for this stream.
    pub fn update(&mut self, vpn: Vpn, frame: Frame) {
        self.entry = Some((vpn, frame));
    }

    /// Invalidates the register (TLB shootdown / context switch).
    pub fn flush(&mut self) {
        self.entry = None;
    }

    /// Invalidates the register iff it caches `vpn`.
    pub fn invalidate(&mut self, vpn: Vpn) {
        if matches!(self.entry, Some((v, _)) if v == vpn) {
            self.entry = None;
        }
    }

    /// Lookups that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Fraction of lookups that hit — the paper reports 87% of consecutive
    /// read requests and 83% of consecutive write requests landing on the
    /// same page, which is exactly this ratio.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// The paper's pair of filter registers: one for the DMA's read stream, one
/// for its write stream.
///
/// # Example
///
/// ```
/// use gemmini_vm::filter::FilterPair;
/// use gemmini_vm::page::{Vpn, Frame};
///
/// let mut fp = FilterPair::new();
/// assert!(fp.read.lookup(Vpn::new(1)).is_none());
/// fp.read.update(Vpn::new(1), Frame::new(7));
/// assert_eq!(fp.read.lookup(Vpn::new(1)), Some(Frame::new(7)));
/// // The write stream has its own register:
/// assert!(fp.write.lookup(Vpn::new(1)).is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FilterPair {
    /// Register serving the read (mvin) stream.
    pub read: FilterRegister,
    /// Register serving the write (mvout) stream.
    pub write: FilterRegister,
}

impl FilterPair {
    /// Creates a pair of empty registers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flushes both registers.
    pub fn flush(&mut self) {
        self.read.flush();
        self.write.flush();
    }

    /// Invalidates `vpn` in both registers.
    pub fn invalidate(&mut self, vpn: Vpn) {
        self.read.invalidate(vpn);
        self.write.invalidate(vpn);
    }

    /// Combined hits across both streams.
    pub fn total_hits(&self) -> u64 {
        self.read.hits() + self.write.hits()
    }

    /// Combined lookups across both streams.
    pub fn total_lookups(&self) -> u64 {
        self.read.lookups() + self.write.lookups()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u64) -> Vpn {
        Vpn::new(n)
    }
    fn f(n: u64) -> Frame {
        Frame::new(n)
    }

    #[test]
    fn consecutive_same_page_hits() {
        let mut r = FilterRegister::new();
        assert!(r.lookup(v(5)).is_none());
        r.update(v(5), f(50));
        assert_eq!(r.lookup(v(5)), Some(f(50)));
        assert_eq!(r.lookup(v(5)), Some(f(50)));
        assert_eq!(r.hits(), 2);
        assert_eq!(r.lookups(), 3);
    }

    #[test]
    fn page_change_misses_and_can_be_updated() {
        let mut r = FilterRegister::new();
        r.update(v(1), f(1));
        assert!(r.lookup(v(2)).is_none());
        r.update(v(2), f(2));
        assert_eq!(r.lookup(v(2)), Some(f(2)));
    }

    #[test]
    fn streams_are_independent() {
        let mut fp = FilterPair::new();
        fp.read.update(v(1), f(1));
        fp.write.update(v(2), f(2));
        // Interleaved read/write to different pages both keep hitting —
        // the exact contention the paper's optimization removes.
        assert_eq!(fp.read.lookup(v(1)), Some(f(1)));
        assert_eq!(fp.write.lookup(v(2)), Some(f(2)));
        assert_eq!(fp.read.lookup(v(1)), Some(f(1)));
        assert_eq!(fp.total_hits(), 3);
    }

    #[test]
    fn flush_and_invalidate() {
        let mut fp = FilterPair::new();
        fp.read.update(v(1), f(1));
        fp.write.update(v(1), f(1));
        fp.invalidate(v(1));
        assert!(fp.read.lookup(v(1)).is_none());
        assert!(fp.write.lookup(v(1)).is_none());

        fp.read.update(v(2), f(2));
        fp.invalidate(v(3)); // different page: no effect
        assert!(fp.read.lookup(v(2)).is_some());

        fp.flush();
        assert!(fp.read.lookup(v(2)).is_none());
    }

    #[test]
    fn hit_rate_math() {
        let mut r = FilterRegister::new();
        r.update(v(1), f(1));
        r.lookup(v(1));
        r.lookup(v(2));
        assert!((r.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(FilterRegister::new().hit_rate(), 0.0);
    }
}
