#![warn(missing_docs)]

//! Virtual-memory substrate for the Gemmini reproduction.
//!
//! Gemmini is (per the paper) "the first infrastructure that provides
//! hardware support for virtual memory without the need for any special
//! driver software". This crate models that hardware and the co-design knobs
//! explored in Section V-A:
//!
//! * [`page`] — page/frame newtypes, permissions, and a physical frame
//!   allocator.
//! * [`page_table`] — a three-level, sv39-style radix page table per address
//!   space, walkable PTE address generation included.
//! * [`tlb`] — a generic TLB (any capacity, including zero entries) with LRU
//!   replacement.
//! * [`ptw`] — the shared page-table walker; each walk issues real memory
//!   accesses through the SoC's `MemorySystem`, so walks hit or miss in the
//!   L2 like any other traffic.
//! * [`filter`] — the paper's "filter registers": one-entry last-translation
//!   caches, one for the read stream and one for the write stream, giving
//!   0-cycle hits for consecutive same-page accesses.
//! * [`translator`] — [`translator::TranslationSystem`], the composed
//!   filter → private TLB → shared L2 TLB → PTW pipeline with all the
//!   statistics the Fig. 4 / Fig. 8 experiments need.
//!
//! # Example
//!
//! ```
//! use gemmini_vm::page_table::AddressSpace;
//! use gemmini_vm::page::FrameAllocator;
//! use gemmini_vm::translator::{TranslationSystem, TranslationConfig, Access};
//! use gemmini_mem::MemorySystem;
//!
//! let mut frames = FrameAllocator::new();
//! let mut space = AddressSpace::new(&mut frames);
//! let va = space.alloc(&mut frames, 8192); // two pages
//! let mut mem = MemorySystem::default();
//! let mut tsys = TranslationSystem::new(TranslationConfig::default());
//! let out = tsys.translate(&space, &mut mem, 0, va, Access::Read)?;
//! assert!(out.latency > 0); // cold TLB miss walks the page table
//! # Ok::<(), gemmini_vm::TranslateError>(())
//! ```

pub mod filter;
pub mod page;
pub mod page_table;
pub mod ptw;
pub mod tlb;
pub mod translator;

pub use page::{Frame, FrameAllocator, PagePermissions, Vpn};
pub use page_table::AddressSpace;
pub use tlb::{Tlb, TlbConfig};
pub use translator::{Access, TranslateError, TranslationConfig, TranslationSystem};
