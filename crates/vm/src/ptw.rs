//! The shared page-table walker.
//!
//! The Section V-A case-study SoC has "only one PTW, shared by both the CPU
//! and the accelerator, which is suitable for low-power devices". Walks
//! serialize on the single walker, and each of the three radix levels is a
//! real 8-byte read issued through the shared memory system — so PTEs are
//! cached in the L2 like any other data, and a warm walk is far cheaper
//! than a cold one.

use crate::page::Vpn;
use crate::page_table::{AddressSpace, PTE_BYTES};
use gemmini_mem::{Cycle, MemorySystem};

/// Page-table walker configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtwConfig {
    /// Fixed per-walk control overhead (request/response handshaking), in
    /// cycles.
    pub overhead: u64,
    /// Memory-system port the walker's PTE reads are attributed to.
    pub port: usize,
}

impl Default for PtwConfig {
    fn default() -> Self {
        Self {
            // Request queuing + walker state machine overhead per walk; a
            // single shared walker serves CPU and accelerator (Section V-A),
            // so misses queue behind each other.
            overhead: 30,
            port: usize::MAX - 1, // distinct from any core/DMA port by default
        }
    }
}

/// Result of one completed walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkOutcome {
    /// Cycle at which the walk finished.
    pub done: Cycle,
    /// Whether the leaf PTE mapped the page.
    pub mapped: bool,
}

/// A single shared page-table walker.
///
/// # Example
///
/// ```
/// use gemmini_vm::ptw::{PageTableWalker, PtwConfig};
/// use gemmini_vm::page_table::AddressSpace;
/// use gemmini_vm::page::{FrameAllocator, Vpn};
/// use gemmini_mem::MemorySystem;
///
/// let mut frames = FrameAllocator::new();
/// let mut space = AddressSpace::new(&mut frames);
/// let va = space.alloc(&mut frames, 4096);
/// let mut mem = MemorySystem::default();
/// let mut ptw = PageTableWalker::new(PtwConfig::default());
/// let out = ptw.walk(&space, &mut mem, 0, Vpn::of(va));
/// assert!(out.mapped);
/// assert!(out.done > 0);
/// ```
#[derive(Debug, Clone)]
pub struct PageTableWalker {
    config: PtwConfig,
    busy_until: Cycle,
    walks: u64,
    total_walk_cycles: u64,
}

impl PageTableWalker {
    /// Creates an idle walker.
    pub fn new(config: PtwConfig) -> Self {
        Self {
            config,
            busy_until: 0,
            walks: 0,
            total_walk_cycles: 0,
        }
    }

    /// The configuration this walker was built with.
    pub fn config(&self) -> &PtwConfig {
        &self.config
    }

    /// Performs a three-level walk of `vpn` in `space`, starting no earlier
    /// than `now` and no earlier than the walker's previous walk finishing.
    ///
    /// Each level is a serialized PTE read through `mem`; the walk cannot
    /// fetch level N+1 before level N's PTE arrives (pointer chasing).
    pub fn walk(
        &mut self,
        space: &AddressSpace,
        mem: &mut MemorySystem,
        now: Cycle,
        vpn: Vpn,
    ) -> WalkOutcome {
        let start = now.max(self.busy_until);
        let mut t = start + self.config.overhead;
        for pte_addr in space.walk_addresses(vpn) {
            t = mem.read(self.config.port, t, pte_addr, PTE_BYTES);
        }
        self.busy_until = t;
        self.walks += 1;
        self.total_walk_cycles += t - start;
        WalkOutcome {
            done: t,
            mapped: space.lookup(vpn).is_some(),
        }
    }

    /// Number of walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }

    /// Mean walk latency in cycles (0 if no walks yet).
    pub fn mean_walk_cycles(&self) -> f64 {
        if self.walks == 0 {
            0.0
        } else {
            self.total_walk_cycles as f64 / self.walks as f64
        }
    }

    /// Cycle at which the walker next becomes free.
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::FrameAllocator;

    fn setup() -> (AddressSpace, MemorySystem, PageTableWalker) {
        let mut fa = FrameAllocator::new();
        let mut sp = AddressSpace::new(&mut fa);
        sp.alloc(&mut fa, 16 * 4096);
        (
            sp,
            MemorySystem::default(),
            PageTableWalker::new(PtwConfig::default()),
        )
    }

    #[test]
    fn walk_of_mapped_page_reports_mapped() {
        let (sp, mut mem, mut ptw) = setup();
        let vpn = sp.iter().next().unwrap().0;
        let out = ptw.walk(&sp, &mut mem, 0, vpn);
        assert!(out.mapped);
        assert_eq!(ptw.walks(), 1);
    }

    #[test]
    fn walk_of_unmapped_page_reports_fault_but_still_takes_time() {
        let (sp, mut mem, mut ptw) = setup();
        let out = ptw.walk(&sp, &mut mem, 0, Vpn::new(0xdead));
        assert!(!out.mapped);
        assert!(out.done > 0);
    }

    #[test]
    fn cold_walk_slower_than_warm_walk() {
        let (sp, mut mem, mut ptw) = setup();
        let vpn = Vpn::new(0x100); // heap base page
        let cold = ptw.walk(&sp, &mut mem, 0, vpn);
        let cold_latency = cold.done;
        let warm = ptw.walk(&sp, &mut mem, cold.done, vpn);
        let warm_latency = warm.done - cold.done;
        assert!(
            warm_latency < cold_latency / 2,
            "warm walk ({warm_latency}) should be much cheaper than cold ({cold_latency}) because PTEs now sit in the L2"
        );
    }

    #[test]
    fn walks_serialize_on_the_single_walker() {
        let (sp, mut mem, mut ptw) = setup();
        let a = ptw.walk(&sp, &mut mem, 0, Vpn::new(0x100));
        // Requested at time 0 but the walker is busy until `a.done`.
        let b = ptw.walk(&sp, &mut mem, 0, Vpn::new(0x101));
        assert!(b.done > a.done);
    }

    #[test]
    fn mean_walk_cycles_accumulates() {
        let (sp, mut mem, mut ptw) = setup();
        assert_eq!(ptw.mean_walk_cycles(), 0.0);
        ptw.walk(&sp, &mut mem, 0, Vpn::new(0x100));
        assert!(ptw.mean_walk_cycles() > 0.0);
    }
}
