//! Per-process address spaces backed by a three-level radix page table.
//!
//! The table is modeled at two levels of fidelity simultaneously:
//!
//! * **Mapping** — a hash map from [`Vpn`] to ([`Frame`], [`PagePermissions`])
//!   gives O(1) functional translation.
//! * **Walk addresses** — for timing, [`AddressSpace::walk_addresses`]
//!   produces the three physical PTE addresses an sv39 walker would touch,
//!   derived from real per-level table frames allocated on demand. The
//!   page-table walker issues those as genuine memory accesses, so PTE
//!   locality (consecutive pages sharing a leaf table line) shows up in the
//!   L2 exactly as it does on real hardware.

use crate::page::{Frame, FrameAllocator, PagePermissions, Vpn};
use gemmini_mem::addr::{PhysAddr, VirtAddr, PAGE_SIZE};
use std::collections::HashMap;

/// Number of radix levels in the walk (sv39).
pub const WALK_LEVELS: usize = 3;
/// Size of one page-table entry in bytes.
pub const PTE_BYTES: u64 = 8;

/// One process's address space: mappings plus the radix-table frames that
/// back them.
///
/// # Example
///
/// ```
/// use gemmini_vm::page_table::AddressSpace;
/// use gemmini_vm::page::FrameAllocator;
///
/// let mut frames = FrameAllocator::new();
/// let mut space = AddressSpace::new(&mut frames);
/// let va = space.alloc(&mut frames, 100);
/// assert!(space.translate(va).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct AddressSpace {
    root: Frame,
    map: HashMap<Vpn, (Frame, PagePermissions)>,
    /// Interior-node frames, keyed by (level, path-prefix of indices).
    tables: HashMap<(u32, u64), Frame>,
    next_va: u64,
}

/// Base of the bump-allocated virtual heap (keeps low addresses free, like a
/// real process layout).
const HEAP_BASE: u64 = 0x10_0000;

impl AddressSpace {
    /// Creates an empty address space, allocating its root table frame.
    pub fn new(frames: &mut FrameAllocator) -> Self {
        Self {
            root: frames.alloc(),
            map: HashMap::new(),
            tables: HashMap::new(),
            next_va: HEAP_BASE,
        }
    }

    /// The root table frame (the "satp" of this address space).
    pub fn root(&self) -> Frame {
        self.root
    }

    /// Maps one page with the given permissions, allocating interior table
    /// frames on demand. Remapping an existing page replaces its entry.
    pub fn map_page(
        &mut self,
        frames: &mut FrameAllocator,
        vpn: Vpn,
        frame: Frame,
        perms: PagePermissions,
    ) {
        // Materialize interior nodes for levels 1 and 2 so the walker has
        // real PTE addresses to touch.
        let l0 = vpn.index_at_level(0);
        let l1 = vpn.index_at_level(1);
        self.tables.entry((1, l0)).or_insert_with(|| frames.alloc());
        self.tables
            .entry((2, (l0 << 9) | l1))
            .or_insert_with(|| frames.alloc());
        self.map.insert(vpn, (frame, perms));
    }

    /// Allocates `len` bytes of fresh, page-aligned, read-write virtual
    /// memory backed by fresh frames; returns the starting virtual address.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn alloc(&mut self, frames: &mut FrameAllocator, len: u64) -> VirtAddr {
        assert!(len > 0, "cannot allocate zero bytes");
        let start = VirtAddr::new(self.next_va);
        let pages = len.div_ceil(PAGE_SIZE);
        for i in 0..pages {
            let vpn = Vpn::new(start.page_number() + i);
            let frame = frames.alloc();
            self.map_page(frames, vpn, frame, PagePermissions::RW);
        }
        self.next_va += pages * PAGE_SIZE;
        start
    }

    /// Allocates like [`Self::alloc`] but marks the pages read-only
    /// (e.g. for weights).
    pub fn alloc_readonly(&mut self, frames: &mut FrameAllocator, len: u64) -> VirtAddr {
        let va = self.alloc(frames, len);
        let pages = len.div_ceil(PAGE_SIZE);
        for i in 0..pages {
            let vpn = Vpn::new(va.page_number() + i);
            if let Some(entry) = self.map.get_mut(&vpn) {
                entry.1 = PagePermissions::RO;
            }
        }
        va
    }

    /// Unmaps one page (simulating an OS page eviction). Returns the frame it
    /// was mapped to, if any.
    pub fn unmap_page(&mut self, vpn: Vpn) -> Option<Frame> {
        self.map.remove(&vpn).map(|(f, _)| f)
    }

    /// Looks up the mapping for a page.
    pub fn lookup(&self, vpn: Vpn) -> Option<(Frame, PagePermissions)> {
        self.map.get(&vpn).copied()
    }

    /// Translates a full virtual address to its physical address (functional
    /// path; no timing).
    pub fn translate(&self, va: VirtAddr) -> Option<PhysAddr> {
        let (frame, _) = self.lookup(Vpn::of(va))?;
        Some(frame.base().add(va.offset_in_page()))
    }

    /// The physical PTE addresses a three-level walk of `vpn` touches, root
    /// first. Returned regardless of whether the leaf mapping exists (a walk
    /// that faults still performs its reads).
    pub fn walk_addresses(&self, vpn: Vpn) -> [PhysAddr; WALK_LEVELS] {
        let l0 = vpn.index_at_level(0);
        let l1 = vpn.index_at_level(1);
        let l2 = vpn.index_at_level(2);
        let level1 = self
            .tables
            .get(&(1, l0))
            .copied()
            .unwrap_or_else(|| Frame::new(self.root.raw() + 1));
        let level2 = self
            .tables
            .get(&(2, (l0 << 9) | l1))
            .copied()
            .unwrap_or_else(|| Frame::new(self.root.raw() + 2));
        [
            self.root.base().add(l0 * PTE_BYTES),
            level1.base().add(l1 * PTE_BYTES),
            level2.base().add(l2 * PTE_BYTES),
        ]
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }

    /// Iterates over all mapped pages (unordered).
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, Frame, PagePermissions)> + '_ {
        self.map.iter().map(|(v, (f, p))| (*v, *f, *p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> (FrameAllocator, AddressSpace) {
        let mut fa = FrameAllocator::new();
        let sp = AddressSpace::new(&mut fa);
        (fa, sp)
    }

    #[test]
    fn alloc_maps_whole_range() {
        let (mut fa, mut sp) = space();
        let va = sp.alloc(&mut fa, 3 * PAGE_SIZE + 1);
        assert_eq!(sp.mapped_pages(), 4);
        for i in 0..4 {
            assert!(sp.translate(va.add(i * PAGE_SIZE)).is_some());
        }
        assert!(sp.translate(va.add(4 * PAGE_SIZE)).is_none());
    }

    #[test]
    fn consecutive_allocs_do_not_overlap() {
        let (mut fa, mut sp) = space();
        let a = sp.alloc(&mut fa, PAGE_SIZE);
        let b = sp.alloc(&mut fa, PAGE_SIZE);
        assert_eq!(b.raw(), a.raw() + PAGE_SIZE);
        assert_ne!(sp.translate(a), sp.translate(b));
    }

    #[test]
    fn translate_preserves_page_offset() {
        let (mut fa, mut sp) = space();
        let va = sp.alloc(&mut fa, PAGE_SIZE);
        let pa = sp.translate(va.add(123)).unwrap();
        assert_eq!(pa.offset_in_page(), 123);
    }

    #[test]
    fn readonly_alloc_denies_writes() {
        let (mut fa, mut sp) = space();
        let va = sp.alloc_readonly(&mut fa, PAGE_SIZE);
        let (_, perms) = sp.lookup(Vpn::of(va)).unwrap();
        assert!(perms.read);
        assert!(!perms.write);
    }

    #[test]
    fn unmap_removes_translation() {
        let (mut fa, mut sp) = space();
        let va = sp.alloc(&mut fa, PAGE_SIZE);
        let vpn = Vpn::of(va);
        assert!(sp.unmap_page(vpn).is_some());
        assert!(sp.translate(va).is_none());
        assert!(sp.unmap_page(vpn).is_none());
    }

    #[test]
    fn walk_addresses_are_three_distinct_levels() {
        let (mut fa, mut sp) = space();
        let va = sp.alloc(&mut fa, PAGE_SIZE);
        let walk = sp.walk_addresses(Vpn::of(va));
        assert_eq!(walk.len(), 3);
        assert_ne!(walk[0].page_number(), walk[1].page_number());
        assert_ne!(walk[1].page_number(), walk[2].page_number());
    }

    #[test]
    fn adjacent_pages_share_leaf_table() {
        let (mut fa, mut sp) = space();
        let va = sp.alloc(&mut fa, 2 * PAGE_SIZE);
        let w0 = sp.walk_addresses(Vpn::of(va));
        let w1 = sp.walk_addresses(Vpn::new(va.page_number() + 1));
        // Same leaf table frame, adjacent PTEs.
        assert_eq!(w0[2].page_number(), w1[2].page_number());
        assert_eq!(w1[2].raw() - w0[2].raw(), PTE_BYTES);
    }

    #[test]
    fn distinct_address_spaces_use_distinct_frames() {
        let mut fa = FrameAllocator::new();
        let mut a = AddressSpace::new(&mut fa);
        let mut b = AddressSpace::new(&mut fa);
        let va_a = a.alloc(&mut fa, PAGE_SIZE);
        let va_b = b.alloc(&mut fa, PAGE_SIZE);
        assert_ne!(a.translate(va_a), b.translate(va_b));
    }

    #[test]
    #[should_panic(expected = "zero bytes")]
    fn zero_alloc_panics() {
        let (mut fa, mut sp) = space();
        sp.alloc(&mut fa, 0);
    }
}
