//! Property-based tests for the virtual-memory substrate.

use gemmini_mem::addr::{VirtAddr, PAGE_SIZE};
use gemmini_mem::MemorySystem;
use gemmini_vm::page::{Frame, FrameAllocator, Vpn};
use gemmini_vm::page_table::AddressSpace;
use gemmini_vm::tlb::{Tlb, TlbConfig};
use gemmini_vm::translator::{Access, TranslationConfig, TranslationSystem};
use proptest::prelude::*;

proptest! {
    /// A TLB never exceeds its capacity, and a lookup immediately after an
    /// insert always hits (for non-zero capacity).
    #[test]
    fn tlb_capacity_and_freshness(
        entries in 1u32..16,
        ops in proptest::collection::vec((0u64..32, 0u64..1000), 1..100),
    ) {
        let mut tlb = Tlb::new(TlbConfig { entries, hit_latency: 1 });
        for (vpn, frame) in ops {
            tlb.insert(Vpn::new(vpn), Frame::new(frame));
            prop_assert!(tlb.occupancy() <= entries as usize);
            prop_assert_eq!(tlb.probe(Vpn::new(vpn)), Some(Frame::new(frame)));
        }
    }

    /// With capacity >= working set, a second pass over the same pages
    /// never misses (LRU keeps a fitting working set resident).
    #[test]
    fn tlb_fitting_working_set_hits(pages in 1u64..12) {
        let mut tlb = Tlb::new(TlbConfig { entries: 16, hit_latency: 1 });
        for p in 0..pages {
            tlb.insert(Vpn::new(p), Frame::new(p + 100));
        }
        for p in 0..pages {
            prop_assert_eq!(tlb.lookup(Vpn::new(p)), Some(Frame::new(p + 100)));
        }
        prop_assert_eq!(tlb.stats().misses(), 0);
    }

    /// Functional translation agrees between the fast path and the full
    /// translation system, for any access pattern over mapped memory.
    #[test]
    fn translation_system_agrees_with_page_table(
        offsets in proptest::collection::vec((0u64..(16 * PAGE_SIZE), any::<bool>()), 1..60),
    ) {
        let mut frames = FrameAllocator::new();
        let mut space = AddressSpace::new(&mut frames);
        let base = space.alloc(&mut frames, 16 * PAGE_SIZE);
        let mut mem = MemorySystem::default();
        let mut tsys = TranslationSystem::new(TranslationConfig {
            filter_registers: true,
            ..TranslationConfig::default()
        });
        let mut now = 0;
        for (off, is_write) in offsets {
            let va = base.add(off);
            let access = if is_write { Access::Write } else { Access::Read };
            let out = tsys.translate(&space, &mut mem, now, va, access).unwrap();
            prop_assert_eq!(Some(out.paddr), space.translate(va));
            now += out.latency + 1;
        }
        // Conservation: every request is accounted for exactly once.
        prop_assert_eq!(
            tsys.requests(),
            tsys.filter_hits()
                + tsys.private_tlb().stats().hits()
                + tsys.private_tlb().stats().misses()
        );
    }

    /// Page offsets survive translation for any address.
    #[test]
    fn translation_preserves_offsets(page in 0u64..16, off in 0u64..PAGE_SIZE) {
        let mut frames = FrameAllocator::new();
        let mut space = AddressSpace::new(&mut frames);
        let base = space.alloc(&mut frames, 16 * PAGE_SIZE);
        let va = base.add(page * PAGE_SIZE + off);
        let pa = space.translate(va).unwrap();
        prop_assert_eq!(pa.offset_in_page(), va.offset_in_page());
    }

    /// Distinct mapped pages translate to distinct frames.
    #[test]
    fn mapping_is_injective(pages in 2u64..32) {
        let mut frames = FrameAllocator::new();
        let mut space = AddressSpace::new(&mut frames);
        let base = space.alloc(&mut frames, pages * PAGE_SIZE);
        let mut seen = std::collections::HashSet::new();
        for p in 0..pages {
            let pa = space.translate(VirtAddr::new(base.raw() + p * PAGE_SIZE)).unwrap();
            prop_assert!(seen.insert(pa.page_number()), "duplicate frame");
        }
    }

    /// Flushing the translation system never changes *what* addresses map
    /// to, only how long translation takes.
    #[test]
    fn flush_is_semantically_invisible(offs in proptest::collection::vec(0u64..(8 * PAGE_SIZE), 1..20)) {
        let mut frames = FrameAllocator::new();
        let mut space = AddressSpace::new(&mut frames);
        let base = space.alloc(&mut frames, 8 * PAGE_SIZE);
        let mut mem = MemorySystem::default();
        let mut tsys = TranslationSystem::new(TranslationConfig::default());
        for off in offs {
            let va = base.add(off);
            let before = tsys.translate(&space, &mut mem, 0, va, Access::Read).unwrap().paddr;
            tsys.flush();
            let after = tsys.translate(&space, &mut mem, 0, va, Access::Read).unwrap().paddr;
            prop_assert_eq!(before, after);
        }
    }
}
