#![warn(missing_docs)]

//! Host-CPU timing models for the Gemmini reproduction.
//!
//! The paper evaluates two hosts: "a low-power in-order Rocket core, and a
//! high-performance out-of-order BOOM core". The full FireSim RTL
//! simulation of those cores is replaced here by calibrated per-operation
//! cost models (see `DESIGN.md` for the substitution argument): host-CPU
//! effects in the evaluation are throughput-ratio driven — how fast the
//! scalar core grinds through DNN loops, im2col, and the vector ops the
//! accelerator does not implement.
//!
//! * [`model`] — [`model::CpuModel`]: per-operation cycle costs for Rocket,
//!   with BOOM as a calibrated IPC multiple.
//! * [`kernels`] — whole-layer and whole-network CPU execution cycles (the
//!   Fig. 7 baseline).
//! * [`im2col`] — the CPU-side im2col cost (the burden the optional
//!   accelerator block removes).
//!
//! # Example
//!
//! ```
//! use gemmini_cpu::model::{CpuKind, CpuModel};
//! use gemmini_cpu::kernels::network_cpu_cycles;
//! use gemmini_dnn::zoo;
//!
//! let rocket = CpuModel::new(CpuKind::Rocket);
//! let boom = CpuModel::new(CpuKind::Boom);
//! let net = zoo::resnet50();
//! assert!(network_cpu_cycles(&rocket, &net) > network_cpu_cycles(&boom, &net));
//! ```

pub mod im2col;
pub mod kernels;
pub mod model;

pub use model::{CpuKind, CpuModel};
