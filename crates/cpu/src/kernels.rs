//! Whole-network CPU execution cost — the Fig. 7 baseline.

use crate::model::CpuModel;
use gemmini_dnn::graph::{LayerClass, Network};

/// Cycles for the CPU to run every layer of `net` in software.
///
/// # Example
///
/// ```
/// use gemmini_cpu::model::{CpuKind, CpuModel};
/// use gemmini_cpu::kernels::network_cpu_cycles;
/// use gemmini_dnn::zoo;
/// let cycles = network_cpu_cycles(&CpuModel::new(CpuKind::Rocket), &zoo::resnet50());
/// assert!(cycles > 100_000_000_000); // ~117 G cycles at the calibration
/// ```
pub fn network_cpu_cycles(model: &CpuModel, net: &Network) -> u64 {
    net.layers()
        .iter()
        .map(|l| model.layer_cycles(&l.layer))
        .sum()
}

/// Cycles for the CPU to run only the layers of one class.
pub fn class_cpu_cycles(model: &CpuModel, net: &Network, class: LayerClass) -> u64 {
    net.layers()
        .iter()
        .filter(|l| l.layer.class() == class)
        .map(|l| model.layer_cycles(&l.layer))
        .sum()
}

/// Frames (inferences) per second this CPU achieves on `net` at
/// `clock_ghz`.
pub fn cpu_fps(model: &CpuModel, net: &Network, clock_ghz: f64) -> f64 {
    let cycles = network_cpu_cycles(model, net) as f64;
    clock_ghz * 1e9 / cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CpuKind;
    use gemmini_dnn::zoo;

    #[test]
    fn resnet50_rocket_matches_calibration_anchor() {
        // Fig. 7 anchor: 2,670x over a 43.9 M-cycle accelerator run
        // ⇒ ≈117 G Rocket cycles.
        let cycles = network_cpu_cycles(&CpuModel::new(CpuKind::Rocket), &zoo::resnet50());
        let g = cycles as f64 / 1e9;
        assert!(g > 100.0 && g < 135.0, "ResNet50 Rocket = {g:.1} G cycles");
    }

    #[test]
    fn class_cycles_partition_the_total() {
        let m = CpuModel::new(CpuKind::Rocket);
        let net = zoo::resnet50();
        let total = network_cpu_cycles(&m, &net);
        let by_class: u64 = [
            LayerClass::Conv,
            LayerClass::Matmul,
            LayerClass::ResAdd,
            LayerClass::Pool,
            LayerClass::Norm,
        ]
        .iter()
        .map(|&c| class_cpu_cycles(&m, &net, c))
        .sum();
        assert_eq!(total, by_class);
    }

    #[test]
    fn conv_dominates_resnet_cpu_time() {
        let m = CpuModel::new(CpuKind::Rocket);
        let net = zoo::resnet50();
        let conv = class_cpu_cycles(&m, &net, LayerClass::Conv);
        let total = network_cpu_cycles(&m, &net);
        assert!(conv as f64 / total as f64 > 0.95);
    }

    #[test]
    fn fps_is_reciprocal_of_seconds() {
        let m = CpuModel::new(CpuKind::Rocket);
        let net = zoo::tiny_cnn();
        let fps = cpu_fps(&m, &net, 1.0);
        let cycles = network_cpu_cycles(&m, &net) as f64;
        assert!((fps - 1e9 / cycles).abs() < 1e-6);
    }

    #[test]
    fn bert_on_rocket_is_tens_of_gigacycles() {
        // Matmul-dominated at 3 cycles/MAC: ≈ 34 G + norm ops.
        let cycles = network_cpu_cycles(&CpuModel::new(CpuKind::Rocket), &zoo::bert_base());
        let g = cycles as f64 / 1e9;
        assert!(g > 25.0 && g < 50.0, "BERT Rocket = {g:.1} G cycles");
    }
}
