//! CPU-side im2col: cost of the patch expansion the host performs when the
//! accelerator lacks the optional im2col block (Fig. 7's ablation).

use crate::model::CpuModel;
use gemmini_dnn::graph::Network;

/// Total CPU cycles spent on im2col for every convolution in `net`.
///
/// # Example
///
/// ```
/// use gemmini_cpu::model::{CpuKind, CpuModel};
/// use gemmini_cpu::im2col::network_im2col_cycles;
/// use gemmini_dnn::zoo;
/// let m = CpuModel::new(CpuKind::Rocket);
/// assert!(network_im2col_cycles(&m, &zoo::resnet50()) > 0);
/// assert_eq!(network_im2col_cycles(&m, &zoo::bert_base()), 0); // no convs
/// ```
pub fn network_im2col_cycles(model: &CpuModel, net: &Network) -> u64 {
    net.layers()
        .iter()
        .map(|l| model.im2col_cycles(&l.layer))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CpuKind;
    use gemmini_dnn::zoo;

    #[test]
    fn resnet50_im2col_is_hundreds_of_megacycles_on_rocket() {
        // This is the dominant term in the "no im2col unit" Fig. 7 bars:
        // it must dwarf the accelerator's ~44 M cycles.
        let m = CpuModel::new(CpuKind::Rocket);
        let cycles = network_im2col_cycles(&m, &zoo::resnet50());
        let mcycles = cycles as f64 / 1e6;
        assert!(mcycles > 100.0, "im2col = {mcycles:.0} M cycles");
    }

    #[test]
    fn boom_im2col_is_proportionally_cheaper() {
        let rocket = network_im2col_cycles(&CpuModel::new(CpuKind::Rocket), &zoo::resnet50());
        let boom = network_im2col_cycles(&CpuModel::new(CpuKind::Boom), &zoo::resnet50());
        let ratio = rocket as f64 / boom as f64;
        assert!((ratio - 2.36).abs() < 0.05);
    }

    #[test]
    fn mobilenet_dw_layers_also_pay_im2col() {
        let m = CpuModel::new(CpuKind::Rocket);
        assert!(network_im2col_cycles(&m, &zoo::mobilenetv2()) > 0);
    }
}
