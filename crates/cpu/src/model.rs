//! Per-operation CPU cycle costs.
//!
//! Calibration anchors (documented per constant) come from Fig. 7:
//! ResNet50 at 2,670× over Rocket / 1,130× over BOOM with the accelerator
//! at 22.8 FPS @ 1 GHz, plus the ≈2.0× end-to-end effect of BOOM when the
//! CPU performs im2col.

use gemmini_dnn::graph::{Layer, LayerClass};

/// Which host core the model represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuKind {
    /// Low-power, in-order, single-issue Rocket.
    Rocket,
    /// High-performance, out-of-order BOOM.
    Boom,
}

impl CpuKind {
    /// Throughput multiple over Rocket.
    ///
    /// Calibrated to Fig. 7: 2,670 / 1,130 ≈ 2.36 (the paper's text quotes
    /// "2.0x across all CNNs" for the end-to-end im2col-on-CPU effect,
    /// which this multiple reproduces once the accelerator fraction is
    /// added back in).
    pub fn speedup_over_rocket(self) -> f64 {
        match self {
            Self::Rocket => 1.0,
            Self::Boom => 2.36,
        }
    }
}

/// Rocket-calibrated per-operation costs (cycles). BOOM divides each by its
/// IPC multiple.
///
/// All constants model a *straightforward scalar baseline* — the paper's
/// CPU baseline is an un-tuned port, not a hand-vectorized BLAS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCosts {
    /// Cycles per convolution MAC (nested-loop direct convolution with its
    /// poor locality; calibrated so ResNet50 lands at ≈2,670× the
    /// accelerator's 43.9 M cycles).
    pub conv_cycles_per_mac: f64,
    /// Cycles per matmul MAC (tight three-loop GEMM: two loads, MAC, index
    /// arithmetic on a single-issue core).
    pub matmul_cycles_per_mac: f64,
    /// Cycles per residual-add element (two loads, add, store).
    pub resadd_cycles_per_elem: f64,
    /// Cycles per pooling *window element* (compare/accumulate per element
    /// in each window).
    pub pool_cycles_per_window_elem: f64,
    /// Cycles per softmax element (exp + normalize, scalar).
    pub softmax_cycles_per_elem: f64,
    /// Cycles per layer-norm element (two passes + scale).
    pub layernorm_cycles_per_elem: f64,
    /// Cycles per im2col element (gather + store with index arithmetic and
    /// cache-unfriendly strides; calibrated so the BOOM-vs-Rocket
    /// end-to-end effect with CPU-side im2col lands at the paper's ≈2.0x).
    pub im2col_cycles_per_elem: f64,
    /// Cycles to take and return from a context switch (used by the OS
    /// noise model).
    pub context_switch_cycles: u64,
}

impl Default for CpuCosts {
    fn default() -> Self {
        Self {
            conv_cycles_per_mac: 28.0,
            matmul_cycles_per_mac: 3.0,
            resadd_cycles_per_elem: 4.0,
            pool_cycles_per_window_elem: 2.0,
            softmax_cycles_per_elem: 25.0,
            layernorm_cycles_per_elem: 10.0,
            im2col_cycles_per_elem: 11.5,
            context_switch_cycles: 5_000,
        }
    }
}

/// A host-CPU timing model.
///
/// # Example
///
/// ```
/// use gemmini_cpu::model::{CpuKind, CpuModel};
/// use gemmini_dnn::graph::{Layer, Activation};
/// let m = CpuModel::new(CpuKind::Rocket);
/// let fc = Layer::Matmul { m: 1, k: 1024, n: 1000, activation: Activation::None };
/// assert!(m.layer_cycles(&fc) > 1024 * 1000); // ≥1 cycle per MAC
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    kind: CpuKind,
    costs: CpuCosts,
}

impl CpuModel {
    /// A model with the default (calibrated) cost table.
    pub fn new(kind: CpuKind) -> Self {
        Self {
            kind,
            costs: CpuCosts::default(),
        }
    }

    /// A model with custom costs (for sensitivity studies).
    pub fn with_costs(kind: CpuKind, costs: CpuCosts) -> Self {
        Self { kind, costs }
    }

    /// Which core this models.
    pub fn kind(&self) -> CpuKind {
        self.kind
    }

    /// The underlying cost table.
    pub fn costs(&self) -> &CpuCosts {
        &self.costs
    }

    #[inline]
    fn scale(&self, rocket_cycles: f64) -> u64 {
        (rocket_cycles / self.kind.speedup_over_rocket()).ceil() as u64
    }

    /// Cycles for this CPU to execute `layer` entirely in software.
    pub fn layer_cycles(&self, layer: &Layer) -> u64 {
        let c = &self.costs;
        let rocket = match layer {
            Layer::Conv { .. } | Layer::DwConv { .. } => {
                layer.macs() as f64 * c.conv_cycles_per_mac
            }
            Layer::Matmul { .. } => layer.macs() as f64 * c.matmul_cycles_per_mac,
            Layer::ResAdd { elements } => *elements as f64 * c.resadd_cycles_per_elem,
            Layer::Pool { size, .. } => {
                let outs = layer.output_bytes() as f64;
                outs * (size * size) as f64 * c.pool_cycles_per_window_elem
            }
            Layer::Softmax { rows, cols } => (rows * cols) as f64 * c.softmax_cycles_per_elem,
            Layer::LayerNorm { rows, cols } => (rows * cols) as f64 * c.layernorm_cycles_per_elem,
        };
        self.scale(rocket)
    }

    /// Cycles for this CPU to perform im2col for a convolution layer
    /// (zero for anything else).
    pub fn im2col_cycles(&self, layer: &Layer) -> u64 {
        let elems = match layer {
            Layer::Conv {
                in_channels,
                kernel,
                ..
            } => {
                let (oh, ow) = layer.out_hw().expect("conv has spatial output");
                (oh * ow * kernel * kernel * in_channels) as f64
            }
            Layer::DwConv {
                channels, kernel, ..
            } => {
                let (oh, ow) = layer.out_hw().expect("dwconv has spatial output");
                (oh * ow * kernel * kernel * channels) as f64
            }
            _ => return 0,
        };
        self.scale(elems * self.costs.im2col_cycles_per_elem)
    }

    /// Cost of one OS context switch on this core.
    pub fn context_switch_cycles(&self) -> u64 {
        self.scale(self.costs.context_switch_cycles as f64)
    }

    /// Convenience: whether this layer class runs on the accelerator at
    /// all (norm-class vector ops always stay on the CPU, as in the real
    /// software stack).
    pub fn runs_on_cpu_only(layer: &Layer) -> bool {
        layer.class() == LayerClass::Norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemmini_dnn::graph::{Activation, PoolKind};

    fn conv_layer() -> Layer {
        Layer::Conv {
            in_channels: 64,
            out_channels: 64,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_hw: (56, 56),
            activation: Activation::Relu,
        }
    }

    #[test]
    fn boom_is_uniformly_faster() {
        let rocket = CpuModel::new(CpuKind::Rocket);
        let boom = CpuModel::new(CpuKind::Boom);
        let l = conv_layer();
        let ratio = rocket.layer_cycles(&l) as f64 / boom.layer_cycles(&l) as f64;
        assert!((ratio - 2.36).abs() < 0.01);
        assert!(boom.context_switch_cycles() < rocket.context_switch_cycles());
    }

    #[test]
    fn conv_is_much_more_expensive_per_mac_than_matmul() {
        let m = CpuModel::new(CpuKind::Rocket);
        let conv = conv_layer();
        let mm = Layer::Matmul {
            m: 56 * 56,
            k: 64 * 9,
            n: 64,
            activation: Activation::None,
        };
        assert_eq!(conv.macs(), mm.macs());
        assert!(m.layer_cycles(&conv) > 5 * m.layer_cycles(&mm));
    }

    #[test]
    fn im2col_cost_scales_with_patch_volume() {
        let m = CpuModel::new(CpuKind::Rocket);
        let c = conv_layer();
        // 56*56 outputs * 9 * 64 channels * 11.5 cycles.
        assert_eq!(
            m.im2col_cycles(&c),
            (56.0 * 56.0 * 9.0 * 64.0 * 11.5f64).ceil() as u64
        );
        // Non-conv layers have no im2col.
        assert_eq!(m.im2col_cycles(&Layer::ResAdd { elements: 100 }), 0);
    }

    #[test]
    fn pool_cost_counts_window_elements() {
        let m = CpuModel::new(CpuKind::Rocket);
        let p = Layer::Pool {
            kind: PoolKind::Max,
            size: 2,
            stride: 2,
            padding: 0,
            channels: 1,
            in_hw: (4, 4),
        };
        // 4 outputs * 4 window elems * 2 cycles.
        assert_eq!(m.layer_cycles(&p), 32);
    }

    #[test]
    fn norm_ops_are_cpu_only() {
        assert!(CpuModel::runs_on_cpu_only(&Layer::Softmax {
            rows: 1,
            cols: 1
        }));
        assert!(CpuModel::runs_on_cpu_only(&Layer::LayerNorm {
            rows: 1,
            cols: 1
        }));
        assert!(!CpuModel::runs_on_cpu_only(&conv_layer()));
    }

    #[test]
    fn custom_costs_are_respected() {
        let costs = CpuCosts {
            matmul_cycles_per_mac: 10.0,
            ..CpuCosts::default()
        };
        let m = CpuModel::with_costs(CpuKind::Rocket, costs);
        let mm = Layer::Matmul {
            m: 10,
            k: 10,
            n: 10,
            activation: Activation::None,
        };
        assert_eq!(m.layer_cycles(&mm), 10_000);
    }
}
