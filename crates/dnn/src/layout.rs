//! NCHW ↔ NHWC layout conversion.
//!
//! The accelerator's GEMM-lowered convolutions produce pixel-major (NHWC)
//! feature maps, so the runtime keeps activations in NHWC memory layout;
//! the reference operators work on NCHW tensors. These helpers convert.

use crate::tensor::Tensor;

/// Serializes an NCHW tensor to NHWC byte order.
///
/// # Panics
///
/// Panics if the tensor is not 4-D.
///
/// # Example
///
/// ```
/// use gemmini_dnn::tensor::Tensor;
/// use gemmini_dnn::layout::to_nhwc;
/// let t = Tensor::from_vec(&[1, 2, 1, 2], vec![1i8, 2, 3, 4]); // CHW: c0=[1,2] c1=[3,4]
/// assert_eq!(to_nhwc(&t), vec![1, 3, 2, 4]);
/// ```
pub fn to_nhwc<T: Copy + Default>(t: &Tensor<T>) -> Vec<T> {
    let mut out = Vec::new();
    to_nhwc_into(t, &mut out);
    out
}

/// [`to_nhwc`] into a caller-provided buffer, reusing its capacity.
///
/// The buffer is cleared first; after the call it holds exactly the NHWC
/// serialization. Hot callers (the SoC runtime's per-layer staging) keep
/// one buffer alive across layers to avoid per-tile allocation.
pub fn to_nhwc_into<T: Copy + Default>(t: &Tensor<T>, out: &mut Vec<T>) {
    assert_eq!(t.shape().len(), 4, "layout conversion needs a 4-D tensor");
    let (n, c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
    out.clear();
    out.reserve(t.len());
    for ni in 0..n {
        for y in 0..h {
            for x in 0..w {
                for ci in 0..c {
                    out.push(t.at4(ni, ci, y, x));
                }
            }
        }
    }
}

/// Deserializes NHWC bytes into an NCHW tensor of the given shape.
///
/// # Panics
///
/// Panics if `data` does not match the shape's element count.
pub fn from_nhwc<T: Copy + Default>(
    data: &[T],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
) -> Tensor<T> {
    let mut t = Tensor::<T>::zeros(&[n, c, h, w]);
    from_nhwc_into(data, &mut t);
    t
}

/// [`from_nhwc`] into a pre-shaped NCHW tensor, avoiding the allocation.
///
/// # Panics
///
/// Panics if the tensor is not 4-D or `data` does not match its element
/// count.
pub fn from_nhwc_into<T: Copy + Default>(data: &[T], t: &mut Tensor<T>) {
    assert_eq!(t.shape().len(), 4, "layout conversion needs a 4-D tensor");
    let (n, c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
    assert_eq!(data.len(), n * c * h * w, "layout size mismatch");
    let mut i = 0;
    for ni in 0..n {
        for y in 0..h {
            for x in 0..w {
                for ci in 0..c {
                    *t.at4_mut(ni, ci, y, x) = data[i];
                    i += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = Tensor::<i8>::random(&[2, 3, 4, 5], 1);
        let nhwc = to_nhwc(&t);
        let back = from_nhwc(&nhwc, 2, 3, 4, 5);
        assert_eq!(t, back);
    }

    #[test]
    fn into_variants_match_and_reuse_capacity() {
        let t = Tensor::<i8>::random(&[2, 3, 4, 5], 3);
        let mut buf = Vec::with_capacity(t.len());
        let ptr = buf.as_ptr();
        to_nhwc_into(&t, &mut buf);
        assert_eq!(buf, to_nhwc(&t));
        assert_eq!(ptr, buf.as_ptr(), "capacity reused, no reallocation");
        let mut back = Tensor::<i8>::zeros(&[2, 3, 4, 5]);
        from_nhwc_into(&buf, &mut back);
        assert_eq!(back, t);
    }

    #[test]
    fn single_channel_is_identity() {
        let t = Tensor::<i8>::random(&[1, 1, 3, 3], 2);
        assert_eq!(to_nhwc(&t), t.as_slice().to_vec());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn bad_size_panics() {
        let _ = from_nhwc(&[0i8; 5], 1, 2, 1, 2);
    }
}
