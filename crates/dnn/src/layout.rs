//! NCHW ↔ NHWC layout conversion.
//!
//! The accelerator's GEMM-lowered convolutions produce pixel-major (NHWC)
//! feature maps, so the runtime keeps activations in NHWC memory layout;
//! the reference operators work on NCHW tensors. These helpers convert.

use crate::tensor::Tensor;

/// Serializes an NCHW tensor to NHWC byte order.
///
/// # Panics
///
/// Panics if the tensor is not 4-D.
///
/// # Example
///
/// ```
/// use gemmini_dnn::tensor::Tensor;
/// use gemmini_dnn::layout::to_nhwc;
/// let t = Tensor::from_vec(&[1, 2, 1, 2], vec![1i8, 2, 3, 4]); // CHW: c0=[1,2] c1=[3,4]
/// assert_eq!(to_nhwc(&t), vec![1, 3, 2, 4]);
/// ```
pub fn to_nhwc<T: Copy + Default>(t: &Tensor<T>) -> Vec<T> {
    assert_eq!(t.shape().len(), 4, "layout conversion needs a 4-D tensor");
    let (n, c, h, w) = (t.shape()[0], t.shape()[1], t.shape()[2], t.shape()[3]);
    let mut out = Vec::with_capacity(t.len());
    for ni in 0..n {
        for y in 0..h {
            for x in 0..w {
                for ci in 0..c {
                    out.push(t.at4(ni, ci, y, x));
                }
            }
        }
    }
    out
}

/// Deserializes NHWC bytes into an NCHW tensor of the given shape.
///
/// # Panics
///
/// Panics if `data` does not match the shape's element count.
pub fn from_nhwc<T: Copy + Default>(
    data: &[T],
    n: usize,
    c: usize,
    h: usize,
    w: usize,
) -> Tensor<T> {
    assert_eq!(data.len(), n * c * h * w, "layout size mismatch");
    let mut t = Tensor::<T>::zeros(&[n, c, h, w]);
    let mut i = 0;
    for ni in 0..n {
        for y in 0..h {
            for x in 0..w {
                for ci in 0..c {
                    *t.at4_mut(ni, ci, y, x) = data[i];
                    i += 1;
                }
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let t = Tensor::<i8>::random(&[2, 3, 4, 5], 1);
        let nhwc = to_nhwc(&t);
        let back = from_nhwc(&nhwc, 2, 3, 4, 5);
        assert_eq!(t, back);
    }

    #[test]
    fn single_channel_is_identity() {
        let t = Tensor::<i8>::random(&[1, 1, 3, 3], 2);
        assert_eq!(to_nhwc(&t), t.as_slice().to_vec());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn bad_size_panics() {
        let _ = from_nhwc(&[0i8; 5], 1, 2, 1, 2);
    }
}
