//! Quantization utilities matching the accelerator's arithmetic.
//!
//! Gemmini's integer pipeline takes int8 inputs, accumulates in int32 inside
//! the accumulator SRAM, then scales and saturates back to int8 on the way
//! out (optionally fused with ReLU/ReLU6). These helpers are the golden
//! model of that datapath; the simulator's peripheral circuitry must agree
//! with them bit-for-bit.

use crate::tensor::Tensor;

/// Scaling parameters applied when narrowing an i32 accumulator value back
/// to i8 (`y = clamp(round(x * scale))`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Multiplicative scale applied to the accumulator value.
    pub scale: f32,
}

impl QuantParams {
    /// Identity-ish default used by tests: scale small enough that typical
    /// accumulations land in range.
    pub fn new(scale: f32) -> Self {
        Self { scale }
    }
}

impl Default for QuantParams {
    fn default() -> Self {
        Self { scale: 1.0 }
    }
}

/// Narrows one accumulator value to i8 with round-to-nearest-even and
/// saturation — the accumulator's output stage.
///
/// # Example
///
/// ```
/// use gemmini_dnn::quant::{requantize, QuantParams};
/// assert_eq!(requantize(1000, QuantParams::new(0.1)), 100);
/// assert_eq!(requantize(10_000, QuantParams::new(0.1)), 127); // saturates
/// assert_eq!(requantize(-10_000, QuantParams::new(0.1)), -128);
/// ```
#[inline]
pub fn requantize(acc: i32, params: QuantParams) -> i8 {
    let scaled = acc as f64 * params.scale as f64;
    // Round half to even, like the RTL's rounding shifter.
    let rounded = round_half_even(scaled);
    rounded.clamp(i8::MIN as f64, i8::MAX as f64) as i8
}

fn round_half_even(x: f64) -> f64 {
    let floor = x.floor();
    let frac = x - floor;
    if (frac - 0.5).abs() < f64::EPSILON {
        if (floor as i64) % 2 == 0 {
            floor
        } else {
            floor + 1.0
        }
    } else {
        x.round()
    }
}

/// Requantizes a whole i32 tensor to i8.
pub fn requantize_tensor(acc: &Tensor<i32>, params: QuantParams) -> Tensor<i8> {
    acc.map(|x| requantize(x, params))
}

/// Quantizes an f32 value to i8 with the given scale
/// (`q = clamp(round(x / scale))`).
#[inline]
pub fn quantize(x: f32, scale: f32) -> i8 {
    (x / scale).round().clamp(i8::MIN as f32, i8::MAX as f32) as i8
}

/// Dequantizes an i8 value back to f32.
#[inline]
pub fn dequantize(q: i8, scale: f32) -> f32 {
    q as f32 * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requantize_scales_and_rounds() {
        assert_eq!(requantize(100, QuantParams::new(0.5)), 50);
        assert_eq!(requantize(101, QuantParams::new(0.5)), 50); // 50.5 rounds to even
        assert_eq!(requantize(103, QuantParams::new(0.5)), 52); // 51.5 rounds to even 52
        assert_eq!(requantize(-100, QuantParams::new(0.5)), -50);
    }

    #[test]
    fn requantize_saturates_both_ends() {
        assert_eq!(requantize(i32::MAX, QuantParams::new(1.0)), 127);
        assert_eq!(requantize(i32::MIN, QuantParams::new(1.0)), -128);
    }

    #[test]
    fn identity_scale_passes_small_values() {
        for v in -128..=127 {
            assert_eq!(requantize(v, QuantParams::default()), v as i8);
        }
    }

    #[test]
    fn quantize_dequantize_roundtrip_within_step() {
        let scale = 0.05f32;
        for &x in &[-1.0f32, -0.33, 0.0, 0.4, 0.99] {
            let q = quantize(x, scale);
            let back = dequantize(q, scale);
            assert!((back - x).abs() <= scale / 2.0 + 1e-6, "x={x} back={back}");
        }
    }

    #[test]
    fn tensor_requantization_is_elementwise() {
        let acc = Tensor::from_vec(&[3], vec![100, -100, 10_000]);
        let out = requantize_tensor(&acc, QuantParams::new(0.1));
        assert_eq!(out.as_slice(), &[10, -10, 127]);
    }

    #[test]
    fn round_half_even_behaviour() {
        assert_eq!(round_half_even(0.5), 0.0);
        assert_eq!(round_half_even(1.5), 2.0);
        assert_eq!(round_half_even(2.5), 2.0);
        assert_eq!(round_half_even(-0.5), 0.0);
        assert_eq!(round_half_even(1.4), 1.0);
    }
}
