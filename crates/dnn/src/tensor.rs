//! Dense N-dimensional tensors.
//!
//! A [`Tensor<T>`] is a shape plus a row-major buffer. Indexing helpers
//! cover the layouts the kernels use: 2-D matrices (`[rows, cols]`) and
//! NCHW feature maps (`[n, c, h, w]`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A dense, row-major N-dimensional tensor.
///
/// # Example
///
/// ```
/// use gemmini_dnn::tensor::Tensor;
/// let mut t = Tensor::<i8>::zeros(&[2, 3]);
/// t[(1, 2)] = 7;
/// assert_eq!(t[(1, 2)], 7);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T> {
    shape: Vec<usize>,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Creates a zero-filled (default-filled) tensor of the given shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape is empty or any dimension is zero.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        assert!(
            shape.iter().all(|&d| d > 0),
            "tensor dimensions must be non-zero: {shape:?}"
        );
        let len = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![T::default(); len],
        }
    }
}

impl<T: Copy> Tensor<T> {
    /// Creates a tensor from an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<T>) -> Self {
        let len: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            len,
            "buffer length {} does not match shape {shape:?}",
            data.len()
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements (never true for a validly
    /// constructed tensor).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying buffer, row-major.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// The underlying buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let len: usize = shape.iter().product();
        assert_eq!(self.data.len(), len, "reshape to {shape:?} changes length");
        self.shape = shape.to_vec();
        self
    }

    #[inline]
    fn flat2(&self, r: usize, c: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 2);
        debug_assert!(r < self.shape[0] && c < self.shape[1]);
        r * self.shape[1] + c
    }

    #[inline]
    fn flat4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 4);
        debug_assert!(
            n < self.shape[0] && c < self.shape[1] && h < self.shape[2] && w < self.shape[3]
        );
        ((n * self.shape[1] + c) * self.shape[2] + h) * self.shape[3] + w
    }

    /// Element accessor for 4-D NCHW tensors.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> T {
        self.data[self.flat4(n, c, h, w)]
    }

    /// Mutable accessor for 4-D NCHW tensors.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut T {
        let i = self.flat4(n, c, h, w);
        &mut self.data[i]
    }

    /// Applies `f` elementwise, producing a new tensor of the same shape.
    pub fn map<U: Copy>(&self, f: impl Fn(T) -> U) -> Tensor<U> {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }
}

impl<T: Copy> std::ops::Index<(usize, usize)> for Tensor<T> {
    type Output = T;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &T {
        &self.data[self.flat2(r, c)]
    }
}

impl<T: Copy> std::ops::IndexMut<(usize, usize)> for Tensor<T> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        let i = self.flat2(r, c);
        &mut self.data[i]
    }
}

impl<T: fmt::Display + Copy> fmt::Display for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}[", self.shape)?;
        let preview: Vec<String> = self.data.iter().take(8).map(|x| x.to_string()).collect();
        write!(f, "{}", preview.join(", "))?;
        if self.data.len() > 8 {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl Tensor<i8> {
    /// Deterministic pseudo-random fill in `[-64, 63]` — the reproduction's
    /// substitute for trained int8 weights/activations. Values stay well
    /// inside the i8 range so small accumulations cannot saturate the
    /// reference path where the hardware would not.
    pub fn random(shape: &[usize], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let len: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: (0..len).map(|_| rng.gen_range(-64..64) as i8).collect(),
        }
    }
}

impl Tensor<f32> {
    /// Deterministic pseudo-random fill in `[-1.0, 1.0)`.
    pub fn random(shape: &[usize], seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let len: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing_2d() {
        let mut t = Tensor::<i32>::zeros(&[3, 4]);
        assert_eq!(t.len(), 12);
        t[(2, 3)] = 5;
        assert_eq!(t[(2, 3)], 5);
        assert_eq!(t.as_slice()[11], 5); // row-major: last element
    }

    #[test]
    fn nchw_indexing_is_row_major() {
        let mut t = Tensor::<i8>::zeros(&[1, 2, 2, 2]);
        *t.at4_mut(0, 1, 1, 1) = 9;
        assert_eq!(t.as_slice()[7], 9);
        assert_eq!(t.at4(0, 1, 1, 1), 9);
    }

    #[test]
    fn from_vec_and_into_vec_roundtrip() {
        let t = Tensor::from_vec(&[2, 2], vec![1, 2, 3, 4]);
        assert_eq!(t[(1, 0)], 3);
        assert_eq!(t.into_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_length_mismatch_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        let _ = Tensor::<i8>::zeros(&[2, 0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1, 2, 3, 4, 5, 6]).reshape(&[3, 2]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t[(2, 1)], 6);
    }

    #[test]
    #[should_panic(expected = "changes length")]
    fn bad_reshape_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1, 2, 3, 4]).reshape(&[3, 2]);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Tensor::<i8>::random(&[4, 4], 42);
        let b = Tensor::<i8>::random(&[4, 4], 42);
        let c = Tensor::<i8>::random(&[4, 4], 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a
            .as_slice()
            .iter()
            .all(|&x| (-64..64).contains(&(x as i32))));
    }

    #[test]
    fn map_converts_element_type() {
        let t = Tensor::from_vec(&[2], vec![1i8, -2]);
        let u: Tensor<i32> = t.map(|x| x as i32 * 10);
        assert_eq!(u.as_slice(), &[10, -20]);
    }

    #[test]
    fn display_previews() {
        let t = Tensor::from_vec(&[10], (0..10).collect::<Vec<i32>>());
        let s = t.to_string();
        assert!(s.starts_with("Tensor[10]["));
        assert!(s.contains('…'));
    }
}
