#![warn(missing_docs)]

//! DNN substrate for the Gemmini reproduction.
//!
//! Everything the workloads side of the paper needs, implemented from
//! scratch:
//!
//! * [`tensor`] — a dense N-dimensional tensor over `i8`/`i32`/`f32` with
//!   NCHW helpers and deterministic pseudo-random fills (our substitute for
//!   real ImageNet/BERT weights; performance depends on shapes, not values).
//! * [`quant`] — symmetric quantization utilities matching the accelerator's
//!   int8-in / int32-accumulate / scale-requantize pipeline.
//! * [`ops`] — reference (golden-model) operator implementations: direct and
//!   im2col convolution, depthwise convolution, matmul, pooling, ReLU/ReLU6,
//!   residual addition, softmax and layer norm.
//! * [`graph`] — the layer-trace IR: a [`graph::Network`] is an ordered list
//!   of dimensioned layers with MAC/byte accounting and the layer-class
//!   taxonomy (conv / matmul / residual-add) used by the Fig. 9 case study.
//! * [`loader`] — a minimal textual network format (the reproduction's
//!   stand-in for the paper's ONNX front-end) with parser and serializer.
//! * [`zoo`] — the five evaluated networks with their real layer dimensions:
//!   ResNet50, AlexNet, SqueezeNet v1.1, MobileNetV2 and BERT-base.
//!
//! # Example
//!
//! ```
//! use gemmini_dnn::zoo;
//!
//! let net = zoo::resnet50();
//! // ResNet50 at 224x224 is ~4.1 GMACs of conv+matmul work.
//! let gmacs = net.total_macs() as f64 / 1e9;
//! assert!(gmacs > 3.5 && gmacs < 4.5);
//! ```

pub mod graph;
pub mod layout;
pub mod loader;
pub mod ops;
pub mod quant;
pub mod tensor;
pub mod zoo;

pub use graph::{Layer, LayerClass, Network};
pub use tensor::Tensor;
