//! Textual network format — the reproduction's stand-in for the paper's
//! ONNX front-end.
//!
//! The format is line-oriented: a `network <name>` header followed by one
//! layer per line, `#` comments and blank lines ignored:
//!
//! ```text
//! network tiny
//! conv name=stem in=3 out=64 k=7 s=2 p=3 hw=224x224 act=relu
//! pool name=pool1 kind=max size=3 s=2 p=1 c=64 hw=112x112
//! matmul name=fc m=1 k=2048 n=1000 act=none
//! resadd name=skip elems=802816
//! ```
//!
//! [`parse_network`] and [`serialize_network`] round-trip exactly, so model
//! descriptions can be stored as plain files and fed to the push-button
//! runtime flow just as ONNX files feed the paper's.

use crate::graph::{Activation, Layer, Network, PoolKind};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An error produced while parsing the textual network format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetworkError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseNetworkError {}

fn err(line: usize, message: impl Into<String>) -> ParseNetworkError {
    ParseNetworkError {
        line,
        message: message.into(),
    }
}

struct Fields<'a> {
    map: HashMap<&'a str, &'a str>,
    line: usize,
}

impl<'a> Fields<'a> {
    fn parse(parts: &[&'a str], line: usize) -> Result<Self, ParseNetworkError> {
        let mut map = HashMap::new();
        for part in parts {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| err(line, format!("expected key=value, got `{part}`")))?;
            if map.insert(k, v).is_some() {
                return Err(err(line, format!("duplicate field `{k}`")));
            }
        }
        Ok(Self { map, line })
    }

    fn str(&self, key: &str) -> Result<&'a str, ParseNetworkError> {
        self.map
            .get(key)
            .copied()
            .ok_or_else(|| err(self.line, format!("missing field `{key}`")))
    }

    fn usize(&self, key: &str) -> Result<usize, ParseNetworkError> {
        self.str(key)?
            .parse()
            .map_err(|_| err(self.line, format!("field `{key}` is not a number")))
    }

    fn hw(&self, key: &str) -> Result<(usize, usize), ParseNetworkError> {
        let s = self.str(key)?;
        let (h, w) = s
            .split_once('x')
            .ok_or_else(|| err(self.line, format!("field `{key}` must look like 224x224")))?;
        Ok((
            h.parse()
                .map_err(|_| err(self.line, format!("bad height in `{key}`")))?,
            w.parse()
                .map_err(|_| err(self.line, format!("bad width in `{key}`")))?,
        ))
    }

    fn activation(&self) -> Result<Activation, ParseNetworkError> {
        match self.map.get("act").copied() {
            None | Some("none") => Ok(Activation::None),
            Some("relu") => Ok(Activation::Relu),
            Some("relu6") => Ok(Activation::Relu6),
            Some(other) => Err(err(self.line, format!("unknown activation `{other}`"))),
        }
    }
}

/// Parses the textual network format.
///
/// # Errors
///
/// Returns a [`ParseNetworkError`] naming the offending line for any
/// malformed input.
///
/// # Example
///
/// ```
/// use gemmini_dnn::loader::parse_network;
/// let net = parse_network("network t\nmatmul name=fc m=2 k=3 n=4 act=none\n")?;
/// assert_eq!(net.total_macs(), 24);
/// # Ok::<(), gemmini_dnn::loader::ParseNetworkError>(())
/// ```
pub fn parse_network(text: &str) -> Result<Network, ParseNetworkError> {
    let mut net: Option<Network> = None;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kind = parts.next().expect("non-empty line has a first token");
        let rest: Vec<&str> = parts.collect();

        if kind == "network" {
            if net.is_some() {
                return Err(err(lineno, "duplicate `network` header"));
            }
            let name = rest
                .first()
                .ok_or_else(|| err(lineno, "`network` requires a name"))?;
            net = Some(Network::new(*name));
            continue;
        }

        let net = net
            .as_mut()
            .ok_or_else(|| err(lineno, "layer before `network` header"))?;
        let f = Fields::parse(&rest, lineno)?;
        let name = f.str("name")?.to_string();
        let layer = match kind {
            "conv" => Layer::Conv {
                in_channels: f.usize("in")?,
                out_channels: f.usize("out")?,
                kernel: f.usize("k")?,
                stride: f.usize("s")?,
                padding: f.usize("p")?,
                in_hw: f.hw("hw")?,
                activation: f.activation()?,
            },
            "dwconv" => Layer::DwConv {
                channels: f.usize("c")?,
                kernel: f.usize("k")?,
                stride: f.usize("s")?,
                padding: f.usize("p")?,
                in_hw: f.hw("hw")?,
                activation: f.activation()?,
            },
            "matmul" => Layer::Matmul {
                m: f.usize("m")?,
                k: f.usize("k")?,
                n: f.usize("n")?,
                activation: f.activation()?,
            },
            "resadd" => Layer::ResAdd {
                elements: f.usize("elems")?,
            },
            "pool" => Layer::Pool {
                kind: match f.str("kind")? {
                    "max" => PoolKind::Max,
                    "avg" => PoolKind::Avg,
                    other => return Err(err(lineno, format!("unknown pool kind `{other}`"))),
                },
                size: f.usize("size")?,
                stride: f.usize("s")?,
                padding: f.usize("p")?,
                channels: f.usize("c")?,
                in_hw: f.hw("hw")?,
            },
            "layernorm" => Layer::LayerNorm {
                rows: f.usize("rows")?,
                cols: f.usize("cols")?,
            },
            "softmax" => Layer::Softmax {
                rows: f.usize("rows")?,
                cols: f.usize("cols")?,
            },
            other => return Err(err(lineno, format!("unknown layer kind `{other}`"))),
        };
        net.push(name, layer);
    }
    net.ok_or_else(|| err(0, "input contains no `network` header"))
}

/// Serializes a network to the textual format parsed by [`parse_network`].
pub fn serialize_network(net: &Network) -> String {
    let mut out = format!("network {}\n", net.name());
    for nl in net.layers() {
        let line = match &nl.layer {
            Layer::Conv {
                in_channels,
                out_channels,
                kernel,
                stride,
                padding,
                in_hw,
                activation,
            } => format!(
                "conv name={} in={in_channels} out={out_channels} k={kernel} s={stride} p={padding} hw={}x{} act={activation}",
                nl.name, in_hw.0, in_hw.1
            ),
            Layer::DwConv {
                channels,
                kernel,
                stride,
                padding,
                in_hw,
                activation,
            } => format!(
                "dwconv name={} c={channels} k={kernel} s={stride} p={padding} hw={}x{} act={activation}",
                nl.name, in_hw.0, in_hw.1
            ),
            Layer::Matmul { m, k, n, activation } => {
                format!("matmul name={} m={m} k={k} n={n} act={activation}", nl.name)
            }
            Layer::ResAdd { elements } => format!("resadd name={} elems={elements}", nl.name),
            Layer::Pool {
                kind,
                size,
                stride,
                padding,
                channels,
                in_hw,
            } => format!(
                "pool name={} kind={kind} size={size} s={stride} p={padding} c={channels} hw={}x{}",
                nl.name, in_hw.0, in_hw.1
            ),
            Layer::LayerNorm { rows, cols } => {
                format!("layernorm name={} rows={rows} cols={cols}", nl.name)
            }
            Layer::Softmax { rows, cols } => {
                format!("softmax name={} rows={rows} cols={cols}", nl.name)
            }
        };
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LayerClass;

    const SAMPLE: &str = "\
# a tiny test network
network tiny

conv name=stem in=3 out=64 k=7 s=2 p=3 hw=224x224 act=relu
dwconv name=dw c=64 k=3 s=1 p=1 hw=112x112 act=relu6
pool name=p kind=max size=3 s=2 p=1 c=64 hw=112x112
matmul name=fc m=1 k=2048 n=1000 act=none
resadd name=skip elems=1024
layernorm name=ln rows=128 cols=768
softmax name=sm rows=12 cols=128
";

    #[test]
    fn parses_all_layer_kinds() {
        let net = parse_network(SAMPLE).unwrap();
        assert_eq!(net.name(), "tiny");
        assert_eq!(net.len(), 7);
        assert_eq!(net.count_of_class(LayerClass::Conv), 2);
        assert_eq!(net.count_of_class(LayerClass::Norm), 2);
        assert_eq!(net.layers()[0].name, "stem");
    }

    #[test]
    fn roundtrip_is_exact() {
        let net = parse_network(SAMPLE).unwrap();
        let text = serialize_network(&net);
        let again = parse_network(&text).unwrap();
        assert_eq!(net, again);
    }

    #[test]
    fn missing_header_is_an_error() {
        let e = parse_network("conv name=c in=3 out=8 k=1 s=1 p=0 hw=8x8").unwrap_err();
        assert!(e.message.contains("before `network`"));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse_network("# nothing\n").is_err());
    }

    #[test]
    fn missing_field_names_the_field_and_line() {
        let e = parse_network("network t\nconv name=c in=3 out=8 k=1 s=1 p=0").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("`hw`"), "{e}");
    }

    #[test]
    fn bad_number_is_reported() {
        let e = parse_network("network t\nmatmul name=f m=x k=1 n=1").unwrap_err();
        assert!(e.message.contains("not a number"));
    }

    #[test]
    fn unknown_kind_and_activation_are_reported() {
        assert!(parse_network("network t\nblah name=x").is_err());
        let e = parse_network("network t\nmatmul name=f m=1 k=1 n=1 act=tanh").unwrap_err();
        assert!(e.message.contains("unknown activation"));
    }

    #[test]
    fn duplicate_field_is_reported() {
        let e = parse_network("network t\nresadd name=r elems=1 elems=2").unwrap_err();
        assert!(e.message.contains("duplicate field"));
    }

    #[test]
    fn duplicate_header_is_reported() {
        let e = parse_network("network a\nnetwork b").unwrap_err();
        assert!(e.message.contains("duplicate `network`"));
    }

    #[test]
    fn activation_defaults_to_none() {
        let net = parse_network("network t\nmatmul name=f m=1 k=1 n=1").unwrap();
        assert!(matches!(
            net.layers()[0].layer,
            Layer::Matmul {
                activation: Activation::None,
                ..
            }
        ));
    }

    #[test]
    fn error_display_includes_line() {
        let e = parse_network("network t\nmatmul name=f m=x k=1 n=1").unwrap_err();
        assert!(e.to_string().starts_with("line 2:"));
    }
}
