//! Residual addition — the memory-bound, zero-reuse operator that drives
//! the Fig. 9 memory-partitioning case study.

use crate::tensor::Tensor;

/// Saturating elementwise i8 addition of two equal-shape tensors.
///
/// # Panics
///
/// Panics if the shapes differ.
///
/// # Example
///
/// ```
/// use gemmini_dnn::tensor::Tensor;
/// use gemmini_dnn::ops::resadd_i8;
/// let a = Tensor::from_vec(&[2], vec![100i8, -100]);
/// let b = Tensor::from_vec(&[2], vec![100i8, -100]);
/// assert_eq!(resadd_i8(&a, &b).as_slice(), &[127, -128]); // saturates
/// ```
pub fn resadd_i8(a: &Tensor<i8>, b: &Tensor<i8>) -> Tensor<i8> {
    assert_eq!(a.shape(), b.shape(), "residual addition shape mismatch");
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x.saturating_add(y))
        .collect();
    Tensor::from_vec(a.shape(), data)
}

/// Wrapping elementwise i32 addition (accumulator-space residuals).
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn resadd_i32(a: &Tensor<i32>, b: &Tensor<i32>) -> Tensor<i32> {
    assert_eq!(a.shape(), b.shape(), "residual addition shape mismatch");
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x.wrapping_add(y))
        .collect();
    Tensor::from_vec(a.shape(), data)
}

/// Elementwise f32 addition.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn resadd_f32(a: &Tensor<f32>, b: &Tensor<f32>) -> Tensor<f32> {
    assert_eq!(a.shape(), b.shape(), "residual addition shape mismatch");
    let data = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x + y)
        .collect();
    Tensor::from_vec(a.shape(), data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_addition() {
        let a = Tensor::from_vec(&[3], vec![1i8, 2, 3]);
        let b = Tensor::from_vec(&[3], vec![10i8, 20, 30]);
        assert_eq!(resadd_i8(&a, &b).as_slice(), &[11, 22, 33]);
    }

    #[test]
    fn saturation_at_both_rails() {
        let a = Tensor::from_vec(&[2], vec![127i8, -128]);
        let b = Tensor::from_vec(&[2], vec![1i8, -1]);
        assert_eq!(resadd_i8(&a, &b).as_slice(), &[127, -128]);
    }

    #[test]
    fn i32_and_f32_variants() {
        let a = Tensor::from_vec(&[2], vec![1i32, -5]);
        let b = Tensor::from_vec(&[2], vec![2i32, 5]);
        assert_eq!(resadd_i32(&a, &b).as_slice(), &[3, 0]);

        let a = Tensor::from_vec(&[2], vec![0.5f32, 1.5]);
        let b = Tensor::from_vec(&[2], vec![0.25f32, -1.5]);
        assert_eq!(resadd_f32(&a, &b).as_slice(), &[0.75, 0.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Tensor::<i8>::zeros(&[2]);
        let b = Tensor::<i8>::zeros(&[3]);
        let _ = resadd_i8(&a, &b);
    }
}
