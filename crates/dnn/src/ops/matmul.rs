//! Reference matrix multiplication.

use super::MacElement;
use crate::tensor::Tensor;

/// Computes `a @ b` where `a` is `[m, k]` and `b` is `[k, n]`, returning an
/// `[m, n]` tensor of accumulator values.
///
/// # Panics
///
/// Panics if the operands are not 2-D or their inner dimensions disagree.
///
/// # Example
///
/// ```
/// use gemmini_dnn::tensor::Tensor;
/// use gemmini_dnn::ops::matmul;
/// let a = Tensor::from_vec(&[2, 2], vec![1i8, 2, 3, 4]);
/// let b = Tensor::from_vec(&[2, 2], vec![5i8, 6, 7, 8]);
/// let c = matmul(&a, &b);
/// assert_eq!(c.as_slice(), &[19, 22, 43, 50]);
/// ```
pub fn matmul<T: MacElement>(a: &Tensor<T>, b: &Tensor<T>) -> Tensor<T::Acc> {
    assert_eq!(a.shape().len(), 2, "matmul lhs must be 2-D");
    assert_eq!(b.shape().len(), 2, "matmul rhs must be 2-D");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dimensions disagree: {k} vs {k2}");

    let mut out = Tensor::<T::Acc>::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::Acc::default();
            for p in 0..k {
                acc = T::mac(acc, a[(i, p)], b[(p, j)]);
            }
            out[(i, j)] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul() {
        let a = Tensor::from_vec(&[2, 2], vec![1i8, 2, 3, 4]);
        let eye = Tensor::from_vec(&[2, 2], vec![1i8, 0, 0, 1]);
        let c = matmul(&a, &eye);
        assert_eq!(c.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn rectangular_shapes() {
        // [1,3] @ [3,2] -> [1,2]
        let a = Tensor::from_vec(&[1, 3], vec![1i8, 2, 3]);
        let b = Tensor::from_vec(&[3, 2], vec![1i8, 2, 3, 4, 5, 6]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), &[1, 2]);
        assert_eq!(c.as_slice(), &[22, 28]);
    }

    #[test]
    fn f32_matmul() {
        let a = Tensor::from_vec(&[2, 1], vec![0.5f32, -0.5]);
        let b = Tensor::from_vec(&[1, 2], vec![2.0f32, 4.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[1.0, 2.0, -1.0, -2.0]);
    }

    #[test]
    fn negative_values_accumulate_correctly() {
        let a = Tensor::from_vec(&[1, 2], vec![-64i8, 64]);
        let b = Tensor::from_vec(&[2, 1], vec![64i8, 64]);
        assert_eq!(matmul(&a, &b).as_slice(), &[0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions disagree")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::<i8>::zeros(&[2, 3]);
        let b = Tensor::<i8>::zeros(&[2, 2]);
        let _ = matmul(&a, &b);
    }

    #[test]
    #[should_panic(expected = "must be 2-D")]
    fn non_2d_panics() {
        let a = Tensor::<i8>::zeros(&[2, 3, 1]);
        let b = Tensor::<i8>::zeros(&[3, 2]);
        let _ = matmul(&a, &b);
    }
}
