//! Reference 2-D convolution (direct and depthwise).

use super::MacElement;
use crate::tensor::Tensor;

/// Geometry of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Kernel height/width (square kernels, as in all evaluated networks).
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on each edge.
    pub padding: usize,
}

impl ConvSpec {
    /// A `k`×`k` kernel with stride 1 and "same" padding.
    pub fn same(kernel: usize) -> Self {
        Self {
            kernel,
            stride: 1,
            padding: kernel / 2,
        }
    }

    /// Output spatial size for an input of `in_size`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields no output pixels.
    pub fn out_size(&self, in_size: usize) -> usize {
        let padded = in_size + 2 * self.padding;
        assert!(
            padded >= self.kernel && self.stride > 0,
            "convolution geometry produces no output: in={in_size} {self:?}"
        );
        (padded - self.kernel) / self.stride + 1
    }
}

/// Direct 2-D convolution.
///
/// `input` is NCHW `[n, c, h, w]`; `weights` is `[oc, c, kh, kw]`. Returns
/// `[n, oc, oh, ow]` of accumulator values (requantization is a separate,
/// explicit step, as on the accelerator).
///
/// # Panics
///
/// Panics on rank or channel-count mismatches.
///
/// # Example
///
/// ```
/// use gemmini_dnn::tensor::Tensor;
/// use gemmini_dnn::ops::{conv2d, ConvSpec};
/// // 1x1x2x2 input, single 1x1 kernel that doubles values.
/// let input = Tensor::from_vec(&[1, 1, 2, 2], vec![1i8, 2, 3, 4]);
/// let w = Tensor::from_vec(&[1, 1, 1, 1], vec![2i8]);
/// let out = conv2d(&input, &w, ConvSpec { kernel: 1, stride: 1, padding: 0 });
/// assert_eq!(out.as_slice(), &[2, 4, 6, 8]);
/// ```
pub fn conv2d<T: MacElement>(
    input: &Tensor<T>,
    weights: &Tensor<T>,
    spec: ConvSpec,
) -> Tensor<T::Acc> {
    assert_eq!(input.shape().len(), 4, "conv input must be NCHW");
    assert_eq!(
        weights.shape().len(),
        4,
        "conv weights must be [oc,c,kh,kw]"
    );
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (oc, wc, kh, kw) = (
        weights.shape()[0],
        weights.shape()[1],
        weights.shape()[2],
        weights.shape()[3],
    );
    assert_eq!(c, wc, "channel mismatch: input {c}, weights {wc}");
    assert_eq!(kh, spec.kernel, "weight kernel height disagrees with spec");
    assert_eq!(kw, spec.kernel, "weight kernel width disagrees with spec");

    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let mut out = Tensor::<T::Acc>::zeros(&[n, oc, oh, ow]);
    for ni in 0..n {
        for oci in 0..oc {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = T::Acc::default();
                    for ci in 0..c {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                    continue; // zero padding contributes nothing
                                }
                                acc = T::mac(
                                    acc,
                                    input.at4(ni, ci, iy as usize, ix as usize),
                                    weights.at4(oci, ci, ky, kx),
                                );
                            }
                        }
                    }
                    *out.at4_mut(ni, oci, oy, ox) = acc;
                }
            }
        }
    }
    out
}

/// Depthwise 2-D convolution: each channel is convolved with its own
/// `[kh, kw]` filter (`weights` is `[c, kh, kw]`). This is the MobileNetV2
/// operator the paper singles out as mapping poorly onto spatial arrays.
///
/// # Panics
///
/// Panics on rank or channel-count mismatches.
pub fn dwconv2d<T: MacElement>(
    input: &Tensor<T>,
    weights: &Tensor<T>,
    spec: ConvSpec,
) -> Tensor<T::Acc> {
    assert_eq!(input.shape().len(), 4, "dwconv input must be NCHW");
    assert_eq!(weights.shape().len(), 3, "dwconv weights must be [c,kh,kw]");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    assert_eq!(c, weights.shape()[0], "channel mismatch");
    let kh = weights.shape()[1];
    let kw = weights.shape()[2];
    assert_eq!(kh, spec.kernel);
    assert_eq!(kw, spec.kernel);

    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let mut out = Tensor::<T::Acc>::zeros(&[n, c, oh, ow]);
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = T::Acc::default();
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                continue;
                            }
                            let widx = ci;
                            acc = T::mac(
                                acc,
                                input.at4(ni, ci, iy as usize, ix as usize),
                                weights.as_slice()[(widx * kh + ky) * kw + kx],
                            );
                        }
                    }
                    *out.at4_mut(ni, ci, oy, ox) = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_size_math() {
        let s = ConvSpec {
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        assert_eq!(s.out_size(224), 224); // "same" conv
        let s = ConvSpec {
            kernel: 7,
            stride: 2,
            padding: 3,
        };
        assert_eq!(s.out_size(224), 112); // ResNet50 stem
        let s = ConvSpec {
            kernel: 11,
            stride: 4,
            padding: 2,
        };
        assert_eq!(s.out_size(224), 55); // AlexNet stem
    }

    #[test]
    fn same_spec_constructor() {
        let s = ConvSpec::same(3);
        assert_eq!(s.padding, 1);
        assert_eq!(s.out_size(8), 8);
    }

    #[test]
    fn identity_kernel_passes_input() {
        let input = Tensor::from_vec(&[1, 1, 3, 3], (1..=9).map(|x| x as i8).collect());
        let w = Tensor::from_vec(&[1, 1, 1, 1], vec![1i8]);
        let out = conv2d(
            &input,
            &w,
            ConvSpec {
                kernel: 1,
                stride: 1,
                padding: 0,
            },
        );
        assert_eq!(out.as_slice(), &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn averaging_kernel_with_padding() {
        // 3x3 all-ones kernel over a 3x3 all-ones image with padding 1:
        // corners see 4 pixels, edges 6, center 9.
        let input = Tensor::from_vec(&[1, 1, 3, 3], vec![1i8; 9]);
        let w = Tensor::from_vec(&[1, 1, 3, 3], vec![1i8; 9]);
        let out = conv2d(&input, &w, ConvSpec::same(3));
        assert_eq!(out.as_slice(), &[4, 6, 4, 6, 9, 6, 4, 6, 4]);
    }

    #[test]
    fn stride_downsamples() {
        let input = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|x| x as i8).collect());
        let w = Tensor::from_vec(&[1, 1, 1, 1], vec![1i8]);
        let out = conv2d(
            &input,
            &w,
            ConvSpec {
                kernel: 1,
                stride: 2,
                padding: 0,
            },
        );
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[0, 2, 8, 10]);
    }

    #[test]
    fn multi_channel_sums_across_channels() {
        // Two input channels of ones, 1x1 kernel [1, 2] -> every output = 3.
        let input = Tensor::from_vec(&[1, 2, 2, 2], vec![1i8; 8]);
        let w = Tensor::from_vec(&[1, 2, 1, 1], vec![1i8, 2]);
        let out = conv2d(
            &input,
            &w,
            ConvSpec {
                kernel: 1,
                stride: 1,
                padding: 0,
            },
        );
        assert_eq!(out.as_slice(), &[3, 3, 3, 3]);
    }

    #[test]
    fn multiple_output_channels() {
        let input = Tensor::from_vec(&[1, 1, 2, 2], vec![1i8, 2, 3, 4]);
        let w = Tensor::from_vec(&[2, 1, 1, 1], vec![1i8, -1]);
        let out = conv2d(
            &input,
            &w,
            ConvSpec {
                kernel: 1,
                stride: 1,
                padding: 0,
            },
        );
        assert_eq!(out.shape(), &[1, 2, 2, 2]);
        assert_eq!(out.as_slice(), &[1, 2, 3, 4, -1, -2, -3, -4]);
    }

    #[test]
    fn depthwise_convolves_channels_independently() {
        // Channel 0 filter = 1, channel 1 filter = 10.
        let input = Tensor::from_vec(&[1, 2, 2, 2], vec![1i8, 2, 3, 4, 5, 6, 7, 8]);
        let w = Tensor::from_vec(&[2, 1, 1], vec![1i8, 10]);
        let out = dwconv2d(
            &input,
            &w,
            ConvSpec {
                kernel: 1,
                stride: 1,
                padding: 0,
            },
        );
        assert_eq!(out.as_slice(), &[1, 2, 3, 4, 50, 60, 70, 80]);
    }

    #[test]
    fn depthwise_3x3_matches_manual() {
        let input = Tensor::from_vec(&[1, 1, 3, 3], vec![1i8; 9]);
        let w = Tensor::from_vec(&[1, 3, 3], vec![1i8; 9]);
        let out = dwconv2d(&input, &w, ConvSpec::same(3));
        assert_eq!(out.as_slice(), &[4, 6, 4, 6, 9, 6, 4, 6, 4]);
    }

    #[test]
    fn f32_conv_works() {
        let input = Tensor::from_vec(&[1, 1, 2, 2], vec![0.5f32, 1.0, 1.5, 2.0]);
        let w = Tensor::from_vec(&[1, 1, 1, 1], vec![2.0f32]);
        let out = conv2d(
            &input,
            &w,
            ConvSpec {
                kernel: 1,
                stride: 1,
                padding: 0,
            },
        );
        assert_eq!(out.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let input = Tensor::<i8>::zeros(&[1, 2, 4, 4]);
        let w = Tensor::<i8>::zeros(&[1, 3, 1, 1]);
        let _ = conv2d(
            &input,
            &w,
            ConvSpec {
                kernel: 1,
                stride: 1,
                padding: 0,
            },
        );
    }
}
