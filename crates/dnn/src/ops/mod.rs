//! Reference (golden-model) operator implementations.
//!
//! These are deliberately simple, obviously-correct implementations; the
//! accelerator simulator and the CPU baseline are both validated against
//! them. All integer ops follow the accelerator's arithmetic: int8 operands,
//! int32 accumulation, explicit requantization (see [`crate::quant`]).

pub mod activation;
pub mod conv;
pub mod im2col;
pub mod matmul;
pub mod norm;
pub mod pool;
pub mod resadd;

pub use activation::{relu, relu6, relu6_tensor, relu_tensor};
pub use conv::{conv2d, dwconv2d, ConvSpec};
pub use im2col::im2col;
pub use matmul::matmul;
pub use pool::{avgpool2d_i8, maxpool2d, PoolSpec};
pub use resadd::{resadd_i32, resadd_i8};

/// An element type the spatial array can multiply-accumulate.
///
/// `i8` accumulates into `i32` (the integer datapath); `f32` accumulates
/// into `f32` (the floating-point datapath the generator also supports).
pub trait MacElement: Copy + Default + PartialEq + std::fmt::Debug + 'static {
    /// The accumulator type.
    type Acc: Copy + Default + PartialEq + std::fmt::Debug + 'static;

    /// One multiply-accumulate: `acc + a * b`.
    fn mac(acc: Self::Acc, a: Self, b: Self) -> Self::Acc;

    /// Adds two accumulator values (used when summing partial products).
    fn acc_add(a: Self::Acc, b: Self::Acc) -> Self::Acc;
}

impl MacElement for i8 {
    type Acc = i32;

    #[inline]
    fn mac(acc: i32, a: i8, b: i8) -> i32 {
        acc.wrapping_add(a as i32 * b as i32)
    }

    #[inline]
    fn acc_add(a: i32, b: i32) -> i32 {
        a.wrapping_add(b)
    }
}

impl MacElement for f32 {
    type Acc = f32;

    #[inline]
    fn mac(acc: f32, a: f32, b: f32) -> f32 {
        acc + a * b
    }

    #[inline]
    fn acc_add(a: f32, b: f32) -> f32 {
        a + b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i8_mac_widens_to_i32() {
        // 127*127 would overflow i8 alone; the accumulator holds it.
        assert_eq!(<i8 as MacElement>::mac(0, 127, 127), 16129);
        assert_eq!(<i8 as MacElement>::mac(10, -2, 3), 4);
    }

    #[test]
    fn f32_mac_is_fused_semantics() {
        assert_eq!(<f32 as MacElement>::mac(1.0, 2.0, 3.0), 7.0);
    }

    #[test]
    fn acc_add_sums_partials() {
        assert_eq!(<i8 as MacElement>::acc_add(5, -3), 2);
        assert_eq!(<f32 as MacElement>::acc_add(0.5, 0.25), 0.75);
    }
}
