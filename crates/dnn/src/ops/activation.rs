//! Activation functions implemented by the accelerator's peripheral
//! circuitry (the paper lists ReLU and ReLU6 as the supported non-linear
//! activations).

use crate::tensor::Tensor;

/// Types that ReLU-style activations operate on.
pub trait ActivationValue: Copy + PartialOrd {
    /// The additive identity for this type.
    const ZERO: Self;
}

impl ActivationValue for i8 {
    const ZERO: Self = 0;
}
impl ActivationValue for i32 {
    const ZERO: Self = 0;
}
impl ActivationValue for f32 {
    const ZERO: Self = 0.0;
}

/// `max(0, x)`.
///
/// # Example
///
/// ```
/// use gemmini_dnn::ops::relu;
/// assert_eq!(relu(-3i8), 0);
/// assert_eq!(relu(3i8), 3);
/// ```
#[inline]
pub fn relu<T: ActivationValue>(x: T) -> T {
    if x < T::ZERO {
        T::ZERO
    } else {
        x
    }
}

/// `min(max(0, x), six)` where `six` is the quantized representation of 6.0
/// (it depends on the layer's output scale, so the caller supplies it).
#[inline]
pub fn relu6<T: ActivationValue>(x: T, six: T) -> T {
    let r = relu(x);
    if r > six {
        six
    } else {
        r
    }
}

/// Applies ReLU to every element of a tensor.
pub fn relu_tensor<T: ActivationValue>(t: &Tensor<T>) -> Tensor<T> {
    t.map(relu)
}

/// Applies ReLU6 to every element of a tensor.
pub fn relu6_tensor<T: ActivationValue>(t: &Tensor<T>, six: T) -> Tensor<T> {
    t.map(|x| relu6(x, six))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives_only() {
        assert_eq!(relu(-128i8), 0);
        assert_eq!(relu(0i8), 0);
        assert_eq!(relu(127i8), 127);
        assert_eq!(relu(-1.5f32), 0.0);
        assert_eq!(relu(1.5f32), 1.5);
        assert_eq!(relu(-7i32), 0);
    }

    #[test]
    fn relu6_clamps_both_ends() {
        assert_eq!(relu6(-5i8, 6), 0);
        assert_eq!(relu6(3i8, 6), 3);
        assert_eq!(relu6(100i8, 6), 6);
        // Quantized "6" can be any value, e.g. scale 0.05 -> six = 120.
        assert_eq!(relu6(127i8, 120), 120);
        assert_eq!(relu6(9.0f32, 6.0), 6.0);
    }

    #[test]
    fn tensor_variants_are_elementwise() {
        let t = Tensor::from_vec(&[4], vec![-2i32, 0, 5, 99]);
        assert_eq!(relu_tensor(&t).as_slice(), &[0, 0, 5, 99]);
        assert_eq!(relu6_tensor(&t, 6).as_slice(), &[0, 0, 5, 6]);
    }
}
