//! Reference im2col transformation.
//!
//! im2col turns a convolution into a single large matrix multiplication:
//! each output pixel becomes a row holding the receptive-field patch, and
//! the weights flatten to a `[kh*kw*c, oc]` matrix. In the paper this
//! transformation is performed either by the host CPU (burdening it heavily
//! — Fig. 7's "im2col on CPU" bars) or by the accelerator's optional
//! on-the-fly im2col unit.

use super::conv::ConvSpec;
use super::MacElement;
use crate::tensor::Tensor;

/// Expands `input` (NCHW `[n, c, h, w]`) into the im2col patch matrix of
/// shape `[n*oh*ow, c*kh*kw]`, with zero padding materialized as zeros.
///
/// Column order is `(c, ky, kx)` row-major, matching
/// [`weights_to_matrix`].
///
/// # Example
///
/// ```
/// use gemmini_dnn::tensor::Tensor;
/// use gemmini_dnn::ops::im2col::im2col;
/// use gemmini_dnn::ops::ConvSpec;
/// let input = Tensor::from_vec(&[1, 1, 2, 2], vec![1i8, 2, 3, 4]);
/// let m = im2col(&input, ConvSpec { kernel: 2, stride: 1, padding: 0 });
/// assert_eq!(m.shape(), &[1, 4]);
/// assert_eq!(m.as_slice(), &[1, 2, 3, 4]);
/// ```
pub fn im2col<T: MacElement>(input: &Tensor<T>, spec: ConvSpec) -> Tensor<T> {
    assert_eq!(input.shape().len(), 4, "im2col input must be NCHW");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let k = spec.kernel;
    let mut out = Tensor::<T>::zeros(&[n * oh * ow, c * k * k]);
    let cols = c * k * k;
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (ni * oh + oy) * ow + ox;
                for ci in 0..c {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                continue; // stays zero
                            }
                            let col = (ci * k + ky) * k + kx;
                            out.as_mut_slice()[row * cols + col] =
                                input.at4(ni, ci, iy as usize, ix as usize);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Flattens `[oc, c, kh, kw]` convolution weights to the `[c*kh*kw, oc]`
/// matrix that multiplies an im2col patch matrix.
pub fn weights_to_matrix<T: MacElement>(weights: &Tensor<T>) -> Tensor<T> {
    assert_eq!(weights.shape().len(), 4, "weights must be [oc,c,kh,kw]");
    let (oc, c, kh, kw) = (
        weights.shape()[0],
        weights.shape()[1],
        weights.shape()[2],
        weights.shape()[3],
    );
    let rows = c * kh * kw;
    let mut out = Tensor::<T>::zeros(&[rows, oc]);
    for o in 0..oc {
        for ci in 0..c {
            for ky in 0..kh {
                for kx in 0..kw {
                    let r = (ci * kh + ky) * kw + kx;
                    out[(r, o)] = weights.at4(o, ci, ky, kx);
                }
            }
        }
    }
    out
}

/// Expands `input` (NCHW) into the **channels-fastest** (NHWC-style) patch
/// matrix of shape `[n*oh*ow, kh*kw*c]`: column `(ky*k + kx)*c + ci`. This
/// is the ordering Gemmini's software stack uses, because the accelerator's
/// GEMM output is pixel-major (NHWC) and feeds the next layer directly.
pub fn im2col_nhwc<T: MacElement>(input: &Tensor<T>, spec: ConvSpec) -> Tensor<T> {
    assert_eq!(input.shape().len(), 4, "im2col input must be NCHW");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let k = spec.kernel;
    let cols = c * k * k;
    let mut out = Tensor::<T>::zeros(&[n * oh * ow, cols]);
    for ni in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (ni * oh + oy) * ow + ox;
                for ky in 0..k {
                    for kx in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                            continue;
                        }
                        for ci in 0..c {
                            let col = (ky * k + kx) * c + ci;
                            out.as_mut_slice()[row * cols + col] =
                                input.at4(ni, ci, iy as usize, ix as usize);
                        }
                    }
                }
            }
        }
    }
    out
}

/// Flattens `[oc, c, kh, kw]` weights to the `[kh*kw*c, oc]` matrix whose
/// row order matches [`im2col_nhwc`].
pub fn weights_to_matrix_nhwc<T: MacElement>(weights: &Tensor<T>) -> Tensor<T> {
    assert_eq!(weights.shape().len(), 4, "weights must be [oc,c,kh,kw]");
    let (oc, c, kh, kw) = (
        weights.shape()[0],
        weights.shape()[1],
        weights.shape()[2],
        weights.shape()[3],
    );
    let rows = c * kh * kw;
    let mut out = Tensor::<T>::zeros(&[rows, oc]);
    for o in 0..oc {
        for ky in 0..kh {
            for kx in 0..kw {
                for ci in 0..c {
                    let r = (ky * kw + kx) * c + ci;
                    out[(r, o)] = weights.at4(o, ci, ky, kx);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::conv::conv2d;
    use super::super::matmul::matmul;
    use super::*;

    #[test]
    fn patch_matrix_dimensions() {
        let input = Tensor::<i8>::random(&[1, 3, 8, 8], 1);
        let spec = ConvSpec::same(3);
        let m = im2col(&input, spec);
        assert_eq!(m.shape(), &[64, 27]);
    }

    #[test]
    fn padding_materializes_zeros() {
        let input = Tensor::from_vec(&[1, 1, 1, 1], vec![5i8]);
        let m = im2col(&input, ConvSpec::same(3));
        // Single output pixel; the 3x3 patch has the 5 in the middle.
        assert_eq!(m.shape(), &[1, 9]);
        assert_eq!(m.as_slice(), &[0, 0, 0, 0, 5, 0, 0, 0, 0]);
    }

    #[test]
    fn im2col_matmul_equals_direct_conv() {
        // The load-bearing identity: im2col + matmul must reproduce direct
        // convolution exactly, for an awkward geometry (stride 2, pad 1).
        let input = Tensor::<i8>::random(&[2, 3, 7, 7], 11);
        let weights = Tensor::<i8>::random(&[4, 3, 3, 3], 22);
        let spec = ConvSpec {
            kernel: 3,
            stride: 2,
            padding: 1,
        };

        let direct = conv2d(&input, &weights, spec);

        let patches = im2col(&input, spec);
        let wmat = weights_to_matrix(&weights);
        let gemm = matmul(&patches, &wmat); // [n*oh*ow, oc]

        // Rearrange gemm output ([row, oc]) to NCHW and compare.
        let (n, oc) = (2usize, 4usize);
        let oh = spec.out_size(7);
        let ow = spec.out_size(7);
        for ni in 0..n {
            for o in 0..oc {
                for y in 0..oh {
                    for x in 0..ow {
                        let row = (ni * oh + y) * ow + x;
                        assert_eq!(
                            gemm[(row, o)],
                            direct.at4(ni, o, y, x),
                            "mismatch at n={ni} oc={o} y={y} x={x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn weights_matrix_layout_matches_patch_layout() {
        let w = Tensor::from_vec(&[2, 1, 1, 1], vec![3i8, 4]);
        let m = weights_to_matrix(&w);
        assert_eq!(m.shape(), &[1, 2]);
        assert_eq!(m.as_slice(), &[3, 4]);
    }

    #[test]
    fn nhwc_im2col_matmul_equals_direct_conv() {
        let input = Tensor::<i8>::random(&[1, 3, 6, 6], 31);
        let weights = Tensor::<i8>::random(&[5, 3, 3, 3], 32);
        let spec = ConvSpec {
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let direct = conv2d(&input, &weights, spec);
        let patches = im2col_nhwc(&input, spec);
        let wmat = weights_to_matrix_nhwc(&weights);
        let gemm = matmul(&patches, &wmat);
        let oh = spec.out_size(6);
        let ow = spec.out_size(6);
        for o in 0..5 {
            for y in 0..oh {
                for x in 0..ow {
                    assert_eq!(gemm[(y * ow + x, o)], direct.at4(0, o, y, x));
                }
            }
        }
    }

    #[test]
    fn nhwc_column_order_is_channels_fastest() {
        // 2 channels, 1x1 kernel: patch row = the pixel's channel pair.
        let input = Tensor::from_vec(&[1, 2, 1, 1], vec![7i8, 9]);
        let m = im2col_nhwc(
            &input,
            ConvSpec {
                kernel: 1,
                stride: 1,
                padding: 0,
            },
        );
        assert_eq!(m.as_slice(), &[7, 9]);
    }
}
