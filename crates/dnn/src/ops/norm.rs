//! Normalization and attention-support operators used by BERT.
//!
//! These run in floating point (on the host CPU or on an fp32-configured
//! accelerator instance); int8 BERT quantizes around them.

use crate::tensor::Tensor;

/// Row-wise softmax over a `[rows, cols]` tensor, numerically stabilized by
/// subtracting each row's maximum.
///
/// # Panics
///
/// Panics if the tensor is not 2-D.
///
/// # Example
///
/// ```
/// use gemmini_dnn::tensor::Tensor;
/// use gemmini_dnn::ops::norm::softmax;
/// let t = Tensor::from_vec(&[1, 2], vec![0.0f32, 0.0]);
/// let s = softmax(&t);
/// assert!((s.as_slice()[0] - 0.5).abs() < 1e-6);
/// ```
pub fn softmax(t: &Tensor<f32>) -> Tensor<f32> {
    assert_eq!(t.shape().len(), 2, "softmax input must be 2-D");
    let (rows, cols) = (t.shape()[0], t.shape()[1]);
    let mut out = Tensor::<f32>::zeros(&[rows, cols]);
    for r in 0..rows {
        let row = &t.as_slice()[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        for c in 0..cols {
            out[(r, c)] = exps[c] / sum;
        }
    }
    out
}

/// Row-wise layer normalization with learned scale/bias, epsilon `1e-5`.
///
/// # Panics
///
/// Panics if `t` is not 2-D or `gamma`/`beta` lengths disagree with the row
/// width.
pub fn layernorm(t: &Tensor<f32>, gamma: &[f32], beta: &[f32]) -> Tensor<f32> {
    assert_eq!(t.shape().len(), 2, "layernorm input must be 2-D");
    let (rows, cols) = (t.shape()[0], t.shape()[1]);
    assert_eq!(gamma.len(), cols, "gamma length mismatch");
    assert_eq!(beta.len(), cols, "beta length mismatch");
    const EPS: f32 = 1e-5;
    let mut out = Tensor::<f32>::zeros(&[rows, cols]);
    for r in 0..rows {
        let row = &t.as_slice()[r * cols..(r + 1) * cols];
        let mean: f32 = row.iter().sum::<f32>() / cols as f32;
        let var: f32 = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / cols as f32;
        let inv = 1.0 / (var + EPS).sqrt();
        for c in 0..cols {
            out[(r, c)] = (row[c] - mean) * inv * gamma[c] + beta[c];
        }
    }
    out
}

/// The GELU activation (tanh approximation), used in BERT's feed-forward
/// blocks.
#[inline]
pub fn gelu(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::<f32>::random(&[4, 16], 3);
        let s = softmax(&t);
        for r in 0..4 {
            let sum: f32 = (0..16).map(|c| s[(r, c)]).sum();
            assert!((sum - 1.0).abs() < 1e-5);
            for c in 0..16 {
                assert!(s[(r, c)] > 0.0);
            }
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(&[1, 3], vec![1.0f32, 2.0, 3.0]);
        let b = Tensor::from_vec(&[1, 3], vec![101.0f32, 102.0, 103.0]);
        let sa = softmax(&a);
        let sb = softmax(&b);
        for c in 0..3 {
            assert!((sa[(0, c)] - sb[(0, c)]).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_large_magnitudes_without_nan() {
        let t = Tensor::from_vec(&[1, 2], vec![1000.0f32, -1000.0]);
        let s = softmax(&t);
        assert!((s[(0, 0)] - 1.0).abs() < 1e-6);
        assert!(s.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn layernorm_zero_mean_unit_variance() {
        let t = Tensor::from_vec(&[1, 4], vec![1.0f32, 2.0, 3.0, 4.0]);
        let gamma = vec![1.0f32; 4];
        let beta = vec![0.0f32; 4];
        let out = layernorm(&t, &gamma, &beta);
        let mean: f32 = out.as_slice().iter().sum::<f32>() / 4.0;
        let var: f32 = out.as_slice().iter().map(|&x| x * x).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layernorm_applies_gamma_beta() {
        let t = Tensor::from_vec(&[1, 2], vec![-1.0f32, 1.0]);
        let out = layernorm(&t, &[2.0, 2.0], &[10.0, 10.0]);
        // Normalized values are ±1 (up to eps), then *2 + 10.
        assert!((out[(0, 0)] - 8.0).abs() < 1e-2);
        assert!((out[(0, 1)] - 12.0).abs() < 1e-2);
    }

    #[test]
    fn gelu_matches_known_points() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!((gelu(-1.0) + 0.1588).abs() < 1e-3);
        // Asymptotics: large positive ~ identity, large negative ~ 0.
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
    }
}
