//! Reference pooling operators (the accelerator's pooling peripheral).

use crate::tensor::Tensor;

/// Pooling geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolSpec {
    /// Window height/width.
    pub size: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on each edge (padded elements are excluded from max
    /// pooling and counted as zeros in average pooling, matching common
    /// framework semantics for count_include_pad=true).
    pub padding: usize,
}

impl PoolSpec {
    /// Output spatial size for an input of `in_size`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields no output pixels.
    pub fn out_size(&self, in_size: usize) -> usize {
        let padded = in_size + 2 * self.padding;
        assert!(
            padded >= self.size && self.stride > 0,
            "pooling geometry produces no output: in={in_size} {self:?}"
        );
        (padded - self.size) / self.stride + 1
    }
}

/// Max pooling over an NCHW tensor.
///
/// # Example
///
/// ```
/// use gemmini_dnn::tensor::Tensor;
/// use gemmini_dnn::ops::{maxpool2d, PoolSpec};
/// let t = Tensor::from_vec(&[1, 1, 2, 2], vec![1i8, 9, 3, 4]);
/// let out = maxpool2d(&t, PoolSpec { size: 2, stride: 2, padding: 0 });
/// assert_eq!(out.as_slice(), &[9]);
/// ```
pub fn maxpool2d<T: Copy + Default + PartialOrd>(input: &Tensor<T>, spec: PoolSpec) -> Tensor<T> {
    assert_eq!(input.shape().len(), 4, "pool input must be NCHW");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let mut out = Tensor::<T>::zeros(&[n, c, oh, ow]);
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best: Option<T> = None;
                    for ky in 0..spec.size {
                        for kx in 0..spec.size {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                continue;
                            }
                            let v = input.at4(ni, ci, iy as usize, ix as usize);
                            best = Some(match best {
                                Some(b) if b >= v => b,
                                _ => v,
                            });
                        }
                    }
                    *out.at4_mut(ni, ci, oy, ox) =
                        best.expect("pooling window contains at least one valid element");
                }
            }
        }
    }
    out
}

/// Average pooling over an int8 NCHW tensor, accumulating in i32 and
/// rounding to nearest (ties away from zero), dividing by the full window
/// area (padding counts as zeros).
pub fn avgpool2d_i8(input: &Tensor<i8>, spec: PoolSpec) -> Tensor<i8> {
    assert_eq!(input.shape().len(), 4, "pool input must be NCHW");
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let oh = spec.out_size(h);
    let ow = spec.out_size(w);
    let area = (spec.size * spec.size) as i32;
    let mut out = Tensor::<i8>::zeros(&[n, c, oh, ow]);
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut sum: i32 = 0;
                    for ky in 0..spec.size {
                        for kx in 0..spec.size {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                continue;
                            }
                            sum += input.at4(ni, ci, iy as usize, ix as usize) as i32;
                        }
                    }
                    // Round to nearest, ties away from zero.
                    let q = if sum >= 0 {
                        (sum + area / 2) / area
                    } else {
                        (sum - area / 2) / area
                    };
                    *out.at4_mut(ni, ci, oy, ox) = q.clamp(i8::MIN as i32, i8::MAX as i32) as i8;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_size_math() {
        let s = PoolSpec {
            size: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(s.out_size(112), 56); // ResNet50 stem pool
        let s = PoolSpec {
            size: 2,
            stride: 2,
            padding: 0,
        };
        assert_eq!(s.out_size(8), 4);
    }

    #[test]
    fn maxpool_picks_window_maximum() {
        let t = Tensor::from_vec(&[1, 1, 4, 4], (0..16).map(|x| x as i8).collect());
        let out = maxpool2d(
            &t,
            PoolSpec {
                size: 2,
                stride: 2,
                padding: 0,
            },
        );
        assert_eq!(out.as_slice(), &[5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_handles_negative_values() {
        let t = Tensor::from_vec(&[1, 1, 2, 2], vec![-5i8, -9, -1, -3]);
        let out = maxpool2d(
            &t,
            PoolSpec {
                size: 2,
                stride: 2,
                padding: 0,
            },
        );
        assert_eq!(out.as_slice(), &[-1]);
    }

    #[test]
    fn maxpool_padding_excludes_pad_elements() {
        // All values negative: padding must not inject zeros into the max.
        let t = Tensor::from_vec(&[1, 1, 2, 2], vec![-5i8, -9, -1, -3]);
        let out = maxpool2d(
            &t,
            PoolSpec {
                size: 3,
                stride: 1,
                padding: 1,
            },
        );
        // Every window contains -1, the global max, except corners.
        assert_eq!(out.at4(0, 0, 1, 1), -1);
        assert_eq!(out.at4(0, 0, 0, 0), -1); // window covers all four
    }

    #[test]
    fn avgpool_rounds_to_nearest() {
        let t = Tensor::from_vec(&[1, 1, 2, 2], vec![1i8, 2, 3, 5]);
        let out = avgpool2d_i8(
            &t,
            PoolSpec {
                size: 2,
                stride: 2,
                padding: 0,
            },
        );
        // (1+2+3+5)/4 = 2.75 -> 3
        assert_eq!(out.as_slice(), &[3]);
    }

    #[test]
    fn avgpool_negative_rounding_away_from_zero() {
        let t = Tensor::from_vec(&[1, 1, 2, 2], vec![-1i8, -2, -3, -4]);
        let out = avgpool2d_i8(
            &t,
            PoolSpec {
                size: 2,
                stride: 2,
                padding: 0,
            },
        );
        // -10/4 = -2.5 -> -3 (away from zero)
        assert_eq!(out.as_slice(), &[-3]);
    }

    #[test]
    fn global_average_pool() {
        // ResNet50's final pool: 7x7 global average.
        let t = Tensor::from_vec(&[1, 1, 7, 7], vec![7i8; 49]);
        let out = avgpool2d_i8(
            &t,
            PoolSpec {
                size: 7,
                stride: 7,
                padding: 0,
            },
        );
        assert_eq!(out.shape(), &[1, 1, 1, 1]);
        assert_eq!(out.as_slice(), &[7]);
    }

    #[test]
    fn f32_maxpool() {
        let t = Tensor::from_vec(&[1, 1, 2, 2], vec![0.1f32, 0.9, 0.3, 0.4]);
        let out = maxpool2d(
            &t,
            PoolSpec {
                size: 2,
                stride: 2,
                padding: 0,
            },
        );
        assert_eq!(out.as_slice(), &[0.9]);
    }
}
