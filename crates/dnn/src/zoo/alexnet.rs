//! AlexNet at 224×224 (torchvision layer dimensions).

use crate::graph::{Activation, Layer, Network, PoolKind};

/// Builds AlexNet (batch 1, 224×224 input, 1000-way classifier).
pub fn alexnet() -> Network {
    let mut net = Network::new("alexnet");
    net.push(
        "conv1",
        Layer::Conv {
            in_channels: 3,
            out_channels: 64,
            kernel: 11,
            stride: 4,
            padding: 2,
            in_hw: (224, 224),
            activation: Activation::Relu,
        },
    );
    net.push(
        "pool1",
        Layer::Pool {
            kind: PoolKind::Max,
            size: 3,
            stride: 2,
            padding: 0,
            channels: 64,
            in_hw: (55, 55),
        },
    );
    net.push(
        "conv2",
        Layer::Conv {
            in_channels: 64,
            out_channels: 192,
            kernel: 5,
            stride: 1,
            padding: 2,
            in_hw: (27, 27),
            activation: Activation::Relu,
        },
    );
    net.push(
        "pool2",
        Layer::Pool {
            kind: PoolKind::Max,
            size: 3,
            stride: 2,
            padding: 0,
            channels: 192,
            in_hw: (27, 27),
        },
    );
    net.push(
        "conv3",
        Layer::Conv {
            in_channels: 192,
            out_channels: 384,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_hw: (13, 13),
            activation: Activation::Relu,
        },
    );
    net.push(
        "conv4",
        Layer::Conv {
            in_channels: 384,
            out_channels: 256,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_hw: (13, 13),
            activation: Activation::Relu,
        },
    );
    net.push(
        "conv5",
        Layer::Conv {
            in_channels: 256,
            out_channels: 256,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_hw: (13, 13),
            activation: Activation::Relu,
        },
    );
    net.push(
        "pool5",
        Layer::Pool {
            kind: PoolKind::Max,
            size: 3,
            stride: 2,
            padding: 0,
            channels: 256,
            in_hw: (13, 13),
        },
    );
    net.push(
        "fc6",
        Layer::Matmul {
            m: 1,
            k: 256 * 6 * 6,
            n: 4096,
            activation: Activation::Relu,
        },
    );
    net.push(
        "fc7",
        Layer::Matmul {
            m: 1,
            k: 4096,
            n: 4096,
            activation: Activation::Relu,
        },
    );
    net.push(
        "fc8",
        Layer::Matmul {
            m: 1,
            k: 4096,
            n: 1000,
            activation: Activation::None,
        },
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure() {
        let net = alexnet();
        assert_eq!(net.len(), 11);
        // conv1 output is 55x55 (the classic AlexNet dimension).
        assert_eq!(net.layers()[0].layer.out_hw(), Some((55, 55)));
        // pool5 output is 6x6, feeding the 9216-wide fc6.
        assert_eq!(net.layers()[7].layer.out_hw(), Some((6, 6)));
    }

    #[test]
    fn fc_layers_dominate_weights() {
        let net = alexnet();
        let fc_weights: u64 = net
            .layers()
            .iter()
            .filter(|l| matches!(l.layer, Layer::Matmul { .. }))
            .map(|l| l.layer.weight_bytes())
            .sum();
        let conv_weights: u64 = net
            .layers()
            .iter()
            .filter(|l| matches!(l.layer, Layer::Conv { .. }))
            .map(|l| l.layer.weight_bytes())
            .sum();
        // AlexNet's well-known imbalance: ~58M of 61M parameters are FC.
        assert!(fc_weights > 10 * conv_weights);
    }
}
