//! BERT-base at sequence length 128 (12 encoder blocks, hidden 768,
//! 12 heads, FFN 3072).

use crate::graph::{Activation, Layer, Network};

/// Hidden dimension.
const HIDDEN: usize = 768;
/// Attention heads.
const HEADS: usize = 12;
/// Per-head dimension.
const HEAD_DIM: usize = HIDDEN / HEADS;
/// Feed-forward inner dimension.
const FFN: usize = 3072;
/// Sequence length the paper's language-model experiments use.
const SEQ: usize = 128;

fn matmul(m: usize, k: usize, n: usize) -> Layer {
    Layer::Matmul {
        m,
        k,
        n,
        activation: Activation::None,
    }
}

/// Builds BERT-base (batch 1, sequence length 128).
pub fn bert_base() -> Network {
    let mut net = Network::new("bert_base");
    for b in 0..12 {
        let tag = format!("enc{b}");
        // Q, K, V projections.
        net.push(format!("{tag}_q"), matmul(SEQ, HIDDEN, HIDDEN));
        net.push(format!("{tag}_k"), matmul(SEQ, HIDDEN, HIDDEN));
        net.push(format!("{tag}_v"), matmul(SEQ, HIDDEN, HIDDEN));
        // Attention scores: per head [SEQ, HEAD_DIM] @ [HEAD_DIM, SEQ],
        // batched across heads as one [HEADS*SEQ, HEAD_DIM, SEQ] GEMM.
        net.push(format!("{tag}_scores"), matmul(HEADS * SEQ, HEAD_DIM, SEQ));
        net.push(
            format!("{tag}_softmax"),
            Layer::Softmax {
                rows: HEADS * SEQ,
                cols: SEQ,
            },
        );
        // Attention-weighted values: [HEADS*SEQ, SEQ] @ [SEQ, HEAD_DIM].
        net.push(format!("{tag}_context"), matmul(HEADS * SEQ, SEQ, HEAD_DIM));
        // Output projection.
        net.push(format!("{tag}_out"), matmul(SEQ, HIDDEN, HIDDEN));
        net.push(
            format!("{tag}_add1"),
            Layer::ResAdd {
                elements: SEQ * HIDDEN,
            },
        );
        net.push(
            format!("{tag}_ln1"),
            Layer::LayerNorm {
                rows: SEQ,
                cols: HIDDEN,
            },
        );
        // Feed-forward network.
        net.push(format!("{tag}_ffn1"), matmul(SEQ, HIDDEN, FFN));
        net.push(format!("{tag}_ffn2"), matmul(SEQ, FFN, HIDDEN));
        net.push(
            format!("{tag}_add2"),
            Layer::ResAdd {
                elements: SEQ * HIDDEN,
            },
        );
        net.push(
            format!("{tag}_ln2"),
            Layer::LayerNorm {
                rows: SEQ,
                cols: HIDDEN,
            },
        );
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LayerClass;

    #[test]
    fn per_block_structure() {
        let net = bert_base();
        assert_eq!(net.len(), 12 * 13);
        // 8 matmuls per block.
        assert_eq!(net.count_of_class(LayerClass::Matmul), 12 * 8);
    }

    #[test]
    fn ffn_dominates_macs() {
        // FFN is 2 * SEQ*768*3072 per block vs attention's 4 * SEQ*768*768
        // + 2 * small: roughly 60%.
        let net = bert_base();
        let ffn: u64 = net
            .layers()
            .iter()
            .filter(|l| l.name.contains("ffn"))
            .map(|l| l.layer.macs())
            .sum();
        assert!(ffn * 2 > net.total_macs());
    }

    #[test]
    fn attention_score_dims() {
        let net = bert_base();
        let scores = net
            .layers()
            .iter()
            .find(|l| l.name == "enc0_scores")
            .unwrap();
        assert_eq!(scores.layer, matmul(12 * 128, 64, 128));
    }
}
