//! ResNet50 at 224×224 (torchvision layer dimensions).

use crate::graph::{Activation, Layer, Network, PoolKind};

#[allow(clippy::too_many_arguments)]
fn conv(
    net: &mut Network,
    name: String,
    ic: usize,
    oc: usize,
    k: usize,
    s: usize,
    p: usize,
    hw: usize,
    act: Activation,
) {
    net.push(
        name,
        Layer::Conv {
            in_channels: ic,
            out_channels: oc,
            kernel: k,
            stride: s,
            padding: p,
            in_hw: (hw, hw),
            activation: act,
        },
    );
}

/// Appends one bottleneck block: 1×1 reduce, 3×3, 1×1 expand, plus the
/// projection shortcut on the first block of a stage and the residual add.
#[allow(clippy::too_many_arguments)]
fn bottleneck(
    net: &mut Network,
    stage: usize,
    block: usize,
    in_ch: usize,
    mid_ch: usize,
    out_ch: usize,
    hw: usize,
    stride: usize,
) -> usize {
    let tag = format!("conv{}_{}", stage, block);
    let out_hw = hw / stride;
    conv(
        net,
        format!("{tag}_1x1a"),
        in_ch,
        mid_ch,
        1,
        1,
        0,
        hw,
        Activation::Relu,
    );
    conv(
        net,
        format!("{tag}_3x3"),
        mid_ch,
        mid_ch,
        3,
        stride,
        1,
        hw,
        Activation::Relu,
    );
    conv(
        net,
        format!("{tag}_1x1b"),
        mid_ch,
        out_ch,
        1,
        1,
        0,
        out_hw,
        Activation::None,
    );
    if block == 1 {
        // Projection shortcut (also downsamples when stride > 1).
        conv(
            net,
            format!("{tag}_proj"),
            in_ch,
            out_ch,
            1,
            stride,
            0,
            hw,
            Activation::None,
        );
    }
    net.push(
        format!("{tag}_add"),
        Layer::ResAdd {
            elements: out_ch * out_hw * out_hw,
        },
    );
    out_hw
}

/// Builds ResNet50 (batch 1, 224×224 input, 1000-way classifier).
pub fn resnet50() -> Network {
    let mut net = Network::new("resnet50");
    conv(
        &mut net,
        "conv1".to_string(),
        3,
        64,
        7,
        2,
        3,
        224,
        Activation::Relu,
    );
    net.push(
        "maxpool",
        Layer::Pool {
            kind: PoolKind::Max,
            size: 3,
            stride: 2,
            padding: 1,
            channels: 64,
            in_hw: (112, 112),
        },
    );

    // (blocks, mid channels, out channels, first-block stride)
    let stages: [(usize, usize, usize, usize); 4] = [
        (3, 64, 256, 1),
        (4, 128, 512, 2),
        (6, 256, 1024, 2),
        (3, 512, 2048, 2),
    ];
    let mut hw = 56;
    let mut in_ch = 64;
    for (si, &(blocks, mid, out, first_stride)) in stages.iter().enumerate() {
        for b in 1..=blocks {
            let stride = if b == 1 { first_stride } else { 1 };
            hw = bottleneck(&mut net, si + 2, b, in_ch, mid, out, hw, stride);
            in_ch = out;
        }
    }

    net.push(
        "avgpool",
        Layer::Pool {
            kind: PoolKind::Avg,
            size: 7,
            stride: 7,
            padding: 0,
            channels: 2048,
            in_hw: (7, 7),
        },
    );
    net.push(
        "fc",
        Layer::Matmul {
            m: 1,
            k: 2048,
            n: 1000,
            activation: Activation::None,
        },
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count_matches_architecture() {
        let net = resnet50();
        // 1 stem + 16 blocks x 3 convs + 4 projections = 53 convolutions.
        let convs = net
            .layers()
            .iter()
            .filter(|l| matches!(l.layer, Layer::Conv { .. }))
            .count();
        assert_eq!(convs, 53);
    }

    #[test]
    fn spatial_sizes_shrink_correctly() {
        let net = resnet50();
        // The final residual add covers 2048 channels of 7x7.
        let last_add = net
            .layers()
            .iter()
            .rev()
            .find(|l| matches!(l.layer, Layer::ResAdd { .. }))
            .unwrap();
        assert_eq!(
            last_add.layer,
            Layer::ResAdd {
                elements: 2048 * 7 * 7
            }
        );
    }

    #[test]
    fn stem_is_the_classic_7x7() {
        let net = resnet50();
        assert!(matches!(
            net.layers()[0].layer,
            Layer::Conv {
                in_channels: 3,
                out_channels: 64,
                kernel: 7,
                stride: 2,
                ..
            }
        ));
    }
}
