//! The model zoo: the five networks the paper evaluates (Fig. 7), plus a
//! tiny CNN used by functional end-to-end tests.
//!
//! Layer dimensions follow the canonical architectures (torchvision /
//! HuggingFace definitions) at the paper's input sizes: 224×224 images for
//! the CNNs, sequence length 128 for BERT-base. Weights are not stored here
//! — performance depends only on shapes, and functional tests generate
//! deterministic tensors on demand.

mod alexnet;
mod bert;
mod mobilenetv2;
mod resnet50;
mod squeezenet;

pub use alexnet::alexnet;
pub use bert::bert_base;
pub use mobilenetv2::mobilenetv2;
pub use resnet50::resnet50;
pub use squeezenet::squeezenet_v11;

use crate::graph::{Activation, Layer, Network};

/// All five evaluated networks, in the order Fig. 7 reports them.
pub fn all() -> Vec<Network> {
    vec![
        resnet50(),
        alexnet(),
        squeezenet_v11(),
        mobilenetv2(),
        bert_base(),
    ]
}

/// A deliberately small CNN (8×8 input) exercising conv, pooling, residual
/// addition and a classifier matmul — small enough to run through the
/// *functional* accelerator simulator in tests.
pub fn tiny_cnn() -> Network {
    let mut net = Network::new("tiny_cnn");
    net.push(
        "conv1",
        Layer::Conv {
            in_channels: 3,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_hw: (8, 8),
            activation: Activation::Relu,
        },
    );
    net.push(
        "conv2",
        Layer::Conv {
            in_channels: 8,
            out_channels: 8,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_hw: (8, 8),
            activation: Activation::None,
        },
    );
    net.push(
        "skip",
        Layer::ResAdd {
            elements: 8 * 8 * 8,
        },
    );
    net.push(
        "pool",
        Layer::Pool {
            kind: crate::graph::PoolKind::Max,
            size: 2,
            stride: 2,
            padding: 0,
            channels: 8,
            in_hw: (8, 8),
        },
    );
    net.push(
        "fc",
        Layer::Matmul {
            m: 1,
            k: 8 * 4 * 4,
            n: 10,
            activation: Activation::None,
        },
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LayerClass;

    #[test]
    fn all_returns_five_networks() {
        let nets = all();
        assert_eq!(nets.len(), 5);
        let names: Vec<&str> = nets.iter().map(|n| n.name()).collect();
        assert_eq!(
            names,
            [
                "resnet50",
                "alexnet",
                "squeezenet_v1.1",
                "mobilenetv2",
                "bert_base"
            ]
        );
    }

    #[test]
    fn gmac_counts_match_published_architectures() {
        // Published MAC counts (batch 1): ResNet50 ≈ 4.1G, AlexNet ≈ 0.7G,
        // SqueezeNet1.1 ≈ 0.35G, MobileNetV2 ≈ 0.3G, BERT-base@128 ≈ 11G.
        let check = |net: Network, lo: f64, hi: f64| {
            let g = net.total_macs() as f64 / 1e9;
            assert!(
                g > lo && g < hi,
                "{}: {g:.3} GMACs outside [{lo}, {hi}]",
                net.name()
            );
        };
        check(resnet50(), 3.7, 4.5);
        check(alexnet(), 0.5, 0.9);
        check(squeezenet_v11(), 0.25, 0.45);
        check(mobilenetv2(), 0.25, 0.45);
        check(bert_base(), 9.0, 13.0);
    }

    #[test]
    fn resnet50_has_all_three_layer_classes() {
        let net = resnet50();
        assert!(net.count_of_class(LayerClass::Conv) >= 49);
        assert_eq!(net.count_of_class(LayerClass::Matmul), 1);
        assert_eq!(net.count_of_class(LayerClass::ResAdd), 16);
    }

    #[test]
    fn mobilenetv2_is_depthwise_heavy() {
        let net = mobilenetv2();
        let dw = net
            .layers()
            .iter()
            .filter(|l| matches!(l.layer, Layer::DwConv { .. }))
            .count();
        assert_eq!(dw, 17);
    }

    #[test]
    fn bert_has_twelve_encoder_blocks() {
        let net = bert_base();
        assert_eq!(net.count_of_class(LayerClass::Norm), 12 * 3); // 2 LN + 1 softmax per block
        assert_eq!(net.count_of_class(LayerClass::ResAdd), 12 * 2);
    }

    #[test]
    fn tiny_cnn_is_actually_tiny() {
        let net = tiny_cnn();
        assert!(net.total_macs() < 1_000_000);
        assert_eq!(net.len(), 5);
    }

    #[test]
    fn zoo_networks_serialize_and_reparse() {
        for net in all() {
            let text = crate::loader::serialize_network(&net);
            let again = crate::loader::parse_network(&text).unwrap();
            assert_eq!(net, again, "{} failed to round-trip", net.name());
        }
    }
}
