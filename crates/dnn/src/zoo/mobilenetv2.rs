//! MobileNetV2 at 224×224 — the depthwise-separable network the paper uses
//! to show that low-reuse layers map poorly onto spatial arrays.

use crate::graph::{Activation, Layer, Network, PoolKind};

/// Appends one inverted-residual block; returns (out_channels, out_hw).
fn inverted_residual(
    net: &mut Network,
    idx: usize,
    in_ch: usize,
    out_ch: usize,
    expand: usize,
    stride: usize,
    hw: usize,
) -> (usize, usize) {
    let mid = in_ch * expand;
    if expand != 1 {
        net.push(
            format!("block{idx}_expand"),
            Layer::Conv {
                in_channels: in_ch,
                out_channels: mid,
                kernel: 1,
                stride: 1,
                padding: 0,
                in_hw: (hw, hw),
                activation: Activation::Relu6,
            },
        );
    }
    net.push(
        format!("block{idx}_dw"),
        Layer::DwConv {
            channels: mid,
            kernel: 3,
            stride,
            padding: 1,
            in_hw: (hw, hw),
            activation: Activation::Relu6,
        },
    );
    let out_hw = (hw + 2 - 3) / stride + 1;
    net.push(
        format!("block{idx}_project"),
        Layer::Conv {
            in_channels: mid,
            out_channels: out_ch,
            kernel: 1,
            stride: 1,
            padding: 0,
            in_hw: (out_hw, out_hw),
            activation: Activation::None,
        },
    );
    if stride == 1 && in_ch == out_ch {
        net.push(
            format!("block{idx}_add"),
            Layer::ResAdd {
                elements: out_ch * out_hw * out_hw,
            },
        );
    }
    (out_ch, out_hw)
}

/// Builds MobileNetV2 (batch 1, 224×224 input, 1000-way classifier).
pub fn mobilenetv2() -> Network {
    let mut net = Network::new("mobilenetv2");
    net.push(
        "stem",
        Layer::Conv {
            in_channels: 3,
            out_channels: 32,
            kernel: 3,
            stride: 2,
            padding: 1,
            in_hw: (224, 224),
            activation: Activation::Relu6,
        },
    );

    // (expansion t, output channels c, repeats n, first stride s)
    let settings: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];

    let mut in_ch = 32;
    let mut hw = 112;
    let mut idx = 0;
    for &(t, c, n, s) in &settings {
        for rep in 0..n {
            idx += 1;
            let stride = if rep == 0 { s } else { 1 };
            let (oc, ohw) = inverted_residual(&mut net, idx, in_ch, c, t, stride, hw);
            in_ch = oc;
            hw = ohw;
        }
    }

    net.push(
        "head",
        Layer::Conv {
            in_channels: 320,
            out_channels: 1280,
            kernel: 1,
            stride: 1,
            padding: 0,
            in_hw: (7, 7),
            activation: Activation::Relu6,
        },
    );
    net.push(
        "avgpool",
        Layer::Pool {
            kind: PoolKind::Avg,
            size: 7,
            stride: 7,
            padding: 0,
            channels: 1280,
            in_hw: (7, 7),
        },
    );
    net.push(
        "classifier",
        Layer::Matmul {
            m: 1,
            k: 1280,
            n: 1000,
            activation: Activation::None,
        },
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LayerClass;

    #[test]
    fn seventeen_blocks() {
        let net = mobilenetv2();
        let dw = net
            .layers()
            .iter()
            .filter(|l| matches!(l.layer, Layer::DwConv { .. }))
            .count();
        assert_eq!(dw, 17); // 1+2+3+4+3+3+1
    }

    #[test]
    fn residual_adds_only_on_stride1_same_channel_blocks() {
        let net = mobilenetv2();
        // t=6,c=24,n=2: second repeat adds; similar for later groups:
        // adds = (n-1) per group with n>1 = 1+2+3+2+2 = 10.
        assert_eq!(net.count_of_class(LayerClass::ResAdd), 10);
    }

    #[test]
    fn final_feature_map_is_7x7() {
        let net = mobilenetv2();
        let head = net.layers().iter().find(|l| l.name == "head").unwrap();
        assert_eq!(head.layer.out_hw(), Some((7, 7)));
    }

    #[test]
    fn depthwise_macs_are_small_but_layers_are_many() {
        // The paper's point: depthwise convs are a large layer count but a
        // small MAC fraction with very low reuse.
        let net = mobilenetv2();
        let dw_macs: u64 = net
            .layers()
            .iter()
            .filter(|l| matches!(l.layer, Layer::DwConv { .. }))
            .map(|l| l.layer.macs())
            .sum();
        assert!(dw_macs * 5 < net.total_macs());
    }
}
