//! SqueezeNet v1.1 at 224×224 (the lighter revision the paper evaluates).

use crate::graph::{Activation, Layer, Network, PoolKind};

/// Appends one fire module: a 1×1 squeeze followed by parallel 1×1 and 3×3
/// expands (whose outputs concatenate channel-wise).
fn fire(net: &mut Network, idx: usize, in_ch: usize, squeeze: usize, expand: usize, hw: usize) {
    net.push(
        format!("fire{idx}_squeeze1x1"),
        Layer::Conv {
            in_channels: in_ch,
            out_channels: squeeze,
            kernel: 1,
            stride: 1,
            padding: 0,
            in_hw: (hw, hw),
            activation: Activation::Relu,
        },
    );
    net.push(
        format!("fire{idx}_expand1x1"),
        Layer::Conv {
            in_channels: squeeze,
            out_channels: expand,
            kernel: 1,
            stride: 1,
            padding: 0,
            in_hw: (hw, hw),
            activation: Activation::Relu,
        },
    );
    net.push(
        format!("fire{idx}_expand3x3"),
        Layer::Conv {
            in_channels: squeeze,
            out_channels: expand,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_hw: (hw, hw),
            activation: Activation::Relu,
        },
    );
}

/// Builds SqueezeNet v1.1 (batch 1, 224×224 input, 1000-way classifier).
pub fn squeezenet_v11() -> Network {
    let mut net = Network::new("squeezenet_v1.1");
    net.push(
        "conv1",
        Layer::Conv {
            in_channels: 3,
            out_channels: 64,
            kernel: 3,
            stride: 2,
            padding: 0,
            in_hw: (224, 224),
            activation: Activation::Relu,
        },
    );
    net.push(
        "pool1",
        Layer::Pool {
            kind: PoolKind::Max,
            size: 3,
            stride: 2,
            padding: 0,
            channels: 64,
            in_hw: (111, 111),
        },
    );
    fire(&mut net, 2, 64, 16, 64, 55);
    fire(&mut net, 3, 128, 16, 64, 55);
    net.push(
        "pool3",
        Layer::Pool {
            kind: PoolKind::Max,
            size: 3,
            stride: 2,
            padding: 0,
            channels: 128,
            in_hw: (55, 55),
        },
    );
    fire(&mut net, 4, 128, 32, 128, 27);
    fire(&mut net, 5, 256, 32, 128, 27);
    net.push(
        "pool5",
        Layer::Pool {
            kind: PoolKind::Max,
            size: 3,
            stride: 2,
            padding: 0,
            channels: 256,
            in_hw: (27, 27),
        },
    );
    fire(&mut net, 6, 256, 48, 192, 13);
    fire(&mut net, 7, 384, 48, 192, 13);
    fire(&mut net, 8, 384, 64, 256, 13);
    fire(&mut net, 9, 512, 64, 256, 13);
    net.push(
        "conv10",
        Layer::Conv {
            in_channels: 512,
            out_channels: 1000,
            kernel: 1,
            stride: 1,
            padding: 0,
            in_hw: (13, 13),
            activation: Activation::Relu,
        },
    );
    net.push(
        "avgpool",
        Layer::Pool {
            kind: PoolKind::Avg,
            size: 13,
            stride: 13,
            padding: 0,
            channels: 1000,
            in_hw: (13, 13),
        },
    );
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_fire_modules() {
        let net = squeezenet_v11();
        let squeezes = net
            .layers()
            .iter()
            .filter(|l| l.name.contains("squeeze"))
            .count();
        assert_eq!(squeezes, 8);
    }

    #[test]
    fn conv1_output_is_111() {
        // v1.1 stem: 3x3 stride 2 no padding: (224-3)/2+1 = 111.
        let net = squeezenet_v11();
        assert_eq!(net.layers()[0].layer.out_hw(), Some((111, 111)));
    }

    #[test]
    fn no_fc_layers_at_all() {
        // SqueezeNet famously ends with conv10 + global average pool.
        let net = squeezenet_v11();
        assert_eq!(net.count_of_class(crate::graph::LayerClass::Matmul), 0);
    }
}
