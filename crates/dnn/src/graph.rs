//! The layer-trace IR.
//!
//! A [`Network`] is an ordered list of dimensioned layers — the form in
//! which the runtime (in `gemmini-soc`) consumes workloads. Each layer is
//! self-contained (it records its own input geometry), which is exactly the
//! information the data-staging heuristics and the timing model need, and it
//! carries the layer-class taxonomy (convolution / matrix multiplication /
//! residual addition / …) that the Fig. 9 case study aggregates over.

use std::fmt;

/// Activation fused onto a layer's output, performed by the accelerator's
/// peripheral circuitry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// No activation.
    #[default]
    None,
    /// `max(0, x)`.
    Relu,
    /// `min(max(0, x), 6)`.
    Relu6,
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::None => write!(f, "none"),
            Self::Relu => write!(f, "relu"),
            Self::Relu6 => write!(f, "relu6"),
        }
    }
}

/// Pooling flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Window maximum.
    Max,
    /// Window average.
    Avg,
}

impl fmt::Display for PoolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Max => write!(f, "max"),
            Self::Avg => write!(f, "avg"),
        }
    }
}

/// The coarse layer taxonomy of Section V-B: "ResNet50 includes
/// convolutions, matrix multiplications, and residual additions, which all
/// exhibit quite different computational patterns."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerClass {
    /// Direct or depthwise convolution (high arithmetic intensity).
    Conv,
    /// Matrix multiplication (moderate arithmetic intensity).
    Matmul,
    /// Residual addition (no data reuse; memory bound).
    ResAdd,
    /// Pooling.
    Pool,
    /// Normalization / softmax vector work.
    Norm,
}

impl fmt::Display for LayerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Conv => write!(f, "conv"),
            Self::Matmul => write!(f, "matmul"),
            Self::ResAdd => write!(f, "resadd"),
            Self::Pool => write!(f, "pool"),
            Self::Norm => write!(f, "norm"),
        }
    }
}

/// One dimensioned layer of a network trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Layer {
    /// Standard 2-D convolution.
    Conv {
        /// Input channels.
        in_channels: usize,
        /// Output channels.
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding per edge.
        padding: usize,
        /// Input spatial size (height, width).
        in_hw: (usize, usize),
        /// Fused output activation.
        activation: Activation,
    },
    /// Depthwise 2-D convolution (one filter per channel).
    DwConv {
        /// Channels (input == output).
        channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding per edge.
        padding: usize,
        /// Input spatial size (height, width).
        in_hw: (usize, usize),
        /// Fused output activation.
        activation: Activation,
    },
    /// Dense matrix multiplication `[m,k] @ [k,n]`.
    Matmul {
        /// Output rows.
        m: usize,
        /// Inner (reduction) dimension.
        k: usize,
        /// Output columns.
        n: usize,
        /// Fused output activation.
        activation: Activation,
    },
    /// Elementwise residual addition of two `elements`-long operands.
    ResAdd {
        /// Number of elements in each operand.
        elements: usize,
    },
    /// 2-D pooling.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Window size.
        size: usize,
        /// Stride.
        stride: usize,
        /// Zero padding per edge.
        padding: usize,
        /// Channels.
        channels: usize,
        /// Input spatial size (height, width).
        in_hw: (usize, usize),
    },
    /// Row-wise layer normalization over a `[rows, cols]` operand.
    LayerNorm {
        /// Rows.
        rows: usize,
        /// Columns (normalized axis).
        cols: usize,
    },
    /// Row-wise softmax over a `[rows, cols]` operand.
    Softmax {
        /// Rows.
        rows: usize,
        /// Columns.
        cols: usize,
    },
}

fn conv_out(in_size: usize, kernel: usize, stride: usize, padding: usize) -> usize {
    (in_size + 2 * padding - kernel) / stride + 1
}

impl Layer {
    /// The coarse class this layer belongs to.
    pub fn class(&self) -> LayerClass {
        match self {
            Self::Conv { .. } | Self::DwConv { .. } => LayerClass::Conv,
            Self::Matmul { .. } => LayerClass::Matmul,
            Self::ResAdd { .. } => LayerClass::ResAdd,
            Self::Pool { .. } => LayerClass::Pool,
            Self::LayerNorm { .. } | Self::Softmax { .. } => LayerClass::Norm,
        }
    }

    /// Output spatial size for convolution/pooling layers, `None` otherwise.
    pub fn out_hw(&self) -> Option<(usize, usize)> {
        match *self {
            Self::Conv {
                kernel,
                stride,
                padding,
                in_hw,
                ..
            }
            | Self::DwConv {
                kernel,
                stride,
                padding,
                in_hw,
                ..
            } => Some((
                conv_out(in_hw.0, kernel, stride, padding),
                conv_out(in_hw.1, kernel, stride, padding),
            )),
            Self::Pool {
                size,
                stride,
                padding,
                in_hw,
                ..
            } => Some((
                conv_out(in_hw.0, size, stride, padding),
                conv_out(in_hw.1, size, stride, padding),
            )),
            _ => None,
        }
    }

    /// Multiply-accumulate operations this layer performs (batch 1).
    pub fn macs(&self) -> u64 {
        match *self {
            Self::Conv {
                in_channels,
                out_channels,
                kernel,
                ..
            } => {
                let (oh, ow) = self.out_hw().expect("conv has spatial output");
                (out_channels * oh * ow * kernel * kernel * in_channels) as u64
            }
            Self::DwConv {
                channels, kernel, ..
            } => {
                let (oh, ow) = self.out_hw().expect("dwconv has spatial output");
                (channels * oh * ow * kernel * kernel) as u64
            }
            Self::Matmul { m, k, n, .. } => (m * k * n) as u64,
            // Elementwise/pool/norm work performs no MACs in the spatial
            // array sense.
            Self::ResAdd { .. }
            | Self::Pool { .. }
            | Self::LayerNorm { .. }
            | Self::Softmax { .. } => 0,
        }
    }

    /// Bytes of activation input this layer streams in (int8 elements;
    /// both operands for residual adds).
    pub fn input_bytes(&self) -> u64 {
        match *self {
            Self::Conv {
                in_channels, in_hw, ..
            } => (in_channels * in_hw.0 * in_hw.1) as u64,
            Self::DwConv {
                channels, in_hw, ..
            } => (channels * in_hw.0 * in_hw.1) as u64,
            Self::Matmul { m, k, .. } => (m * k) as u64,
            Self::ResAdd { elements } => 2 * elements as u64,
            Self::Pool {
                channels, in_hw, ..
            } => (channels * in_hw.0 * in_hw.1) as u64,
            Self::LayerNorm { rows, cols } | Self::Softmax { rows, cols } => (rows * cols) as u64,
        }
    }

    /// Bytes of weights this layer reads (int8 elements).
    pub fn weight_bytes(&self) -> u64 {
        match *self {
            Self::Conv {
                in_channels,
                out_channels,
                kernel,
                ..
            } => (out_channels * in_channels * kernel * kernel) as u64,
            Self::DwConv {
                channels, kernel, ..
            } => (channels * kernel * kernel) as u64,
            Self::Matmul { k, n, .. } => (k * n) as u64,
            _ => 0,
        }
    }

    /// Bytes of output this layer produces (int8 elements).
    pub fn output_bytes(&self) -> u64 {
        match *self {
            Self::Conv { out_channels, .. } => {
                let (oh, ow) = self.out_hw().expect("conv has spatial output");
                (out_channels * oh * ow) as u64
            }
            Self::DwConv { channels, .. } => {
                let (oh, ow) = self.out_hw().expect("dwconv has spatial output");
                (channels * oh * ow) as u64
            }
            Self::Matmul { m, n, .. } => (m * n) as u64,
            Self::ResAdd { elements } => elements as u64,
            Self::Pool { channels, .. } => {
                let (oh, ow) = self.out_hw().expect("pool has spatial output");
                (channels * oh * ow) as u64
            }
            Self::LayerNorm { rows, cols } | Self::Softmax { rows, cols } => (rows * cols) as u64,
        }
    }

    /// Arithmetic intensity in MACs per byte moved — the quantity Section
    /// V-B reasons about ("convolutions have high arithmetic intensity;
    /// matrix multiplications have less; residual additions almost no data
    /// re-use at all").
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.input_bytes() + self.weight_bytes() + self.output_bytes();
        if bytes == 0 {
            0.0
        } else {
            self.macs() as f64 / bytes as f64
        }
    }

    /// The equivalent matrix-multiplication dimensions `(m, k, n)` after
    /// im2col lowering, for layers the spatial array executes; `None` for
    /// layers it does not (pool/norm).
    pub fn as_gemm(&self) -> Option<(usize, usize, usize)> {
        match *self {
            Self::Conv {
                in_channels,
                out_channels,
                kernel,
                ..
            } => {
                let (oh, ow) = self.out_hw()?;
                Some((oh * ow, kernel * kernel * in_channels, out_channels))
            }
            Self::DwConv {
                channels, kernel, ..
            } => {
                // Depthwise lowering: each channel is an independent tiny
                // GEMM; represent as one GEMM with unit output width per
                // channel (poor reuse — the paper's MobileNet observation).
                let (oh, ow) = self.out_hw()?;
                Some((oh * ow * channels, kernel * kernel, 1))
            }
            Self::Matmul { m, k, n, .. } => Some((m, k, n)),
            Self::ResAdd { .. }
            | Self::Pool { .. }
            | Self::LayerNorm { .. }
            | Self::Softmax { .. } => None,
        }
    }
}

/// A named layer within a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedLayer {
    /// Human-readable layer name (e.g. `conv2_1_3x3`).
    pub name: String,
    /// The layer's dimensions.
    pub layer: Layer,
}

/// An ordered network trace.
///
/// # Example
///
/// ```
/// use gemmini_dnn::graph::{Network, Layer, Activation};
/// let mut net = Network::new("tiny");
/// net.push("fc", Layer::Matmul { m: 4, k: 8, n: 16, activation: Activation::Relu });
/// assert_eq!(net.total_macs(), 4 * 8 * 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Network {
    name: String,
    layers: Vec<NamedLayer>,
}

impl Network {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            layers: Vec::new(),
        }
    }

    /// The network's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a named layer.
    pub fn push(&mut self, name: impl Into<String>, layer: Layer) {
        self.layers.push(NamedLayer {
            name: name.into(),
            layer,
        });
    }

    /// The layers, in execution order.
    pub fn layers(&self) -> &[NamedLayer] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total MACs across all layers (batch 1).
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.layer.macs()).sum()
    }

    /// Total MACs restricted to one layer class.
    pub fn macs_of_class(&self, class: LayerClass) -> u64 {
        self.layers
            .iter()
            .filter(|l| l.layer.class() == class)
            .map(|l| l.layer.macs())
            .sum()
    }

    /// Number of layers of one class.
    pub fn count_of_class(&self, class: LayerClass) -> usize {
        self.layers
            .iter()
            .filter(|l| l.layer.class() == class)
            .count()
    }

    /// Total bytes moved (inputs + weights + outputs) across all layers.
    pub fn total_bytes(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| l.layer.input_bytes() + l.layer.weight_bytes() + l.layer.output_bytes())
            .sum()
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} layers, {:.2} GMACs)",
            self.name,
            self.layers.len(),
            self.total_macs() as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(ic: usize, oc: usize, k: usize, s: usize, p: usize, hw: usize) -> Layer {
        Layer::Conv {
            in_channels: ic,
            out_channels: oc,
            kernel: k,
            stride: s,
            padding: p,
            in_hw: (hw, hw),
            activation: Activation::Relu,
        }
    }

    #[test]
    fn conv_macs_match_hand_count() {
        // ResNet50 stem: 7x7/2, 3->64, 224 -> 112.
        let l = conv(3, 64, 7, 2, 3, 224);
        assert_eq!(l.out_hw(), Some((112, 112)));
        assert_eq!(l.macs(), 64 * 112 * 112 * 7 * 7 * 3);
    }

    #[test]
    fn dwconv_macs_lack_channel_reduction() {
        let l = Layer::DwConv {
            channels: 32,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_hw: (16, 16),
            activation: Activation::Relu6,
        };
        assert_eq!(l.macs(), 32 * 16 * 16 * 9);
        assert_eq!(l.class(), LayerClass::Conv);
    }

    #[test]
    fn matmul_macs() {
        let l = Layer::Matmul {
            m: 128,
            k: 768,
            n: 768,
            activation: Activation::None,
        };
        assert_eq!(l.macs(), 128 * 768 * 768);
        assert_eq!(l.class(), LayerClass::Matmul);
    }

    #[test]
    fn resadd_has_zero_macs_and_double_input() {
        let l = Layer::ResAdd { elements: 1000 };
        assert_eq!(l.macs(), 0);
        assert_eq!(l.input_bytes(), 2000);
        assert_eq!(l.output_bytes(), 1000);
        assert_eq!(l.class(), LayerClass::ResAdd);
        assert_eq!(l.arithmetic_intensity(), 0.0);
    }

    #[test]
    fn arithmetic_intensity_ordering_matches_paper() {
        // conv >> matmul >> resadd: the Section V-B premise.
        let c = conv(256, 256, 3, 1, 1, 14);
        let m = Layer::Matmul {
            m: 196,
            k: 256,
            n: 256,
            activation: Activation::None,
        };
        let r = Layer::ResAdd { elements: 200_000 };
        assert!(c.arithmetic_intensity() > m.arithmetic_intensity());
        assert!(m.arithmetic_intensity() > r.arithmetic_intensity());
    }

    #[test]
    fn conv_as_gemm_dimensions() {
        let l = conv(3, 64, 7, 2, 3, 224);
        assert_eq!(l.as_gemm(), Some((112 * 112, 7 * 7 * 3, 64)));
        // GEMM MACs equal direct conv MACs.
        let (m, k, n) = l.as_gemm().unwrap();
        assert_eq!((m * k * n) as u64, l.macs());
    }

    #[test]
    fn pool_and_norm_have_no_gemm() {
        let p = Layer::Pool {
            kind: PoolKind::Max,
            size: 3,
            stride: 2,
            padding: 1,
            channels: 64,
            in_hw: (112, 112),
        };
        assert_eq!(p.as_gemm(), None);
        assert_eq!(p.out_hw(), Some((56, 56)));
        let n = Layer::Softmax {
            rows: 12,
            cols: 128,
        };
        assert_eq!(n.as_gemm(), None);
        assert_eq!(n.class(), LayerClass::Norm);
    }

    #[test]
    fn network_aggregation() {
        let mut net = Network::new("t");
        net.push("c", conv(3, 8, 3, 1, 1, 8));
        net.push(
            "m",
            Layer::Matmul {
                m: 2,
                k: 3,
                n: 4,
                activation: Activation::None,
            },
        );
        net.push("r", Layer::ResAdd { elements: 10 });
        assert_eq!(net.len(), 3);
        assert_eq!(net.count_of_class(LayerClass::Conv), 1);
        assert_eq!(net.macs_of_class(LayerClass::Matmul), 24);
        assert_eq!(net.total_macs(), net.macs_of_class(LayerClass::Conv) + 24);
        assert!(net.total_bytes() > 0);
        assert!(net.to_string().contains("3 layers"));
    }
}
