//! Property-based tests for the DNN substrate's core invariants.

use gemmini_dnn::graph::{Activation, Layer};
use gemmini_dnn::layout::{from_nhwc, to_nhwc};
use gemmini_dnn::ops::conv::{conv2d, ConvSpec};
use gemmini_dnn::ops::im2col::{im2col, im2col_nhwc, weights_to_matrix, weights_to_matrix_nhwc};
use gemmini_dnn::ops::{matmul, relu, relu6, resadd_i8};
use gemmini_dnn::quant::{requantize, QuantParams};
use gemmini_dnn::tensor::Tensor;
use proptest::prelude::*;

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..6
}

proptest! {
    /// Requantization always lands in i8 and is monotonic in the input.
    #[test]
    fn requantize_is_bounded_and_monotonic(a in any::<i32>(), b in any::<i32>(), scale in 0.001f32..4.0) {
        let p = QuantParams::new(scale);
        let qa = requantize(a, p);
        let qb = requantize(b, p);
        if a <= b {
            prop_assert!(qa <= qb);
        }
        // Values are inherently bounded by i8 — this documents intent.
        prop_assert!((-128..=127).contains(&(qa as i32)));
    }

    /// ReLU is idempotent and never increases magnitude of negatives.
    #[test]
    fn relu_properties(x in any::<i32>()) {
        let y = relu(x);
        prop_assert!(y >= 0);
        prop_assert_eq!(relu(y), y);
        prop_assert!(y == x || x < 0);
    }

    /// ReLU6 output is always within [0, six] for non-negative six.
    #[test]
    fn relu6_is_clamped(x in any::<i32>(), six in 0i32..1000) {
        let y = relu6(x, six);
        prop_assert!(y >= 0 && y <= six);
    }

    /// Residual addition saturates instead of wrapping.
    #[test]
    fn resadd_saturates(a in proptest::collection::vec(any::<i8>(), 1..64)) {
        let b: Vec<i8> = a.iter().copied().rev().collect();
        let n = a.len();
        let ta = Tensor::from_vec(&[n], a.clone());
        let tb = Tensor::from_vec(&[n], b.clone());
        let out = resadd_i8(&ta, &tb);
        for i in 0..n {
            let wide = a[i] as i32 + b[i] as i32;
            prop_assert_eq!(out.as_slice()[i] as i32, wide.clamp(-128, 127));
        }
    }

    /// Matmul distributes over identity: A·I = A.
    #[test]
    fn matmul_identity(rows in small_dim(), cols in small_dim(), seed in any::<u64>()) {
        let a = Tensor::<i8>::random(&[rows, cols], seed);
        let mut eye = Tensor::<i8>::zeros(&[cols, cols]);
        for i in 0..cols {
            eye[(i, i)] = 1;
        }
        let c = matmul(&a, &eye);
        for r in 0..rows {
            for q in 0..cols {
                prop_assert_eq!(c[(r, q)], a[(r, q)] as i32);
            }
        }
    }

    /// Both im2col variants multiply out to exactly direct convolution.
    #[test]
    fn im2col_equals_direct_conv(
        c_in in 1usize..4,
        c_out in 1usize..4,
        hw in 3usize..8,
        k in prop::sample::select(vec![1usize, 3]),
        stride in 1usize..3,
        seed in any::<u64>(),
    ) {
        let spec = ConvSpec { kernel: k, stride, padding: k / 2 };
        let input = Tensor::<i8>::random(&[1, c_in, hw, hw], seed);
        let weights = Tensor::<i8>::random(&[c_out, c_in, k, k], seed ^ 0xdead);
        let direct = conv2d(&input, &weights, spec);
        let (oh, ow) = (spec.out_size(hw), spec.out_size(hw));

        for nhwc in [false, true] {
            let (patches, wmat) = if nhwc {
                (im2col_nhwc(&input, spec), weights_to_matrix_nhwc(&weights))
            } else {
                (im2col(&input, spec), weights_to_matrix(&weights))
            };
            let gemm = matmul(&patches, &wmat);
            for o in 0..c_out {
                for y in 0..oh {
                    for x in 0..ow {
                        prop_assert_eq!(gemm[(y * ow + x, o)], direct.at4(0, o, y, x));
                    }
                }
            }
        }
    }

    /// NCHW -> NHWC -> NCHW is the identity.
    #[test]
    fn layout_roundtrip(n in 1usize..3, c in 1usize..5, h in 1usize..5, w in 1usize..5, seed in any::<u64>()) {
        let t = Tensor::<i8>::random(&[n, c, h, w], seed);
        let back = from_nhwc(&to_nhwc(&t), n, c, h, w);
        prop_assert_eq!(t, back);
    }

    /// A conv layer's GEMM lowering preserves the MAC count exactly.
    #[test]
    fn conv_gemm_macs_match(
        ic in 1usize..64,
        oc in 1usize..64,
        k in prop::sample::select(vec![1usize, 3, 5]),
        hw in 7usize..32,
    ) {
        let l = Layer::Conv {
            in_channels: ic,
            out_channels: oc,
            kernel: k,
            stride: 1,
            padding: k / 2,
            in_hw: (hw, hw),
            activation: Activation::None,
        };
        let (m, kk, n) = l.as_gemm().unwrap();
        prop_assert_eq!((m * kk * n) as u64, l.macs());
    }

    /// Serialization round-trips arbitrary matmul/resadd networks.
    #[test]
    fn loader_roundtrip(dims in proptest::collection::vec((1usize..512, 1usize..512, 1usize..512), 1..8)) {
        use gemmini_dnn::graph::Network;
        use gemmini_dnn::loader::{parse_network, serialize_network};
        let mut net = Network::new("prop");
        for (i, (m, k, n)) in dims.iter().enumerate() {
            net.push(format!("l{i}"), Layer::Matmul { m: *m, k: *k, n: *n, activation: Activation::Relu });
            net.push(format!("r{i}"), Layer::ResAdd { elements: m * n });
        }
        let text = serialize_network(&net);
        prop_assert_eq!(parse_network(&text).unwrap(), net);
    }
}
