#![warn(missing_docs)]

//! Analytical synthesis model for Gemmini-generated accelerators.
//!
//! The paper's physical results come from Cadence Genus/Innovus runs in
//! Intel 22FFL. No PDK or EDA flow exists in this environment, so this
//! crate replaces them with an analytical model whose per-component
//! constants are **calibrated to the paper's published numbers**:
//!
//! * the Fig. 6a area breakdown (16×16 array 116 kµm², 256 KiB scratchpad
//!   544 kµm², 64 KiB accumulator 146 kµm², Rocket 171 kµm²), and
//! * the Fig. 3 systolic-vs-vector comparison (≈2.7× fmax, ≈1.8× area,
//!   ≈3.0× power for 256 PEs).
//!
//! The model exposes the same design-space knobs as the generator, so the
//! comparisons the paper makes (and any sweep in between, per
//! "any other design points in between these two extremes") can be
//! regenerated.
//!
//! # Example
//!
//! ```
//! use gemmini_synth::area::accelerator_area;
//! use gemmini_core::config::GemminiConfig;
//!
//! let report = accelerator_area(&GemminiConfig::edge());
//! // SRAMs dominate: the paper reports 67.1% of accelerator area.
//! assert!(report.sram_fraction() > 0.6);
//! ```

pub mod area;
pub mod energy;
pub mod floorplan;
pub mod power;
pub mod report;
pub mod tech;
pub mod timing;

pub use area::{accelerator_area, AreaReport};
pub use energy::{inference_energy, EnergyReport, RunActivity};
pub use power::{spatial_array_power, PowerReport};
pub use timing::{fmax_ghz, SpatialArrayTiming};
