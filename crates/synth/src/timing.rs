//! Critical-path and fmax model of the spatial array.
//!
//! The two-level hierarchy determines the combinational depth: PEs within a
//! tile chain their accumulate adders combinationally, and a pipeline
//! register closes the path at each tile boundary. The paper: the TPU-like
//! design "achieves a 2.7x higher maximum frequency, due to its shorter MAC
//! chains".

use crate::tech::{T_ADD_PS, T_MUL_PS, T_REG_PS};
use gemmini_core::config::GemminiConfig;

/// Timing analysis of one spatial-array configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpatialArrayTiming {
    /// Critical path in picoseconds.
    pub critical_path_ps: f64,
    /// Maximum clock frequency in GHz.
    pub fmax_ghz: f64,
    /// Combinational MAC-chain depth (PEs per tile column).
    pub chain_depth: usize,
}

impl SpatialArrayTiming {
    /// Analyzes a configuration: the critical path is one multiplier, a
    /// chain of `tile_rows` accumulate adders, and the closing register.
    pub fn from_config(config: &GemminiConfig) -> Self {
        let depth = config.tile_rows;
        let critical_path_ps = T_MUL_PS + depth as f64 * T_ADD_PS + T_REG_PS;
        Self {
            critical_path_ps,
            fmax_ghz: 1000.0 / critical_path_ps,
            chain_depth: depth,
        }
    }
}

/// Maximum clock frequency of a configuration, in GHz.
///
/// # Example
///
/// ```
/// use gemmini_synth::timing::fmax_ghz;
/// use gemmini_core::config::GemminiConfig;
/// let f_pipe = fmax_ghz(&GemminiConfig::tpu_like_256());
/// let f_comb = fmax_ghz(&GemminiConfig::nvdla_like_256());
/// assert!(f_pipe / f_comb > 2.5); // the paper's 2.7x
/// ```
pub fn fmax_ghz(config: &GemminiConfig) -> f64 {
    SpatialArrayTiming::from_config(config).fmax_ghz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelined_vs_combinational_matches_fig3() {
        let pipe = SpatialArrayTiming::from_config(&GemminiConfig::tpu_like_256());
        let comb = SpatialArrayTiming::from_config(&GemminiConfig::nvdla_like_256());
        let ratio = pipe.fmax_ghz / comb.fmax_ghz;
        assert!((ratio - 2.7).abs() < 0.05, "fmax ratio = {ratio}");
        assert_eq!(pipe.chain_depth, 1);
        assert_eq!(comb.chain_depth, 16);
    }

    #[test]
    fn fmax_is_monotonic_in_tile_depth() {
        let mut last = f64::INFINITY;
        for tile in [1usize, 2, 4, 8, 16] {
            let cfg = GemminiConfig {
                mesh_rows: 16 / tile,
                mesh_cols: 16 / tile,
                tile_rows: tile,
                tile_cols: tile,
                ..GemminiConfig::edge()
            };
            let f = fmax_ghz(&cfg);
            assert!(f < last, "fmax must fall as chains lengthen");
            last = f;
        }
    }

    #[test]
    fn pipelined_clock_is_plausible_for_22ffl() {
        let f = fmax_ghz(&GemminiConfig::tpu_like_256());
        assert!(f > 1.5 && f < 3.0, "fmax = {f} GHz");
    }
}
