//! A toy slicing floorplan, standing in for the paper's Fig. 6b layout
//! plot: components become rectangles packed into a near-square die.

use crate::area::AreaReport;

/// One placed block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Component name.
    pub name: String,
    /// Left edge, in µm.
    pub x: f64,
    /// Bottom edge, in µm.
    pub y: f64,
    /// Width, in µm.
    pub w: f64,
    /// Height, in µm.
    pub h: f64,
}

/// A placed floorplan.
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    /// Placed blocks.
    pub blocks: Vec<Block>,
    /// Die width, in µm.
    pub die_w: f64,
    /// Die height, in µm.
    pub die_h: f64,
}

impl Floorplan {
    /// Packs an area report into horizontal slices of a near-square die,
    /// largest component at the bottom.
    pub fn from_area(report: &AreaReport) -> Self {
        let total = report.total_um2();
        let die_w = total.sqrt();
        let mut comps: Vec<_> = report.components.clone();
        comps.sort_by(|a, b| b.area_um2.total_cmp(&a.area_um2));
        let mut y = 0.0;
        let blocks = comps
            .into_iter()
            .map(|c| {
                let h = c.area_um2 / die_w;
                let b = Block {
                    name: c.name,
                    x: 0.0,
                    y,
                    w: die_w,
                    h,
                };
                y += h;
                b
            })
            .collect();
        Self {
            blocks,
            die_w,
            die_h: y,
        }
    }

    /// Renders the floorplan as ASCII art, `cols`×`rows` characters.
    pub fn render(&self, cols: usize, rows: usize) -> String {
        let mut grid = vec![vec![' '; cols]; rows];
        for (i, b) in self.blocks.iter().enumerate() {
            let tag = b.name.chars().next().unwrap_or('?').to_ascii_uppercase();
            let y0 = ((b.y / self.die_h) * rows as f64) as usize;
            let y1 = (((b.y + b.h) / self.die_h) * rows as f64).ceil() as usize;
            for row in grid.iter_mut().take(y1.min(rows)).skip(y0) {
                for cell in row.iter_mut() {
                    *cell = tag;
                }
            }
            let _ = i;
        }
        let mut out = String::new();
        out.push('+');
        out.push_str(&"-".repeat(cols));
        out.push_str("+\n");
        for row in grid.iter().rev() {
            out.push('|');
            out.extend(row.iter());
            out.push_str("|\n");
        }
        out.push('+');
        out.push_str(&"-".repeat(cols));
        out.push_str("+\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::{soc_area, CpuKind};
    use gemmini_core::config::GemminiConfig;

    fn plan() -> Floorplan {
        Floorplan::from_area(&soc_area(&GemminiConfig::edge(), CpuKind::Rocket))
    }

    #[test]
    fn blocks_tile_the_die_exactly() {
        let p = plan();
        let total_block_area: f64 = p.blocks.iter().map(|b| b.w * b.h).sum();
        assert!((total_block_area - p.die_w * p.die_h).abs() / total_block_area < 1e-9);
    }

    #[test]
    fn blocks_do_not_overlap() {
        let p = plan();
        for w in p.blocks.windows(2) {
            assert!((w[0].y + w[0].h - w[1].y).abs() < 1e-9);
        }
    }

    #[test]
    fn die_is_near_square() {
        let p = plan();
        let aspect = p.die_w / p.die_h;
        assert!(aspect > 0.9 && aspect < 1.1, "aspect = {aspect}");
    }

    #[test]
    fn scratchpad_is_the_biggest_block() {
        let p = plan();
        assert!(p.blocks[0].name.contains("Scratchpad"));
    }

    #[test]
    fn render_produces_a_bordered_grid() {
        let art = plan().render(40, 12);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 14);
        assert!(lines[0].starts_with('+'));
        assert!(art.contains('S'), "scratchpad rows present");
    }
}
