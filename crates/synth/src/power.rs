//! Power model: dynamic PE/register switching, SRAM access energy, and
//! area-proportional leakage.

use crate::area::spatial_array_area_um2;
use crate::tech::{
    ENERGY_SRAM_PJ_PER_BYTE, LEAKAGE_UW_PER_KUM2, POWER_PE_UW_PER_GHZ, POWER_PIPE_REG_UW_PER_GHZ,
};
use gemmini_core::config::GemminiConfig;

/// Power breakdown of one spatial-array configuration at a given clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Dynamic power of PE arithmetic, in mW.
    pub pe_dynamic_mw: f64,
    /// Dynamic power of pipeline registers, in mW.
    pub reg_dynamic_mw: f64,
    /// Leakage, in mW.
    pub leakage_mw: f64,
}

impl PowerReport {
    /// Total power in mW.
    pub fn total_mw(&self) -> f64 {
        self.pe_dynamic_mw + self.reg_dynamic_mw + self.leakage_mw
    }
}

/// Spatial-array power at `clock_ghz` with the given arithmetic activity
/// factor (fraction of cycles each PE performs a useful MAC). Pipeline
/// registers clock every cycle regardless of activity — which is exactly
/// why the fully-pipelined design pays Fig. 3's ≈3.0× power.
pub fn spatial_array_power(config: &GemminiConfig, clock_ghz: f64, activity: f64) -> PowerReport {
    let pes = config.pe_count() as f64;
    let reg_units = (config.mesh_rows * config.mesh_cols * config.tile_cols) as f64;
    let area_kum2 = spatial_array_area_um2(config) / 1000.0;
    PowerReport {
        pe_dynamic_mw: pes * POWER_PE_UW_PER_GHZ * clock_ghz * activity / 1000.0,
        reg_dynamic_mw: reg_units * POWER_PIPE_REG_UW_PER_GHZ * clock_ghz / 1000.0,
        leakage_mw: area_kum2 * LEAKAGE_UW_PER_KUM2 / 1000.0,
    }
}

/// Energy of moving `bytes` through a local SRAM, in millijoules.
pub fn sram_access_energy_mj(bytes: u64) -> f64 {
    bytes as f64 * ENERGY_SRAM_PJ_PER_BYTE * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_iso_frequency_power_ratio() {
        // At the same clock and full activity, the fully-pipelined design
        // burns ≈3.0x the power of the combinational design (registers).
        let pipe = spatial_array_power(&GemminiConfig::tpu_like_256(), 1.0, 1.0);
        let comb = spatial_array_power(&GemminiConfig::nvdla_like_256(), 1.0, 1.0);
        let ratio =
            (pipe.pe_dynamic_mw + pipe.reg_dynamic_mw) / (comb.pe_dynamic_mw + comb.reg_dynamic_mw);
        assert!((ratio - 3.0).abs() < 0.05, "power ratio = {ratio}");
    }

    #[test]
    fn registers_burn_even_when_idle() {
        let idle = spatial_array_power(&GemminiConfig::tpu_like_256(), 1.0, 0.0);
        assert_eq!(idle.pe_dynamic_mw, 0.0);
        assert!(idle.reg_dynamic_mw > 0.0);
    }

    #[test]
    fn power_scales_with_clock() {
        let slow = spatial_array_power(&GemminiConfig::edge(), 0.5, 1.0);
        let fast = spatial_array_power(&GemminiConfig::edge(), 1.0, 1.0);
        assert!((fast.pe_dynamic_mw / slow.pe_dynamic_mw - 2.0).abs() < 1e-9);
        // Leakage does not scale with clock.
        assert_eq!(slow.leakage_mw, fast.leakage_mw);
    }

    #[test]
    fn sram_energy_is_linear() {
        assert!(sram_access_energy_mj(0) == 0.0);
        let one = sram_access_energy_mj(1_000_000);
        assert!((sram_access_energy_mj(2_000_000) - 2.0 * one).abs() < 1e-15);
    }
}
