//! Per-inference energy estimation — an extension the paper's
//! infrastructure enables (its evaluation reports performance and area;
//! energy efficiency is the natural third axis, and the simulator already
//! counts every event the model needs).
//!
//! Energy = MAC switching + local SRAM accesses + DRAM traffic + leakage
//! over the run's wall-clock. Constants are representative 22 nm-class
//! figures, documented per constant; as with the rest of `gemmini-synth`,
//! ratios between design points are the meaningful output.

use crate::area::accelerator_area;
use crate::tech::{ENERGY_SRAM_PJ_PER_BYTE, LEAKAGE_UW_PER_KUM2};
use gemmini_core::config::{DataType, GemminiConfig};

/// Energy of one int8 MAC (multiplier + adder switching), in picojoules.
/// Representative of 22 nm-class datapaths (Horowitz, ISSCC'14 scaled).
pub const ENERGY_MAC_INT8_PJ: f64 = 0.1;

/// fp32 MAC energy multiplier relative to int8.
pub const FP32_MAC_ENERGY_FACTOR: f64 = 9.0;

/// Energy per byte moved over the DRAM channel, in picojoules (LPDDR4-class
/// interface + core).
pub const ENERGY_DRAM_PJ_PER_BYTE: f64 = 15.0;

/// One run's energy breakdown, in microjoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Arithmetic switching energy.
    pub mac_uj: f64,
    /// Local scratchpad/accumulator access energy.
    pub sram_uj: f64,
    /// DRAM interface energy.
    pub dram_uj: f64,
    /// Leakage integrated over the run.
    pub leakage_uj: f64,
}

impl EnergyReport {
    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.mac_uj + self.sram_uj + self.dram_uj + self.leakage_uj
    }

    /// Energy efficiency in TOPS/W (int8 ops = 2·MACs), given the MACs the
    /// run performed.
    pub fn tops_per_watt(&self, macs: u64, cycles: u64, clock_ghz: f64) -> f64 {
        if cycles == 0 || self.total_uj() == 0.0 {
            return 0.0;
        }
        let seconds = cycles as f64 / (clock_ghz * 1e9);
        let watts = self.total_uj() * 1e-6 / seconds;
        let tops = 2.0 * macs as f64 / seconds / 1e12;
        tops / watts
    }
}

/// Activity counters the simulator produces for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunActivity {
    /// MACs performed.
    pub macs: u64,
    /// Bytes moved into/out of the local memories by the DMA.
    pub local_bytes: u64,
    /// Bytes moved over the DRAM channel.
    pub dram_bytes: u64,
    /// Total cycles.
    pub cycles: u64,
}

/// Estimates one run's energy on a given accelerator instance.
///
/// # Example
///
/// ```
/// use gemmini_synth::energy::{inference_energy, RunActivity};
/// use gemmini_core::config::GemminiConfig;
/// let act = RunActivity { macs: 4_089_000_000, local_bytes: 90_000_000, dram_bytes: 69_000_000, cycles: 44_300_000 };
/// let e = inference_energy(&GemminiConfig::edge(), act, 1.0);
/// // An edge int8 inference lands in the single-digit millijoule range.
/// assert!(e.total_uj() > 100.0 && e.total_uj() < 10_000.0);
/// ```
pub fn inference_energy(
    config: &GemminiConfig,
    activity: RunActivity,
    clock_ghz: f64,
) -> EnergyReport {
    let mac_pj = match config.dtype {
        DataType::Int8 => ENERGY_MAC_INT8_PJ,
        DataType::Fp32 => ENERGY_MAC_INT8_PJ * FP32_MAC_ENERGY_FACTOR,
    };
    // Every DMA byte is written to and later read from a local SRAM, and
    // each MAC operand row passes through the scratchpad once more on its
    // way into the array; 2x the DMA bytes is the simulator-visible proxy.
    let sram_bytes = 2.0 * activity.local_bytes as f64;
    let seconds = if clock_ghz > 0.0 {
        activity.cycles as f64 / (clock_ghz * 1e9)
    } else {
        0.0
    };
    let leak_uw = accelerator_area(config).total_um2() / 1000.0 * LEAKAGE_UW_PER_KUM2;
    EnergyReport {
        mac_uj: activity.macs as f64 * mac_pj * 1e-6,
        sram_uj: sram_bytes * ENERGY_SRAM_PJ_PER_BYTE * 1e-6,
        dram_uj: activity.dram_bytes as f64 * ENERGY_DRAM_PJ_PER_BYTE * 1e-6,
        leakage_uj: leak_uw * seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet_activity() -> RunActivity {
        RunActivity {
            macs: 4_089_000_000,
            local_bytes: 90_000_000,
            dram_bytes: 69_000_000,
            cycles: 44_300_000,
        }
    }

    #[test]
    fn resnet_scale_energy_is_millijoules() {
        let e = inference_energy(&GemminiConfig::edge(), resnet_activity(), 1.0);
        let mj = e.total_uj() / 1000.0;
        assert!(mj > 0.3 && mj < 10.0, "ResNet50 inference = {mj:.2} mJ");
    }

    #[test]
    fn dram_traffic_dominates_sram_traffic_per_byte() {
        let e = inference_energy(&GemminiConfig::edge(), resnet_activity(), 1.0);
        // 15 pJ/B vs 0.8 pJ/B: DRAM energy per byte is ~19x.
        assert!(e.dram_uj > e.sram_uj * 3.0);
    }

    #[test]
    fn fp32_macs_cost_more() {
        let int8 = inference_energy(&GemminiConfig::edge(), resnet_activity(), 1.0);
        let fp32_cfg = GemminiConfig {
            dtype: DataType::Fp32,
            ..GemminiConfig::edge()
        };
        let fp32 = inference_energy(&fp32_cfg, resnet_activity(), 1.0);
        assert!((fp32.mac_uj / int8.mac_uj - 9.0).abs() < 1e-9);
    }

    #[test]
    fn leakage_scales_with_time_not_work() {
        let mut slow = resnet_activity();
        slow.cycles *= 2;
        let fast = inference_energy(&GemminiConfig::edge(), resnet_activity(), 1.0);
        let lazy = inference_energy(&GemminiConfig::edge(), slow, 1.0);
        assert!((lazy.leakage_uj / fast.leakage_uj - 2.0).abs() < 1e-9);
        assert_eq!(lazy.mac_uj, fast.mac_uj);
    }

    #[test]
    fn tops_per_watt_is_plausible_for_edge_int8() {
        let act = resnet_activity();
        let e = inference_energy(&GemminiConfig::edge(), act, 1.0);
        let tpw = e.tops_per_watt(act.macs, act.cycles, 1.0);
        // Edge int8 accelerators land in the 0.5–20 TOPS/W range.
        assert!(tpw > 0.5 && tpw < 20.0, "TOPS/W = {tpw:.2}");
    }

    #[test]
    fn zero_run_is_zero_energy_dynamic() {
        let e = inference_energy(&GemminiConfig::edge(), RunActivity::default(), 1.0);
        assert_eq!(e.mac_uj, 0.0);
        assert_eq!(e.total_uj(), 0.0);
        assert_eq!(e.tops_per_watt(0, 0, 1.0), 0.0);
    }
}
