//! Technology constants, calibrated to the paper's Intel 22FFL results.
//!
//! Every constant's provenance is documented at its definition. The
//! calibration anchors are:
//!
//! * **Fig. 6a**: 16×16 int8 array = 116 kµm²; 256 KiB scratchpad =
//!   544 kµm²; 64 KiB accumulator = 146 kµm²; Rocket = 171 kµm²;
//!   total = 1,029 kµm² (leaving ~52 kµm² of controller/DMA/TLB logic).
//! * **Fig. 3** at 256 PEs: fully-pipelined vs fully-combinational is
//!   ≈2.7× fmax, ≈1.8× area, ≈3.0× power.

/// Combinational delay of one int8 multiplier, in picoseconds.
///
/// Chosen so the fully-pipelined stage (`T_MUL + T_ADD + T_REG` = 451 ps)
/// yields ≈2.2 GHz, a plausible 22FFL datapath clock.
pub const T_MUL_PS: f64 = 300.0;

/// Combinational delay of one accumulate adder stage, in picoseconds.
///
/// Calibrated so a 16-PE combinational MAC chain
/// (`T_MUL + 16·T_ADD + T_REG`) is ≈2.7× slower than one pipelined stage,
/// matching Fig. 3's fmax ratio.
pub const T_ADD_PS: f64 = 51.0;

/// Register clk-to-q plus setup overhead, in picoseconds.
pub const T_REG_PS: f64 = 100.0;

/// Area of one int8 PE's logic (multiplier + adder + control), in µm².
///
/// Together with [`AREA_PIPE_REG_UM2`] this is calibrated to Fig. 6a's
/// 116 kµm² for a fully-pipelined 16×16 array
/// (`256 · (252 + 201) ≈ 116 kµm²`) while giving Fig. 3's ≈1.8× area ratio
/// (`(252+201)/252 ≈ 1.8`).
pub const AREA_PE_INT8_UM2: f64 = 252.0;

/// Area of the pipeline registers attributed to one PE at a tile boundary,
/// in µm².
pub const AREA_PIPE_REG_UM2: f64 = 201.0;

/// fp32 PE area multiplier relative to int8.
///
/// An fp32 FMA in a 22 nm-class node is roughly 4× an int8 MAC; the paper
/// synthesizes int8 configs, so this is an extrapolation knob, not a
/// calibration anchor.
pub const FP32_PE_AREA_FACTOR: f64 = 4.0;

/// Single-ported SRAM macro area per KiB, in µm² (scratchpad):
/// 544 kµm² / 256 KiB.
pub const AREA_SRAM_SP_UM2_PER_KB: f64 = 544_000.0 / 256.0;

/// Dual-ported, wider SRAM macro area per KiB, in µm² (accumulator):
/// 146 kµm² / 64 KiB.
pub const AREA_SRAM_ACC_UM2_PER_KB: f64 = 146_000.0 / 64.0;

/// Rocket (in-order, single-core, with L1s) macro area, in µm² (Fig. 6a).
pub const AREA_ROCKET_UM2: f64 = 171_000.0;

/// BOOM (out-of-order) macro area, in µm².
///
/// Not in Fig. 6a; mid-size BOOM configurations are ~6× Rocket in
/// published Chipyard floorplans, so 6 × 171 kµm².
pub const AREA_BOOM_UM2: f64 = 6.0 * AREA_ROCKET_UM2;

/// Controller/DMA/TLB/ROB logic area, in µm²: Fig. 6a's total (1,029 kµm²)
/// minus its listed components.
pub const AREA_CTRL_UM2: f64 = 1_029_000.0 - 116_000.0 - 544_000.0 - 146_000.0 - 171_000.0;

/// Dynamic switched capacitance of one active int8 PE, expressed as µW per
/// GHz of clock.
///
/// Absolute value is a representative 22 nm-class figure; only ratios are
/// calibration anchors.
pub const POWER_PE_UW_PER_GHZ: f64 = 20.0;

/// Dynamic power of one pipeline-register bank, as µW per GHz.
///
/// Calibrated to Fig. 3's ≈3.0× iso-frequency power ratio for 256 PEs:
/// pipelined has 256 register banks, combinational 16, so
/// `(256·PE + 256·REG)/(256·PE + 16·REG) = 3` ⇒ `REG ≈ 2.46 · PE`
/// (registers toggle every cycle regardless of data activity).
pub const POWER_PIPE_REG_UW_PER_GHZ: f64 = 2.4615 * POWER_PE_UW_PER_GHZ;

/// SRAM read/write energy, in pJ per byte (representative LP SRAM figure).
pub const ENERGY_SRAM_PJ_PER_BYTE: f64 = 0.8;

/// Leakage power density, in µW per kµm² (representative 22FFL LP figure).
pub const LEAKAGE_UW_PER_KUM2: f64 = 3.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_area_anchors_reproduce() {
        // 256 PEs fully pipelined.
        let array = 256.0 * (AREA_PE_INT8_UM2 + AREA_PIPE_REG_UM2);
        assert!((array - 116_000.0).abs() / 116_000.0 < 0.01);
        assert!((256.0 * AREA_SRAM_SP_UM2_PER_KB - 544_000.0).abs() < 1.0);
        assert!((64.0 * AREA_SRAM_ACC_UM2_PER_KB - 146_000.0).abs() < 1.0);
        let ctrl = AREA_CTRL_UM2;
        assert!(ctrl > 0.0, "controller area must be positive: {ctrl}");
    }

    #[test]
    fn fig3_fmax_ratio_is_2_7() {
        let pipelined = T_MUL_PS + T_ADD_PS + T_REG_PS;
        let comb = T_MUL_PS + 16.0 * T_ADD_PS + T_REG_PS;
        let ratio = comb / pipelined;
        assert!((ratio - 2.7).abs() < 0.05, "ratio = {ratio}");
    }

    #[test]
    fn fig3_area_ratio_is_1_8() {
        let ratio = (AREA_PE_INT8_UM2 + AREA_PIPE_REG_UM2) / AREA_PE_INT8_UM2;
        assert!((ratio - 1.8).abs() < 0.02, "ratio = {ratio}");
    }

    #[test]
    fn fig3_power_ratio_is_3_0() {
        // Full-array ratio at 256 PEs: pipelined (256 reg banks) vs
        // combinational (16 reg banks).
        let pipe = 256.0 * (POWER_PE_UW_PER_GHZ + POWER_PIPE_REG_UW_PER_GHZ);
        let comb = 256.0 * POWER_PE_UW_PER_GHZ + 16.0 * POWER_PIPE_REG_UW_PER_GHZ;
        let ratio = pipe / comb;
        assert!((ratio - 3.0).abs() < 0.01, "ratio = {ratio}");
    }
}
