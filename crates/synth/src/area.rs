//! Component-level area model (the Fig. 6a breakdown).

use crate::tech::{
    AREA_BOOM_UM2, AREA_CTRL_UM2, AREA_PE_INT8_UM2, AREA_PIPE_REG_UM2, AREA_ROCKET_UM2,
    AREA_SRAM_ACC_UM2_PER_KB, AREA_SRAM_SP_UM2_PER_KB, FP32_PE_AREA_FACTOR,
};
use gemmini_core::config::{DataType, GemminiConfig};

/// Host-CPU macro choices for SoC-level area totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuKind {
    /// In-order Rocket core.
    Rocket,
    /// Out-of-order BOOM core.
    Boom,
}

impl CpuKind {
    /// Macro area in µm².
    pub fn area_um2(self) -> f64 {
        match self {
            Self::Rocket => AREA_ROCKET_UM2,
            Self::Boom => AREA_BOOM_UM2,
        }
    }
}

/// One named component of the breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaComponent {
    /// Component name as it appears in the Fig. 6a table.
    pub name: String,
    /// Area in µm².
    pub area_um2: f64,
}

/// A full area breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// Components, in presentation order.
    pub components: Vec<AreaComponent>,
}

impl AreaReport {
    /// Total area in µm².
    pub fn total_um2(&self) -> f64 {
        self.components.iter().map(|c| c.area_um2).sum()
    }

    /// One component's share of the total.
    pub fn fraction(&self, name: &str) -> f64 {
        let total = self.total_um2();
        self.components
            .iter()
            .filter(|c| c.name.contains(name))
            .map(|c| c.area_um2)
            .sum::<f64>()
            / total
    }

    /// Combined SRAM share (scratchpad + accumulator) of the report's
    /// total — the paper's "the SRAMs alone consume 67.1% of the
    /// accelerator's total area" claim (measured against the Fig. 6a
    /// system total, which includes the host CPU).
    pub fn sram_fraction(&self) -> f64 {
        let sram: f64 = self
            .components
            .iter()
            .filter(|c| c.name.contains("Scratchpad") || c.name.contains("Accumulator"))
            .map(|c| c.area_um2)
            .sum();
        sram / self.total_um2()
    }
}

/// Spatial-array area for a configuration: PE logic plus the pipeline
/// registers implied by the tile hierarchy (one register bank per tile
/// column at each tile boundary).
pub fn spatial_array_area_um2(config: &GemminiConfig) -> f64 {
    let dtype_factor = match config.dtype {
        DataType::Int8 => 1.0,
        DataType::Fp32 => FP32_PE_AREA_FACTOR,
    };
    let pes = config.pe_count() as f64;
    // Registers close each tile's output columns: mesh_rows*mesh_cols tiles
    // × tile_cols register banks each. Fully pipelined ⇒ one per PE.
    let reg_units = (config.mesh_rows * config.mesh_cols * config.tile_cols) as f64;
    pes * AREA_PE_INT8_UM2 * dtype_factor + reg_units * AREA_PIPE_REG_UM2 * dtype_factor
}

/// Full accelerator breakdown (array + local SRAMs + controller), without
/// a host CPU.
pub fn accelerator_area(config: &GemminiConfig) -> AreaReport {
    let dim = config.dim();
    AreaReport {
        components: vec![
            AreaComponent {
                name: format!("Spatial Array ({dim}x{dim})"),
                area_um2: spatial_array_area_um2(config),
            },
            AreaComponent {
                name: format!("Scratchpad ({} KB)", config.sp_capacity_kb),
                area_um2: config.sp_capacity_kb as f64 * AREA_SRAM_SP_UM2_PER_KB,
            },
            AreaComponent {
                name: format!("Accumulator ({} KB)", config.acc_capacity_kb),
                area_um2: config.acc_capacity_kb as f64 * AREA_SRAM_ACC_UM2_PER_KB,
            },
            AreaComponent {
                name: "Controller (DMA, TLB, ROB)".to_string(),
                area_um2: AREA_CTRL_UM2,
            },
        ],
    }
}

/// Accelerator plus host CPU — the system breakdown of Fig. 6a.
pub fn soc_area(config: &GemminiConfig, cpu: CpuKind) -> AreaReport {
    let mut report = accelerator_area(config);
    report.components.push(AreaComponent {
        name: format!(
            "CPU ({}, 1 core)",
            match cpu {
                CpuKind::Rocket => "Rocket",
                CpuKind::Boom => "BOOM",
            }
        ),
        area_um2: cpu.area_um2(),
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_breakdown_reproduces() {
        let report = soc_area(&GemminiConfig::edge(), CpuKind::Rocket);
        let total = report.total_um2();
        // Paper total: 1,029 kµm².
        assert!(
            (total - 1_029_000.0).abs() / 1_029_000.0 < 0.01,
            "total={total}"
        );
        // Spatial array ≈ 11.3% of system area.
        assert!((report.fraction("Spatial Array") - 0.113).abs() < 0.01);
        // Scratchpad ≈ 52.9%.
        assert!((report.fraction("Scratchpad") - 0.529).abs() < 0.01);
        // Accumulator ≈ 14.2%.
        assert!((report.fraction("Accumulator") - 0.142).abs() < 0.01);
        // CPU ≈ 16.6%.
        assert!((report.fraction("CPU") - 0.166).abs() < 0.01);
    }

    #[test]
    fn srams_dominate_accelerator_area() {
        let report = soc_area(&GemminiConfig::edge(), CpuKind::Rocket);
        // Paper: 67.1% of the accelerator (excluding CPU).
        assert!((report.sram_fraction() - 0.671).abs() < 0.05);
    }

    #[test]
    fn fig3_area_ratio_reproduces() {
        let pipe = spatial_array_area_um2(&GemminiConfig::tpu_like_256());
        let comb = spatial_array_area_um2(&GemminiConfig::nvdla_like_256());
        let ratio = pipe / comb;
        assert!((ratio - 1.8).abs() < 0.1, "area ratio = {ratio}");
    }

    #[test]
    fn fp32_arrays_are_bigger() {
        let int8 = spatial_array_area_um2(&GemminiConfig::edge());
        let fp32 = spatial_array_area_um2(&GemminiConfig {
            dtype: DataType::Fp32,
            ..GemminiConfig::edge()
        });
        assert!((fp32 / int8 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn boom_is_larger_than_rocket() {
        assert!(CpuKind::Boom.area_um2() > 3.0 * CpuKind::Rocket.area_um2());
    }

    #[test]
    fn bigger_scratchpad_bigger_area() {
        let base = accelerator_area(&GemminiConfig::edge()).total_um2();
        let big = accelerator_area(&GemminiConfig {
            sp_capacity_kb: 512,
            ..GemminiConfig::edge()
        })
        .total_um2();
        assert!(big > base);
        // Doubling the scratchpad adds exactly 256 KiB of SRAM area.
        assert!((big - base - 256.0 * AREA_SRAM_SP_UM2_PER_KB).abs() < 1.0);
    }

    use crate::tech::AREA_SRAM_SP_UM2_PER_KB;
}
