//! Table formatting for synthesis reports (the Fig. 6a presentation).

use crate::area::AreaReport;

/// Formats an area report as the Fig. 6a table: component, µm², and % of
/// system area.
///
/// # Example
///
/// ```
/// use gemmini_synth::area::{soc_area, CpuKind};
/// use gemmini_synth::report::area_table;
/// use gemmini_core::config::GemminiConfig;
/// let t = area_table(&soc_area(&GemminiConfig::edge(), CpuKind::Rocket));
/// assert!(t.contains("Total"));
/// ```
pub fn area_table(report: &AreaReport) -> String {
    let total = report.total_um2();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<30} {:>12} {:>10}\n",
        "Component", "Area (um^2)", "% of area"
    ));
    out.push_str(&"-".repeat(54));
    out.push('\n');
    for c in &report.components {
        out.push_str(&format!(
            "{:<30} {:>12.0} {:>9.1}%\n",
            c.name,
            c.area_um2,
            100.0 * c.area_um2 / total
        ));
    }
    out.push_str(&"-".repeat(54));
    out.push('\n');
    out.push_str(&format!(
        "{:<30} {:>12.0} {:>9.1}%\n",
        "Total", total, 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::area::{soc_area, CpuKind};
    use gemmini_core::config::GemminiConfig;

    #[test]
    fn table_lists_every_component_and_total() {
        let report = soc_area(&GemminiConfig::edge(), CpuKind::Rocket);
        let t = area_table(&report);
        for c in &report.components {
            assert!(t.contains(c.name.as_str()), "missing {}", c.name);
        }
        assert!(t.contains("Total"));
        assert!(t.contains("100.0%"));
    }

    #[test]
    fn percentages_match_fig6a() {
        let t = area_table(&soc_area(&GemminiConfig::edge(), CpuKind::Rocket));
        assert!(
            t.contains("52.9%") || t.contains("52.8%") || t.contains("53.0%"),
            "{t}"
        );
    }
}
