#![warn(missing_docs)]

//! The Gemmini accelerator generator, reproduced as a cycle-approximate,
//! functionally-exact simulator.
//!
//! The crate mirrors the paper's Section III architectural template
//! (Fig. 1/Fig. 2):
//!
//! * [`config`] — the generator's parameter space: two-level spatial array
//!   geometry (mesh of tiles of PEs), dataflows, datatypes, local memory
//!   sizes, and the optional peripheral blocks (im2col, pooling,
//!   activations, transposer). Includes the paper's evaluated presets and a
//!   generated C header, mirroring the software stack's
//!   `gemmini_params.h`.
//! * [`isa`] — the RoCC-style custom instruction set (CONFIG / MVIN /
//!   MVOUT / PRELOAD / COMPUTE / FLUSH) with a packed binary encoding.
//! * [`mesh`] — the spatial array: functional weight-stationary and
//!   output-stationary matrix units plus the pipeline timing model derived
//!   from the tile/PE hierarchy.
//! * [`scratchpad`] — the banked int8 scratchpad and the wide int32
//!   accumulator, both functional byte stores with row-granularity.
//! * [`dma`] — the stream DMA engine: every transfer translates through the
//!   accelerator's TLB hierarchy (`gemmini-vm`) and pays for real traffic
//!   through the shared memory system (`gemmini-mem`).
//! * [`peripherals`] — cost + functional models for the optional blocks.
//! * [`engine`] — [`engine::Accelerator`]: the decoupled
//!   load / execute / store scoreboard (Gemmini's ROB) that overlaps DMA
//!   with compute, executes instructions functionally, and accounts cycles.
//! * [`trace`] — the profiler every timed operation reports into: the
//!   always-on cycle-attribution log plus the optional Chrome-trace event
//!   sink (re-exported from `gemmini_mem::trace`).
//! * [`metrics`] — the live-telemetry registry handle threaded through the
//!   same components (re-exported from `gemmini_mem::metrics`).
//!
//! # Example
//!
//! ```
//! use gemmini_core::config::GemminiConfig;
//!
//! let cfg = GemminiConfig::edge(); // the paper's 16x16 edge configuration
//! assert_eq!(cfg.dim(), 16);
//! assert_eq!(cfg.pe_count(), 256);
//! assert!(cfg.validate().is_ok());
//! ```

pub mod config;
pub mod dma;
pub mod engine;
pub mod isa;
pub mod mesh;
pub mod metrics;
pub mod peripherals;
pub mod scratchpad;
pub mod trace;

pub use config::{DataType, Dataflow, GemminiConfig};
pub use engine::{AccelError, Accelerator, ExecStats, MemCtx};
pub use isa::Instruction;
