//! The generator's parameter space.
//!
//! A [`GemminiConfig`] describes one accelerator instance the generator can
//! elaborate: the two-level spatial array (a `mesh_rows × mesh_cols` grid of
//! tiles, each a combinational `tile_rows × tile_cols` grid of PEs —
//! Fig. 2), supported dataflows and datatypes, local memory capacities, and
//! which optional peripheral blocks exist. [`GemminiConfig::header`]
//! renders the same information as a C header, mirroring the
//! `gemmini_params.h` the real generator emits for its software stack.

use std::fmt;

/// Which PE dataflow(s) the elaborated array supports. Gemmini lets this be
/// fixed at design time or selectable at runtime (`Both`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Dataflow {
    /// Weights resident in the PEs; activations stream through.
    #[default]
    WeightStationary,
    /// Outputs resident in the PEs; weights and activations stream through.
    OutputStationary,
    /// Runtime-selectable between the two.
    Both,
}

impl fmt::Display for Dataflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::WeightStationary => write!(f, "WS"),
            Self::OutputStationary => write!(f, "OS"),
            Self::Both => write!(f, "WS+OS"),
        }
    }
}

/// Element datatype of the spatial array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataType {
    /// int8 inputs, int32 accumulation (the paper's evaluated configs).
    #[default]
    Int8,
    /// fp32 inputs and accumulation (supported by the generator for
    /// training; modeled for timing/area only in this reproduction).
    Fp32,
}

impl DataType {
    /// Bytes per input element.
    pub fn input_bytes(self) -> usize {
        match self {
            Self::Int8 => 1,
            Self::Fp32 => 4,
        }
    }

    /// Bytes per accumulator element.
    pub fn acc_bytes(self) -> usize {
        4
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Int8 => write!(f, "int8"),
            Self::Fp32 => write!(f, "fp32"),
        }
    }
}

/// One point in the generator's design space.
#[derive(Debug, Clone, PartialEq)]
pub struct GemminiConfig {
    /// Tile grid height (tiles are pipeline-registered against each other).
    pub mesh_rows: usize,
    /// Tile grid width.
    pub mesh_cols: usize,
    /// PE grid height within a tile (PEs are combinationally chained).
    pub tile_rows: usize,
    /// PE grid width within a tile.
    pub tile_cols: usize,
    /// Supported dataflow(s).
    pub dataflow: Dataflow,
    /// Element datatype.
    pub dtype: DataType,
    /// Scratchpad capacity in KiB.
    pub sp_capacity_kb: usize,
    /// Scratchpad banks.
    pub sp_banks: usize,
    /// Accumulator capacity in KiB.
    pub acc_capacity_kb: usize,
    /// DMA/system-bus width in bytes per cycle.
    pub dma_bus_bytes: u64,
    /// Whether the on-the-fly im2col block is elaborated.
    pub has_im2col: bool,
    /// Whether the pooling block is elaborated.
    pub has_pooling: bool,
    /// Whether the ReLU/ReLU6 activation block is elaborated.
    pub has_activations: bool,
    /// Whether the transposer block is elaborated.
    pub has_transposer: bool,
    /// Nominal clock in GHz (1.0 in the paper's FPS numbers).
    pub clock_ghz: f64,
}

impl GemminiConfig {
    /// The paper's low-power edge configuration (Sections IV–V): a 16×16
    /// fully-pipelined systolic mesh (16×16 tiles of 1×1 PEs), 256 KiB
    /// scratchpad in 4 banks, 64 KiB accumulator, all peripheral blocks,
    /// 1 GHz.
    pub fn edge() -> Self {
        Self {
            mesh_rows: 16,
            mesh_cols: 16,
            tile_rows: 1,
            tile_cols: 1,
            dataflow: Dataflow::Both,
            dtype: DataType::Int8,
            sp_capacity_kb: 256,
            sp_banks: 4,
            acc_capacity_kb: 64,
            dma_bus_bytes: 16,
            has_im2col: true,
            has_pooling: true,
            has_activations: true,
            has_transposer: true,
            clock_ghz: 1.0,
        }
    }

    /// The edge configuration *without* the optional im2col block — the
    /// Fig. 7 variant that shifts im2col onto the host CPU.
    pub fn edge_without_im2col() -> Self {
        Self {
            has_im2col: false,
            ..Self::edge()
        }
    }

    /// Fig. 3's TPU-like point: 256 PEs, fully pipelined (every tile is a
    /// single PE).
    pub fn tpu_like_256() -> Self {
        Self::edge()
    }

    /// Fig. 3's NVDLA-like point: 256 PEs combinationally joined into MAC
    /// chains (one tile of 16×16 PEs), i.e. a parallel vector engine.
    pub fn nvdla_like_256() -> Self {
        Self {
            mesh_rows: 1,
            mesh_cols: 1,
            tile_rows: 16,
            tile_cols: 16,
            ..Self::edge()
        }
    }

    /// Total PE rows (`mesh_rows * tile_rows`); the array multiplies
    /// `dim × dim` operand blocks.
    pub fn dim(&self) -> usize {
        self.mesh_rows * self.tile_rows
    }

    /// Total number of PEs.
    pub fn pe_count(&self) -> usize {
        self.mesh_rows * self.mesh_cols * self.tile_rows * self.tile_cols
    }

    /// Bytes per scratchpad row (one `dim`-wide input vector).
    pub fn sp_row_bytes(&self) -> usize {
        self.dim() * self.dtype.input_bytes()
    }

    /// Number of scratchpad rows.
    pub fn sp_rows(&self) -> usize {
        self.sp_capacity_kb * 1024 / self.sp_row_bytes()
    }

    /// Bytes per accumulator row (one `dim`-wide int32 vector).
    pub fn acc_row_bytes(&self) -> usize {
        self.dim() * self.dtype.acc_bytes()
    }

    /// Number of accumulator rows.
    pub fn acc_rows(&self) -> usize {
        self.acc_capacity_kb * 1024 / self.acc_row_bytes()
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.mesh_rows == 0 || self.mesh_cols == 0 || self.tile_rows == 0 || self.tile_cols == 0
        {
            return Err("spatial array dimensions must be non-zero".to_string());
        }
        if self.mesh_rows * self.tile_rows != self.mesh_cols * self.tile_cols {
            return Err(format!(
                "spatial array must be square: {}x{}",
                self.mesh_rows * self.tile_rows,
                self.mesh_cols * self.tile_cols
            ));
        }
        if self.sp_capacity_kb == 0 || self.acc_capacity_kb == 0 {
            return Err("local memories must be non-zero".to_string());
        }
        if self.sp_banks == 0 {
            return Err("scratchpad must have at least one bank".to_string());
        }
        if !(self.sp_capacity_kb * 1024).is_multiple_of(self.sp_row_bytes() * self.sp_banks) {
            return Err(format!(
                "scratchpad capacity {} KiB does not divide into {} banks of {}-byte rows",
                self.sp_capacity_kb,
                self.sp_banks,
                self.sp_row_bytes()
            ));
        }
        if self.dma_bus_bytes == 0 {
            return Err("DMA bus width must be non-zero".to_string());
        }
        if self.clock_ghz.is_nan() || self.clock_ghz <= 0.0 {
            return Err("clock must be positive".to_string());
        }
        Ok(())
    }

    /// Renders the configuration as a C header — the analogue of the
    /// `gemmini_params.h` the real generator emits so that the tuned
    /// software stack can adapt to each hardware instantiation.
    ///
    /// # Example
    ///
    /// ```
    /// use gemmini_core::config::GemminiConfig;
    /// let h = GemminiConfig::edge().header();
    /// assert!(h.contains("#define DIM 16"));
    /// ```
    pub fn header(&self) -> String {
        let mut s = String::new();
        s.push_str("// Generated by the Gemmini generator (Rust reproduction).\n");
        s.push_str("#ifndef GEMMINI_PARAMS_H\n#define GEMMINI_PARAMS_H\n\n");
        s.push_str(&format!("#define DIM {}\n", self.dim()));
        s.push_str(&format!("#define MESH_ROWS {}\n", self.mesh_rows));
        s.push_str(&format!("#define MESH_COLS {}\n", self.mesh_cols));
        s.push_str(&format!("#define TILE_ROWS {}\n", self.tile_rows));
        s.push_str(&format!("#define TILE_COLS {}\n", self.tile_cols));
        s.push_str(&format!(
            "#define SP_CAPACITY_KB {}\n#define SP_BANKS {}\n#define SP_ROWS {}\n",
            self.sp_capacity_kb,
            self.sp_banks,
            self.sp_rows()
        ));
        s.push_str(&format!(
            "#define ACC_CAPACITY_KB {}\n#define ACC_ROWS {}\n",
            self.acc_capacity_kb,
            self.acc_rows()
        ));
        s.push_str(&format!("#define DATAFLOW \"{}\"\n", self.dataflow));
        s.push_str(&format!(
            "#define ELEM_T_IS_FLOAT {}\n",
            matches!(self.dtype, DataType::Fp32) as u8
        ));
        s.push_str(&format!("#define HAS_IM2COL {}\n", self.has_im2col as u8));
        s.push_str(&format!("#define HAS_POOLING {}\n", self.has_pooling as u8));
        s.push_str(&format!(
            "#define HAS_ACTIVATIONS {}\n",
            self.has_activations as u8
        ));
        s.push_str(&format!(
            "#define HAS_TRANSPOSER {}\n",
            self.has_transposer as u8
        ));
        s.push_str("\n#endif // GEMMINI_PARAMS_H\n");
        s
    }
}

impl Default for GemminiConfig {
    fn default() -> Self {
        Self::edge()
    }
}

impl fmt::Display for GemminiConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}x{} mesh of {}x{} tiles ({} {} PEs), {} KiB sp / {} KiB acc, {}",
            self.mesh_rows,
            self.mesh_cols,
            self.tile_rows,
            self.tile_cols,
            self.pe_count(),
            self.dtype,
            self.sp_capacity_kb,
            self.acc_capacity_kb,
            self.dataflow
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_preset_matches_paper() {
        let c = GemminiConfig::edge();
        assert_eq!(c.dim(), 16);
        assert_eq!(c.pe_count(), 256);
        assert_eq!(c.sp_capacity_kb, 256);
        assert_eq!(c.acc_capacity_kb, 64);
        assert!(c.has_im2col);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fig3_presets_have_equal_pes_but_different_hierarchy() {
        let tpu = GemminiConfig::tpu_like_256();
        let nvdla = GemminiConfig::nvdla_like_256();
        assert_eq!(tpu.pe_count(), nvdla.pe_count());
        assert_eq!(tpu.dim(), nvdla.dim());
        assert_eq!(tpu.tile_rows, 1);
        assert_eq!(nvdla.mesh_rows, 1);
        assert!(nvdla.validate().is_ok());
    }

    #[test]
    fn row_math() {
        let c = GemminiConfig::edge();
        assert_eq!(c.sp_row_bytes(), 16);
        assert_eq!(c.sp_rows(), 256 * 1024 / 16);
        assert_eq!(c.acc_row_bytes(), 64);
        assert_eq!(c.acc_rows(), 64 * 1024 / 64);
    }

    #[test]
    fn fp32_changes_row_widths() {
        let c = GemminiConfig {
            dtype: DataType::Fp32,
            ..GemminiConfig::edge()
        };
        assert_eq!(c.sp_row_bytes(), 64);
        assert_eq!(c.acc_row_bytes(), 64);
    }

    #[test]
    fn validation_rejects_non_square_arrays() {
        let c = GemminiConfig {
            mesh_cols: 8,
            ..GemminiConfig::edge()
        };
        assert!(c.validate().unwrap_err().contains("square"));
    }

    #[test]
    fn validation_rejects_zero_fields() {
        for f in [
            |c: &mut GemminiConfig| c.mesh_rows = 0,
            |c: &mut GemminiConfig| c.sp_capacity_kb = 0,
            |c: &mut GemminiConfig| c.sp_banks = 0,
            |c: &mut GemminiConfig| c.dma_bus_bytes = 0,
            |c: &mut GemminiConfig| c.clock_ghz = 0.0,
        ] {
            let mut c = GemminiConfig::edge();
            f(&mut c);
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn header_contains_key_parameters() {
        let h = GemminiConfig::edge().header();
        assert!(h.contains("#define DIM 16"));
        assert!(h.contains("#define SP_ROWS 16384"));
        assert!(h.contains("#define HAS_IM2COL 1"));
        assert!(h.contains("ELEM_T_IS_FLOAT 0"));
        let h2 = GemminiConfig::edge_without_im2col().header();
        assert!(h2.contains("#define HAS_IM2COL 0"));
    }

    #[test]
    fn display_is_informative() {
        let s = GemminiConfig::nvdla_like_256().to_string();
        assert!(s.contains("1x1 mesh of 16x16 tiles"));
        assert!(s.contains("256"));
    }
}
