//! Live metrics, re-exported from [`gemmini_mem::metrics`].
//!
//! The substrate lives in `gemmini-mem` (the bottom of the crate stack)
//! so the memory hierarchy, the TLB/PTW layer and the engine can all
//! record into one shared registry; this alias gives the rest of the
//! stack the `gemmini_core::metrics` path, mirroring [`crate::trace`].

pub use gemmini_mem::metrics::{
    bucket_index, bucket_upper_bound, prometheus_text, AtomicHistogram, Counter, Gauge, HistKind,
    Log2Histogram, Metrics, MetricsRegistry, MetricsSnapshot, HIST_BUCKETS,
};
