//! The accelerator's RoCC-style custom instruction set.
//!
//! Gemmini is programmed through RISC-V custom instructions carrying two
//! 64-bit operand registers plus a 7-bit funct field. This module defines
//! the instruction forms the execution engine implements — the same core
//! set as the real generator: `CONFIG` (EX/LD/ST), `MVIN`, `MVOUT`,
//! `PRELOAD`, `COMPUTE_PRELOADED`, `COMPUTE_ACCUMULATED`, `FLUSH` — along
//! with a packed binary encoding ([`Instruction::encode`] /
//! [`Instruction::decode`]) that round-trips exactly.

use crate::config::Dataflow;
use gemmini_dnn::graph::Activation;
use gemmini_mem::addr::VirtAddr;
use std::error::Error;
use std::fmt;

/// An address in the accelerator's private memories.
///
/// Mirrors Gemmini's 32-bit local-address encoding: bit 31 selects the
/// accumulator, bit 30 requests accumulation (add into the row rather than
/// overwrite), and the all-ones pattern means "garbage" (no operand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LocalAddr {
    /// A scratchpad row.
    Sp {
        /// Row index.
        row: u32,
    },
    /// An accumulator row.
    Acc {
        /// Row index.
        row: u32,
        /// Whether to accumulate into the row instead of overwriting it.
        accumulate: bool,
    },
    /// No operand (Gemmini's "garbage" address).
    None,
}

const ACC_BIT: u32 = 1 << 31;
const ACCUMULATE_BIT: u32 = 1 << 30;
const GARBAGE: u32 = u32::MAX;
const ROW_MASK: u32 = (1 << 29) - 1;

impl LocalAddr {
    /// Packs into Gemmini's 32-bit local-address format.
    pub fn encode(self) -> u32 {
        match self {
            Self::Sp { row } => {
                debug_assert_eq!(row & !ROW_MASK, 0);
                row
            }
            Self::Acc { row, accumulate } => {
                debug_assert_eq!(row & !ROW_MASK, 0);
                ACC_BIT | if accumulate { ACCUMULATE_BIT } else { 0 } | row
            }
            Self::None => GARBAGE,
        }
    }

    /// Unpacks from the 32-bit format.
    pub fn decode(raw: u32) -> Self {
        if raw == GARBAGE {
            Self::None
        } else if raw & ACC_BIT != 0 {
            Self::Acc {
                row: raw & ROW_MASK,
                accumulate: raw & ACCUMULATE_BIT != 0,
            }
        } else {
            Self::Sp {
                row: raw & ROW_MASK,
            }
        }
    }
}

impl fmt::Display for LocalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Sp { row } => write!(f, "sp[{row}]"),
            Self::Acc { row, accumulate } => {
                write!(f, "acc[{row}]{}", if *accumulate { "+" } else { "" })
            }
            Self::None => write!(f, "garbage"),
        }
    }
}

/// One decoded accelerator instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instruction {
    /// Configures the execute pipeline: dataflow, fused activation, and the
    /// accumulator's output scale.
    ConfigEx {
        /// Dataflow to use for subsequent computes.
        dataflow: Dataflow,
        /// Activation applied on accumulator read-out.
        activation: Activation,
        /// Scale applied when narrowing int32 accumulators to int8.
        acc_scale: f32,
    },
    /// Configures the load (mvin) stream: main-memory stride between rows
    /// and whether accumulator mvins carry 8-bit data to be widened to
    /// int32 on the way in (Gemmini's "shrunk" mvin, used by residual
    /// additions).
    ConfigLd {
        /// Bytes between consecutive rows in main memory.
        stride: u64,
        /// Accumulator mvins read int8 elements and widen them.
        shrink: bool,
    },
    /// Configures the store (mvout) stream: main-memory stride between rows.
    ConfigSt {
        /// Bytes between consecutive rows in main memory.
        stride: u64,
    },
    /// Moves `rows`×`cols` elements from main memory into a local memory.
    Mvin {
        /// Source virtual address.
        dram_addr: VirtAddr,
        /// Destination local address (scratchpad or accumulator).
        local: LocalAddr,
        /// Rows to move.
        rows: u16,
        /// Elements per row.
        cols: u16,
    },
    /// Moves `rows`×`cols` elements from a local memory to main memory,
    /// applying the configured scale and activation when reading the
    /// accumulator.
    Mvout {
        /// Destination virtual address.
        dram_addr: VirtAddr,
        /// Source local address.
        local: LocalAddr,
        /// Rows to move.
        rows: u16,
        /// Elements per row.
        cols: u16,
    },
    /// Loads the stationary operand (B for weight-stationary) into the
    /// array and names the accumulator destination for subsequent computes.
    Preload {
        /// Stationary operand location (or `None` to keep the current one).
        b: LocalAddr,
        /// Result destination.
        c: LocalAddr,
        /// Valid rows of B.
        b_rows: u16,
        /// Valid cols of B.
        b_cols: u16,
    },
    /// Streams A (and bias D) through the array using the operand loaded by
    /// the last `Preload`.
    ComputePreloaded {
        /// Moving operand location.
        a: LocalAddr,
        /// Bias operand location (or `None`).
        d: LocalAddr,
        /// Valid rows of A.
        a_rows: u16,
        /// Valid cols of A.
        a_cols: u16,
    },
    /// Streams A through the array, reusing the stationary operand from an
    /// earlier preload (Gemmini's `COMPUTE_ACCUMULATED`).
    ComputeAccumulated {
        /// Moving operand location.
        a: LocalAddr,
        /// Bias operand location (or `None`).
        d: LocalAddr,
        /// Valid rows of A.
        a_rows: u16,
        /// Valid cols of A.
        a_cols: u16,
    },
    /// Fence: waits for all in-flight work to drain.
    Flush,
}

/// Funct values, matching the real generator's `gemmini.h`.
mod funct {
    pub const CONFIG: u8 = 0;
    pub const MVIN: u8 = 2;
    pub const MVOUT: u8 = 3;
    pub const COMPUTE_PRELOADED: u8 = 4;
    pub const COMPUTE_ACCUMULATED: u8 = 5;
    pub const PRELOAD: u8 = 6;
    pub const FLUSH: u8 = 7;
}

/// An error produced when decoding a malformed instruction word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending funct value or subfield description.
    pub message: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "instruction decode error: {}", self.message)
    }
}

impl Error for DecodeError {}

fn pack_dims(local: u32, rows: u16, cols: u16) -> u64 {
    (cols as u64) << 48 | (rows as u64) << 32 | local as u64
}

fn unpack_dims(raw: u64) -> (u32, u16, u16) {
    (raw as u32, (raw >> 32) as u16, (raw >> 48) as u16)
}

impl Instruction {
    /// Packs into the RoCC triple `(funct, rs1, rs2)`.
    pub fn encode(self) -> (u8, u64, u64) {
        match self {
            Self::ConfigEx {
                dataflow,
                activation,
                acc_scale,
            } => {
                let df = match dataflow {
                    Dataflow::OutputStationary => 0u64,
                    Dataflow::WeightStationary => 1,
                    Dataflow::Both => 2,
                };
                let act = match activation {
                    Activation::None => 0u64,
                    Activation::Relu => 1,
                    Activation::Relu6 => 2,
                };
                // rs1: [act:2][df:2][subcmd:2 = 0 (EX)]
                let rs1 = act << 4 | df << 2;
                let rs2 = acc_scale.to_bits() as u64;
                (funct::CONFIG, rs1, rs2)
            }
            Self::ConfigLd { stride, shrink } => (funct::CONFIG, 1 | (shrink as u64) << 2, stride),
            Self::ConfigSt { stride } => (funct::CONFIG, 2, stride),
            Self::Mvin {
                dram_addr,
                local,
                rows,
                cols,
            } => (
                funct::MVIN,
                dram_addr.raw(),
                pack_dims(local.encode(), rows, cols),
            ),
            Self::Mvout {
                dram_addr,
                local,
                rows,
                cols,
            } => (
                funct::MVOUT,
                dram_addr.raw(),
                pack_dims(local.encode(), rows, cols),
            ),
            Self::Preload {
                b,
                c,
                b_rows,
                b_cols,
            } => (
                funct::PRELOAD,
                pack_dims(b.encode(), b_rows, b_cols),
                pack_dims(c.encode(), 0, 0),
            ),
            Self::ComputePreloaded {
                a,
                d,
                a_rows,
                a_cols,
            } => (
                funct::COMPUTE_PRELOADED,
                pack_dims(a.encode(), a_rows, a_cols),
                pack_dims(d.encode(), 0, 0),
            ),
            Self::ComputeAccumulated {
                a,
                d,
                a_rows,
                a_cols,
            } => (
                funct::COMPUTE_ACCUMULATED,
                pack_dims(a.encode(), a_rows, a_cols),
                pack_dims(d.encode(), 0, 0),
            ),
            Self::Flush => (funct::FLUSH, 0, 0),
        }
    }

    /// Unpacks from the RoCC triple.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] for unknown funct values or config
    /// subcommands.
    pub fn decode(f: u8, rs1: u64, rs2: u64) -> Result<Self, DecodeError> {
        match f {
            funct::CONFIG => match rs1 & 0b11 {
                0 => {
                    let df = match (rs1 >> 2) & 0b11 {
                        0 => Dataflow::OutputStationary,
                        1 => Dataflow::WeightStationary,
                        2 => Dataflow::Both,
                        x => {
                            return Err(DecodeError {
                                message: format!("bad dataflow field {x}"),
                            })
                        }
                    };
                    let act = match (rs1 >> 4) & 0b11 {
                        0 => Activation::None,
                        1 => Activation::Relu,
                        2 => Activation::Relu6,
                        x => {
                            return Err(DecodeError {
                                message: format!("bad activation field {x}"),
                            })
                        }
                    };
                    Ok(Self::ConfigEx {
                        dataflow: df,
                        activation: act,
                        acc_scale: f32::from_bits(rs2 as u32),
                    })
                }
                1 => Ok(Self::ConfigLd {
                    stride: rs2,
                    shrink: rs1 & 0b100 != 0,
                }),
                2 => Ok(Self::ConfigSt { stride: rs2 }),
                x => Err(DecodeError {
                    message: format!("bad config subcommand {x}"),
                }),
            },
            funct::MVIN | funct::MVOUT => {
                let (local, rows, cols) = unpack_dims(rs2);
                let local = LocalAddr::decode(local);
                let dram_addr = VirtAddr::new(rs1);
                Ok(if f == funct::MVIN {
                    Self::Mvin {
                        dram_addr,
                        local,
                        rows,
                        cols,
                    }
                } else {
                    Self::Mvout {
                        dram_addr,
                        local,
                        rows,
                        cols,
                    }
                })
            }
            funct::PRELOAD => {
                let (b, b_rows, b_cols) = unpack_dims(rs1);
                let (c, _, _) = unpack_dims(rs2);
                Ok(Self::Preload {
                    b: LocalAddr::decode(b),
                    c: LocalAddr::decode(c),
                    b_rows,
                    b_cols,
                })
            }
            funct::COMPUTE_PRELOADED | funct::COMPUTE_ACCUMULATED => {
                let (a, a_rows, a_cols) = unpack_dims(rs1);
                let (d, _, _) = unpack_dims(rs2);
                let a = LocalAddr::decode(a);
                let d = LocalAddr::decode(d);
                Ok(if f == funct::COMPUTE_PRELOADED {
                    Self::ComputePreloaded {
                        a,
                        d,
                        a_rows,
                        a_cols,
                    }
                } else {
                    Self::ComputeAccumulated {
                        a,
                        d,
                        a_rows,
                        a_cols,
                    }
                })
            }
            funct::FLUSH => Ok(Self::Flush),
            x => Err(DecodeError {
                message: format!("unknown funct {x}"),
            }),
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ConfigEx {
                dataflow,
                activation,
                acc_scale,
            } => write!(
                f,
                "config_ex df={dataflow} act={activation} scale={acc_scale}"
            ),
            Self::ConfigLd { stride, shrink } => {
                write!(f, "config_ld stride={stride} shrink={shrink}")
            }
            Self::ConfigSt { stride } => write!(f, "config_st stride={stride}"),
            Self::Mvin {
                dram_addr,
                local,
                rows,
                cols,
            } => write!(f, "mvin {dram_addr} -> {local} ({rows}x{cols})"),
            Self::Mvout {
                dram_addr,
                local,
                rows,
                cols,
            } => write!(f, "mvout {local} -> {dram_addr} ({rows}x{cols})"),
            Self::Preload {
                b,
                c,
                b_rows,
                b_cols,
            } => {
                write!(f, "preload B={b} C={c} ({b_rows}x{b_cols})")
            }
            Self::ComputePreloaded {
                a,
                d,
                a_rows,
                a_cols,
            } => {
                write!(f, "compute.preloaded A={a} D={d} ({a_rows}x{a_cols})")
            }
            Self::ComputeAccumulated {
                a,
                d,
                a_rows,
                a_cols,
            } => {
                write!(f, "compute.accumulated A={a} D={d} ({a_rows}x{a_cols})")
            }
            Self::Flush => write!(f, "flush"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_addr_roundtrip() {
        for addr in [
            LocalAddr::Sp { row: 0 },
            LocalAddr::Sp { row: 16383 },
            LocalAddr::Acc {
                row: 42,
                accumulate: false,
            },
            LocalAddr::Acc {
                row: 7,
                accumulate: true,
            },
            LocalAddr::None,
        ] {
            assert_eq!(LocalAddr::decode(addr.encode()), addr, "{addr}");
        }
    }

    #[test]
    fn accumulate_bit_is_bit_30() {
        let raw = LocalAddr::Acc {
            row: 5,
            accumulate: true,
        }
        .encode();
        assert_eq!(raw & (1 << 31), 1 << 31);
        assert_eq!(raw & (1 << 30), 1 << 30);
        assert_eq!(raw & 0x1fff_ffff, 5);
    }

    fn roundtrip(i: Instruction) {
        let (f, rs1, rs2) = i.encode();
        assert_eq!(Instruction::decode(f, rs1, rs2).unwrap(), i, "{i}");
    }

    #[test]
    fn every_instruction_roundtrips() {
        roundtrip(Instruction::ConfigEx {
            dataflow: Dataflow::WeightStationary,
            activation: Activation::Relu,
            acc_scale: 0.125,
        });
        roundtrip(Instruction::ConfigEx {
            dataflow: Dataflow::OutputStationary,
            activation: Activation::Relu6,
            acc_scale: 1.0,
        });
        roundtrip(Instruction::ConfigLd {
            stride: 224,
            shrink: false,
        });
        roundtrip(Instruction::ConfigLd {
            stride: 0,
            shrink: true,
        });
        roundtrip(Instruction::ConfigSt { stride: 4096 });
        roundtrip(Instruction::Mvin {
            dram_addr: VirtAddr::new(0x10_0000),
            local: LocalAddr::Sp { row: 128 },
            rows: 16,
            cols: 16,
        });
        roundtrip(Instruction::Mvout {
            dram_addr: VirtAddr::new(0x20_0000),
            local: LocalAddr::Acc {
                row: 12,
                accumulate: false,
            },
            rows: 16,
            cols: 16,
        });
        roundtrip(Instruction::Preload {
            b: LocalAddr::Sp { row: 256 },
            c: LocalAddr::Acc {
                row: 0,
                accumulate: true,
            },
            b_rows: 16,
            b_cols: 16,
        });
        roundtrip(Instruction::ComputePreloaded {
            a: LocalAddr::Sp { row: 512 },
            d: LocalAddr::None,
            a_rows: 16,
            a_cols: 16,
        });
        roundtrip(Instruction::ComputeAccumulated {
            a: LocalAddr::Sp { row: 768 },
            d: LocalAddr::None,
            a_rows: 12,
            a_cols: 3,
        });
        roundtrip(Instruction::Flush);
    }

    #[test]
    fn funct_values_match_gemmini_h() {
        assert_eq!(Instruction::Flush.encode().0, 7);
        assert_eq!(
            Instruction::Mvin {
                dram_addr: VirtAddr::new(0),
                local: LocalAddr::Sp { row: 0 },
                rows: 1,
                cols: 1
            }
            .encode()
            .0,
            2
        );
        assert_eq!(
            Instruction::Preload {
                b: LocalAddr::None,
                c: LocalAddr::None,
                b_rows: 0,
                b_cols: 0
            }
            .encode()
            .0,
            6
        );
    }

    #[test]
    fn unknown_funct_is_an_error() {
        let e = Instruction::decode(99, 0, 0).unwrap_err();
        assert!(e.to_string().contains("unknown funct"));
    }

    #[test]
    fn bad_config_subcommand_is_an_error() {
        assert!(Instruction::decode(0, 3, 0).is_err());
    }

    #[test]
    fn display_formats() {
        let s = Instruction::Mvin {
            dram_addr: VirtAddr::new(0x1000),
            local: LocalAddr::Sp { row: 4 },
            rows: 16,
            cols: 16,
        }
        .to_string();
        assert_eq!(s, "mvin 0x1000 -> sp[4] (16x16)");
    }
}
