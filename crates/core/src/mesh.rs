//! The two-level spatial array: functional matrix unit + pipeline timing.
//!
//! Functionally, one Gemmini compute step multiplies a `rows × dim` moving
//! operand A against the `dim × dim` stationary operand B and adds an
//! optional bias D: `C = A·B + D`. Both the weight-stationary and the
//! output-stationary dataflows compute exactly this; they differ in *which*
//! operand stays resident and therefore in timing and energy, not in the
//! produced values. The simulator exploits that: [`MatrixUnit`] is one
//! functional model, and [`MeshTiming`] charges cycles according to the
//! tile/PE hierarchy (Fig. 2) — tiles are pipeline-registered, PEs within a
//! tile are combinational, so the pipeline depth seen by a wavefront is the
//! number of tile boundaries, while the *clock period* consequences of long
//! combinational chains are the synthesis model's domain (`gemmini-synth`).

use crate::config::GemminiConfig;
use gemmini_dnn::ops::MacElement;

/// Functional model of the spatial array, generic over the element type the
/// generator elaborates (`i8` with `i32` accumulation for inference, `f32`
/// for training-style instances): holds the stationary operand and performs
/// `C = A·B + D`.
///
/// [`MatrixUnit`] is the int8 instance the execution engine uses.
///
/// # Example
///
/// ```
/// use gemmini_core::mesh::MatrixUnit;
/// let mut mu = MatrixUnit::new(2);
/// mu.preload(&[&[1, 0], &[0, 1]]); // identity
/// let c = mu.compute(&[&[3, 4]], None);
/// assert_eq!(c, vec![vec![3, 4]]);
/// ```
#[derive(Debug, Clone)]
pub struct MatrixUnitOf<T: MacElement> {
    dim: usize,
    b: Vec<T>,
    macs: u64,
}

/// The int8 / int32-accumulate matrix unit (the paper's evaluated datapath).
pub type MatrixUnit = MatrixUnitOf<i8>;

/// The fp32 matrix unit (the generator's floating-point option).
pub type MatrixUnitF32 = MatrixUnitOf<f32>;

impl<T: MacElement> MatrixUnitOf<T> {
    /// Creates a unit of width `dim` with a zero stationary operand.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "matrix unit dimension must be non-zero");
        Self {
            dim,
            b: vec![T::default(); dim * dim],
            macs: 0,
        }
    }

    /// Array width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Loads the stationary operand. Rows shorter than `dim` are
    /// zero-padded; missing rows are zeroed.
    ///
    /// # Panics
    ///
    /// Panics if more than `dim` rows are supplied or any row is too long.
    pub fn preload(&mut self, b_rows: &[&[T]]) {
        assert!(b_rows.len() <= self.dim, "too many stationary rows");
        self.b.fill(T::default());
        for (r, row) in b_rows.iter().enumerate() {
            assert!(row.len() <= self.dim, "stationary row too long");
            self.b[r * self.dim..r * self.dim + row.len()].copy_from_slice(row);
        }
    }

    /// Streams `a_rows` through the array, returning `C = A·B (+ D)`.
    /// Each output row has `dim` elements.
    ///
    /// # Panics
    ///
    /// Panics if any A row is longer than `dim`, or D is present with a
    /// different number of rows than A.
    pub fn compute(&mut self, a_rows: &[&[T]], d_rows: Option<&[&[T::Acc]]>) -> Vec<Vec<T::Acc>> {
        if let Some(d) = d_rows {
            assert_eq!(d.len(), a_rows.len(), "bias row count must match A");
        }
        let mut out = Vec::with_capacity(a_rows.len());
        for (i, a) in a_rows.iter().enumerate() {
            assert!(a.len() <= self.dim, "moving row too long");
            let mut row = vec![T::Acc::default(); self.dim];
            for (j, r) in row.iter_mut().enumerate() {
                let mut acc = T::Acc::default();
                for (k, &av) in a.iter().enumerate() {
                    acc = T::mac(acc, av, self.b[k * self.dim + j]);
                }
                if let Some(d) = d_rows {
                    let drow = d[i];
                    if j < drow.len() {
                        acc = T::acc_add(acc, drow[j]);
                    }
                }
                *r = acc;
            }
            self.macs += (a.len() * self.dim) as u64;
            out.push(row);
        }
        out
    }

    /// Total MACs performed since construction.
    pub fn macs(&self) -> u64 {
        self.macs
    }
}

/// Cycle costs of the spatial array derived from the tile/PE hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshTiming {
    /// Array width (`dim × dim` PEs).
    pub dim: usize,
    /// Pipeline stages a wavefront crosses: one per tile row (tiles are
    /// registered; PEs within a tile are combinational).
    pub pipeline_depth: usize,
}

impl MeshTiming {
    /// Derives timing from a generator configuration.
    pub fn from_config(config: &GemminiConfig) -> Self {
        Self {
            dim: config.dim(),
            pipeline_depth: config.mesh_rows,
        }
    }

    /// Cycles a preload occupies the execute unit. The stationary operand
    /// streams into a *shadow* register plane while the previous compute
    /// drains, so back-to-back preload/compute pairs cost only the
    /// handshake here; the data cycles were already paid by the mvin.
    pub fn preload_cycles(&self, b_rows: usize) -> u64 {
        if b_rows == 0 {
            1 // keep-current-operand preload: address update only
        } else {
            2
        }
    }

    /// Cycles one compute step occupies the execute unit: one row enters
    /// per cycle, and the final wavefront drains through the tile pipeline
    /// before the accumulator's read-modify-write of this block completes
    /// and the next block may target the same bank. (The drain is the
    /// pipeline depth — one register stage per tile row — so deeper
    /// hierarchies pay more per block but reach a higher clock, see
    /// `gemmini-synth`.)
    pub fn compute_cycles(&self, a_rows: usize) -> u64 {
        a_rows.max(1) as u64 + self.pipeline_depth as u64
    }

    /// Cycles for the last wavefront to drain through the tile pipeline —
    /// the latency penalty a dependent reader of the final rows observes.
    pub fn drain_cycles(&self) -> u64 {
        self.pipeline_depth as u64
    }

    /// Peak MACs per cycle (every PE active).
    pub fn peak_macs_per_cycle(&self) -> u64 {
        (self.dim * self.dim) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemmini_dnn::ops::matmul;
    use gemmini_dnn::tensor::Tensor;

    #[test]
    fn identity_preload_passes_a_through() {
        let mut mu = MatrixUnit::new(4);
        let eye: Vec<Vec<i8>> = (0..4)
            .map(|i| (0..4).map(|j| (i == j) as i8).collect())
            .collect();
        mu.preload(&eye.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
        let c = mu.compute(&[&[1, 2, 3, 4], &[5, 6, 7, 8]], None);
        assert_eq!(c[0], vec![1, 2, 3, 4]);
        assert_eq!(c[1], vec![5, 6, 7, 8]);
    }

    #[test]
    fn matches_reference_matmul() {
        let dim = 8;
        let a = Tensor::<i8>::random(&[dim, dim], 1);
        let b = Tensor::<i8>::random(&[dim, dim], 2);
        let reference = matmul(&a, &b);

        let mut mu = MatrixUnit::new(dim);
        let b_rows: Vec<&[i8]> = (0..dim)
            .map(|r| &b.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        mu.preload(&b_rows);
        let a_rows: Vec<&[i8]> = (0..dim)
            .map(|r| &a.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        let c = mu.compute(&a_rows, None);
        for i in 0..dim {
            for j in 0..dim {
                assert_eq!(c[i][j], reference[(i, j)], "({i},{j})");
            }
        }
    }

    #[test]
    fn bias_is_added() {
        let mut mu = MatrixUnit::new(2);
        mu.preload(&[&[1, 0], &[0, 1]]);
        let d = [vec![10i32, 20]];
        let drefs: Vec<&[i32]> = d.iter().map(|r| r.as_slice()).collect();
        let c = mu.compute(&[&[1, 2]], Some(&drefs));
        assert_eq!(c[0], vec![11, 22]);
    }

    #[test]
    fn short_rows_are_zero_padded() {
        let mut mu = MatrixUnit::new(4);
        mu.preload(&[&[1, 1, 1, 1]]); // only first B row set; rest zero
        let c = mu.compute(&[&[2]], None); // A = [2, 0, 0, 0]
        assert_eq!(c[0], vec![2, 2, 2, 2]);
    }

    #[test]
    fn preload_replaces_previous_operand() {
        let mut mu = MatrixUnit::new(2);
        mu.preload(&[&[1, 1], &[1, 1]]);
        mu.preload(&[&[2, 0], &[0, 2]]);
        let c = mu.compute(&[&[1, 1]], None);
        assert_eq!(c[0], vec![2, 2]);
    }

    #[test]
    fn mac_counter_accumulates() {
        let mut mu = MatrixUnit::new(4);
        mu.preload(&[&[1, 0, 0, 0]]);
        mu.compute(&[&[1, 2, 3, 4]], None);
        assert_eq!(mu.macs(), 16);
    }

    #[test]
    fn timing_reflects_hierarchy() {
        let pipelined = MeshTiming::from_config(&GemminiConfig::tpu_like_256());
        let vector = MeshTiming::from_config(&GemminiConfig::nvdla_like_256());
        assert_eq!(pipelined.pipeline_depth, 16);
        assert_eq!(vector.pipeline_depth, 1);
        // Same peak throughput in MACs/cycle...
        assert_eq!(
            pipelined.peak_macs_per_cycle(),
            vector.peak_macs_per_cycle()
        );
        // ...but the pipelined design pays a deeper per-block drain (and
        // runs at a much higher clock — gemmini-synth).
        assert!(pipelined.compute_cycles(16) > vector.compute_cycles(16));
        assert!(pipelined.drain_cycles() > vector.drain_cycles());
    }

    #[test]
    fn compute_cycles_floor_at_one_row() {
        let t = MeshTiming {
            dim: 16,
            pipeline_depth: 16,
        };
        assert_eq!(t.compute_cycles(0), 17);
        assert_eq!(t.compute_cycles(16), 32);
        assert_eq!(t.preload_cycles(0), 1);
        assert_eq!(t.preload_cycles(16), 2);
    }

    #[test]
    #[should_panic(expected = "too many stationary rows")]
    fn oversized_preload_panics() {
        let mut mu = MatrixUnit::new(2);
        mu.preload(&[&[1, 1], &[1, 1], &[1, 1]]);
    }

    #[test]
    fn fp32_unit_matches_reference_matmul() {
        use crate::mesh::MatrixUnitF32;
        let dim = 4;
        let a = Tensor::<f32>::random(&[dim, dim], 1);
        let b = Tensor::<f32>::random(&[dim, dim], 2);
        let reference = matmul(&a, &b);
        let mut mu = MatrixUnitF32::new(dim);
        let b_rows: Vec<&[f32]> = (0..dim)
            .map(|r| &b.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        mu.preload(&b_rows);
        let a_rows: Vec<&[f32]> = (0..dim)
            .map(|r| &a.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        let c = mu.compute(&a_rows, None);
        for i in 0..dim {
            for j in 0..dim {
                assert!((c[i][j] - reference[(i, j)]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn fp32_bias_accumulates() {
        use crate::mesh::MatrixUnitF32;
        let mut mu = MatrixUnitF32::new(2);
        mu.preload(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let d = [vec![0.5f32, -0.5]];
        let drefs: Vec<&[f32]> = d.iter().map(|r| r.as_slice()).collect();
        let c = mu.compute(&[&[2.0, 4.0]], Some(&drefs));
        assert_eq!(c[0], vec![2.5, 3.5]);
    }
}
