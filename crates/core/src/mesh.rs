//! The two-level spatial array: functional matrix unit + pipeline timing.
//!
//! Functionally, one Gemmini compute step multiplies a `rows × dim` moving
//! operand A against the `dim × dim` stationary operand B and adds an
//! optional bias D: `C = A·B + D`. Both the weight-stationary and the
//! output-stationary dataflows compute exactly this; they differ in *which*
//! operand stays resident and therefore in timing and energy, not in the
//! produced values. The simulator exploits that: [`MatrixUnit`] is one
//! functional model, and [`MeshTiming`] charges cycles according to the
//! tile/PE hierarchy (Fig. 2) — tiles are pipeline-registered, PEs within a
//! tile are combinational, so the pipeline depth seen by a wavefront is the
//! number of tile boundaries, while the *clock period* consequences of long
//! combinational chains are the synthesis model's domain (`gemmini-synth`).

use crate::config::GemminiConfig;
use gemmini_dnn::ops::MacElement;

/// Functional model of the spatial array, generic over the element type the
/// generator elaborates (`i8` with `i32` accumulation for inference, `f32`
/// for training-style instances): holds the stationary operand and performs
/// `C = A·B + D`.
///
/// [`MatrixUnit`] is the int8 instance the execution engine uses.
///
/// # Example
///
/// ```
/// use gemmini_core::mesh::MatrixUnit;
/// let mut mu = MatrixUnit::new(2);
/// mu.preload(&[&[1, 0], &[0, 1]]); // identity
/// let c = mu.compute(&[&[3, 4]], None);
/// assert_eq!(c, vec![vec![3, 4]]);
/// ```
#[derive(Debug, Clone)]
pub struct MatrixUnitOf<T: MacElement> {
    dim: usize,
    b: Vec<T>,
    macs: u64,
}

/// The int8 / int32-accumulate matrix unit (the paper's evaluated datapath).
pub type MatrixUnit = MatrixUnitOf<i8>;

/// The fp32 matrix unit (the generator's floating-point option).
pub type MatrixUnitF32 = MatrixUnitOf<f32>;

impl<T: MacElement> MatrixUnitOf<T> {
    /// Creates a unit of width `dim` with a zero stationary operand.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "matrix unit dimension must be non-zero");
        Self {
            dim,
            b: vec![T::default(); dim * dim],
            macs: 0,
        }
    }

    /// Array width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Loads the stationary operand. Rows shorter than `dim` are
    /// zero-padded; missing rows are zeroed.
    ///
    /// # Panics
    ///
    /// Panics if more than `dim` rows are supplied or any row is too long.
    pub fn preload(&mut self, b_rows: &[&[T]]) {
        assert!(b_rows.len() <= self.dim, "too many stationary rows");
        self.b.fill(T::default());
        for (r, row) in b_rows.iter().enumerate() {
            assert!(row.len() <= self.dim, "stationary row too long");
            self.b[r * self.dim..r * self.dim + row.len()].copy_from_slice(row);
        }
    }

    /// Loads the stationary operand from a flat strided buffer (`b_rows`
    /// rows of `b_cols` live elements, rows `stride` apart) — the
    /// allocation-free counterpart of [`Self::preload`] that consumes a
    /// scratchpad region zero-copy. Positions outside the block are zeroed.
    ///
    /// # Panics
    ///
    /// Panics if the block exceeds `dim` in either direction or the buffer
    /// is too short for its row count and stride.
    pub fn preload_flat(&mut self, b: &[T], b_rows: usize, b_cols: usize, stride: usize) {
        assert!(b_rows <= self.dim, "too many stationary rows");
        assert!(b_cols <= self.dim, "stationary row too long");
        assert!(stride >= b_cols, "B stride shorter than its rows");
        if b_rows > 0 {
            assert!(
                b.len() >= (b_rows - 1) * stride + b_cols,
                "B buffer too short"
            );
        }
        self.b.fill(T::default());
        for r in 0..b_rows {
            self.b[r * self.dim..r * self.dim + b_cols]
                .copy_from_slice(&b[r * stride..r * stride + b_cols]);
        }
    }

    /// Streams `a_rows` through the array, returning `C = A·B (+ D)`.
    /// Each output row has `dim` elements.
    ///
    /// This is the row-slice convenience API; the engine's hot path uses
    /// [`Self::compute_into`] with flat, caller-owned buffers.
    ///
    /// # Panics
    ///
    /// Panics if any A row is longer than `dim`, or D is present with a
    /// different number of rows than A.
    pub fn compute(&mut self, a_rows: &[&[T]], d_rows: Option<&[&[T::Acc]]>) -> Vec<Vec<T::Acc>> {
        if let Some(d) = d_rows {
            assert_eq!(d.len(), a_rows.len(), "bias row count must match A");
        }
        let mut out = Vec::with_capacity(a_rows.len());
        for (i, a) in a_rows.iter().enumerate() {
            let mut row = vec![T::Acc::default(); self.dim];
            self.compute_row_into(a, d_rows.map(|d| d[i]), &mut row);
            out.push(row);
        }
        out
    }

    /// Streams a flat A block through the array, writing `C = A·B (+ D)`
    /// into the caller-provided `out` buffer — the allocation-free hot
    /// path. `a` holds `a_rows` rows of `a_cols` live elements, rows
    /// `a_stride` elements apart (so a scratchpad region is consumed
    /// zero-copy); `d`, when present, is `(rows, stride)` with `dim` live
    /// bias elements per row; `out` receives `a_rows` rows of `dim`
    /// elements, densely packed.
    ///
    /// The MAC loop runs k-outer / j-inner: the inner loop reads one
    /// contiguous stationary row and updates one contiguous output row,
    /// which autovectorizes. Each output element still accumulates its
    /// products in ascending-`k` order with the bias added last — exactly
    /// the order [`Self::compute`] used — so results are bit-identical
    /// for the f32 instance too, not merely numerically close.
    ///
    /// # Panics
    ///
    /// Panics if `a_cols > dim`, a buffer is too short for its
    /// row-count/stride, or `out` is not exactly `a_rows * dim` elements.
    pub fn compute_into(
        &mut self,
        a: &[T],
        a_rows: usize,
        a_cols: usize,
        a_stride: usize,
        d: Option<(&[T::Acc], usize)>,
        out: &mut [T::Acc],
    ) {
        assert!(a_cols <= self.dim, "moving row too long");
        assert!(a_stride >= a_cols, "A stride shorter than its rows");
        if a_rows > 0 {
            assert!(
                a.len() >= (a_rows - 1) * a_stride + a_cols,
                "A buffer too short"
            );
            if let Some((dbuf, dstride)) = d {
                assert!(dstride >= self.dim, "D stride shorter than its rows");
                assert!(
                    dbuf.len() >= (a_rows - 1) * dstride + self.dim,
                    "D buffer too short"
                );
            }
        }
        assert_eq!(out.len(), a_rows * self.dim, "output buffer size mismatch");
        for i in 0..a_rows {
            let a_row = &a[i * a_stride..i * a_stride + a_cols];
            let d_row = d.map(|(dbuf, dstride)| &dbuf[i * dstride..i * dstride + self.dim]);
            let out_row = &mut out[i * self.dim..(i + 1) * self.dim];
            self.compute_row_into(a_row, d_row, out_row);
        }
    }

    /// One row of the flat hot path: `out = a·B (+ d)`, with `d` allowed
    /// to be shorter than `dim` (bias applies only where present, the
    /// ragged semantics of [`Self::compute`]).
    fn compute_row_into(&mut self, a: &[T], d: Option<&[T::Acc]>, out: &mut [T::Acc]) {
        assert!(a.len() <= self.dim, "moving row too long");
        debug_assert_eq!(out.len(), self.dim);
        out.fill(T::Acc::default());
        for (k, &av) in a.iter().enumerate() {
            let b_row = &self.b[k * self.dim..(k + 1) * self.dim];
            for (o, &bv) in out.iter_mut().zip(b_row) {
                *o = T::mac(*o, av, bv);
            }
        }
        if let Some(d) = d {
            for (o, &dv) in out.iter_mut().zip(d) {
                *o = T::acc_add(*o, dv);
            }
        }
        self.macs += (a.len() * self.dim) as u64;
    }

    /// Total MACs performed since construction.
    pub fn macs(&self) -> u64 {
        self.macs
    }
}

/// Cycle costs of the spatial array derived from the tile/PE hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshTiming {
    /// Array width (`dim × dim` PEs).
    pub dim: usize,
    /// Pipeline stages a wavefront crosses: one per tile row (tiles are
    /// registered; PEs within a tile are combinational).
    pub pipeline_depth: usize,
}

impl MeshTiming {
    /// Derives timing from a generator configuration.
    pub fn from_config(config: &GemminiConfig) -> Self {
        Self {
            dim: config.dim(),
            pipeline_depth: config.mesh_rows,
        }
    }

    /// Cycles a preload occupies the execute unit. The stationary operand
    /// streams into a *shadow* register plane while the previous compute
    /// drains, so back-to-back preload/compute pairs cost only the
    /// handshake here; the data cycles were already paid by the mvin.
    pub fn preload_cycles(&self, b_rows: usize) -> u64 {
        if b_rows == 0 {
            1 // keep-current-operand preload: address update only
        } else {
            2
        }
    }

    /// Cycles one compute step occupies the execute unit: one row enters
    /// per cycle, and the final wavefront drains through the tile pipeline
    /// before the accumulator's read-modify-write of this block completes
    /// and the next block may target the same bank. (The drain is the
    /// pipeline depth — one register stage per tile row — so deeper
    /// hierarchies pay more per block but reach a higher clock, see
    /// `gemmini-synth`.)
    pub fn compute_cycles(&self, a_rows: usize) -> u64 {
        a_rows.max(1) as u64 + self.pipeline_depth as u64
    }

    /// Cycles for the last wavefront to drain through the tile pipeline —
    /// the latency penalty a dependent reader of the final rows observes.
    pub fn drain_cycles(&self) -> u64 {
        self.pipeline_depth as u64
    }

    /// Peak MACs per cycle (every PE active).
    pub fn peak_macs_per_cycle(&self) -> u64 {
        (self.dim * self.dim) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemmini_dnn::ops::matmul;
    use gemmini_dnn::tensor::Tensor;

    #[test]
    fn identity_preload_passes_a_through() {
        let mut mu = MatrixUnit::new(4);
        let eye: Vec<Vec<i8>> = (0..4)
            .map(|i| (0..4).map(|j| (i == j) as i8).collect())
            .collect();
        mu.preload(&eye.iter().map(|r| r.as_slice()).collect::<Vec<_>>());
        let c = mu.compute(&[&[1, 2, 3, 4], &[5, 6, 7, 8]], None);
        assert_eq!(c[0], vec![1, 2, 3, 4]);
        assert_eq!(c[1], vec![5, 6, 7, 8]);
    }

    #[test]
    fn matches_reference_matmul() {
        let dim = 8;
        let a = Tensor::<i8>::random(&[dim, dim], 1);
        let b = Tensor::<i8>::random(&[dim, dim], 2);
        let reference = matmul(&a, &b);

        let mut mu = MatrixUnit::new(dim);
        let b_rows: Vec<&[i8]> = (0..dim)
            .map(|r| &b.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        mu.preload(&b_rows);
        let a_rows: Vec<&[i8]> = (0..dim)
            .map(|r| &a.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        let c = mu.compute(&a_rows, None);
        for i in 0..dim {
            for j in 0..dim {
                assert_eq!(c[i][j], reference[(i, j)], "({i},{j})");
            }
        }
    }

    #[test]
    fn bias_is_added() {
        let mut mu = MatrixUnit::new(2);
        mu.preload(&[&[1, 0], &[0, 1]]);
        let d = [vec![10i32, 20]];
        let drefs: Vec<&[i32]> = d.iter().map(|r| r.as_slice()).collect();
        let c = mu.compute(&[&[1, 2]], Some(&drefs));
        assert_eq!(c[0], vec![11, 22]);
    }

    #[test]
    fn short_rows_are_zero_padded() {
        let mut mu = MatrixUnit::new(4);
        mu.preload(&[&[1, 1, 1, 1]]); // only first B row set; rest zero
        let c = mu.compute(&[&[2]], None); // A = [2, 0, 0, 0]
        assert_eq!(c[0], vec![2, 2, 2, 2]);
    }

    #[test]
    fn preload_replaces_previous_operand() {
        let mut mu = MatrixUnit::new(2);
        mu.preload(&[&[1, 1], &[1, 1]]);
        mu.preload(&[&[2, 0], &[0, 2]]);
        let c = mu.compute(&[&[1, 1]], None);
        assert_eq!(c[0], vec![2, 2]);
    }

    #[test]
    fn mac_counter_accumulates() {
        let mut mu = MatrixUnit::new(4);
        mu.preload(&[&[1, 0, 0, 0]]);
        mu.compute(&[&[1, 2, 3, 4]], None);
        assert_eq!(mu.macs(), 16);
    }

    #[test]
    fn flat_compute_matches_row_api_with_stride_and_bias() {
        let dim = 8;
        let a = Tensor::<i8>::random(&[dim, dim], 3);
        let b = Tensor::<i8>::random(&[dim, dim], 4);
        let d: Vec<i32> = (0..dim * dim).map(|i| i as i32 * 7 - 100).collect();
        let b_rows: Vec<&[i8]> = (0..dim)
            .map(|r| &b.as_slice()[r * dim..(r + 1) * dim])
            .collect();

        // Reference: the row-slice API on the same operands.
        let mut mu_ref = MatrixUnit::new(dim);
        mu_ref.preload(&b_rows);
        let a_rows: Vec<&[i8]> = (0..dim)
            .map(|r| &a.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        let d_rows: Vec<&[i32]> = (0..dim).map(|r| &d[r * dim..(r + 1) * dim]).collect();
        let want = mu_ref.compute(&a_rows, Some(&d_rows));

        // Flat path, including a non-trivial A view: stride dim with only
        // 5 live columns per row, matching a ragged block.
        let a_cols = 5;
        let a_rows_ragged: Vec<&[i8]> = (0..dim)
            .map(|r| &a.as_slice()[r * dim..r * dim + a_cols])
            .collect();
        let want_ragged = mu_ref.compute(&a_rows_ragged, None);

        let mut mu = MatrixUnit::new(dim);
        mu.preload(&b_rows);
        let mut out = vec![0i32; dim * dim];
        mu.compute_into(a.as_slice(), dim, dim, dim, Some((&d, dim)), &mut out);
        for i in 0..dim {
            assert_eq!(&out[i * dim..(i + 1) * dim], want[i].as_slice(), "row {i}");
        }
        mu.compute_into(a.as_slice(), dim, a_cols, dim, None, &mut out);
        for i in 0..dim {
            assert_eq!(
                &out[i * dim..(i + 1) * dim],
                want_ragged[i].as_slice(),
                "ragged row {i}"
            );
        }
        assert_eq!(mu.macs(), mu_ref.macs(), "mac accounting must match");
    }

    #[test]
    fn flat_compute_f32_is_bit_identical() {
        let dim = 6;
        let a = Tensor::<f32>::random(&[dim, dim], 11);
        let b = Tensor::<f32>::random(&[dim, dim], 12);
        let b_rows: Vec<&[f32]> = (0..dim)
            .map(|r| &b.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        let a_rows: Vec<&[f32]> = (0..dim)
            .map(|r| &a.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        let mut mu_ref = MatrixUnitF32::new(dim);
        mu_ref.preload(&b_rows);
        let want = mu_ref.compute(&a_rows, None);

        let mut mu = MatrixUnitF32::new(dim);
        mu.preload(&b_rows);
        let mut out = vec![0f32; dim * dim];
        mu.compute_into(a.as_slice(), dim, dim, dim, None, &mut out);
        for i in 0..dim {
            for j in 0..dim {
                // Bit equality, not approximate: the accumulation order
                // per output element is unchanged by the loop reorder.
                assert_eq!(
                    out[i * dim + j].to_bits(),
                    want[i][j].to_bits(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn timing_reflects_hierarchy() {
        let pipelined = MeshTiming::from_config(&GemminiConfig::tpu_like_256());
        let vector = MeshTiming::from_config(&GemminiConfig::nvdla_like_256());
        assert_eq!(pipelined.pipeline_depth, 16);
        assert_eq!(vector.pipeline_depth, 1);
        // Same peak throughput in MACs/cycle...
        assert_eq!(
            pipelined.peak_macs_per_cycle(),
            vector.peak_macs_per_cycle()
        );
        // ...but the pipelined design pays a deeper per-block drain (and
        // runs at a much higher clock — gemmini-synth).
        assert!(pipelined.compute_cycles(16) > vector.compute_cycles(16));
        assert!(pipelined.drain_cycles() > vector.drain_cycles());
    }

    #[test]
    fn compute_cycles_floor_at_one_row() {
        let t = MeshTiming {
            dim: 16,
            pipeline_depth: 16,
        };
        assert_eq!(t.compute_cycles(0), 17);
        assert_eq!(t.compute_cycles(16), 32);
        assert_eq!(t.preload_cycles(0), 1);
        assert_eq!(t.preload_cycles(16), 2);
    }

    #[test]
    #[should_panic(expected = "too many stationary rows")]
    fn oversized_preload_panics() {
        let mut mu = MatrixUnit::new(2);
        mu.preload(&[&[1, 1], &[1, 1], &[1, 1]]);
    }

    #[test]
    fn fp32_unit_matches_reference_matmul() {
        use crate::mesh::MatrixUnitF32;
        let dim = 4;
        let a = Tensor::<f32>::random(&[dim, dim], 1);
        let b = Tensor::<f32>::random(&[dim, dim], 2);
        let reference = matmul(&a, &b);
        let mut mu = MatrixUnitF32::new(dim);
        let b_rows: Vec<&[f32]> = (0..dim)
            .map(|r| &b.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        mu.preload(&b_rows);
        let a_rows: Vec<&[f32]> = (0..dim)
            .map(|r| &a.as_slice()[r * dim..(r + 1) * dim])
            .collect();
        let c = mu.compute(&a_rows, None);
        for i in 0..dim {
            for j in 0..dim {
                assert!((c[i][j] - reference[(i, j)]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn fp32_bias_accumulates() {
        use crate::mesh::MatrixUnitF32;
        let mut mu = MatrixUnitF32::new(2);
        mu.preload(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let d = [vec![0.5f32, -0.5]];
        let drefs: Vec<&[f32]> = d.iter().map(|r| r.as_slice()).collect();
        let c = mu.compute(&[&[2.0, 4.0]], Some(&drefs));
        assert_eq!(c[0], vec![2.5, 3.5]);
    }
}
