//! The stream DMA engine.
//!
//! Every mvin/mvout row is translated through the accelerator's TLB
//! hierarchy and then moved through the shared memory system, so the DMA is
//! where the virtual-memory case study (Section V-A) and the cache
//! case study (Section V-B) meet: TLB misses stall the stream (the filter
//! registers exist to remove exactly those stalls), and every byte shows up
//! as L2/DRAM traffic.

use crate::metrics::{Counter as MetricCounter, HistKind};
use crate::trace::{AttributionKind, Component, Profiler, StallCause};
use gemmini_mem::addr::{VirtAddr, PAGE_SIZE};
use gemmini_mem::dram::MainMemory;
use gemmini_mem::hierarchy::PortId;
use gemmini_mem::{Cycle, MemorySystem};
use gemmini_vm::page_table::AddressSpace;
use gemmini_vm::translator::{Access, HitLevel, TranslateError, TranslationSystem};

/// Everything the accelerator needs from the surrounding SoC to move data:
/// its process's address space, its translation hardware, the shared memory
/// system, and (in functional mode) the physical byte store.
///
/// `data: None` selects *timing-only* mode: the address streams (and hence
/// all TLB/cache statistics and cycle counts) are identical, but no bytes
/// are copied — this is what makes full-network figure sweeps tractable.
#[derive(Debug)]
pub struct MemCtx<'a> {
    /// The running process's page table.
    pub space: &'a AddressSpace,
    /// The accelerator's translation hardware (filters + TLBs + PTW).
    pub translation: &'a mut TranslationSystem,
    /// The SoC's shared bus → L2 → DRAM path.
    pub mem: &'a mut MemorySystem,
    /// Physical bytes, when running functionally.
    pub data: Option<&'a mut MainMemory>,
    /// Memory-system port accesses are attributed to.
    pub port: PortId,
}

/// Outcome of one DMA transfer. Functional mvin bytes land in the
/// caller-provided destination buffer, so the transfer record itself is
/// plain-old-data and allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaTransfer {
    /// Cycle at which the last byte arrived.
    pub done: Cycle,
    /// Total bytes moved.
    pub bytes: u64,
}

/// Running totals for one DMA engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Bytes moved in (mvin).
    pub bytes_in: u64,
    /// Bytes moved out (mvout).
    pub bytes_out: u64,
    /// Translation requests issued.
    pub translations: u64,
    /// Cycles the stream spent stalled waiting for translations.
    pub translation_stall_cycles: u64,
}

/// The accelerator's read/write stream DMA.
#[derive(Debug, Clone, Default)]
pub struct StreamDma {
    stats: DmaStats,
}

impl StreamDma {
    /// Creates an idle DMA engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics since construction.
    pub fn stats(&self) -> &DmaStats {
        &self.stats
    }

    /// Reads `rows` rows of `row_bytes` bytes from virtual memory,
    /// `stride` bytes apart, starting at `vaddr` and time `now`.
    ///
    /// In functional mode pass `dst`: it is cleared and filled with the
    /// rows packed back to back (`rows * row_bytes` bytes total, row `r`
    /// at `r * row_bytes`). The buffer's capacity is retained across
    /// calls, so a reused arena makes the steady state allocation-free.
    /// With `dst: None` (or in timing-only mode) no bytes are stored.
    ///
    /// # Errors
    ///
    /// Propagates [`TranslateError`] (page fault / permission denied) from
    /// the translation system; rows before the fault have already been
    /// moved, matching hardware where the DMA raises an interrupt
    /// mid-stream.
    #[allow(clippy::too_many_arguments)]
    pub fn mvin(
        &mut self,
        prof: &mut Profiler,
        ctx: &mut MemCtx<'_>,
        now: Cycle,
        vaddr: VirtAddr,
        rows: usize,
        row_bytes: u64,
        stride: u64,
        dst: Option<&mut Vec<u8>>,
    ) -> Result<DmaTransfer, TranslateError> {
        self.transfer(
            prof,
            ctx,
            now,
            vaddr,
            rows,
            row_bytes,
            stride,
            Access::Read,
            None,
            dst,
        )
    }

    /// Writes `rows` rows to virtual memory. In functional mode `data`
    /// supplies the bytes, packed `rows * row_bytes` flat (row `r` at
    /// `r * row_bytes`).
    ///
    /// # Errors
    ///
    /// Propagates [`TranslateError`] from the translation system.
    ///
    /// # Panics
    ///
    /// Panics if `data` is provided with a length other than
    /// `rows * row_bytes`.
    #[allow(clippy::too_many_arguments)]
    pub fn mvout(
        &mut self,
        prof: &mut Profiler,
        ctx: &mut MemCtx<'_>,
        now: Cycle,
        vaddr: VirtAddr,
        rows: usize,
        row_bytes: u64,
        stride: u64,
        data: Option<&[u8]>,
    ) -> Result<DmaTransfer, TranslateError> {
        if let Some(d) = data {
            assert_eq!(
                d.len() as u64,
                rows as u64 * row_bytes,
                "mvout data length must equal rows * row_bytes"
            );
        }
        self.transfer(
            prof,
            ctx,
            now,
            vaddr,
            rows,
            row_bytes,
            stride,
            Access::Write,
            data,
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn transfer(
        &mut self,
        prof: &mut Profiler,
        ctx: &mut MemCtx<'_>,
        now: Cycle,
        vaddr: VirtAddr,
        rows: usize,
        row_bytes: u64,
        stride: u64,
        access: Access,
        write_data: Option<&[u8]>,
        mut read_dst: Option<&mut Vec<u8>>,
    ) -> Result<DmaTransfer, TranslateError> {
        let mut issue = now;
        let mut done = now;
        if let Some(dst) = read_dst.as_deref_mut() {
            dst.clear();
            if ctx.data.is_some() {
                dst.reserve(rows * row_bytes as usize);
            }
        }

        for r in 0..rows {
            let row_va = vaddr.add(r as u64 * stride);
            let mut moved = 0u64;
            // Split the row at page boundaries; translate each segment once.
            while moved < row_bytes {
                let seg_va = row_va.add(moved);
                let in_page = PAGE_SIZE - seg_va.offset_in_page();
                let seg = in_page.min(row_bytes - moved);

                self.stats.translations += 1;
                let tr = ctx
                    .translation
                    .translate(ctx.space, ctx.mem, issue, seg_va, access)?;
                self.stats.translation_stall_cycles += tr.latency;
                // The stream cannot issue the next request until this
                // translation resolves (single translation port).
                let stall_start = issue;
                issue += tr.latency;
                // Only a page-table walk counts as a TLB *stall* for
                // attribution; a TLB hit's small pipelined latency is
                // part of normal streaming and stays with the enclosing
                // load/store span.
                if tr.level == HitLevel::Walk {
                    prof.record(AttributionKind::TlbStall, stall_start, issue);
                }

                let seg_done = match access {
                    Access::Read => ctx.mem.read(ctx.port, issue, tr.paddr, seg),
                    Access::Write => ctx.mem.write(ctx.port, issue, tr.paddr, seg),
                };
                // Up to the bus's ideal service time the stream is simply
                // moving bytes at bandwidth (charged to the enclosing
                // load/store span); anything beyond that is a stall on
                // the bus → L2 → DRAM path. Cycles a translation stall
                // also covers are re-attributed to the TLB by the log's
                // priority rules.
                let stream_done = issue + ctx.mem.streaming_cycles(seg);
                prof.record(AttributionKind::Dram, stream_done.min(seg_done), seg_done);
                done = done.max(seg_done);

                if let Some(data) = ctx.data.as_deref_mut() {
                    match access {
                        Access::Read => {
                            if let Some(dst) = read_dst.as_deref_mut() {
                                let start = dst.len();
                                dst.resize(start + seg as usize, 0);
                                data.read(tr.paddr, &mut dst[start..]);
                            }
                        }
                        Access::Write => {
                            if let Some(flat) = write_data {
                                let lo = (r as u64 * row_bytes + moved) as usize;
                                let hi = lo + seg as usize;
                                data.write(tr.paddr, &flat[lo..hi]);
                            }
                        }
                    }
                }
                moved += seg;
            }
        }

        let bytes = rows as u64 * row_bytes;
        match access {
            Access::Read => self.stats.bytes_in += bytes,
            Access::Write => self.stats.bytes_out += bytes,
        }
        let finish = done.max(issue);
        if prof.tracing() {
            let name = match access {
                Access::Read => "mvin",
                Access::Write => "mvout",
            };
            prof.event(Component::Dma, name, now, finish, StallCause::None);
        }
        let metrics = prof.metrics();
        metrics.inc(MetricCounter::DmaBursts);
        metrics.add(MetricCounter::DmaBytes, bytes);
        metrics.observe(HistKind::DmaBurstCycles, finish.saturating_sub(now));
        Ok(DmaTransfer {
            done: finish,
            bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemmini_mem::addr::PhysAddr;
    use gemmini_vm::page::FrameAllocator;
    use gemmini_vm::translator::TranslationConfig;

    struct Rig {
        space: AddressSpace,
        translation: TranslationSystem,
        mem: MemorySystem,
        data: MainMemory,
        base: VirtAddr,
    }

    fn rig() -> Rig {
        let mut frames = FrameAllocator::new();
        let mut space = AddressSpace::new(&mut frames);
        let base = space.alloc(&mut frames, 64 * PAGE_SIZE);
        Rig {
            space,
            translation: TranslationSystem::new(TranslationConfig::default()),
            mem: MemorySystem::default(),
            data: MainMemory::new(),
            base,
        }
    }

    impl Rig {
        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx {
                space: &self.space,
                translation: &mut self.translation,
                mem: &mut self.mem,
                data: Some(&mut self.data),
                port: 0,
            }
        }

        fn write_virt(&mut self, va: VirtAddr, bytes: &[u8]) {
            // Write through translation page by page (test helper).
            for (i, b) in bytes.iter().enumerate() {
                let pa: PhysAddr = self.space.translate(va.add(i as u64)).unwrap();
                self.data.write_u8(pa, *b);
            }
        }
    }

    #[test]
    fn mvin_moves_functional_bytes() {
        let mut rig = rig();
        let va = rig.base;
        rig.write_virt(va, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut dma = StreamDma::new();
        let mut ctx = rig.ctx();
        let mut buf = Vec::new();
        let t = dma
            .mvin(
                &mut Profiler::default(),
                &mut ctx,
                0,
                va,
                2,
                4,
                4,
                Some(&mut buf),
            )
            .unwrap();
        assert_eq!(&buf[..4], &[1, 2, 3, 4]);
        assert_eq!(&buf[4..], &[5, 6, 7, 8]);
        assert_eq!(t.bytes, 8);
        assert!(t.done > 0);
    }

    #[test]
    fn strided_mvin_skips_between_rows() {
        let mut rig = rig();
        let va = rig.base;
        rig.write_virt(va, &[1, 2, 9, 9, 3, 4, 9, 9]);
        let mut dma = StreamDma::new();
        let mut ctx = rig.ctx();
        let mut buf = vec![77u8; 32]; // stale contents must be cleared
        dma.mvin(
            &mut Profiler::default(),
            &mut ctx,
            0,
            va,
            2,
            2,
            4,
            Some(&mut buf),
        )
        .unwrap();
        assert_eq!(buf, vec![1, 2, 3, 4]);
    }

    #[test]
    fn mvout_then_mvin_roundtrips() {
        let mut rig = rig();
        let va = rig.base.add(PAGE_SIZE);
        let mut dma = StreamDma::new();
        let payload = vec![10u8, 20, 30, 40, 50, 60];
        {
            let mut ctx = rig.ctx();
            dma.mvout(
                &mut Profiler::default(),
                &mut ctx,
                0,
                va,
                2,
                3,
                3,
                Some(&payload),
            )
            .unwrap();
        }
        let mut ctx = rig.ctx();
        let mut buf = Vec::new();
        dma.mvin(
            &mut Profiler::default(),
            &mut ctx,
            100,
            va,
            2,
            3,
            3,
            Some(&mut buf),
        )
        .unwrap();
        assert_eq!(buf, payload);
        assert_eq!(dma.stats().bytes_out, 6);
        assert_eq!(dma.stats().bytes_in, 6);
    }

    #[test]
    fn page_crossing_row_translates_twice() {
        let mut rig = rig();
        // Row starts 2 bytes before a page boundary.
        let va = rig.base.add(PAGE_SIZE - 2);
        let mut dma = StreamDma::new();
        let mut ctx = rig.ctx();
        let mut buf = Vec::new();
        dma.mvin(
            &mut Profiler::default(),
            &mut ctx,
            0,
            va,
            1,
            4,
            4,
            Some(&mut buf),
        )
        .unwrap();
        assert_eq!(dma.stats().translations, 2);
        assert_eq!(buf.len(), 4, "page-crossing row still packs contiguously");
    }

    #[test]
    fn rows_in_same_page_translate_per_row() {
        let mut rig = rig();
        let va = rig.base;
        let mut dma = StreamDma::new();
        let mut ctx = rig.ctx();
        dma.mvin(&mut Profiler::default(), &mut ctx, 0, va, 16, 16, 16, None)
            .unwrap();
        assert_eq!(dma.stats().translations, 16);
        // All rows after the first hit the (4-entry) private TLB.
        assert_eq!(ctx.translation.private_tlb().stats().hits(), 15);
    }

    #[test]
    fn timing_only_mode_produces_no_bytes_but_same_stats() {
        let mut rig1 = rig();
        let va = rig1.base;
        let mut dma_f = StreamDma::new();
        let mut buf_f = Vec::new();
        let t_f = {
            let mut ctx = rig1.ctx();
            dma_f
                .mvin(
                    &mut Profiler::default(),
                    &mut ctx,
                    0,
                    va,
                    8,
                    16,
                    16,
                    Some(&mut buf_f),
                )
                .unwrap()
        };

        // Fresh rig for identical cold state, but timing-only.
        let mut rig2 = rig();
        let va2 = rig2.base;
        let mut dma_t = StreamDma::new();
        let mut buf_t = vec![5u8; 3];
        let t_t = {
            let mut ctx = MemCtx {
                space: &rig2.space,
                translation: &mut rig2.translation,
                mem: &mut rig2.mem,
                data: None,
                port: 0,
            };
            dma_t
                .mvin(
                    &mut Profiler::default(),
                    &mut ctx,
                    0,
                    va2,
                    8,
                    16,
                    16,
                    Some(&mut buf_t),
                )
                .unwrap()
        };
        assert!(buf_t.is_empty(), "timing-only mode stores no bytes");
        assert_eq!(buf_f.len(), 8 * 16);
        assert_eq!(t_f.done, t_t.done, "timing must not depend on mode");
        assert_eq!(dma_f.stats(), dma_t.stats());
    }

    #[test]
    fn unmapped_page_faults() {
        let mut rig = rig();
        let mut dma = StreamDma::new();
        let mut ctx = rig.ctx();
        let err = dma
            .mvin(
                &mut Profiler::default(),
                &mut ctx,
                0,
                VirtAddr::new(0xdddd_0000),
                1,
                16,
                16,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, TranslateError::PageFault { .. }));
    }

    #[test]
    fn translation_stalls_are_accounted() {
        let mut rig = rig();
        let va = rig.base;
        let mut dma = StreamDma::new();
        let mut ctx = rig.ctx();
        dma.mvin(&mut Profiler::default(), &mut ctx, 0, va, 1, 16, 16, None)
            .unwrap();
        // Cold access: one walk, so stall cycles are substantial.
        assert!(dma.stats().translation_stall_cycles > 0);
    }
}
