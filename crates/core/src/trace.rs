//! The engine-side profiler: the always-on attribution log plus the
//! optional trace-event sink, bundled so instrumentation sites make one
//! call.
//!
//! The heavy machinery lives in [`gemmini_mem::trace`] (re-exported
//! here): [`Tracer`] is the zero-overhead-when-disabled event sink
//! handle, [`AttributionLog`] the exact interval record behind the
//! cycle-attribution report. [`Profiler`] pairs them — the
//! [`crate::engine::Accelerator`] owns one and every timed operation
//! reports its busy interval through it.

pub use gemmini_mem::stats::CycleAttribution;
pub use gemmini_mem::trace::{
    chrome_trace_json, export_chrome_trace, AttributionKind, AttributionLog, AttributionSpan,
    BufferSink, Component, EventSink, NullSink, StallCause, TraceEvent, Tracer, SOC_TRACE_PID,
};

use crate::metrics::Metrics;
use gemmini_mem::Cycle;

/// The attribution log, trace sink and live-metrics handle an
/// accelerator reports into.
///
/// Attribution recording is always on (it is how the cycle-attribution
/// report stays exact); sink emission and metric recording each cost one
/// branch when disabled.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    log: AttributionLog,
    tracer: Tracer,
    metrics: Metrics,
}

impl Profiler {
    /// Creates a profiler with no sink attached.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches (or replaces) the event sink handle.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The current sink handle (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attaches (or replaces) the live-metrics handle.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// The current live-metrics handle (disabled by default).
    #[inline]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.tracer.enabled()
    }

    /// Records a busy interval into the attribution log only.
    #[inline]
    pub fn record(&mut self, kind: AttributionKind, start: Cycle, end: Cycle) {
        self.log.record(kind, start, end);
    }

    /// Records a busy interval and, when a sink is attached, emits the
    /// matching trace span.
    #[inline]
    pub fn span(
        &mut self,
        kind: AttributionKind,
        component: Component,
        name: &str,
        start: Cycle,
        end: Cycle,
        cause: StallCause,
    ) {
        self.log.record(kind, start, end);
        self.tracer.span(component, name, start, end, cause);
    }

    /// Emits a sink-only span (no attribution impact).
    #[inline]
    pub fn event(
        &self,
        component: Component,
        name: &str,
        start: Cycle,
        end: Cycle,
        cause: StallCause,
    ) {
        self.tracer.span(component, name, start, end, cause);
    }

    /// Folds settled attribution intervals once the log grows large;
    /// `frontier` must lower-bound every future interval's start.
    #[inline]
    pub fn maybe_compact(&mut self, frontier: Cycle) {
        self.log.maybe_compact(frontier);
    }

    /// Unconditionally folds settled intervals up to `frontier` — lets a
    /// caller (e.g. the allocation-guard test) reach the log's steady
    /// state at a known point instead of at the size threshold.
    pub fn compact(&mut self, frontier: Cycle) {
        self.log.compact(frontier);
    }

    /// The exact attribution of `[0, total)` recorded so far.
    pub fn attribution(&self, total: Cycle) -> CycleAttribution {
        self.log.finish(total)
    }
}
