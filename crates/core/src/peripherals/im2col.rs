//! The optional on-the-fly im2col block.
//!
//! Fig. 7's central ablation: without this block, the *host CPU* performs
//! im2col in memory before every convolution (its cost model lives in
//! `gemmini-cpu`); with it, the accelerator expands patches as it streams
//! the input from its scratchpad, costing roughly one cycle per generated
//! patch row and freeing the CPU entirely.

/// Cost model of the on-the-fly im2col block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Im2colUnit {
    /// Patch elements generated per cycle (one scratchpad row's worth).
    pub elements_per_cycle: usize,
    /// Fixed per-convolution configuration cost, in cycles.
    pub setup_cycles: u64,
}

impl Im2colUnit {
    /// A unit matched to a `dim`-wide array: it feeds one `dim`-element
    /// patch row per cycle.
    pub fn for_dim(dim: usize) -> Self {
        Self {
            elements_per_cycle: dim,
            setup_cycles: 8,
        }
    }

    /// Cycles to generate a patch matrix of `rows × cols` elements.
    /// Generation overlaps compute, so kernels charge
    /// `max(compute, generate)` rather than the sum.
    pub fn generate_cycles(&self, rows: usize, cols: usize) -> u64 {
        let elems = rows as u64 * cols as u64;
        self.setup_cycles + elems.div_ceil(self.elements_per_cycle as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_patch_row_per_cycle() {
        let u = Im2colUnit::for_dim(16);
        // 256 x 16 patch elements = 256 row-cycles + setup.
        assert_eq!(u.generate_cycles(256, 16), 8 + 256);
    }

    #[test]
    fn partial_rows_round_up() {
        let u = Im2colUnit::for_dim(16);
        assert_eq!(u.generate_cycles(1, 17), 8 + 2);
        assert_eq!(u.generate_cycles(0, 16), 8);
    }

    #[test]
    fn wider_arrays_generate_faster() {
        let narrow = Im2colUnit::for_dim(4);
        let wide = Im2colUnit::for_dim(32);
        assert!(wide.generate_cycles(128, 32) < narrow.generate_cycles(128, 32));
    }
}
