//! The pooling block: max/average pooling applied as data streams out of
//! the accumulator (Gemmini performs pooling during mvout).

use gemmini_dnn::graph::PoolKind;
use gemmini_dnn::ops::pool::{avgpool2d_i8, maxpool2d, PoolSpec};
use gemmini_dnn::tensor::Tensor;

/// Cost + functional model of the pooling block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolingUnit {
    /// Output elements produced per cycle (`dim` comparator lanes).
    pub lanes: usize,
}

impl PoolingUnit {
    /// A unit matched to a `dim`-wide array.
    pub fn for_dim(dim: usize) -> Self {
        Self { lanes: dim }
    }

    /// Cycles to pool one feature map: each output element consumes its
    /// window serially, `lanes` outputs in parallel.
    pub fn pool_cycles(&self, out_elements: usize, window: usize) -> u64 {
        let per_lane = (out_elements as u64).div_ceil(self.lanes as u64);
        per_lane * (window * window) as u64
    }

    /// Functional pooling (delegates to the golden operators).
    pub fn pool(&self, input: &Tensor<i8>, kind: PoolKind, spec: PoolSpec) -> Tensor<i8> {
        match kind {
            PoolKind::Max => maxpool2d(input, spec),
            PoolKind::Avg => avgpool2d_i8(input, spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_scale_with_window_and_lanes() {
        let u = PoolingUnit::for_dim(16);
        // 3x3 windows over 256 outputs with 16 lanes: 16 * 9 cycles.
        assert_eq!(u.pool_cycles(256, 3), 144);
        let wide = PoolingUnit::for_dim(64);
        assert!(wide.pool_cycles(256, 3) < u.pool_cycles(256, 3));
    }

    #[test]
    fn functional_pooling_matches_reference() {
        let u = PoolingUnit::for_dim(16);
        let t = Tensor::from_vec(&[1, 1, 2, 2], vec![1i8, 5, 3, 4]);
        let spec = PoolSpec {
            size: 2,
            stride: 2,
            padding: 0,
        };
        assert_eq!(u.pool(&t, PoolKind::Max, spec).as_slice(), &[5]);
        assert_eq!(u.pool(&t, PoolKind::Avg, spec).as_slice(), &[3]);
    }
}
