//! The transposer block: transposes a `dim × dim` tile between the
//! scratchpad and the array, used when the data layout disagrees with the
//! dataflow (e.g. computing Aᵀ·B in weight-stationary mode).

/// Cost + functional model of the transposer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transposer {
    /// Tile width the transposer handles.
    pub dim: usize,
}

impl Transposer {
    /// A transposer matched to a `dim`-wide array.
    pub fn for_dim(dim: usize) -> Self {
        Self { dim }
    }

    /// Cycles to transpose one tile: the systolic transposer streams the
    /// tile in and out in `2 * dim` cycles.
    pub fn transpose_cycles(&self) -> u64 {
        2 * self.dim as u64
    }

    /// Functional transpose of a row-major `dim × dim` tile.
    ///
    /// # Panics
    ///
    /// Panics if `tile` is not `dim * dim` long.
    pub fn transpose(&self, tile: &[i8]) -> Vec<i8> {
        assert_eq!(tile.len(), self.dim * self.dim, "tile size mismatch");
        let mut out = vec![0i8; tile.len()];
        for r in 0..self.dim {
            for c in 0..self.dim {
                out[c * self.dim + r] = tile[r * self.dim + c];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transposes_row_major_tile() {
        let t = Transposer::for_dim(2);
        assert_eq!(t.transpose(&[1, 2, 3, 4]), vec![1, 3, 2, 4]);
    }

    #[test]
    fn double_transpose_is_identity() {
        let t = Transposer::for_dim(4);
        let tile: Vec<i8> = (0..16).collect();
        assert_eq!(t.transpose(&t.transpose(&tile)), tile);
    }

    #[test]
    fn cycle_cost() {
        assert_eq!(Transposer::for_dim(16).transpose_cycles(), 32);
    }

    #[test]
    #[should_panic(expected = "tile size mismatch")]
    fn wrong_size_panics() {
        Transposer::for_dim(2).transpose(&[1, 2, 3]);
    }
}
