//! The accumulator read-out path: scale, saturate, and activate.
//!
//! When an mvout reads the int32 accumulator, the hardware multiplies each
//! value by the configured scale, rounds and saturates to int8, and applies
//! the configured activation. This module is that datapath's golden model;
//! it adds no cycles of its own (it is inline with the store stream).
//!
//! Note on ReLU6: the clamp value of a quantized ReLU6 depends on the
//! layer's output scale. The reproduction fixes the clamped representation
//! at `6` in output units — the reference kernels in `gemmini-soc` use the
//! same convention, so functional cross-checks are exact.

use gemmini_dnn::graph::Activation;
use gemmini_dnn::quant::{requantize, QuantParams};

/// The int8 representation of 6.0 used by the ReLU6 clamp (see module docs).
pub const RELU6_CLAMP: i8 = 6;

/// Converts one accumulator row to output int8 values: ReLU-family
/// activations are applied in accumulator space, then each value is scaled
/// and saturated.
///
/// # Example
///
/// ```
/// use gemmini_core::peripherals::readout_row;
/// use gemmini_dnn::graph::Activation;
/// let out = readout_row(&[100, -100], Activation::Relu, 0.1);
/// assert_eq!(out, vec![10, 0]);
/// ```
pub fn readout_row(acc: &[i32], activation: Activation, scale: f32) -> Vec<i8> {
    let params = QuantParams::new(scale);
    acc.iter()
        .map(|&x| readout_value(x, activation, params))
        .collect()
}

/// The per-element read-out datapath: activation in accumulator space, then
/// scale-and-saturate, then the ReLU6 output clamp.
#[inline]
pub fn readout_value(x: i32, activation: Activation, params: QuantParams) -> i8 {
    let x = match activation {
        Activation::None => x,
        Activation::Relu | Activation::Relu6 => x.max(0),
    };
    let y = requantize(x, params);
    match activation {
        Activation::Relu6 => y.min(RELU6_CLAMP),
        _ => y,
    }
}

/// Appends one accumulator row's read-out to `out` as store-stream bytes
/// (each int8 output reinterpreted as `u8`) — the allocation-free variant
/// [`readout_row`] the engine's mvout path uses with a reused arena.
pub fn readout_row_into(acc: &[i32], activation: Activation, scale: f32, out: &mut Vec<u8>) {
    let params = QuantParams::new(scale);
    out.extend(
        acc.iter()
            .map(|&x| readout_value(x, activation, params) as u8),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_just_requantizes() {
        assert_eq!(
            readout_row(&[50, -50], Activation::None, 1.0),
            vec![50, -50]
        );
        assert_eq!(readout_row(&[1000], Activation::None, 0.1), vec![100]);
    }

    #[test]
    fn relu_zeroes_negatives_before_scaling() {
        assert_eq!(
            readout_row(&[-1000, 1000], Activation::Relu, 0.1),
            vec![0, 100]
        );
    }

    #[test]
    fn relu6_clamps_output() {
        assert_eq!(
            readout_row(&[1000, 40, -10], Activation::Relu6, 0.1),
            vec![6, 4, 0]
        );
    }

    #[test]
    fn saturation_applies() {
        assert_eq!(readout_row(&[i32::MAX], Activation::None, 1.0), vec![127]);
        assert_eq!(readout_row(&[i32::MIN], Activation::None, 1.0), vec![-128]);
    }
}
