//! The optional peripheral circuitry (Section III-A): "Gemmini also
//! supports other commonly-used DNN kernels, e.g., pooling, non-linear
//! activations (ReLU or ReLU6), and matrix-scalar multiplications, through a
//! set of configurable, peripheral circuitry."
//!
//! Each block pairs a functional model (validated against the reference
//! operators in `gemmini-dnn`) with a cycle-cost model used by the
//! execution engine and the kernel library.

pub mod activation;
pub mod im2col;
pub mod pooling;
pub mod scalar;
pub mod transpose;

pub use activation::{readout_row, readout_row_into, readout_value};
pub use im2col::Im2colUnit;
pub use pooling::PoolingUnit;
pub use scalar::ScalarUnit;
pub use transpose::Transposer;
