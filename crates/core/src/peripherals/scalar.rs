//! The matrix-scalar block (the paper's peripheral circuitry list includes
//! "matrix-scalar multiplications"): multiplies a streamed int8 matrix by a
//! scalar with saturation, one row per cycle.

use gemmini_dnn::quant::{requantize, QuantParams};

/// Cost + functional model of the matrix-scalar unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarUnit {
    /// Elements processed per cycle (one scratchpad row).
    pub lanes: usize,
}

impl ScalarUnit {
    /// A unit matched to a `dim`-wide array.
    pub fn for_dim(dim: usize) -> Self {
        Self { lanes: dim }
    }

    /// Cycles to scale `elements` values.
    pub fn scale_cycles(&self, elements: usize) -> u64 {
        (elements as u64).div_ceil(self.lanes as u64)
    }

    /// Functionally scales one row: `y = sat(round(x * scale))`.
    pub fn scale_row(&self, row: &[i8], scale: f32) -> Vec<i8> {
        let p = QuantParams::new(scale);
        row.iter().map(|&x| requantize(x as i32, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_row_per_cycle() {
        let u = ScalarUnit::for_dim(16);
        assert_eq!(u.scale_cycles(256), 16);
        assert_eq!(u.scale_cycles(257), 17);
        assert_eq!(u.scale_cycles(0), 0);
    }

    #[test]
    fn scaling_rounds_and_saturates() {
        let u = ScalarUnit::for_dim(4);
        assert_eq!(
            u.scale_row(&[10, -10, 100, -100], 0.5),
            vec![5, -5, 50, -50]
        );
        assert_eq!(u.scale_row(&[100], 2.0), vec![127]); // saturates
        assert_eq!(u.scale_row(&[-100], 2.0), vec![-128]);
    }

    #[test]
    fn unit_scale_is_identity() {
        let u = ScalarUnit::for_dim(4);
        let row = vec![1i8, -2, 3, -4];
        assert_eq!(u.scale_row(&row, 1.0), row);
    }
}
