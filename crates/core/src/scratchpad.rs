//! The accelerator's private memories: the banked int8 scratchpad and the
//! wide int32 accumulator.
//!
//! Both are functional row stores. The paper's architecture reads inputs
//! from "a local, explicitly managed scratchpad of banked SRAMs" and writes
//! results "to a local accumulator storage with a higher bitwidth than the
//! inputs". Bank-conflict timing lives in
//! [`gemmini_mem::sram::BankedSram`]; this module owns the contents.

use gemmini_mem::sram::{BankedSram, SramConfig};

/// The banked int8 scratchpad: `rows` rows of `dim` elements.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    dim: usize,
    rows: usize,
    data: Vec<i8>,
    timing: BankedSram,
}

impl Scratchpad {
    /// Creates a zeroed scratchpad of `rows` rows of `dim` int8 elements,
    /// split into `banks` banks.
    ///
    /// # Panics
    ///
    /// Panics if `rows` does not divide evenly into `banks`.
    pub fn new(dim: usize, rows: usize, banks: u32) -> Self {
        assert!(dim > 0 && rows > 0, "scratchpad must be non-empty");
        assert_eq!(
            rows % banks as usize,
            0,
            "scratchpad rows must divide evenly into banks"
        );
        Self {
            dim,
            rows,
            data: vec![0; dim * rows],
            timing: BankedSram::new(SramConfig {
                banks,
                rows_per_bank: (rows / banks as usize) as u32,
                row_bytes: dim as u32,
                access_latency: 1,
            }),
        }
    }

    /// Elements per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Reads row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[i8] {
        assert!(row < self.rows, "scratchpad row {row} out of range");
        &self.data[row * self.dim..(row + 1) * self.dim]
    }

    /// Reads `n` consecutive rows as one contiguous slice (`n * dim`
    /// elements, row stride `dim`) — the zero-copy operand view the mesh's
    /// flat compute path consumes.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the scratchpad.
    pub fn rows_flat(&self, row: usize, n: usize) -> &[i8] {
        assert!(
            row + n <= self.rows,
            "scratchpad rows {row}+{n} out of range"
        );
        &self.data[row * self.dim..(row + n) * self.dim]
    }

    /// Overwrites row `row` with `values` (shorter slices zero-fill the
    /// remainder, matching the DMA's behaviour for partial rows).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `values` is longer than a row.
    pub fn write_row(&mut self, row: usize, values: &[i8]) {
        assert!(row < self.rows, "scratchpad row {row} out of range");
        assert!(
            values.len() <= self.dim,
            "row data longer than scratchpad width"
        );
        let dst = &mut self.data[row * self.dim..(row + 1) * self.dim];
        dst[..values.len()].copy_from_slice(values);
        dst[values.len()..].fill(0);
    }

    /// Overwrites row `row` from raw DMA bytes (each byte reinterpreted as
    /// int8), zero-filling the remainder — the mvin deposit path, without
    /// an intermediate `Vec<i8>`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `bytes` is longer than a row.
    pub fn write_row_bytes(&mut self, row: usize, bytes: &[u8]) {
        assert!(row < self.rows, "scratchpad row {row} out of range");
        assert!(
            bytes.len() <= self.dim,
            "row data longer than scratchpad width"
        );
        let dst = &mut self.data[row * self.dim..(row + 1) * self.dim];
        for (d, &b) in dst.iter_mut().zip(bytes) {
            *d = b as i8;
        }
        dst[bytes.len()..].fill(0);
    }

    /// The bank-conflict timing model (shared with the DMA and mesh).
    pub fn timing_mut(&mut self) -> &mut BankedSram {
        &mut self.timing
    }
}

/// The int32 accumulator: `rows` rows of `dim` 32-bit partial sums.
#[derive(Debug, Clone)]
pub struct Accumulator {
    dim: usize,
    rows: usize,
    data: Vec<i32>,
}

impl Accumulator {
    /// Creates a zeroed accumulator.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(dim: usize, rows: usize) -> Self {
        assert!(dim > 0 && rows > 0, "accumulator must be non-empty");
        Self {
            dim,
            rows,
            data: vec![0; dim * rows],
        }
    }

    /// Elements per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Reads row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[i32] {
        assert!(row < self.rows, "accumulator row {row} out of range");
        &self.data[row * self.dim..(row + 1) * self.dim]
    }

    /// Reads `n` consecutive rows as one contiguous slice (`n * dim`
    /// elements, row stride `dim`) — the zero-copy bias view for the
    /// mesh's flat compute path.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the accumulator.
    pub fn rows_flat(&self, row: usize, n: usize) -> &[i32] {
        assert!(
            row + n <= self.rows,
            "accumulator rows {row}+{n} out of range"
        );
        &self.data[row * self.dim..(row + n) * self.dim]
    }

    /// Overwrites row `row` with `values`, zero-filling the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `values` is too long.
    pub fn write_row(&mut self, row: usize, values: &[i32]) {
        assert!(row < self.rows, "accumulator row {row} out of range");
        assert!(
            values.len() <= self.dim,
            "row data longer than accumulator width"
        );
        let dst = &mut self.data[row * self.dim..(row + 1) * self.dim];
        dst[..values.len()].copy_from_slice(values);
        dst[values.len()..].fill(0);
    }

    /// Adds `values` elementwise into row `row` (the accumulate-bit path).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `values` is too long.
    pub fn accumulate_row(&mut self, row: usize, values: &[i32]) {
        assert!(row < self.rows, "accumulator row {row} out of range");
        assert!(
            values.len() <= self.dim,
            "row data longer than accumulator width"
        );
        let dst = &mut self.data[row * self.dim..(row + 1) * self.dim];
        for (d, &v) in dst.iter_mut().zip(values) {
            *d = d.wrapping_add(v);
        }
    }

    /// Overwrites row `row` from little-endian int32 DMA bytes (complete
    /// 4-byte groups only, matching the DMA's element framing),
    /// zero-filling the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or the bytes exceed a row.
    pub fn write_row_i32le(&mut self, row: usize, bytes: &[u8]) {
        assert!(row < self.rows, "accumulator row {row} out of range");
        let n = bytes.len() / 4;
        assert!(n <= self.dim, "row data longer than accumulator width");
        let dst = &mut self.data[row * self.dim..(row + 1) * self.dim];
        for (d, c) in dst.iter_mut().zip(bytes.chunks_exact(4)) {
            *d = i32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        }
        dst[n..].fill(0);
    }

    /// Adds little-endian int32 DMA bytes elementwise into row `row`
    /// (the accumulate-bit mvin path).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or the bytes exceed a row.
    pub fn accumulate_row_i32le(&mut self, row: usize, bytes: &[u8]) {
        assert!(row < self.rows, "accumulator row {row} out of range");
        let n = bytes.len() / 4;
        assert!(n <= self.dim, "row data longer than accumulator width");
        let dst = &mut self.data[row * self.dim..(row + 1) * self.dim];
        for (d, c) in dst.iter_mut().zip(bytes.chunks_exact(4)) {
            *d = d.wrapping_add(i32::from_le_bytes([c[0], c[1], c[2], c[3]]));
        }
        let _ = n;
    }

    /// Overwrites row `row` from int8 DMA bytes widened to int32 (the
    /// shrunk-mvin path), zero-filling the remainder.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `bytes` is longer than a row.
    pub fn write_row_widen(&mut self, row: usize, bytes: &[u8]) {
        assert!(row < self.rows, "accumulator row {row} out of range");
        assert!(
            bytes.len() <= self.dim,
            "row data longer than accumulator width"
        );
        let dst = &mut self.data[row * self.dim..(row + 1) * self.dim];
        for (d, &b) in dst.iter_mut().zip(bytes) {
            *d = b as i8 as i32;
        }
        dst[bytes.len()..].fill(0);
    }

    /// Adds int8 DMA bytes (widened to int32) elementwise into row `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range or `bytes` is longer than a row.
    pub fn accumulate_row_widen(&mut self, row: usize, bytes: &[u8]) {
        assert!(row < self.rows, "accumulator row {row} out of range");
        assert!(
            bytes.len() <= self.dim,
            "row data longer than accumulator width"
        );
        let dst = &mut self.data[row * self.dim..(row + 1) * self.dim];
        for (d, &b) in dst.iter_mut().zip(bytes) {
            *d = d.wrapping_add(b as i8 as i32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratchpad_rows_are_isolated() {
        let mut sp = Scratchpad::new(4, 8, 4);
        sp.write_row(1, &[1, 2, 3, 4]);
        sp.write_row(2, &[5, 6, 7, 8]);
        assert_eq!(sp.row(1), &[1, 2, 3, 4]);
        assert_eq!(sp.row(2), &[5, 6, 7, 8]);
        assert_eq!(sp.row(0), &[0, 0, 0, 0]);
    }

    #[test]
    fn partial_row_writes_zero_fill() {
        let mut sp = Scratchpad::new(4, 4, 2);
        sp.write_row(0, &[9, 9, 9, 9]);
        sp.write_row(0, &[1, 2]);
        assert_eq!(sp.row(0), &[1, 2, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn scratchpad_oob_read_panics() {
        let sp = Scratchpad::new(4, 4, 2);
        let _ = sp.row(4);
    }

    #[test]
    #[should_panic(expected = "longer than scratchpad width")]
    fn scratchpad_overwide_write_panics() {
        let mut sp = Scratchpad::new(4, 4, 2);
        sp.write_row(0, &[0; 5]);
    }

    #[test]
    fn accumulator_overwrite_vs_accumulate() {
        let mut acc = Accumulator::new(4, 4);
        acc.write_row(0, &[1, 2, 3, 4]);
        acc.accumulate_row(0, &[10, 20, 30, 40]);
        assert_eq!(acc.row(0), &[11, 22, 33, 44]);
        acc.write_row(0, &[5, 5, 5, 5]);
        assert_eq!(acc.row(0), &[5, 5, 5, 5]);
    }

    #[test]
    fn accumulator_wraps_like_hardware() {
        let mut acc = Accumulator::new(1, 1);
        acc.write_row(0, &[i32::MAX]);
        acc.accumulate_row(0, &[1]);
        assert_eq!(acc.row(0), &[i32::MIN]);
    }

    #[test]
    fn timing_model_is_exposed() {
        let mut sp = Scratchpad::new(16, 64, 4);
        let done = sp.timing_mut().access_row(0, 0);
        assert_eq!(done, 1);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_banking_panics() {
        let _ = Scratchpad::new(4, 10, 4);
    }
}
