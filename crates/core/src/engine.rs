//! The accelerator execution engine: a decoupled load / execute / store
//! scoreboard.
//!
//! Real Gemmini queues RoCC commands into a reorder buffer feeding three
//! independent units — load (mvin), execute (preload/compute), store
//! (mvout) — so DMA overlaps compute (double buffering falls out of the
//! software issuing mvins for the next tile while the current one
//! computes). [`Accelerator`] reproduces that: instructions are *issued* in
//! program order, but each lands on its unit as soon as the unit is free
//! and its scratchpad/accumulator row dependencies (RAW, WAR, WAW) have
//! resolved.
//!
//! Functional and timing state advance together: in functional mode
//! (a [`MemCtx`] with `data`), every instruction moves real bytes and the
//! matrix unit performs real arithmetic, validated against `gemmini-dnn`'s
//! reference operators; in timing-only mode the same cycle accounting runs
//! with no data movement.

use crate::config::{Dataflow, GemminiConfig};
use crate::dma::{MemCtx as DmaMemCtx, StreamDma};
use crate::isa::{Instruction, LocalAddr};
use crate::mesh::{MatrixUnit, MeshTiming};
use crate::metrics::Counter as MetricCounter;
use crate::peripherals::readout_row_into;
use crate::scratchpad::{Accumulator, Scratchpad};
use crate::trace::{AttributionKind, Component, CycleAttribution, Profiler, StallCause, Tracer};
use gemmini_dnn::graph::Activation;
use gemmini_mem::Cycle;
use gemmini_vm::translator::TranslateError;
use std::error::Error;
use std::fmt;

pub use crate::dma::MemCtx;

/// An error raised while executing an instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum AccelError {
    /// The DMA's translation failed (page fault / permission).
    Translate(TranslateError),
    /// A local address is malformed or out of range for this configuration.
    BadLocalAddress {
        /// The offending address.
        addr: LocalAddr,
        /// Why it was rejected.
        detail: String,
    },
    /// A compute was issued with no preceding preload.
    NoPreload,
    /// The instruction is not supported by this configuration.
    Unsupported(String),
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Translate(e) => write!(f, "dma translation failed: {e}"),
            Self::BadLocalAddress { addr, detail } => {
                write!(f, "bad local address {addr}: {detail}")
            }
            Self::NoPreload => write!(f, "compute issued before any preload"),
            Self::Unsupported(s) => write!(f, "unsupported operation: {s}"),
        }
    }
}

impl Error for AccelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Translate(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TranslateError> for AccelError {
    fn from(e: TranslateError) -> Self {
        Self::Translate(e)
    }
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Cycle at which the last instruction completed.
    pub finish: Cycle,
    /// Cycles the load unit was busy.
    pub load_busy: u64,
    /// Cycles the execute unit was busy.
    pub ex_busy: u64,
    /// Cycles the store unit was busy.
    pub store_busy: u64,
    /// MACs performed (counted in both functional and timing-only modes).
    pub macs: u64,
    /// mvin instructions executed.
    pub loads: u64,
    /// preload instructions executed.
    pub preloads: u64,
    /// compute instructions executed.
    pub computes: u64,
    /// mvout instructions executed.
    pub stores: u64,
}

impl ExecStats {
    /// Achieved fraction of peak MAC throughput up to `finish`.
    pub fn utilization(&self, peak_macs_per_cycle: u64) -> f64 {
        if self.finish == 0 {
            0.0
        } else {
            self.macs as f64 / (self.finish as f64 * peak_macs_per_cycle as f64)
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct CfgState {
    dataflow: Dataflow,
    activation: Activation,
    acc_scale: f32,
    ld_stride: u64,
    ld_shrink: bool,
    st_stride: u64,
}

impl Default for CfgState {
    fn default() -> Self {
        Self {
            dataflow: Dataflow::WeightStationary,
            activation: Activation::None,
            acc_scale: 1.0,
            ld_stride: 0,
            ld_shrink: false,
            st_stride: 0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PendingC {
    row: u32,
    accumulate: bool,
    b_cols: u16,
}

/// Reusable flat buffers for the functional hot path. Each issue clears and
/// refills what it needs; capacity persists across calls, so after the first
/// few tiles the steady state performs zero heap allocations (pinned by the
/// `alloc_guard` integration test).
#[derive(Debug, Default)]
struct Scratch {
    /// mvin landing zone: DMA bytes before the local-memory deposit.
    dma: Vec<u8>,
    /// Widened scratchpad-sourced bias rows for the WS compute path.
    d: Vec<i32>,
    /// Mesh output block (`a_rows * dim` int32s).
    out: Vec<i32>,
    /// mvout staging: read-out bytes handed to the DMA.
    store: Vec<u8>,
    /// Recycled output-stationary partial-sum buffer (one OS block is live
    /// at a time, so a single spare suffices).
    os_spare: Vec<i32>,
}

/// PE-resident output-stationary partial sums: `rows` rows of `dim` int32s,
/// flat. In timing-only mode `vals` stays empty and only `rows` (the block
/// height, which the flush's timing needs) is tracked.
#[derive(Debug)]
struct OsPartials {
    rows: usize,
    vals: Vec<i32>,
}

/// One generated accelerator instance: spatial array + local memories +
/// DMA + the ROB-style scoreboard.
///
/// # Example
///
/// See the crate-level integration tests and `gemmini-soc`'s kernels; a
/// minimal flow is mvin → preload → compute → mvout:
///
/// ```no_run
/// use gemmini_core::{Accelerator, Instruction, config::GemminiConfig};
/// let mut accel = Accelerator::new(GemminiConfig::edge());
/// // ... build a MemCtx and issue instructions ...
/// ```
#[derive(Debug)]
pub struct Accelerator {
    config: GemminiConfig,
    timing: MeshTiming,
    matrix_unit: MatrixUnit,
    sp: Scratchpad,
    acc: Accumulator,
    dma: StreamDma,
    state: CfgState,
    load_free: Cycle,
    ex_free: Cycle,
    store_free: Cycle,
    sp_wr: Vec<Cycle>,
    sp_rd: Vec<Cycle>,
    acc_wr: Vec<Cycle>,
    acc_rd: Vec<Cycle>,
    pending_c: Option<PendingC>,
    b_ready: Cycle,
    /// Output-stationary mode: partial sums resident in the PEs, flushed to
    /// the accumulator by the next arming preload (or a Flush).
    os_c: Option<OsPartials>,
    scratch: Scratch,
    trace: Option<Vec<String>>,
    profiler: Profiler,
    stats: ExecStats,
}

impl Accelerator {
    /// Elaborates one accelerator instance.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`GemminiConfig::validate`].
    pub fn new(config: GemminiConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid Gemmini configuration: {e}");
        }
        let dim = config.dim();
        let sp_rows = config.sp_rows();
        let acc_rows = config.acc_rows();
        Self {
            timing: MeshTiming::from_config(&config),
            matrix_unit: MatrixUnit::new(dim),
            sp: Scratchpad::new(dim, sp_rows, config.sp_banks as u32),
            acc: Accumulator::new(dim, acc_rows),
            dma: StreamDma::new(),
            state: CfgState::default(),
            load_free: 0,
            ex_free: 0,
            store_free: 0,
            sp_wr: vec![0; sp_rows],
            sp_rd: vec![0; sp_rows],
            acc_wr: vec![0; acc_rows],
            acc_rd: vec![0; acc_rows],
            pending_c: None,
            b_ready: 0,
            os_c: None,
            scratch: Scratch::default(),
            trace: None,
            profiler: Profiler::new(),
            config,
            stats: ExecStats::default(),
        }
    }

    /// Attaches a trace-event sink; pass a [`Tracer`] clone tagged with
    /// this accelerator's core id. Attribution recording is always on;
    /// this only controls span emission for the Chrome export.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.profiler.set_tracer(tracer);
    }

    /// Attaches a live-metrics handle, shared with the scratchpad's bank
    /// timing model: compute tiles, DMA bursts and bank conflicts record
    /// into it. Pure observation — timing and results are unaffected.
    pub fn set_metrics(&mut self, metrics: crate::metrics::Metrics) {
        self.sp.timing_mut().set_metrics(metrics.clone());
        self.profiler.set_metrics(metrics);
    }

    /// The exact cycle-attribution of the run so far: every cycle of
    /// `[0, finish)` classified into one bucket.
    pub fn attribution(&self) -> CycleAttribution {
        self.profiler.attribution(self.stats.finish)
    }

    /// The earliest cycle any future operation can start at — every
    /// unit's next interval begins at or after its free time.
    fn attribution_frontier(&self) -> Cycle {
        self.load_free.min(self.ex_free).min(self.store_free)
    }

    /// Unconditionally folds the attribution log's settled intervals (it
    /// normally compacts itself at a size threshold). The allocation-guard
    /// test calls this between its warm-up and measured passes so the
    /// measured pass starts from the log's steady state.
    pub fn compact_attribution(&mut self) {
        self.profiler.compact(self.attribution_frontier());
    }

    /// The configuration this instance was elaborated from.
    pub fn config(&self) -> &GemminiConfig {
        &self.config
    }

    /// Current time: when every unit has drained.
    pub fn now(&self) -> Cycle {
        self.load_free.max(self.ex_free).max(self.store_free)
    }

    /// Prevents any unit from starting work before `cycle` — used when the
    /// host CPU must finish something (e.g. software im2col) first.
    pub fn advance_to(&mut self, cycle: Cycle) {
        self.load_free = self.load_free.max(cycle);
        self.ex_free = self.ex_free.max(cycle);
        self.store_free = self.store_free.max(cycle);
    }

    /// Charges `cycles` of peripheral work (pooling, transposition) on the
    /// execute unit.
    pub fn charge_execute(&mut self, cycles: u64) {
        let start = self.ex_free;
        self.ex_free += cycles;
        self.profiler.span(
            AttributionKind::Compute,
            Component::ExecuteUnit,
            "peripheral",
            start,
            self.ex_free,
            StallCause::None,
        );
        self.stats.ex_busy += cycles;
        self.stats.finish = self.stats.finish.max(self.ex_free);
    }

    /// Charges peripheral work that cannot start before `not_before`
    /// (e.g. pooling that consumes a finished DMA stream). Returns the
    /// completion cycle.
    pub fn charge_execute_after(&mut self, not_before: Cycle, cycles: u64) -> Cycle {
        let start = self.ex_free.max(not_before);
        self.ex_free = start + cycles;
        self.profiler.span(
            AttributionKind::Compute,
            Component::ExecuteUnit,
            "peripheral",
            start,
            self.ex_free,
            StallCause::None,
        );
        self.stats.ex_busy += cycles;
        self.stats.finish = self.stats.finish.max(self.ex_free);
        self.ex_free
    }

    /// Streams `rows` rows from memory directly into a peripheral unit
    /// (no local-memory deposit) — the input side of the pooling block.
    /// Returns the completion cycle.
    ///
    /// # Errors
    ///
    /// Propagates DMA translation failures.
    pub fn mvin_raw(
        &mut self,
        ctx: &mut MemCtx<'_>,
        dram_addr: gemmini_mem::addr::VirtAddr,
        rows: usize,
        row_bytes: u64,
        stride: u64,
    ) -> Result<Cycle, AccelError> {
        let start = self.load_free;
        // The stream feeds the peripheral directly; nothing is deposited,
        // so no destination buffer is needed even functionally.
        let xfer = self.dma.mvin(
            &mut self.profiler,
            ctx,
            start,
            dram_addr,
            rows,
            row_bytes,
            stride,
            None,
        )?;
        self.profiler.span(
            AttributionKind::Load,
            Component::LoadUnit,
            "mvin-raw",
            start,
            xfer.done,
            StallCause::None,
        );
        self.profiler.maybe_compact(self.attribution_frontier());
        self.stats.load_busy += xfer.done - start;
        self.stats.loads += 1;
        self.stats.finish = self.stats.finish.max(xfer.done);
        self.load_free = xfer.done;
        Ok(xfer.done)
    }

    /// The on-the-fly im2col block's engine hook: streams *raw image-format
    /// bytes* from memory (`raw_rows` rows of `raw_row_bytes`, `raw_stride`
    /// apart, starting at `dram_addr`) while depositing the *expanded patch
    /// rows* into scratchpad rows `sp_row..sp_row + patch_rows`.
    ///
    /// Timing and memory traffic follow the raw stream (that is the whole
    /// point of the block: k²-fold less DRAM traffic than a materialized
    /// patch matrix); functional contents come from `patch_data` — flat,
    /// `patch_rows` equal-length rows packed back to back — when running
    /// functionally.
    ///
    /// # Errors
    ///
    /// Propagates DMA translation failures and rejects out-of-range
    /// scratchpad rows.
    ///
    /// # Panics
    ///
    /// Panics if `patch_data` is provided with a length not divisible into
    /// `patch_rows` equal rows.
    #[allow(clippy::too_many_arguments)]
    pub fn mvin_im2col(
        &mut self,
        ctx: &mut MemCtx<'_>,
        dram_addr: gemmini_mem::addr::VirtAddr,
        raw_rows: usize,
        raw_row_bytes: u64,
        raw_stride: u64,
        sp_row: u32,
        patch_rows: u16,
        patch_data: Option<&[i8]>,
    ) -> Result<Cycle, AccelError> {
        if let Some(d) = patch_data {
            assert!(
                patch_rows > 0 && d.len() % patch_rows as usize == 0,
                "patch_data length must divide into patch_rows equal rows"
            );
        }
        let local = LocalAddr::Sp { row: sp_row };
        self.check_sp_range(local, sp_row, patch_rows)?;
        let dep = Self::range_max(&self.sp_wr, sp_row, patch_rows).max(Self::range_max(
            &self.sp_rd,
            sp_row,
            patch_rows,
        ));
        let start = self.load_free.max(dep);
        // The raw stream feeds the im2col block, not the scratchpad, so
        // the DMA needs no destination buffer.
        let xfer = self.dma.mvin(
            &mut self.profiler,
            ctx,
            start,
            dram_addr,
            raw_rows,
            raw_row_bytes,
            raw_stride,
            None,
        )?;
        // Patch generation streams at one row per cycle behind the DMA.
        let done = xfer.done + patch_rows as u64;
        self.profiler.span(
            AttributionKind::Load,
            Component::LoadUnit,
            "mvin-im2col",
            start,
            done,
            StallCause::None,
        );
        self.profiler.maybe_compact(self.attribution_frontier());
        if ctx.data.is_some() {
            if let Some(flat) = patch_data {
                let row_len = flat.len() / patch_rows as usize;
                for i in 0..patch_rows as usize {
                    self.sp
                        .write_row(sp_row as usize + i, &flat[i * row_len..(i + 1) * row_len]);
                }
            }
        }
        Self::mark(&mut self.sp_wr, sp_row, patch_rows, done);
        self.stats.load_busy += done - start;
        self.stats.loads += 1;
        self.stats.finish = self.stats.finish.max(done);
        self.load_free = done;
        Ok(done)
    }

    /// Streams `rows` rows of `row_bytes` bytes to memory directly from a
    /// peripheral unit (e.g. the pooling block's output), bypassing the
    /// local memories. `data` supplies the bytes when running functionally,
    /// packed `rows * row_bytes` flat.
    ///
    /// # Errors
    ///
    /// Propagates DMA translation failures.
    pub fn mvout_raw(
        &mut self,
        ctx: &mut MemCtx<'_>,
        dram_addr: gemmini_mem::addr::VirtAddr,
        rows: usize,
        row_bytes: u64,
        stride: u64,
        data: Option<&[u8]>,
    ) -> Result<Cycle, AccelError> {
        let start = self.store_free.max(self.ex_free);
        let xfer = self.dma.mvout(
            &mut self.profiler,
            ctx,
            start,
            dram_addr,
            rows,
            row_bytes,
            stride,
            data,
        )?;
        self.profiler.span(
            AttributionKind::Store,
            Component::StoreUnit,
            "mvout-raw",
            start,
            xfer.done,
            StallCause::None,
        );
        self.profiler.maybe_compact(self.attribution_frontier());
        self.stats.store_busy += xfer.done - start;
        self.stats.stores += 1;
        self.stats.finish = self.stats.finish.max(xfer.done);
        self.store_free = xfer.done;
        Ok(xfer.done)
    }

    /// Execution statistics so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// The DMA engine's statistics.
    pub fn dma_stats(&self) -> &crate::dma::DmaStats {
        self.dma.stats()
    }

    /// Direct read access to the scratchpad (tests / debugging).
    pub fn scratchpad(&self) -> &Scratchpad {
        &self.sp
    }

    /// Direct read access to the accumulator (tests / debugging).
    pub fn accumulator(&self) -> &Accumulator {
        &self.acc
    }

    fn check_sp_range(&self, addr: LocalAddr, row: u32, rows: u16) -> Result<(), AccelError> {
        if (row as usize + rows as usize) > self.sp.rows() {
            return Err(AccelError::BadLocalAddress {
                addr,
                detail: format!(
                    "rows {row}..{} exceed scratchpad ({} rows)",
                    row as usize + rows as usize,
                    self.sp.rows()
                ),
            });
        }
        Ok(())
    }

    fn check_acc_range(&self, addr: LocalAddr, row: u32, rows: u16) -> Result<(), AccelError> {
        if (row as usize + rows as usize) > self.acc.rows() {
            return Err(AccelError::BadLocalAddress {
                addr,
                detail: format!(
                    "rows {row}..{} exceed accumulator ({} rows)",
                    row as usize + rows as usize,
                    self.acc.rows()
                ),
            });
        }
        Ok(())
    }

    /// Rejects block dimensions larger than the spatial array.
    fn check_dims(&self, what: &str, rows: u16, cols: u16) -> Result<(), AccelError> {
        let dim = self.config.dim() as u16;
        if rows > dim || cols > dim {
            return Err(AccelError::Unsupported(format!(
                "{what} block {rows}x{cols} exceeds the {dim}x{dim} array"
            )));
        }
        Ok(())
    }

    fn range_max(v: &[Cycle], lo: u32, n: u16) -> Cycle {
        v[lo as usize..lo as usize + n as usize]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    fn mark(v: &mut [Cycle], lo: u32, n: u16, t: Cycle) {
        for x in &mut v[lo as usize..lo as usize + n as usize] {
            *x = (*x).max(t);
        }
    }

    /// Starts recording an instruction trace (one line per issued
    /// instruction, annotated with its completion cycle). Replaces any
    /// previous trace.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&[String]> {
        self.trace.as_deref()
    }

    /// Issues one instruction; returns the cycle at which it completes.
    ///
    /// # Errors
    ///
    /// See [`AccelError`]. On error, timing state may include partially
    /// executed work (as on hardware, where a faulting DMA has already
    /// moved earlier rows).
    pub fn issue(&mut self, ctx: &mut MemCtx<'_>, instr: Instruction) -> Result<Cycle, AccelError> {
        let result = self.issue_inner(ctx, instr);
        self.profiler.maybe_compact(self.attribution_frontier());
        if let Some(trace) = self.trace.as_mut() {
            match &result {
                Ok(done) => trace.push(format!("[{done:>10}] {instr}")),
                Err(e) => trace.push(format!("[     error] {instr}: {e}")),
            }
        }
        result
    }

    fn issue_inner(
        &mut self,
        ctx: &mut MemCtx<'_>,
        instr: Instruction,
    ) -> Result<Cycle, AccelError> {
        match instr {
            Instruction::ConfigEx {
                dataflow,
                activation,
                acc_scale,
            } => {
                self.state.dataflow = dataflow;
                self.state.activation = activation;
                self.state.acc_scale = acc_scale;
                self.ex_free += 1;
                Ok(self.ex_free)
            }
            Instruction::ConfigLd { stride, shrink } => {
                self.state.ld_stride = stride;
                self.state.ld_shrink = shrink;
                self.load_free += 1;
                Ok(self.load_free)
            }
            Instruction::ConfigSt { stride } => {
                self.state.st_stride = stride;
                self.store_free += 1;
                Ok(self.store_free)
            }
            Instruction::Mvin {
                dram_addr,
                local,
                rows,
                cols,
            } => self.do_mvin(ctx, dram_addr, local, rows, cols),
            Instruction::Mvout {
                dram_addr,
                local,
                rows,
                cols,
            } => self.do_mvout(ctx, dram_addr, local, rows, cols),
            Instruction::Preload {
                b,
                c,
                b_rows,
                b_cols,
            } => self.do_preload(ctx.data.is_some(), b, c, b_rows, b_cols),
            Instruction::ComputePreloaded {
                a,
                d,
                a_rows,
                a_cols,
            }
            | Instruction::ComputeAccumulated {
                a,
                d,
                a_rows,
                a_cols,
            } => {
                self.profiler.metrics().inc(MetricCounter::TilesIssued);
                let done = self.do_compute(ctx, a, d, a_rows, a_cols);
                if done.is_ok() {
                    self.profiler.metrics().inc(MetricCounter::TilesRetired);
                }
                done
            }
            Instruction::Flush => {
                self.flush_os_partials(ctx.data.is_some())?;
                let t = self.now();
                self.advance_to(t);
                Ok(t)
            }
        }
    }

    fn do_mvin(
        &mut self,
        ctx: &mut MemCtx<'_>,
        dram_addr: gemmini_mem::addr::VirtAddr,
        local: LocalAddr,
        rows: u16,
        cols: u16,
    ) -> Result<Cycle, AccelError> {
        // mvin moves up to `dim` elements per local row; row counts are
        // only bounded by the local memory itself.
        self.check_dims("mvin", 0, cols)?;
        let (elem_bytes, dep_start) = match local {
            LocalAddr::Sp { row } => {
                self.check_sp_range(local, row, rows)?;
                let dep = Self::range_max(&self.sp_wr, row, rows).max(Self::range_max(
                    &self.sp_rd,
                    row,
                    rows,
                ));
                (1u64, dep)
            }
            LocalAddr::Acc { row, .. } => {
                self.check_acc_range(local, row, rows)?;
                let dep = Self::range_max(&self.acc_wr, row, rows).max(Self::range_max(
                    &self.acc_rd,
                    row,
                    rows,
                ));
                (if self.state.ld_shrink { 1u64 } else { 4u64 }, dep)
            }
            LocalAddr::None => {
                return Err(AccelError::BadLocalAddress {
                    addr: local,
                    detail: "mvin needs a destination".to_string(),
                })
            }
        };
        let row_bytes = cols as u64 * elem_bytes;
        let stride = if self.state.ld_stride == 0 {
            row_bytes
        } else {
            self.state.ld_stride
        };
        let start = self.load_free.max(dep_start);
        let xfer = self.dma.mvin(
            &mut self.profiler,
            ctx,
            start,
            dram_addr,
            rows as usize,
            row_bytes,
            stride,
            Some(&mut self.scratch.dma),
        )?;
        self.profiler.span(
            AttributionKind::Load,
            Component::LoadUnit,
            "mvin",
            start,
            xfer.done,
            StallCause::None,
        );

        // Functional: deposit rows straight from the flat DMA arena.
        if ctx.data.is_some() {
            let rb = row_bytes as usize;
            match local {
                LocalAddr::Sp { row } => {
                    for i in 0..rows as usize {
                        self.sp.write_row_bytes(
                            row as usize + i,
                            &self.scratch.dma[i * rb..(i + 1) * rb],
                        );
                    }
                }
                LocalAddr::Acc { row, accumulate } => {
                    for i in 0..rows as usize {
                        let bytes = &self.scratch.dma[i * rb..(i + 1) * rb];
                        let r = row as usize + i;
                        match (self.state.ld_shrink, accumulate) {
                            // Widen int8 payload to int32 on the way in.
                            (true, false) => self.acc.write_row_widen(r, bytes),
                            (true, true) => self.acc.accumulate_row_widen(r, bytes),
                            (false, false) => self.acc.write_row_i32le(r, bytes),
                            (false, true) => self.acc.accumulate_row_i32le(r, bytes),
                        }
                    }
                }
                LocalAddr::None => unreachable!(),
            }
        }

        match local {
            LocalAddr::Sp { row } => Self::mark(&mut self.sp_wr, row, rows, xfer.done),
            LocalAddr::Acc { row, .. } => Self::mark(&mut self.acc_wr, row, rows, xfer.done),
            LocalAddr::None => unreachable!(),
        }
        self.stats.load_busy += xfer.done - start;
        self.stats.loads += 1;
        self.stats.finish = self.stats.finish.max(xfer.done);
        self.load_free = xfer.done;
        Ok(xfer.done)
    }

    /// Returns an output-stationary partial-sum buffer to the arena so the
    /// next arming preload reuses its capacity.
    fn recycle_os(&mut self, mut os: OsPartials) {
        os.vals.clear();
        self.scratch.os_spare = os.vals;
    }

    /// Writes PE-resident output-stationary partial sums to the armed
    /// accumulator destination and disarms. No-op when nothing is pending.
    fn flush_os_partials(&mut self, functional: bool) -> Result<(), AccelError> {
        let taken = self.os_c.take();
        let Some(dest) = self.pending_c else {
            if let Some(os) = taken {
                self.recycle_os(os);
            }
            return Ok(());
        };
        let Some(os) = taken else {
            return Ok(());
        };
        let rows = os.rows as u16;
        if rows == 0 {
            self.recycle_os(os);
            return Ok(());
        }
        self.check_acc_range(
            LocalAddr::Acc {
                row: dest.row,
                accumulate: dest.accumulate,
            },
            dest.row,
            rows,
        )?;
        let start = self
            .ex_free
            .max(Self::range_max(&self.acc_wr, dest.row, rows))
            .max(Self::range_max(&self.acc_rd, dest.row, rows));
        // Results stream out one row per cycle and drain the pipeline once.
        let done = start + rows as u64 + self.timing.drain_cycles();
        self.profiler.span(
            AttributionKind::Compute,
            Component::ExecuteUnit,
            "os-flush",
            start,
            done,
            StallCause::None,
        );
        if functional {
            let dim = self.config.dim();
            for i in 0..os.rows {
                let row_vals = &os.vals[i * dim..(i + 1) * dim];
                if dest.accumulate {
                    self.acc.accumulate_row(dest.row as usize + i, row_vals);
                } else {
                    self.acc.write_row(dest.row as usize + i, row_vals);
                }
            }
        }
        Self::mark(&mut self.acc_wr, dest.row, rows, done);
        self.stats.ex_busy += done - start;
        self.stats.finish = self.stats.finish.max(done);
        self.ex_free = done;
        self.recycle_os(os);
        Ok(())
    }

    fn do_preload(
        &mut self,
        functional: bool,
        b: LocalAddr,
        c: LocalAddr,
        b_rows: u16,
        b_cols: u16,
    ) -> Result<Cycle, AccelError> {
        self.check_dims("preload", b_rows, b_cols)?;
        // Output-stationary: an arming preload first drains the previous
        // block's PE-resident partials to their accumulator destination.
        if matches!(self.state.dataflow, Dataflow::OutputStationary) {
            self.flush_os_partials(functional)?;
        }
        let c_dest = match c {
            LocalAddr::Acc { row, accumulate } => {
                self.check_acc_range(c, row, b_cols.max(1))?;
                PendingC {
                    row,
                    accumulate,
                    b_cols,
                }
            }
            other => {
                return Err(AccelError::BadLocalAddress {
                    addr: other,
                    detail: "preload destination must be an accumulator address".to_string(),
                })
            }
        };

        let mut start = self.ex_free;
        match b {
            LocalAddr::Sp { row } => {
                self.check_sp_range(b, row, b_rows)?;
                start = start.max(Self::range_max(&self.sp_wr, row, b_rows));
                // Functional: load B into the array, zero-copy from the
                // scratchpad's contiguous row region.
                let dim = self.sp.dim();
                self.matrix_unit.preload_flat(
                    self.sp.rows_flat(row as usize, b_rows as usize),
                    b_rows as usize,
                    b_cols as usize,
                    dim,
                );
                let done = start + self.timing.preload_cycles(b_rows as usize);
                Self::mark(&mut self.sp_rd, row, b_rows, done);
            }
            LocalAddr::None => {
                // Keep the currently loaded operand.
            }
            other => {
                return Err(AccelError::BadLocalAddress {
                    addr: other,
                    detail: "preload operand must be a scratchpad address".to_string(),
                })
            }
        }
        let done = start + self.timing.preload_cycles(b_rows as usize);
        self.profiler.span(
            AttributionKind::Compute,
            Component::ExecuteUnit,
            "preload",
            start,
            done,
            StallCause::None,
        );
        self.b_ready = done;
        self.pending_c = Some(c_dest);
        if matches!(self.state.dataflow, Dataflow::OutputStationary) {
            // Arm a fresh PE-resident output block, reusing the recycled
            // buffer's capacity.
            let vals = std::mem::take(&mut self.scratch.os_spare);
            self.os_c = Some(OsPartials { rows: 0, vals });
        }
        self.stats.ex_busy += done - start;
        self.stats.preloads += 1;
        self.stats.finish = self.stats.finish.max(done);
        self.ex_free = done;
        Ok(done)
    }

    /// Output-stationary compute: A streams through the rows while B (the
    /// `d` operand) streams through the columns; products accumulate in the
    /// PE-resident output block armed by the last preload.
    fn do_compute_os(
        &mut self,
        ctx: &mut MemCtx<'_>,
        a: LocalAddr,
        d: LocalAddr,
        a_rows: u16,
        a_cols: u16,
    ) -> Result<Cycle, AccelError> {
        self.check_dims("compute", a_rows, a_cols)?;
        let c = self.pending_c.ok_or(AccelError::NoPreload)?;
        if self.os_c.is_none() {
            return Err(AccelError::NoPreload);
        }
        let a_row = match a {
            LocalAddr::Sp { row } => {
                self.check_sp_range(a, row, a_rows)?;
                row
            }
            other => {
                return Err(AccelError::BadLocalAddress {
                    addr: other,
                    detail: "compute operand A must be a scratchpad address".to_string(),
                })
            }
        };
        let b_row = match d {
            LocalAddr::Sp { row } => {
                self.check_sp_range(d, row, a_cols.max(1))?;
                row
            }
            other => {
                return Err(AccelError::BadLocalAddress {
                    addr: other,
                    detail: "output-stationary compute streams B through the d operand".to_string(),
                })
            }
        };

        let start = self
            .ex_free
            .max(self.b_ready)
            .max(Self::range_max(&self.sp_wr, a_row, a_rows))
            .max(Self::range_max(&self.sp_wr, b_row, a_cols.max(1)));
        // Both operands stream simultaneously; no accumulator round trip.
        let done = start + a_rows.max(a_cols).max(1) as u64 + 1;
        self.profiler.span(
            AttributionKind::Compute,
            Component::Mesh,
            "compute-os",
            start,
            done,
            StallCause::None,
        );

        if ctx.data.is_some() {
            let dim = self.config.dim();
            let a_flat = self.sp.rows_flat(a_row as usize, a_rows as usize);
            let b_flat = self.sp.rows_flat(b_row as usize, a_cols as usize);
            let os = self.os_c.as_mut().expect("armed above");
            if os.rows < a_rows as usize {
                // Grow the flat block, preserving existing partials.
                os.vals.resize(a_rows as usize * dim, 0);
                os.rows = a_rows as usize;
            }
            // k-middle / j-inner: the inner loop reads one contiguous B row
            // and updates one contiguous output row. int32 wrapping adds
            // commute, so the result is identical to the j-outer form.
            for i in 0..a_rows as usize {
                let a_vals = &a_flat[i * dim..i * dim + a_cols as usize];
                let out_row = &mut os.vals[i * dim..(i + 1) * dim];
                for (kk, &a_val) in a_vals.iter().enumerate() {
                    let av = a_val as i32;
                    let b_vals = &b_flat[kk * dim..(kk + 1) * dim];
                    for (out, &bv) in out_row.iter_mut().zip(b_vals) {
                        *out = out.wrapping_add(av * bv as i32);
                    }
                }
            }
        } else if let Some(os) = self.os_c.as_mut() {
            // Track the block height for the flush's timing in
            // timing-only mode.
            os.rows = os.rows.max(a_rows as usize);
        }

        self.stats.macs += a_rows as u64 * a_cols as u64 * c.b_cols.max(1) as u64;
        Self::mark(&mut self.sp_rd, a_row, a_rows, done);
        Self::mark(&mut self.sp_rd, b_row, a_cols.max(1), done);
        self.stats.ex_busy += done - start;
        self.stats.computes += 1;
        self.stats.finish = self.stats.finish.max(done);
        self.ex_free = done;
        Ok(done)
    }

    fn do_compute(
        &mut self,
        ctx: &mut MemCtx<'_>,
        a: LocalAddr,
        d: LocalAddr,
        a_rows: u16,
        a_cols: u16,
    ) -> Result<Cycle, AccelError> {
        if matches!(self.state.dataflow, Dataflow::OutputStationary) {
            return self.do_compute_os(ctx, a, d, a_rows, a_cols);
        }
        self.check_dims("compute", a_rows, a_cols)?;
        let c = self.pending_c.ok_or(AccelError::NoPreload)?;
        let a_row = match a {
            LocalAddr::Sp { row } => {
                self.check_sp_range(a, row, a_rows)?;
                row
            }
            other => {
                return Err(AccelError::BadLocalAddress {
                    addr: other,
                    detail: "compute operand A must be a scratchpad address".to_string(),
                })
            }
        };
        self.check_acc_range(
            LocalAddr::Acc {
                row: c.row,
                accumulate: c.accumulate,
            },
            c.row,
            a_rows,
        )?;

        let mut start = self
            .ex_free
            .max(self.b_ready)
            .max(Self::range_max(&self.sp_wr, a_row, a_rows))
            .max(Self::range_max(&self.acc_wr, c.row, a_rows))
            .max(Self::range_max(&self.acc_rd, c.row, a_rows));

        // Optional bias operand: resolve hazards here; the functional view
        // is built below (accumulator-sourced bias reads zero-copy,
        // scratchpad-sourced bias widens into the reused arena).
        match d {
            LocalAddr::None => {}
            LocalAddr::Acc { row, .. } => {
                self.check_acc_range(d, row, a_rows)?;
                start = start.max(Self::range_max(&self.acc_wr, row, a_rows));
            }
            LocalAddr::Sp { row } => {
                self.check_sp_range(d, row, a_rows)?;
                start = start.max(Self::range_max(&self.sp_wr, row, a_rows));
            }
        }

        let done = start + self.timing.compute_cycles(a_rows as usize);
        self.profiler.span(
            AttributionKind::Compute,
            Component::Mesh,
            "compute",
            start,
            done,
            StallCause::None,
        );

        // Functional compute: flat strided operand views into the local
        // memories, output into the reused arena, no per-tile allocation.
        if ctx.data.is_some() {
            let dim = self.config.dim();
            if let LocalAddr::Sp { row } = d {
                let src = self.sp.rows_flat(row as usize, a_rows as usize);
                self.scratch.d.clear();
                self.scratch.d.extend(src.iter().map(|&x| x as i32));
            }
            self.scratch.out.clear();
            self.scratch.out.resize(a_rows as usize * dim, 0);
            let a_flat = self.sp.rows_flat(a_row as usize, a_rows as usize);
            let d_view: Option<(&[i32], usize)> = match d {
                LocalAddr::None => None,
                LocalAddr::Acc { row, .. } => {
                    Some((self.acc.rows_flat(row as usize, a_rows as usize), dim))
                }
                LocalAddr::Sp { .. } => Some((self.scratch.d.as_slice(), dim)),
            };
            self.matrix_unit.compute_into(
                a_flat,
                a_rows as usize,
                a_cols as usize,
                dim,
                d_view,
                &mut self.scratch.out,
            );
            for i in 0..a_rows as usize {
                let row_vals = &self.scratch.out[i * dim..(i + 1) * dim];
                if c.accumulate {
                    self.acc.accumulate_row(c.row as usize + i, row_vals);
                } else {
                    self.acc.write_row(c.row as usize + i, row_vals);
                }
            }
        }

        self.stats.macs += a_rows as u64 * a_cols as u64 * c.b_cols.max(1) as u64;
        Self::mark(&mut self.sp_rd, a_row, a_rows, done);
        Self::mark(&mut self.acc_wr, c.row, a_rows, done);
        self.stats.ex_busy += done - start;
        self.stats.computes += 1;
        self.stats.finish = self.stats.finish.max(done);
        self.ex_free = done;
        Ok(done)
    }

    fn do_mvout(
        &mut self,
        ctx: &mut MemCtx<'_>,
        dram_addr: gemmini_mem::addr::VirtAddr,
        local: LocalAddr,
        rows: u16,
        cols: u16,
    ) -> Result<Cycle, AccelError> {
        self.check_dims("mvout", 0, cols)?;
        // Stage the read-out rows flat in the reused store arena; the
        // accumulator path applies the activation/scale datapath per value
        // on the way.
        let functional = ctx.data.is_some();
        if functional {
            self.scratch.store.clear();
        }
        let dep: Cycle = match local {
            LocalAddr::Acc { row, .. } => {
                self.check_acc_range(local, row, rows)?;
                if functional {
                    for i in 0..rows as usize {
                        readout_row_into(
                            &self.acc.row(row as usize + i)[..cols as usize],
                            self.state.activation,
                            self.state.acc_scale,
                            &mut self.scratch.store,
                        );
                    }
                }
                Self::range_max(&self.acc_wr, row, rows)
            }
            LocalAddr::Sp { row } => {
                self.check_sp_range(local, row, rows)?;
                if functional {
                    for i in 0..rows as usize {
                        self.scratch.store.extend(
                            self.sp.row(row as usize + i)[..cols as usize]
                                .iter()
                                .map(|&v| v as u8),
                        );
                    }
                }
                Self::range_max(&self.sp_wr, row, rows)
            }
            LocalAddr::None => {
                return Err(AccelError::BadLocalAddress {
                    addr: local,
                    detail: "mvout needs a source".to_string(),
                })
            }
        };

        let row_bytes = cols as u64; // outputs are int8
        let stride = if self.state.st_stride == 0 {
            row_bytes
        } else {
            self.state.st_stride
        };
        let start = self.store_free.max(dep);
        let xfer = self.dma.mvout(
            &mut self.profiler,
            ctx,
            start,
            dram_addr,
            rows as usize,
            row_bytes,
            stride,
            functional.then_some(&self.scratch.store[..]),
        )?;
        self.profiler.span(
            AttributionKind::Store,
            Component::StoreUnit,
            "mvout",
            start,
            xfer.done,
            StallCause::None,
        );

        match local {
            LocalAddr::Acc { row, .. } => Self::mark(&mut self.acc_rd, row, rows, xfer.done),
            LocalAddr::Sp { row } => Self::mark(&mut self.sp_rd, row, rows, xfer.done),
            LocalAddr::None => unreachable!(),
        }
        self.stats.store_busy += xfer.done - start;
        self.stats.stores += 1;
        self.stats.finish = self.stats.finish.max(xfer.done);
        self.store_free = xfer.done;
        Ok(xfer.done)
    }
}

// Convert DmaMemCtx so the pub use above stays coherent if the alias moves.
#[allow(dead_code)]
type EngineCtxCheck<'a> = DmaMemCtx<'a>;

#[cfg(test)]
mod tests {
    use super::*;
    use gemmini_dnn::ops::matmul;
    use gemmini_dnn::quant::{requantize_tensor, QuantParams};
    use gemmini_dnn::tensor::Tensor;
    use gemmini_mem::addr::{VirtAddr, PAGE_SIZE};
    use gemmini_mem::dram::MainMemory;
    use gemmini_mem::MemorySystem;
    use gemmini_vm::page::FrameAllocator;
    use gemmini_vm::page_table::AddressSpace;
    use gemmini_vm::translator::{TranslationConfig, TranslationSystem};

    struct Rig {
        space: AddressSpace,
        translation: TranslationSystem,
        mem: MemorySystem,
        data: MainMemory,
        base: VirtAddr,
    }

    fn rig() -> Rig {
        let mut frames = FrameAllocator::new();
        let mut space = AddressSpace::new(&mut frames);
        let base = space.alloc(&mut frames, 256 * PAGE_SIZE);
        Rig {
            space,
            translation: TranslationSystem::new(TranslationConfig::default()),
            mem: MemorySystem::default(),
            data: MainMemory::new(),
            base,
        }
    }

    impl Rig {
        fn ctx(&mut self) -> MemCtx<'_> {
            MemCtx {
                space: &self.space,
                translation: &mut self.translation,
                mem: &mut self.mem,
                data: Some(&mut self.data),
                port: 0,
            }
        }

        fn timing_ctx(&mut self) -> MemCtx<'_> {
            MemCtx {
                space: &self.space,
                translation: &mut self.translation,
                mem: &mut self.mem,
                data: None,
                port: 0,
            }
        }

        /// Writes an i8 matrix to virtual memory, densely packed.
        fn store_matrix(&mut self, va: VirtAddr, t: &Tensor<i8>) {
            let bytes: Vec<u8> = t.as_slice().iter().map(|&x| x as u8).collect();
            let pa = self.space.translate(va).unwrap();
            // All tests allocate page-aligned regions larger than a page;
            // write page-by-page to respect the mapping.
            let mut off = 0usize;
            while off < bytes.len() {
                let va_cur = va.add(off as u64);
                let pa_cur = self.space.translate(va_cur).unwrap();
                let in_page = (PAGE_SIZE - va_cur.offset_in_page()) as usize;
                let n = in_page.min(bytes.len() - off);
                self.data.write(pa_cur, &bytes[off..off + n]);
                off += n;
            }
            let _ = pa;
        }

        /// Reads an i8 matrix back from virtual memory.
        fn load_matrix(&self, va: VirtAddr, rows: usize, cols: usize) -> Tensor<i8> {
            let mut out = vec![0u8; rows * cols];
            let mut off = 0usize;
            while off < out.len() {
                let va_cur = va.add(off as u64);
                let pa_cur = self.space.translate(va_cur).unwrap();
                let in_page = (PAGE_SIZE - va_cur.offset_in_page()) as usize;
                let n = in_page.min(out.len() - off);
                let mut buf = vec![0u8; n];
                self.data.read(pa_cur, &mut buf);
                out[off..off + n].copy_from_slice(&buf);
                off += n;
            }
            Tensor::from_vec(&[rows, cols], out.iter().map(|&b| b as i8).collect())
        }
    }

    fn sp(row: u32) -> LocalAddr {
        LocalAddr::Sp { row }
    }
    fn acc(row: u32, accumulate: bool) -> LocalAddr {
        LocalAddr::Acc { row, accumulate }
    }

    /// Runs a full 16x16 matmul through the instruction stream and checks
    /// the result against the reference golden model.
    #[test]
    fn end_to_end_tile_matmul_matches_reference() {
        let mut r = rig();
        let dim = 16;
        let a = Tensor::<i8>::random(&[dim, dim], 100);
        let b = Tensor::<i8>::random(&[dim, dim], 200);
        let va_a = r.base;
        let va_b = r.base.add(4096);
        let va_c = r.base.add(8192);
        r.store_matrix(va_a, &a);
        r.store_matrix(va_b, &b);

        let mut accel = Accelerator::new(GemminiConfig::edge());
        let mut ctx = r.ctx();
        let prog = [
            Instruction::ConfigEx {
                dataflow: crate::config::Dataflow::WeightStationary,
                activation: Activation::None,
                acc_scale: 1.0,
            },
            Instruction::Mvin {
                dram_addr: va_a,
                local: sp(0),
                rows: 16,
                cols: 16,
            },
            Instruction::Mvin {
                dram_addr: va_b,
                local: sp(16),
                rows: 16,
                cols: 16,
            },
            Instruction::Preload {
                b: sp(16),
                c: acc(0, false),
                b_rows: 16,
                b_cols: 16,
            },
            Instruction::ComputePreloaded {
                a: sp(0),
                d: LocalAddr::None,
                a_rows: 16,
                a_cols: 16,
            },
            Instruction::Mvout {
                dram_addr: va_c,
                local: acc(0, false),
                rows: 16,
                cols: 16,
            },
            Instruction::Flush,
        ];
        for i in prog {
            accel.issue(&mut ctx, i).unwrap();
        }

        let got = r.load_matrix(va_c, dim, dim);
        let want = requantize_tensor(&matmul(&a, &b), QuantParams::new(1.0));
        assert_eq!(got, want);
    }

    #[test]
    fn accumulation_across_k_tiles() {
        // C = A1*B1 + A2*B2 via two preload/compute pairs with the
        // accumulate bit on the second.
        let mut r = rig();
        let dim = 16;
        let a1 = Tensor::<i8>::random(&[dim, dim], 1);
        let b1 = Tensor::<i8>::random(&[dim, dim], 2);
        let a2 = Tensor::<i8>::random(&[dim, dim], 3);
        let b2 = Tensor::<i8>::random(&[dim, dim], 4);
        let (va_a1, va_b1) = (r.base, r.base.add(4096));
        let (va_a2, va_b2) = (r.base.add(8192), r.base.add(12288));
        let va_c = r.base.add(16384);
        r.store_matrix(va_a1, &a1);
        r.store_matrix(va_b1, &b1);
        r.store_matrix(va_a2, &a2);
        r.store_matrix(va_b2, &b2);

        let mut accel = Accelerator::new(GemminiConfig::edge());
        let mut ctx = r.ctx();
        let mv = |va, row| Instruction::Mvin {
            dram_addr: va,
            local: sp(row),
            rows: 16,
            cols: 16,
        };
        for i in [
            mv(va_a1, 0),
            mv(va_b1, 16),
            mv(va_a2, 32),
            mv(va_b2, 48),
            Instruction::Preload {
                b: sp(16),
                c: acc(0, false),
                b_rows: 16,
                b_cols: 16,
            },
            Instruction::ComputePreloaded {
                a: sp(0),
                d: LocalAddr::None,
                a_rows: 16,
                a_cols: 16,
            },
            Instruction::Preload {
                b: sp(48),
                c: acc(0, true),
                b_rows: 16,
                b_cols: 16,
            },
            Instruction::ComputePreloaded {
                a: sp(32),
                d: LocalAddr::None,
                a_rows: 16,
                a_cols: 16,
            },
            Instruction::Mvout {
                dram_addr: va_c,
                local: acc(0, false),
                rows: 16,
                cols: 16,
            },
        ] {
            accel.issue(&mut ctx, i).unwrap();
        }

        let got = r.load_matrix(va_c, dim, dim);
        let mut want = matmul(&a1, &b1);
        let second = matmul(&a2, &b2);
        for (w, s) in want.as_mut_slice().iter_mut().zip(second.as_slice()) {
            *w = w.wrapping_add(*s);
        }
        let want = requantize_tensor(&want, QuantParams::new(1.0));
        assert_eq!(got, want);
    }

    #[test]
    fn relu_and_scale_apply_on_mvout() {
        let mut r = rig();
        let a = Tensor::from_vec(&[1, 1], vec![10i8]);
        let b = Tensor::from_vec(&[1, 1], vec![-10i8]);
        r.store_matrix(r.base, &a);
        r.store_matrix(r.base.add(4096), &b);
        let va_c = r.base.add(8192);

        // 4x4 array is enough.
        let cfg = GemminiConfig {
            mesh_rows: 4,
            mesh_cols: 4,
            tile_rows: 1,
            tile_cols: 1,
            sp_capacity_kb: 4,
            sp_banks: 1,
            acc_capacity_kb: 1,
            ..GemminiConfig::edge()
        };
        let mut accel = Accelerator::new(cfg);
        let base = r.base;
        let mut ctx = r.ctx();
        for i in [
            Instruction::ConfigEx {
                dataflow: crate::config::Dataflow::WeightStationary,
                activation: Activation::Relu,
                acc_scale: 0.5,
            },
            Instruction::Mvin {
                dram_addr: base,
                local: sp(0),
                rows: 1,
                cols: 1,
            },
            Instruction::Mvin {
                dram_addr: base.add(4096),
                local: sp(1),
                rows: 1,
                cols: 1,
            },
            Instruction::Preload {
                b: sp(1),
                c: acc(0, false),
                b_rows: 1,
                b_cols: 1,
            },
            Instruction::ComputePreloaded {
                a: sp(0),
                d: LocalAddr::None,
                a_rows: 1,
                a_cols: 1,
            },
            Instruction::Mvout {
                dram_addr: va_c,
                local: acc(0, false),
                rows: 1,
                cols: 1,
            },
        ] {
            accel.issue(&mut ctx, i).unwrap();
        }
        // 10 * -10 = -100 -> relu -> 0.
        assert_eq!(r.load_matrix(va_c, 1, 1).as_slice(), &[0]);
    }

    #[test]
    fn bias_via_accumulator_mvin() {
        let mut r = rig();
        // D (bias) as int32 little-endian.
        let bias: Vec<u8> = 5i32.to_le_bytes().to_vec();
        let pa = r.space.translate(r.base.add(2 * 4096)).unwrap();
        r.data.write(pa, &bias);

        let a = Tensor::from_vec(&[1, 1], vec![3i8]);
        let b = Tensor::from_vec(&[1, 1], vec![4i8]);
        r.store_matrix(r.base, &a);
        r.store_matrix(r.base.add(4096), &b);
        let va_c = r.base.add(3 * 4096);

        let cfg = GemminiConfig {
            mesh_rows: 4,
            mesh_cols: 4,
            tile_rows: 1,
            tile_cols: 1,
            sp_capacity_kb: 4,
            sp_banks: 1,
            acc_capacity_kb: 1,
            ..GemminiConfig::edge()
        };
        let mut accel = Accelerator::new(cfg);
        let base = r.base;
        let mut ctx = r.ctx();
        for i in [
            Instruction::Mvin {
                dram_addr: base,
                local: sp(0),
                rows: 1,
                cols: 1,
            },
            Instruction::Mvin {
                dram_addr: base.add(4096),
                local: sp(1),
                rows: 1,
                cols: 1,
            },
            // Load bias directly into the accumulator...
            Instruction::Mvin {
                dram_addr: base.add(2 * 4096),
                local: acc(0, false),
                rows: 1,
                cols: 1,
            },
            // ...then accumulate the product onto it.
            Instruction::Preload {
                b: sp(1),
                c: acc(0, true),
                b_rows: 1,
                b_cols: 1,
            },
            Instruction::ComputePreloaded {
                a: sp(0),
                d: LocalAddr::None,
                a_rows: 1,
                a_cols: 1,
            },
            Instruction::Mvout {
                dram_addr: va_c,
                local: acc(0, false),
                rows: 1,
                cols: 1,
            },
        ] {
            accel.issue(&mut ctx, i).unwrap();
        }
        // 3*4 + 5 = 17.
        assert_eq!(r.load_matrix(va_c, 1, 1).as_slice(), &[17]);
    }

    #[test]
    fn load_overlaps_compute() {
        let mut r = rig();
        let a = Tensor::<i8>::random(&[16, 16], 1);
        r.store_matrix(r.base, &a);
        r.store_matrix(r.base.add(4096), &a);
        r.store_matrix(r.base.add(8192), &a);

        let mut accel = Accelerator::new(GemminiConfig::edge());
        let base = r.base;
        let mut ctx = r.ctx();
        accel
            .issue(
                &mut ctx,
                Instruction::Mvin {
                    dram_addr: base,
                    local: sp(0),
                    rows: 16,
                    cols: 16,
                },
            )
            .unwrap();
        accel
            .issue(
                &mut ctx,
                Instruction::Mvin {
                    dram_addr: base.add(4096),
                    local: sp(16),
                    rows: 16,
                    cols: 16,
                },
            )
            .unwrap();
        accel
            .issue(
                &mut ctx,
                Instruction::Preload {
                    b: sp(16),
                    c: acc(0, false),
                    b_rows: 16,
                    b_cols: 16,
                },
            )
            .unwrap();
        let compute_done = accel
            .issue(
                &mut ctx,
                Instruction::ComputePreloaded {
                    a: sp(0),
                    d: LocalAddr::None,
                    a_rows: 16,
                    a_cols: 16,
                },
            )
            .unwrap();
        // A third mvin to an unrelated region starts before compute ends.
        let load_done = accel
            .issue(
                &mut ctx,
                Instruction::Mvin {
                    dram_addr: base.add(8192),
                    local: sp(32),
                    rows: 16,
                    cols: 16,
                },
            )
            .unwrap();
        // The load unit was free the whole time, so the third load's start
        // (done - duration) precedes the compute's completion.
        assert!(load_done > 0 && compute_done > 0);
        assert!(accel.stats().load_busy > 0);
        // Loads and computes overlapped: total wall clock is less than the
        // sum of unit busy times.
        let s = accel.stats();
        assert!(s.finish < s.load_busy + s.ex_busy + s.store_busy);
    }

    #[test]
    fn raw_hazard_is_respected() {
        // A compute reading sp rows must wait for the mvin writing them.
        let mut r = rig();
        let a = Tensor::<i8>::random(&[16, 16], 1);
        r.store_matrix(r.base, &a);
        r.store_matrix(r.base.add(4096), &a);

        let mut accel = Accelerator::new(GemminiConfig::edge());
        let base = r.base;
        let mut ctx = r.ctx();
        let b_done = accel
            .issue(
                &mut ctx,
                Instruction::Mvin {
                    dram_addr: base.add(4096),
                    local: sp(16),
                    rows: 16,
                    cols: 16,
                },
            )
            .unwrap();
        let preload_done = accel
            .issue(
                &mut ctx,
                Instruction::Preload {
                    b: sp(16),
                    c: acc(0, false),
                    b_rows: 16,
                    b_cols: 16,
                },
            )
            .unwrap();
        assert!(
            preload_done > b_done,
            "preload reads B after its mvin completes"
        );
    }

    #[test]
    fn compute_without_preload_errors() {
        let mut r = rig();
        let mut accel = Accelerator::new(GemminiConfig::edge());
        let mut ctx = r.ctx();
        let e = accel
            .issue(
                &mut ctx,
                Instruction::ComputePreloaded {
                    a: sp(0),
                    d: LocalAddr::None,
                    a_rows: 1,
                    a_cols: 1,
                },
            )
            .unwrap_err();
        assert_eq!(e, AccelError::NoPreload);
    }

    #[test]
    fn out_of_range_rows_error() {
        let mut r = rig();
        let mut accel = Accelerator::new(GemminiConfig::edge());
        let rows = accel.config().sp_rows() as u32;
        let base = r.base;
        let mut ctx = r.ctx();
        let e = accel
            .issue(
                &mut ctx,
                Instruction::Mvin {
                    dram_addr: base,
                    local: sp(rows - 1),
                    rows: 2,
                    cols: 16,
                },
            )
            .unwrap_err();
        assert!(matches!(e, AccelError::BadLocalAddress { .. }));
        assert!(e.to_string().contains("exceed scratchpad"));
    }

    #[test]
    fn page_fault_surfaces_as_translate_error() {
        let mut r = rig();
        let mut accel = Accelerator::new(GemminiConfig::edge());
        let mut ctx = r.ctx();
        let e = accel
            .issue(
                &mut ctx,
                Instruction::Mvin {
                    dram_addr: VirtAddr::new(0xbad0_0000),
                    local: sp(0),
                    rows: 1,
                    cols: 16,
                },
            )
            .unwrap_err();
        assert!(matches!(e, AccelError::Translate(_)));
    }

    #[test]
    fn timing_only_matches_functional_cycles() {
        let program = |accel: &mut Accelerator, ctx: &mut MemCtx<'_>, base: VirtAddr| {
            for i in [
                Instruction::Mvin {
                    dram_addr: base,
                    local: sp(0),
                    rows: 16,
                    cols: 16,
                },
                Instruction::Mvin {
                    dram_addr: base.add(4096),
                    local: sp(16),
                    rows: 16,
                    cols: 16,
                },
                Instruction::Preload {
                    b: sp(16),
                    c: acc(0, false),
                    b_rows: 16,
                    b_cols: 16,
                },
                Instruction::ComputePreloaded {
                    a: sp(0),
                    d: LocalAddr::None,
                    a_rows: 16,
                    a_cols: 16,
                },
                Instruction::Mvout {
                    dram_addr: base.add(8192),
                    local: acc(0, false),
                    rows: 16,
                    cols: 16,
                },
            ] {
                accel.issue(ctx, i).unwrap();
            }
        };

        let mut r1 = rig();
        let t = Tensor::<i8>::random(&[16, 16], 9);
        r1.store_matrix(r1.base, &t);
        r1.store_matrix(r1.base.add(4096), &t);
        let mut a1 = Accelerator::new(GemminiConfig::edge());
        let base1 = r1.base;
        {
            let mut ctx = r1.ctx();
            program(&mut a1, &mut ctx, base1);
        }

        let mut r2 = rig();
        let mut a2 = Accelerator::new(GemminiConfig::edge());
        let base2 = r2.base;
        {
            let mut ctx = r2.timing_ctx();
            program(&mut a2, &mut ctx, base2);
        }

        assert_eq!(a1.stats().finish, a2.stats().finish);
        assert_eq!(a1.stats().macs, a2.stats().macs);

        // The cycle-attribution breakdown is exact in both modes: the
        // buckets partition [0, finish) and do not depend on whether
        // bytes actually moved.
        let attr1 = a1.attribution();
        let attr2 = a2.attribution();
        assert_eq!(attr1, attr2, "attribution must not depend on mode");
        assert_eq!(attr1.total(), a1.stats().finish);
        assert!(
            attr1.compute > 0 && attr1.load > 0 && attr1.store > 0,
            "attr = {attr1:?}"
        );
        assert!(attr1.tlb_stall > 0, "cold TLB walks must be attributed");
    }

    #[test]
    fn traced_run_emits_component_spans() {
        let mut r = rig();
        let t = Tensor::<i8>::random(&[16, 16], 5);
        r.store_matrix(r.base, &t);
        r.store_matrix(r.base.add(4096), &t);

        let mut accel = Accelerator::new(GemminiConfig::edge());
        let (tracer, buf) = Tracer::buffered();
        accel.set_tracer(tracer);
        let base = r.base;
        let mut ctx = r.ctx();
        for i in [
            Instruction::Mvin {
                dram_addr: base,
                local: sp(0),
                rows: 16,
                cols: 16,
            },
            Instruction::Mvin {
                dram_addr: base.add(4096),
                local: sp(16),
                rows: 16,
                cols: 16,
            },
            Instruction::Preload {
                b: sp(16),
                c: acc(0, false),
                b_rows: 16,
                b_cols: 16,
            },
            Instruction::ComputePreloaded {
                a: sp(0),
                d: LocalAddr::None,
                a_rows: 16,
                a_cols: 16,
            },
            Instruction::Mvout {
                dram_addr: base.add(8192),
                local: acc(0, false),
                rows: 16,
                cols: 16,
            },
        ] {
            accel.issue(&mut ctx, i).unwrap();
        }
        let events = buf.lock().unwrap().take();
        for component in [
            Component::LoadUnit,
            Component::Mesh,
            Component::StoreUnit,
            Component::Dma,
        ] {
            assert!(
                events.iter().any(|e| e.component == component),
                "no event from {component:?}"
            );
        }
        // Every span ends at or before the run's finish cycle.
        let finish = accel.stats().finish;
        assert!(events.iter().all(|e| e.start + e.dur <= finish));
    }

    #[test]
    fn utilization_is_bounded() {
        let mut s = ExecStats::default();
        assert_eq!(s.utilization(256), 0.0);
        s.finish = 100;
        s.macs = 25600;
        assert!((s.utilization(256) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn advance_to_raises_all_units() {
        let mut accel = Accelerator::new(GemminiConfig::edge());
        accel.advance_to(1000);
        assert_eq!(accel.now(), 1000);
    }
}
