//! Property-based bit-identity tests of the matrix unit's flat hot path.
//!
//! The engine computes through [`MatrixUnitOf::compute_into`] /
//! [`MatrixUnitOf::preload_flat`] on flat strided buffers with a
//! k-outer/j-inner MAC order; the row-slice `preload`/`compute` API is the
//! retained naive surface. Both must agree bit-for-bit — not merely
//! numerically — with a straight per-element triple loop across randomized
//! shapes, strides, and bias configurations, for the int8/int32 datapath
//! and the f32 instance alike (the f32 case is what pins the accumulation
//! *order*, since float addition does not commute in bits).

use gemmini_core::mesh::{MatrixUnit, MatrixUnitF32};
use gemmini_dnn::ops::MacElement;
use proptest::prelude::*;

/// Dense `dim×dim` B from a flat strided `b_rows×b_cols` block (zeros
/// outside the block) — the same semantics as `preload_flat`.
fn dense_b<T: MacElement>(
    b: &[T],
    b_rows: usize,
    b_cols: usize,
    stride: usize,
    dim: usize,
) -> Vec<T> {
    let mut out = vec![T::default(); dim * dim];
    for r in 0..b_rows {
        for c in 0..b_cols {
            out[r * dim + c] = b[r * stride + c];
        }
    }
    out
}

/// The specification: `C[i][j] = Σ_k A[i][k]·B[k][j] (+ D[i][j])`, products
/// accumulated in ascending `k`, bias added last — one element at a time,
/// no loop-structure cleverness.
fn naive<T: MacElement>(
    a: &[T],
    a_rows: usize,
    a_cols: usize,
    a_stride: usize,
    b_dense: &[T],
    d: Option<(&[T::Acc], usize)>,
    dim: usize,
) -> Vec<T::Acc> {
    let mut out = vec![T::Acc::default(); a_rows * dim];
    for i in 0..a_rows {
        for j in 0..dim {
            let mut acc = T::Acc::default();
            for k in 0..a_cols {
                acc = T::mac(acc, a[i * a_stride + k], b_dense[k * dim + j]);
            }
            if let Some((dbuf, dstride)) = d {
                acc = T::acc_add(acc, dbuf[i * dstride + j]);
            }
            out[i * dim + j] = acc;
        }
    }
    out
}

/// Shared driver: builds operands from a value stream, runs the flat hot
/// path and the row-slice API, and returns all three results for
/// comparison.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn run_case<T: MacElement>(
    dim: usize,
    a_rows: usize,
    a_cols: usize,
    b_rows: usize,
    b_cols: usize,
    a_pad: usize,
    b_pad: usize,
    has_bias: bool,
    mut next: impl FnMut() -> T,
    mut next_acc: impl FnMut() -> T::Acc,
) -> (Vec<T::Acc>, Vec<T::Acc>, Vec<T::Acc>)
where
    T::Acc: Copy,
{
    let a_stride = a_cols + a_pad;
    let b_stride = b_cols + b_pad;
    let a_len = if a_rows == 0 {
        0
    } else {
        (a_rows - 1) * a_stride + a_cols
    };
    let b_len = if b_rows == 0 {
        0
    } else {
        (b_rows - 1) * b_stride + b_cols
    };
    let a: Vec<T> = (0..a_len).map(|_| next()).collect();
    let b: Vec<T> = (0..b_len).map(|_| next()).collect();
    let d_stride = dim + a_pad;
    let d_len = if a_rows == 0 {
        0
    } else {
        (a_rows - 1) * d_stride + dim
    };
    let d: Vec<T::Acc> = (0..d_len).map(|_| next_acc()).collect();
    let d_view = has_bias.then_some((d.as_slice(), d_stride));

    let mut mu = MatrixUnitOf::<T>::new(dim);
    mu.preload_flat(&b, b_rows, b_cols, b_stride);
    let mut flat = vec![T::Acc::default(); a_rows * dim];
    mu.compute_into(&a, a_rows, a_cols, a_stride, d_view, &mut flat);

    // Row-slice API on the same operands.
    let mut mu2 = MatrixUnitOf::<T>::new(dim);
    let b_slices: Vec<&[T]> = (0..b_rows)
        .map(|r| &b[r * b_stride..r * b_stride + b_cols])
        .collect();
    mu2.preload(&b_slices);
    let a_slices: Vec<&[T]> = (0..a_rows)
        .map(|r| &a[r * a_stride..r * a_stride + a_cols])
        .collect();
    let d_slices: Vec<&[T::Acc]> = (0..a_rows)
        .map(|r| &d[r * d_stride..r * d_stride + dim])
        .collect();
    let rows = mu2.compute(&a_slices, has_bias.then_some(d_slices.as_slice()));
    let row_api: Vec<T::Acc> = rows.into_iter().flatten().collect();

    let b_dense = dense_b(&b, b_rows, b_cols, b_stride, dim);
    let reference = naive::<T>(&a, a_rows, a_cols, a_stride, &b_dense, d_view, dim);
    (flat, row_api, reference)
}

use gemmini_core::mesh::MatrixUnitOf;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// int8/int32: the flat hot path, the row-slice API, and the naive
    /// specification agree exactly across randomized shapes and strides.
    #[test]
    fn flat_compute_matches_naive_i8(
        dim in 1usize..9,
        ra in any::<u8>(),
        ca in any::<u8>(),
        rb in any::<u8>(),
        cb in any::<u8>(),
        a_pad in 0usize..4,
        b_pad in 0usize..4,
        has_bias in any::<bool>(),
        vals in proptest::collection::vec(any::<i8>(), 64..256),
        accs in proptest::collection::vec(any::<i32>(), 64..256),
    ) {
        let a_rows = ra as usize % (dim + 1);
        let a_cols = ca as usize % (dim + 1);
        let b_rows = rb as usize % (dim + 1);
        let b_cols = cb as usize % (dim + 1);
        let mut vi = 0usize;
        let mut ai = 0usize;
        let (flat, row_api, reference) = run_case::<i8>(
            dim, a_rows, a_cols, b_rows, b_cols, a_pad, b_pad, has_bias,
            || { let v = vals[vi % vals.len()]; vi += 1; v },
            || { let v = accs[ai % accs.len()]; ai += 1; v },
        );
        prop_assert_eq!(&flat, &reference);
        prop_assert_eq!(&row_api, &reference);
    }

    /// f32: bit-identical results (compared via `to_bits`), pinning the
    /// ascending-k / bias-last accumulation order of the reordered loops.
    #[test]
    fn flat_compute_is_bit_identical_f32(
        dim in 1usize..9,
        ra in any::<u8>(),
        ca in any::<u8>(),
        rb in any::<u8>(),
        cb in any::<u8>(),
        a_pad in 0usize..4,
        b_pad in 0usize..4,
        has_bias in any::<bool>(),
        vals in proptest::collection::vec(any::<i16>(), 64..256),
    ) {
        let a_rows = ra as usize % (dim + 1);
        let a_cols = ca as usize % (dim + 1);
        let b_rows = rb as usize % (dim + 1);
        let b_cols = cb as usize % (dim + 1);
        let mut vi = 0usize;
        let mut ai = 0usize;
        // Finite, noncommutative-under-reassociation values: scaled i16s
        // span enough magnitude that float addition order matters.
        let (flat, row_api, reference) = run_case::<f32>(
            dim, a_rows, a_cols, b_rows, b_cols, a_pad, b_pad, has_bias,
            || { let v = vals[vi % vals.len()]; vi += 1; v as f32 * 0.125 },
            || { let v = vals[ai % vals.len()]; ai += 1; v as f32 * 3.1875 },
        );
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&flat), bits(&reference));
        prop_assert_eq!(bits(&row_api), bits(&reference));
    }

    /// The engine-facing int8 aliases behave like the generic instance.
    #[test]
    fn aliases_compute_identity(dim in 1usize..9, seed in any::<i8>()) {
        let mut mu = MatrixUnit::new(dim);
        let ident: Vec<i8> = (0..dim * dim)
            .map(|i| if i % (dim + 1) == 0 { 1 } else { 0 })
            .collect();
        mu.preload_flat(&ident, dim, dim, dim);
        let a: Vec<i8> = (0..dim).map(|i| seed.wrapping_add(i as i8)).collect();
        let mut out = vec![0i32; dim];
        mu.compute_into(&a, 1, dim, dim, None, &mut out);
        let want: Vec<i32> = a.iter().map(|&x| x as i32).collect();
        prop_assert_eq!(out, want);

        let mut muf = MatrixUnitF32::new(dim);
        let identf: Vec<f32> = ident.iter().map(|&x| x as f32).collect();
        muf.preload_flat(&identf, dim, dim, dim);
        let af: Vec<f32> = a.iter().map(|&x| x as f32).collect();
        let mut outf = vec![0f32; dim];
        muf.compute_into(&af, 1, dim, dim, None, &mut outf);
        prop_assert_eq!(outf, af);
    }
}
