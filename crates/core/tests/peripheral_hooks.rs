//! Direct tests of the engine's peripheral hooks (im2col mvin, raw streams,
//! execute charging) and the shrink-mvin accumulator path — exercised here
//! at the instruction level rather than through the kernel library.

use gemmini_core::config::GemminiConfig;
use gemmini_core::isa::{Instruction, LocalAddr};
use gemmini_core::{Accelerator, MemCtx};
use gemmini_mem::addr::{VirtAddr, PAGE_SIZE};
use gemmini_mem::dram::MainMemory;
use gemmini_mem::MemorySystem;
use gemmini_vm::page::FrameAllocator;
use gemmini_vm::page_table::AddressSpace;
use gemmini_vm::translator::{TranslationConfig, TranslationSystem};

struct Rig {
    space: AddressSpace,
    translation: TranslationSystem,
    mem: MemorySystem,
    data: MainMemory,
    base: VirtAddr,
}

fn rig() -> Rig {
    let mut frames = FrameAllocator::new();
    let mut space = AddressSpace::new(&mut frames);
    let base = space.alloc(&mut frames, 64 * PAGE_SIZE);
    Rig {
        space,
        translation: TranslationSystem::new(TranslationConfig::default()),
        mem: MemorySystem::default(),
        data: MainMemory::new(),
        base,
    }
}

impl Rig {
    fn ctx(&mut self) -> MemCtx<'_> {
        MemCtx {
            space: &self.space,
            translation: &mut self.translation,
            mem: &mut self.mem,
            data: Some(&mut self.data),
            port: 0,
        }
    }

    fn write(&mut self, va: VirtAddr, bytes: &[u8]) {
        let pa = self.space.translate(va).unwrap();
        self.data.write(pa, bytes);
    }

    fn read(&self, va: VirtAddr, len: usize) -> Vec<u8> {
        let pa = self.space.translate(va).unwrap();
        let mut buf = vec![0u8; len];
        self.data.read(pa, &mut buf);
        buf
    }
}

#[test]
fn mvin_im2col_deposits_patches_with_raw_traffic() {
    let mut r = rig();
    let mut accel = Accelerator::new(GemminiConfig::edge());
    let base = r.base;
    let mut ctx = r.ctx();
    let patches: Vec<i8> = (0..4).flat_map(|i| [i as i8 + 1; 16]).collect();
    let done = accel
        .mvin_im2col(&mut ctx, base, 8, 32, 32, 100, 4, Some(&patches))
        .unwrap();
    assert!(done > 0);
    // Raw traffic: 8 rows of 32 bytes.
    assert_eq!(accel.dma_stats().bytes_in, 256);
    // Patches deposited to sp rows 100..104.
    assert_eq!(accel.scratchpad().row(100), &[1i8; 16]);
    assert_eq!(accel.scratchpad().row(103), &[4i8; 16]);
}

#[test]
fn mvin_im2col_zero_raw_rows_is_generation_only() {
    let mut r = rig();
    let mut accel = Accelerator::new(GemminiConfig::edge());
    let base = r.base;
    let mut ctx = r.ctx();
    let patches = vec![7i8; 8];
    accel
        .mvin_im2col(&mut ctx, base, 0, 32, 32, 0, 1, Some(&patches))
        .unwrap();
    assert_eq!(accel.dma_stats().bytes_in, 0, "no raw bytes moved");
    assert_eq!(&accel.scratchpad().row(0)[..8], &[7i8; 8]);
}

#[test]
fn mvout_raw_streams_peripheral_output() {
    let mut r = rig();
    let mut accel = Accelerator::new(GemminiConfig::edge());
    let base = r.base;
    let rows: Vec<u8> = [[0xaau8; 8], [0xbbu8; 8]].concat();
    {
        let mut ctx = r.ctx();
        accel
            .mvout_raw(&mut ctx, base, 2, 8, 8, Some(&rows))
            .unwrap();
    }
    assert_eq!(r.read(base, 8), vec![0xaa; 8]);
    assert_eq!(r.read(base.add(8), 8), vec![0xbb; 8]);
    assert_eq!(accel.dma_stats().bytes_out, 16);
}

#[test]
fn charge_execute_after_orders_behind_loads() {
    let mut r = rig();
    let mut accel = Accelerator::new(GemminiConfig::edge());
    let base = r.base;
    let in_done = {
        let mut ctx = r.ctx();
        accel.mvin_raw(&mut ctx, base, 16, 16, 16).unwrap()
    };
    let done = accel.charge_execute_after(in_done, 100);
    assert_eq!(done, in_done + 100);
    assert!(accel.stats().ex_busy >= 100);
}

#[test]
fn shrink_mvin_widens_int8_into_the_accumulator() {
    let mut r = rig();
    let mut accel = Accelerator::new(GemminiConfig::edge());
    let base = r.base;
    r.write(base, &[1u8, 2, 0xff, 0x80]); // 1, 2, -1, -128 as i8
    let mut ctx = r.ctx();
    accel
        .issue(
            &mut ctx,
            Instruction::ConfigLd {
                stride: 0,
                shrink: true,
            },
        )
        .unwrap();
    accel
        .issue(
            &mut ctx,
            Instruction::Mvin {
                dram_addr: base,
                local: LocalAddr::Acc {
                    row: 0,
                    accumulate: false,
                },
                rows: 1,
                cols: 4,
            },
        )
        .unwrap();
    assert_eq!(&accel.accumulator().row(0)[..4], &[1, 2, -1, -128]);
    // Traffic was 4 bytes (int8), not 16 (int32).
    assert_eq!(accel.dma_stats().bytes_in, 4);
}

#[test]
fn shrink_accumulate_adds_in_int32_space() {
    let mut r = rig();
    let mut accel = Accelerator::new(GemminiConfig::edge());
    let base = r.base;
    r.write(base, &[100u8]); // 100
    r.write(base.add(64), &[100u8]); // +100 -> 200, beyond i8 range
    let mut ctx = r.ctx();
    accel
        .issue(
            &mut ctx,
            Instruction::ConfigLd {
                stride: 0,
                shrink: true,
            },
        )
        .unwrap();
    for (addr, accumulate) in [(base, false), (base.add(64), true)] {
        accel
            .issue(
                &mut ctx,
                Instruction::Mvin {
                    dram_addr: addr,
                    local: LocalAddr::Acc { row: 0, accumulate },
                    rows: 1,
                    cols: 1,
                },
            )
            .unwrap();
    }
    assert_eq!(
        accel.accumulator().row(0)[0],
        200,
        "int32 accumulation holds 200"
    );
    // And the mvout saturates it back to int8.
    accel
        .issue(
            &mut ctx,
            Instruction::Mvout {
                dram_addr: base.add(128),
                local: LocalAddr::Acc {
                    row: 0,
                    accumulate: false,
                },
                rows: 1,
                cols: 1,
            },
        )
        .unwrap();
    let _ = ctx;
    assert_eq!(r.read(base.add(128), 1), vec![127u8]);
}

#[test]
fn wide_mvin_to_accumulator_without_shrink_reads_int32() {
    let mut r = rig();
    let mut accel = Accelerator::new(GemminiConfig::edge());
    let base = r.base;
    r.write(base, &1000i32.to_le_bytes());
    let mut ctx = r.ctx();
    accel
        .issue(
            &mut ctx,
            Instruction::Mvin {
                dram_addr: base,
                local: LocalAddr::Acc {
                    row: 0,
                    accumulate: false,
                },
                rows: 1,
                cols: 1,
            },
        )
        .unwrap();
    assert_eq!(accel.accumulator().row(0)[0], 1000);
    assert_eq!(accel.dma_stats().bytes_in, 4);
}

#[test]
fn instruction_trace_records_program_order() {
    let mut r = rig();
    let mut accel = Accelerator::new(GemminiConfig::edge());
    accel.enable_trace();
    let base = r.base;
    let mut ctx = r.ctx();
    accel
        .issue(
            &mut ctx,
            Instruction::ConfigLd {
                stride: 0,
                shrink: false,
            },
        )
        .unwrap();
    accel
        .issue(
            &mut ctx,
            Instruction::Mvin {
                dram_addr: base,
                local: LocalAddr::Sp { row: 0 },
                rows: 4,
                cols: 4,
            },
        )
        .unwrap();
    let _ = accel.issue(
        &mut ctx,
        Instruction::ComputePreloaded {
            a: LocalAddr::Sp { row: 0 },
            d: LocalAddr::None,
            a_rows: 4,
            a_cols: 4,
        },
    ); // errors: no preload — still traced
    let trace = accel.trace().unwrap();
    assert_eq!(trace.len(), 3);
    assert!(trace[0].contains("config_ld"));
    assert!(trace[1].contains("mvin"));
    assert!(trace[2].contains("error"), "{}", trace[2]);
}
