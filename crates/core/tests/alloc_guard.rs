//! Heap-allocation regression guard for the steady-state tile step.
//!
//! The hot path of the functional core stages every tile through retained
//! scratch arenas: the engine's DMA/bias/output/store buffers, the mesh's
//! preloaded-operand matrix, the output-stationary partial store (recycled
//! through `os_spare`), and the attribution log's compaction scratch. This
//! test pins that discipline with a counting global allocator: after a
//! warm-up pass has sized every arena, faulted in the TLB and page tables,
//! touched every main-memory page, and compacted the attribution log, an
//! identical pass over the same tiles must perform ZERO heap allocations.
//!
//! If this test fails after a change to the engine, mesh, DMA, or memory
//! model, a per-tile allocation crept back into the steady state — fix it
//! by staging through a retained buffer rather than loosening the bound.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gemmini_core::config::{Dataflow, GemminiConfig};
use gemmini_core::isa::{Instruction, LocalAddr};
use gemmini_core::metrics::{Counter, Metrics};
use gemmini_core::{Accelerator, MemCtx};
use gemmini_dnn::graph::Activation;
use gemmini_mem::addr::{VirtAddr, PAGE_SIZE};
use gemmini_mem::dram::MainMemory;
use gemmini_mem::MemorySystem;
use gemmini_vm::page::FrameAllocator;
use gemmini_vm::page_table::AddressSpace;
use gemmini_vm::translator::{TranslationConfig, TranslationSystem};

/// Counts every heap allocation (alloc, alloc_zeroed, realloc) made through
/// the global allocator. Deallocations are free and not counted.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

struct Rig {
    space: AddressSpace,
    translation: TranslationSystem,
    mem: MemorySystem,
    data: MainMemory,
    base: VirtAddr,
}

fn rig() -> Rig {
    let mut frames = FrameAllocator::new();
    let mut space = AddressSpace::new(&mut frames);
    let base = space.alloc(&mut frames, 64 * PAGE_SIZE);
    // One giant stats window: the miss-rate time series never grows a new
    // point during the measured pass regardless of how far cycle time has
    // advanced.
    let cfg = TranslationConfig {
        stats_window: 1 << 60,
        ..TranslationConfig::default()
    };
    Rig {
        space,
        translation: TranslationSystem::new(cfg),
        mem: MemorySystem::default(),
        data: MainMemory::new(),
        base,
    }
}

impl Rig {
    fn ctx(&mut self) -> MemCtx<'_> {
        MemCtx {
            space: &self.space,
            translation: &mut self.translation,
            mem: &mut self.mem,
            data: Some(&mut self.data),
            port: 0,
        }
    }

    fn fill(&mut self, va: VirtAddr, bytes: &[u8]) {
        let pa = self.space.translate(va).unwrap();
        self.data.write(pa, bytes);
    }
}

fn sp(row: u32) -> LocalAddr {
    LocalAddr::Sp { row }
}

fn acc(row: u32, accumulate: bool) -> LocalAddr {
    LocalAddr::Acc { row, accumulate }
}

/// One full multi-tile pass: a 2×2 grid of weight-stationary tiles with an
/// accumulator bias plus an output-stationary K-split pair, each tile
/// doing mvin → preload → compute → mvout. Identical across invocations.
fn tile_pass(accel: &mut Accelerator, r: &mut Rig, dim: usize) {
    let d16 = dim as u16;
    let row_i8 = dim as u64; // bytes per int8 tile row in DRAM
    let row_i32 = 4 * dim as u64;
    let tile_i8 = row_i8 * dim as u64;
    let tile_i32 = row_i32 * dim as u64;
    let va_a = r.base;
    let va_b = r.base.add(4 * tile_i8);
    let va_d = r.base.add(8 * tile_i8);
    let va_c = r.base.add(8 * tile_i8 + 4 * tile_i32);
    let mut ctx = r.ctx();
    let mut go = |i: Instruction| {
        accel.issue(&mut ctx, i).expect("steady-state issue failed");
    };
    go(Instruction::ConfigEx {
        dataflow: Dataflow::WeightStationary,
        activation: Activation::None,
        acc_scale: 1.0,
    });
    go(Instruction::ConfigLd {
        stride: row_i8,
        shrink: false,
    });
    go(Instruction::ConfigSt { stride: row_i8 });
    // 2×2 grid of WS tiles: C[t] = A[t]·B[t] + D[t].
    for t in 0..4u64 {
        go(Instruction::Mvin {
            dram_addr: va_a.add(t * tile_i8),
            local: sp(0),
            rows: d16,
            cols: d16,
        });
        go(Instruction::Mvin {
            dram_addr: va_b.add(t * tile_i8),
            local: sp(dim as u32),
            rows: d16,
            cols: d16,
        });
        go(Instruction::ConfigLd {
            stride: row_i32,
            shrink: false,
        });
        go(Instruction::Mvin {
            dram_addr: va_d.add(t * tile_i32),
            local: acc(0, false),
            rows: d16,
            cols: d16,
        });
        go(Instruction::ConfigLd {
            stride: row_i8,
            shrink: false,
        });
        go(Instruction::Preload {
            b: sp(dim as u32),
            c: acc(0, true),
            b_rows: d16,
            b_cols: d16,
        });
        go(Instruction::ComputePreloaded {
            a: sp(0),
            d: LocalAddr::None,
            a_rows: d16,
            a_cols: d16,
        });
        go(Instruction::Mvout {
            dram_addr: va_c.add(t * tile_i8),
            local: acc(0, false),
            rows: d16,
            cols: d16,
        });
    }
    // Output-stationary K-split pair on the same operands.
    go(Instruction::ConfigEx {
        dataflow: Dataflow::OutputStationary,
        activation: Activation::None,
        acc_scale: 1.0,
    });
    go(Instruction::Preload {
        b: LocalAddr::None,
        c: acc(0, false),
        b_rows: 0,
        b_cols: d16,
    });
    for t in 0..2u32 {
        go(Instruction::ComputePreloaded {
            a: sp(0),
            d: sp((t + 1) * dim as u32),
            a_rows: d16,
            a_cols: d16,
        });
    }
    // Arming the next block flushes the resident partials to the
    // accumulator; mvout drains them to DRAM.
    go(Instruction::Preload {
        b: LocalAddr::None,
        c: acc(0, false),
        b_rows: 0,
        b_cols: d16,
    });
    go(Instruction::Mvout {
        dram_addr: va_c.add(4 * tile_i8),
        local: acc(0, false),
        rows: d16,
        cols: d16,
    });
    go(Instruction::ConfigEx {
        dataflow: Dataflow::WeightStationary,
        activation: Activation::None,
        acc_scale: 1.0,
    });
}

#[test]
fn steady_state_tile_step_does_not_allocate() {
    let mut r = rig();
    let cfg = GemminiConfig::edge();
    let dim = cfg.dim();
    let mut accel = Accelerator::new(cfg);

    // Seed the operand regions so functional reads see real data.
    let payload: Vec<u8> = (0..9 * dim * dim).map(|i| (i % 251) as u8).collect();
    r.fill(r.base, &payload);
    let bias: Vec<u8> = (0..4 * dim * dim)
        .flat_map(|i| ((i as i32 % 97) - 48).to_le_bytes())
        .collect();
    r.fill(r.base.add(8 * (dim * dim) as u64), &bias);

    // Warm-up: two passes size every arena, fault in translation state,
    // and allocate the mvout destination pages (sparse DRAM allocates on
    // first write). Compacting the attribution log afterwards drains its
    // span buffer in place and sizes the fold scratch.
    tile_pass(&mut accel, &mut r, dim);
    tile_pass(&mut accel, &mut r, dim);
    accel.compact_attribution();

    // The counter must be live, or the zero-delta assertion below would
    // pass vacuously.
    assert!(
        ALLOCATIONS.load(Ordering::SeqCst) > 0,
        "counting allocator not installed"
    );

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    tile_pass(&mut accel, &mut r, dim);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state tile pass performed {} heap allocations",
        after - before
    );

    // The pass above really did work: tighten against silent no-ops.
    assert!(accel.dma_stats().bytes_in > 0);
    assert!(accel.dma_stats().bytes_out > 0);
}

/// The same zero-allocation bound with a live metrics registry attached
/// to the engine, translation system, and memory hierarchy: counters and
/// histograms are fixed atomic arrays, so observation must stay free of
/// heap traffic too. A regression here means a metrics call started
/// allocating on the hot path.
#[test]
fn steady_state_with_live_metrics_does_not_allocate() {
    let mut r = rig();
    let cfg = GemminiConfig::edge();
    let dim = cfg.dim();
    let mut accel = Accelerator::new(cfg);
    let (metrics, registry) = Metrics::enabled();
    accel.set_metrics(metrics.clone());
    r.translation.set_metrics(metrics.clone());
    r.mem.set_metrics(metrics);

    let payload: Vec<u8> = (0..9 * dim * dim).map(|i| (i % 251) as u8).collect();
    r.fill(r.base, &payload);
    let bias: Vec<u8> = (0..4 * dim * dim)
        .flat_map(|i| ((i as i32 % 97) - 48).to_le_bytes())
        .collect();
    r.fill(r.base.add(8 * (dim * dim) as u64), &bias);

    tile_pass(&mut accel, &mut r, dim);
    tile_pass(&mut accel, &mut r, dim);
    accel.compact_attribution();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    tile_pass(&mut accel, &mut r, dim);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "metered steady-state tile pass performed {} heap allocations",
        after - before
    );

    // The registry really observed the pass (no vacuous zero-delta).
    let snapshot = registry.snapshot();
    assert!(snapshot.counter(Counter::TilesIssued) > 0);
    assert!(snapshot.counter(Counter::DmaBursts) > 0);
    assert!(snapshot.counter(Counter::TlbHits) > 0);
}
