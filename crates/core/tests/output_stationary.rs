//! Instruction-level tests of the output-stationary dataflow: partial sums
//! stay resident in the PEs across computes (A and B both stream), and the
//! next arming preload (or a flush) drains them to the accumulator.

use gemmini_core::config::{Dataflow, GemminiConfig};
use gemmini_core::isa::{Instruction, LocalAddr};
use gemmini_core::{AccelError, Accelerator, MemCtx};
use gemmini_dnn::graph::Activation;
use gemmini_dnn::ops::matmul;
use gemmini_dnn::quant::{requantize_tensor, QuantParams};
use gemmini_dnn::tensor::Tensor;
use gemmini_mem::addr::{VirtAddr, PAGE_SIZE};
use gemmini_mem::dram::MainMemory;
use gemmini_mem::MemorySystem;
use gemmini_vm::page::FrameAllocator;
use gemmini_vm::page_table::AddressSpace;
use gemmini_vm::translator::{TranslationConfig, TranslationSystem};

struct Rig {
    space: AddressSpace,
    translation: TranslationSystem,
    mem: MemorySystem,
    data: MainMemory,
    base: VirtAddr,
}

fn rig() -> Rig {
    let mut frames = FrameAllocator::new();
    let mut space = AddressSpace::new(&mut frames);
    let base = space.alloc(&mut frames, 64 * PAGE_SIZE);
    Rig {
        space,
        translation: TranslationSystem::new(TranslationConfig::default()),
        mem: MemorySystem::default(),
        data: MainMemory::new(),
        base,
    }
}

impl Rig {
    fn ctx(&mut self) -> MemCtx<'_> {
        MemCtx {
            space: &self.space,
            translation: &mut self.translation,
            mem: &mut self.mem,
            data: Some(&mut self.data),
            port: 0,
        }
    }

    fn store(&mut self, va: VirtAddr, t: &Tensor<i8>) {
        let bytes: Vec<u8> = t.as_slice().iter().map(|&x| x as u8).collect();
        let pa = self.space.translate(va).unwrap();
        self.data.write(pa, &bytes);
    }

    fn load(&self, va: VirtAddr, n: usize) -> Vec<i8> {
        let pa = self.space.translate(va).unwrap();
        let mut buf = vec![0u8; n];
        self.data.read(pa, &mut buf);
        buf.iter().map(|&b| b as i8).collect()
    }
}

fn sp(row: u32) -> LocalAddr {
    LocalAddr::Sp { row }
}
fn acc(row: u32) -> LocalAddr {
    LocalAddr::Acc {
        row,
        accumulate: false,
    }
}

/// C = A·B with the K reduction split across two OS computes: the partials
/// never visit the accumulator until the flush.
#[test]
fn os_matmul_accumulates_in_pes_across_k() {
    let dim = 16usize;
    let mut r = rig();
    let a1 = Tensor::<i8>::random(&[dim, dim], 1);
    let b1 = Tensor::<i8>::random(&[dim, dim], 2);
    let a2 = Tensor::<i8>::random(&[dim, dim], 3);
    let b2 = Tensor::<i8>::random(&[dim, dim], 4);
    let (va_a1, va_b1) = (r.base, r.base.add(4096));
    let (va_a2, va_b2) = (r.base.add(8192), r.base.add(12288));
    let va_c = r.base.add(16384);
    r.store(va_a1, &a1);
    r.store(va_b1, &b1);
    r.store(va_a2, &a2);
    r.store(va_b2, &b2);

    let mut accel = Accelerator::new(GemminiConfig::edge());
    let mut ctx = r.ctx();
    let mv = |va, row| Instruction::Mvin {
        dram_addr: va,
        local: sp(row),
        rows: 16,
        cols: 16,
    };
    for i in [
        Instruction::ConfigEx {
            dataflow: Dataflow::OutputStationary,
            activation: Activation::None,
            acc_scale: 1.0,
        },
        mv(va_a1, 0),
        mv(va_b1, 16),
        mv(va_a2, 32),
        mv(va_b2, 48),
        // Arm the output block.
        Instruction::Preload {
            b: LocalAddr::None,
            c: acc(0),
            b_rows: 0,
            b_cols: 16,
        },
        // Two K-slices, both streaming A and B.
        Instruction::ComputePreloaded {
            a: sp(0),
            d: sp(16),
            a_rows: 16,
            a_cols: 16,
        },
        Instruction::ComputeAccumulated {
            a: sp(32),
            d: sp(48),
            a_rows: 16,
            a_cols: 16,
        },
        // Drain the PE-resident block to the accumulator.
        Instruction::Flush,
        Instruction::Mvout {
            dram_addr: va_c,
            local: acc(0),
            rows: 16,
            cols: 16,
        },
    ] {
        accel.issue(&mut ctx, i).unwrap();
    }

    let got = r.load(va_c, dim * dim);
    let mut want = matmul(&a1, &b1);
    let second = matmul(&a2, &b2);
    for (w, s) in want.as_mut_slice().iter_mut().zip(second.as_slice()) {
        *w = w.wrapping_add(*s);
    }
    let want = requantize_tensor(&want, QuantParams::new(1.0));
    assert_eq!(got, want.as_slice());
}

/// An arming preload drains the previous block — back-to-back output
/// blocks need no explicit flush in between.
#[test]
fn arming_preload_flushes_previous_block() {
    let dim = 16usize;
    let mut r = rig();
    let a = Tensor::<i8>::random(&[dim, dim], 5);
    let b = Tensor::<i8>::random(&[dim, dim], 6);
    r.store(r.base, &a);
    r.store(r.base.add(4096), &b);
    let va_c = r.base.add(8192);

    let mut accel = Accelerator::new(GemminiConfig::edge());
    let base = r.base;
    let mut ctx = r.ctx();
    for i in [
        Instruction::ConfigEx {
            dataflow: Dataflow::OutputStationary,
            activation: Activation::None,
            acc_scale: 1.0,
        },
        Instruction::Mvin {
            dram_addr: base,
            local: sp(0),
            rows: 16,
            cols: 16,
        },
        Instruction::Mvin {
            dram_addr: base.add(4096),
            local: sp(16),
            rows: 16,
            cols: 16,
        },
        Instruction::Preload {
            b: LocalAddr::None,
            c: acc(0),
            b_rows: 0,
            b_cols: 16,
        },
        Instruction::ComputePreloaded {
            a: sp(0),
            d: sp(16),
            a_rows: 16,
            a_cols: 16,
        },
        // Arming the NEXT block (different acc rows) drains the first.
        Instruction::Preload {
            b: LocalAddr::None,
            c: acc(16),
            b_rows: 0,
            b_cols: 16,
        },
        Instruction::Mvout {
            dram_addr: va_c,
            local: acc(0),
            rows: 16,
            cols: 16,
        },
    ] {
        accel.issue(&mut ctx, i).unwrap();
    }
    let got = r.load(va_c, dim * dim);
    let want = requantize_tensor(&matmul(&a, &b), QuantParams::new(1.0));
    assert_eq!(got, want.as_slice());
}

#[test]
fn os_compute_requires_b_in_d_operand() {
    let mut r = rig();
    let mut accel = Accelerator::new(GemminiConfig::edge());
    let mut ctx = r.ctx();
    accel
        .issue(
            &mut ctx,
            Instruction::ConfigEx {
                dataflow: Dataflow::OutputStationary,
                activation: Activation::None,
                acc_scale: 1.0,
            },
        )
        .unwrap();
    accel
        .issue(
            &mut ctx,
            Instruction::Preload {
                b: LocalAddr::None,
                c: acc(0),
                b_rows: 0,
                b_cols: 16,
            },
        )
        .unwrap();
    let err = accel
        .issue(
            &mut ctx,
            Instruction::ComputePreloaded {
                a: sp(0),
                d: LocalAddr::None,
                a_rows: 4,
                a_cols: 4,
            },
        )
        .unwrap_err();
    assert!(matches!(err, AccelError::BadLocalAddress { .. }));
}

#[test]
fn os_compute_without_arming_preload_errors() {
    let mut r = rig();
    let mut accel = Accelerator::new(GemminiConfig::edge());
    let mut ctx = r.ctx();
    accel
        .issue(
            &mut ctx,
            Instruction::ConfigEx {
                dataflow: Dataflow::OutputStationary,
                activation: Activation::None,
                acc_scale: 1.0,
            },
        )
        .unwrap();
    let err = accel
        .issue(
            &mut ctx,
            Instruction::ComputePreloaded {
                a: sp(0),
                d: sp(16),
                a_rows: 4,
                a_cols: 4,
            },
        )
        .unwrap_err();
    assert_eq!(err, AccelError::NoPreload);
}

/// The dataflows' outputs agree (the paper: runtime-selectable dataflows
/// compute the same kernels); their timing differs.
#[test]
fn ws_and_os_agree_functionally() {
    let dim = 16usize;
    let run = |dataflow: Dataflow| -> (Vec<i8>, u64) {
        let mut r = rig();
        let a = Tensor::<i8>::random(&[dim, dim], 7);
        let b = Tensor::<i8>::random(&[dim, dim], 8);
        r.store(r.base, &a);
        r.store(r.base.add(4096), &b);
        let va_c = r.base.add(8192);
        let mut accel = Accelerator::new(GemminiConfig::edge());
        let base = r.base;
        let mut ctx = r.ctx();
        let prog: Vec<Instruction> = match dataflow {
            Dataflow::OutputStationary => vec![
                Instruction::ConfigEx {
                    dataflow,
                    activation: Activation::None,
                    acc_scale: 1.0,
                },
                Instruction::Mvin {
                    dram_addr: base,
                    local: sp(0),
                    rows: 16,
                    cols: 16,
                },
                Instruction::Mvin {
                    dram_addr: base.add(4096),
                    local: sp(16),
                    rows: 16,
                    cols: 16,
                },
                Instruction::Preload {
                    b: LocalAddr::None,
                    c: acc(0),
                    b_rows: 0,
                    b_cols: 16,
                },
                Instruction::ComputePreloaded {
                    a: sp(0),
                    d: sp(16),
                    a_rows: 16,
                    a_cols: 16,
                },
                Instruction::Flush,
                Instruction::Mvout {
                    dram_addr: va_c,
                    local: acc(0),
                    rows: 16,
                    cols: 16,
                },
            ],
            _ => vec![
                Instruction::ConfigEx {
                    dataflow,
                    activation: Activation::None,
                    acc_scale: 1.0,
                },
                Instruction::Mvin {
                    dram_addr: base,
                    local: sp(0),
                    rows: 16,
                    cols: 16,
                },
                Instruction::Mvin {
                    dram_addr: base.add(4096),
                    local: sp(16),
                    rows: 16,
                    cols: 16,
                },
                Instruction::Preload {
                    b: sp(16),
                    c: acc(0),
                    b_rows: 16,
                    b_cols: 16,
                },
                Instruction::ComputePreloaded {
                    a: sp(0),
                    d: LocalAddr::None,
                    a_rows: 16,
                    a_cols: 16,
                },
                Instruction::Mvout {
                    dram_addr: va_c,
                    local: acc(0),
                    rows: 16,
                    cols: 16,
                },
            ],
        };
        for i in prog {
            accel.issue(&mut ctx, i).unwrap();
        }
        let _ = ctx;
        (r.load(va_c, dim * dim), accel.stats().finish)
    };

    let (ws_out, _ws_cycles) = run(Dataflow::WeightStationary);
    let (os_out, _os_cycles) = run(Dataflow::OutputStationary);
    assert_eq!(ws_out, os_out, "dataflows must agree on the result");
}
