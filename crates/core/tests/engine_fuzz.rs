//! Robustness fuzz of the execution engine: arbitrary (often nonsensical)
//! instruction sequences must either execute or return a typed error —
//! never panic, never corrupt the scoreboard (time stays monotone).

use gemmini_core::config::{Dataflow, GemminiConfig};
use gemmini_core::isa::{Instruction, LocalAddr};
use gemmini_core::{Accelerator, MemCtx};
use gemmini_dnn::graph::Activation;
use gemmini_mem::addr::{VirtAddr, PAGE_SIZE};
use gemmini_mem::dram::MainMemory;
use gemmini_mem::MemorySystem;
use gemmini_vm::page::FrameAllocator;
use gemmini_vm::page_table::AddressSpace;
use gemmini_vm::translator::{TranslationConfig, TranslationSystem};
use proptest::prelude::*;

fn arb_local() -> impl Strategy<Value = LocalAddr> {
    prop_oneof![
        (0u32..20_000).prop_map(|row| LocalAddr::Sp { row }),
        ((0u32..2_000), any::<bool>())
            .prop_map(|(row, accumulate)| LocalAddr::Acc { row, accumulate }),
        Just(LocalAddr::None),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (any::<bool>(), 0.0f32..2.0).prop_map(|(relu, scale)| Instruction::ConfigEx {
            dataflow: if relu {
                Dataflow::WeightStationary
            } else {
                Dataflow::OutputStationary
            },
            activation: if relu {
                Activation::Relu
            } else {
                Activation::None
            },
            acc_scale: scale,
        }),
        (0u64..512, any::<bool>())
            .prop_map(|(stride, shrink)| Instruction::ConfigLd { stride, shrink }),
        (0u64..512).prop_map(|stride| Instruction::ConfigSt { stride }),
        (0u64..(64 * PAGE_SIZE), arb_local(), 0u16..40, 0u16..20).prop_map(
            |(off, local, rows, cols)| Instruction::Mvin {
                dram_addr: VirtAddr::new(0x10_0000 + off),
                local,
                rows,
                cols,
            }
        ),
        (0u64..(64 * PAGE_SIZE), arb_local(), 0u16..40, 0u16..20).prop_map(
            |(off, local, rows, cols)| Instruction::Mvout {
                dram_addr: VirtAddr::new(0x10_0000 + off),
                local,
                rows,
                cols,
            }
        ),
        (arb_local(), arb_local(), 0u16..20, 0u16..20).prop_map(|(b, c, b_rows, b_cols)| {
            Instruction::Preload {
                b,
                c,
                b_rows,
                b_cols,
            }
        }),
        (arb_local(), arb_local(), 0u16..20, 0u16..20).prop_map(|(a, d, a_rows, a_cols)| {
            Instruction::ComputePreloaded {
                a,
                d,
                a_rows,
                a_cols,
            }
        }),
        Just(Instruction::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_programs_never_panic(program in proptest::collection::vec(arb_instruction(), 1..60)) {
        let mut frames = FrameAllocator::new();
        let mut space = AddressSpace::new(&mut frames);
        // Map the region the fuzzer's addresses fall in (faults are still
        // possible at the tail of a multi-row transfer).
        let _ = space.alloc(&mut frames, 64 * PAGE_SIZE);
        let mut mem = MemorySystem::default();
        let mut translation = TranslationSystem::new(TranslationConfig::default());
        let mut data = MainMemory::new();
        let mut accel = Accelerator::new(GemminiConfig::edge());

        let mut last_now = 0;
        for instr in program {
            let mut ctx = MemCtx {
                space: &space,
                translation: &mut translation,
                mem: &mut mem,
                data: Some(&mut data),
                port: 0,
            };
            // Either outcome is fine; panics are not.
            let _ = accel.issue(&mut ctx, instr);
            let now = accel.now();
            prop_assert!(now >= last_now, "time must be monotone");
            last_now = now;
        }

        // Every instruction encodes; decodable ones round-trip.
        let (f, rs1, rs2) = Instruction::Flush.encode();
        prop_assert!(Instruction::decode(f, rs1, rs2).is_ok());
    }

    /// Round-trip of random *valid* instruction words through the binary
    /// encoding.
    #[test]
    fn random_instructions_roundtrip_encoding(instrs in proptest::collection::vec(arb_instruction(), 1..50)) {
        for i in instrs {
            // acc_scale through f32 bits is exact; everything else is
            // integral — the round trip must be identity.
            let (f, rs1, rs2) = i.encode();
            let back = Instruction::decode(f, rs1, rs2).expect("valid instruction decodes");
            prop_assert_eq!(back, i);
        }
    }
}
