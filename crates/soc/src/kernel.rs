//! The tuned kernel library — the "low level" of the paper's multi-level
//! programming interface.
//!
//! Each kernel lowers one DNN operator to the accelerator's instruction
//! stream using the tile sizes from [`crate::tiling`]. Kernels are
//! *resumable state machines* ([`Kernel::step`] executes roughly one output
//! tile) so that multi-core SoC simulations can interleave cores at tile
//! granularity, which is what makes the shared-L2 contention of the
//! Fig. 9 case study observable.

use crate::tiling::{blocks, plan_matmul, TilePlan};
use gemmini_core::config::Dataflow;
use gemmini_core::isa::{Instruction, LocalAddr};
use gemmini_core::peripherals::PoolingUnit;
use gemmini_core::{AccelError, Accelerator, MemCtx};
use gemmini_cpu::CpuModel;
use gemmini_dnn::graph::Activation;
use gemmini_dnn::tensor::Tensor;
use gemmini_mem::addr::VirtAddr;

/// Everything a kernel needs from its core for one step.
#[derive(Debug)]
pub struct KernelEnv<'a> {
    /// The core's accelerator.
    pub accel: &'a mut Accelerator,
    /// The core's CPU model (for software phases).
    pub cpu: &'a CpuModel,
    /// The core's view of memory (address space, TLBs, shared L2/DRAM).
    pub ctx: MemCtx<'a>,
}

/// Result of one kernel step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// More work remains.
    Working,
    /// The kernel has finished.
    Done,
}

/// A resumable operator implementation.
pub trait Kernel {
    /// Executes roughly one tile of work.
    ///
    /// # Errors
    ///
    /// Propagates accelerator errors (page faults, bad addresses).
    fn step(&mut self, env: &mut KernelEnv<'_>) -> Result<StepOutcome, AccelError>;
}

/// Where a matmul's moving operand comes from.
#[derive(Debug)]
pub enum ASource {
    /// A is materialized in memory at `MatmulParams::a`, row stride `k`.
    Memory,
    /// A rows are convolution patches generated on the fly by the im2col
    /// block from a raw NCHW input.
    Im2col(Im2colParams),
}

/// Parameters of the on-the-fly im2col source. Activations live in memory
/// in NHWC (pixel-major) layout — the layout the accelerator's GEMM output
/// naturally produces — so patch-matrix columns are channels-fastest
/// (see `gemmini_dnn::ops::im2col::im2col_nhwc`).
#[derive(Debug)]
pub struct Im2colParams {
    /// Base of the raw NHWC input region this GEMM reads.
    pub input: VirtAddr,
    /// Input channels this GEMM consumes (1 for a depthwise channel).
    pub channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Bytes between consecutive image rows in memory
    /// (`in_w * total_channels` for a shared NHWC tensor).
    pub row_pitch: usize,
    /// Kernel size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
    /// Padding.
    pub padding: usize,
    /// Output width (for mapping patch rows to input rows).
    pub out_w: usize,
    /// The functional `m × k` patch matrix (None in timing-only mode).
    pub patches: Option<Tensor<i8>>,
}

/// Packs a row-major `[k, n]` stationary operand into `dim`-column panels:
/// panel `j` holds columns `j*dim..(j+1)*dim` contiguously (zero-padded to
/// `dim`), `k` rows of `dim` bytes each. The tuned software stack pre-packs
/// static weights this way so B tiles stream as dense, page-friendly reads
/// instead of pathological `n`-strided 16-byte gathers (which would take a
/// TLB walk per row on tall FC matrices).
pub fn pack_b_panels(b: &Tensor<i8>, dim: usize) -> Vec<i8> {
    assert_eq!(b.shape().len(), 2, "stationary operand must be 2-D");
    let (k, n) = (b.shape()[0], b.shape()[1]);
    let panels = n.div_ceil(dim);
    let mut out = vec![0i8; panels * k * dim];
    for p in 0..panels {
        for r in 0..k {
            for c in 0..dim {
                let col = p * dim + c;
                if col < n {
                    out[(p * k + r) * dim + c] = b[(r, col)];
                }
            }
        }
    }
    out
}

/// Bytes a panel-packed `[k, n]` stationary operand occupies.
pub fn packed_b_len(k: usize, n: usize, dim: usize) -> usize {
    n.div_ceil(dim) * k * dim
}

/// Dense matmul parameters: `C[m,n] = A[m,k] · B[k,n]`, int8 operands.
#[derive(Debug, Clone, Copy)]
pub struct MatmulParams {
    /// A's base address (ignored for the im2col source).
    pub a: VirtAddr,
    /// B's base address, in the panel layout of [`pack_b_panels`].
    pub b: VirtAddr,
    /// C's base address (row stride `n`).
    pub c: VirtAddr,
    /// Output rows.
    pub m: usize,
    /// Reduction depth.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Bytes between consecutive C rows in memory (equals `n` for a dense
    /// output; the full channel count for NHWC-interleaved depthwise
    /// columns).
    pub c_stride: usize,
    /// Fused activation applied on mvout.
    pub activation: Activation,
    /// Accumulator output scale.
    pub acc_scale: f32,
}

/// The tiled matrix-multiplication kernel (weight-stationary, double
/// buffered, with A/B tile caching).
#[derive(Debug)]
pub struct TiledMatmulKernel {
    params: MatmulParams,
    source: ASource,
    plan: TilePlan,
    dim: usize,
    kb: usize,
    nb: usize,
    mi: usize,
    nj: usize,
    i0: usize,
    j0: usize,
    configured: bool,
    a_slots: [Option<(usize, usize)>; 2],
    next_a: usize,
    b_slots: [Option<(usize, usize)>; 2],
    next_b: usize,
    a_base: [u32; 2],
    b_base: [u32; 2],
    /// Whether already-resident tiles are reused across loop iterations.
    /// `false` matches the paper's software stack (its `tiled_matmul_auto`
    /// re-mvins operands every iteration); `true` is the reuse-optimized
    /// variant this repo adds as an ablation (see DESIGN.md).
    tile_reuse: bool,
    /// Reused staging buffer for functional im2col patch blocks (capacity
    /// persists across tiles, so steady-state steps do not allocate).
    patch_scratch: Vec<i8>,
}

impl TiledMatmulKernel {
    /// Plans and builds a matmul kernel for the accelerator configuration,
    /// with the paper-faithful (no tile reuse) software behaviour.
    pub fn new(
        config: &gemmini_core::config::GemminiConfig,
        params: MatmulParams,
        source: ASource,
    ) -> Self {
        Self::with_plan(
            config,
            params,
            source,
            plan_matmul(config, params.m, params.k, params.n),
        )
    }

    /// Like [`Self::new`] but reusing already-resident A/B tiles across
    /// loop iterations — the smarter software stack, used by the ablation
    /// benches.
    pub fn with_tile_reuse(
        config: &gemmini_core::config::GemminiConfig,
        params: MatmulParams,
        source: ASource,
    ) -> Self {
        let mut k = Self::new(config, params, source);
        k.tile_reuse = true;
        k
    }

    /// Builds a kernel with a manually chosen tile plan (the low-level
    /// API's manual tile-size override).
    ///
    /// # Panics
    ///
    /// Panics if the plan does not fit the configuration.
    pub fn with_plan(
        config: &gemmini_core::config::GemminiConfig,
        params: MatmulParams,
        source: ASource,
        plan: TilePlan,
    ) -> Self {
        assert!(plan.fits(config), "tile plan {plan:?} does not fit");
        let dim = config.dim();
        let (mb, kb, nb) = (
            blocks(params.m, dim),
            blocks(params.k, dim),
            blocks(params.n, dim),
        );
        let mi = mb.div_ceil(plan.tm);
        let a_cap = (plan.tm * plan.tk * dim) as u32;
        let b_cap = (plan.tk * plan.tn * dim) as u32;
        Self {
            params,
            source,
            plan,
            dim,
            kb,
            nb,
            mi,
            nj: nb.div_ceil(plan.tn),
            i0: 0,
            j0: 0,
            configured: false,
            a_slots: [None, None],
            next_a: 0,
            b_slots: [None, None],
            next_b: 0,
            a_base: [0, a_cap],
            b_base: [2 * a_cap, 2 * a_cap + b_cap],
            tile_reuse: false,
            patch_scratch: Vec::new(),
        }
    }

    /// Number of (i,j) tile steps this kernel will take.
    pub fn total_steps(&self) -> usize {
        self.mi * self.nj
    }

    fn stripe_rows(&self, i0: usize) -> usize {
        let start = i0 * self.plan.tm * self.dim;
        (self.params.m - start).min(self.plan.tm * self.dim)
    }

    fn block_cols_k(&self, kblk: usize) -> usize {
        (self.params.k - kblk * self.dim).min(self.dim)
    }

    fn block_cols_n(&self, nblk: usize) -> usize {
        (self.params.n - nblk * self.dim).min(self.dim)
    }

    fn ensure_configured(&mut self, env: &mut KernelEnv<'_>) -> Result<(), AccelError> {
        if !self.configured {
            env.accel.issue(
                &mut env.ctx,
                Instruction::ConfigEx {
                    dataflow: Dataflow::WeightStationary,
                    activation: self.params.activation,
                    acc_scale: self.params.acc_scale,
                },
            )?;
            self.configured = true;
        }
        Ok(())
    }

    fn ensure_a(
        &mut self,
        env: &mut KernelEnv<'_>,
        i0: usize,
        k0: usize,
    ) -> Result<usize, AccelError> {
        if self.tile_reuse {
            if let Some(slot) = (0..2).find(|&s| self.a_slots[s] == Some((i0, k0))) {
                return Ok(slot);
            }
        }
        let slot = self.next_a;
        self.next_a ^= 1;
        self.a_slots[slot] = Some((i0, k0));
        let m_rows = self.stripe_rows(i0);
        let tk_eff = (self.kb - k0 * self.plan.tk).min(self.plan.tk);
        match &self.source {
            ASource::Memory => {
                env.accel.issue(
                    &mut env.ctx,
                    Instruction::ConfigLd {
                        stride: self.params.k as u64,
                        shrink: false,
                    },
                )?;
                for kbi in 0..tk_eff {
                    let kblk = k0 * self.plan.tk + kbi;
                    let cols = self.block_cols_k(kblk);
                    let dram = self.params.a.add(
                        (i0 * self.plan.tm * self.dim * self.params.k + kblk * self.dim) as u64,
                    );
                    env.accel.issue(
                        &mut env.ctx,
                        Instruction::Mvin {
                            dram_addr: dram,
                            local: LocalAddr::Sp {
                                row: self.a_base[slot] + (kbi * self.plan.tm * self.dim) as u32,
                            },
                            rows: m_rows as u16,
                            cols: cols as u16,
                        },
                    )?;
                }
            }
            ASource::Im2col(p) => {
                let p0 = i0 * self.plan.tm * self.dim;
                let oy0 = p0 / p.out_w;
                let oy1 = (p0 + m_rows - 1) / p.out_w;
                let iy0 = (oy0 * p.stride).saturating_sub(p.padding);
                let iy1 = (oy1 * p.stride + p.kernel)
                    .saturating_sub(p.padding)
                    .min(p.in_h)
                    .max(iy0 + 1);
                let n_iy = iy1 - iy0;
                // The im2col block expands patches from scratchpad-buffered
                // raw input rows. `ensure_a` only runs when the (stripe,
                // k-group) tile is not resident, so raw DRAM traffic is paid
                // exactly when the tile is (re)loaded — bigger scratchpads
                // mean fewer reloads, the Fig. 9 BigSP effect. The fetch
                // covers the channels this k-group's patch columns touch
                // (channels vary fastest in the NHWC column order).
                let cs_group = p.channels.min(tk_eff * self.dim);
                for kbi in 0..tk_eff {
                    let kblk = k0 * self.plan.tk + kbi;
                    let col0 = kblk * self.dim;
                    let cols = self.block_cols_k(kblk);
                    let raw_va = p.input.add((iy0 * p.row_pitch) as u64);
                    let raw_rows = if kbi == 0 { n_iy } else { 0 };
                    // Stage the patch block flat in the reused scratch:
                    // patch rows are contiguous runs of the materialized
                    // patch matrix, so each row is one memcpy.
                    let patch_data = match p.patches.as_ref() {
                        Some(t) => {
                            let k_full = t.shape()[1];
                            let flat = t.as_slice();
                            self.patch_scratch.clear();
                            for r in 0..m_rows {
                                let base = (p0 + r) * k_full + col0;
                                self.patch_scratch
                                    .extend_from_slice(&flat[base..base + cols]);
                            }
                            Some(self.patch_scratch.as_slice())
                        }
                        None => None,
                    };
                    env.accel.mvin_im2col(
                        &mut env.ctx,
                        raw_va,
                        raw_rows,
                        (p.in_w * cs_group) as u64,
                        p.row_pitch as u64,
                        self.a_base[slot] + (kbi * self.plan.tm * self.dim) as u32,
                        m_rows as u16,
                        patch_data,
                    )?;
                }
            }
        }
        Ok(slot)
    }

    fn ensure_b(
        &mut self,
        env: &mut KernelEnv<'_>,
        k0: usize,
        j0: usize,
    ) -> Result<usize, AccelError> {
        if self.tile_reuse {
            if let Some(slot) = (0..2).find(|&s| self.b_slots[s] == Some((k0, j0))) {
                return Ok(slot);
            }
        }
        let slot = self.next_b;
        self.next_b ^= 1;
        self.b_slots[slot] = Some((k0, j0));
        let tn_eff = (self.nb - j0 * self.plan.tn).min(self.plan.tn);
        let k_start = k0 * self.plan.tk * self.dim;
        let k_rows = (self.params.k - k_start).min(self.plan.tk * self.dim);
        // B is panel-packed: each tile is a dense run of dim-byte rows.
        env.accel.issue(
            &mut env.ctx,
            Instruction::ConfigLd {
                stride: self.dim as u64,
                shrink: false,
            },
        )?;
        for jbi in 0..tn_eff {
            let nblk = j0 * self.plan.tn + jbi;
            let dram = self
                .params
                .b
                .add(((nblk * self.params.k + k_start) * self.dim) as u64);
            env.accel.issue(
                &mut env.ctx,
                Instruction::Mvin {
                    dram_addr: dram,
                    local: LocalAddr::Sp {
                        row: self.b_base[slot] + (jbi * self.plan.tk * self.dim) as u32,
                    },
                    rows: k_rows as u16,
                    cols: self.dim as u16,
                },
            )?;
        }
        Ok(slot)
    }
}

impl Kernel for TiledMatmulKernel {
    fn step(&mut self, env: &mut KernelEnv<'_>) -> Result<StepOutcome, AccelError> {
        if self.i0 >= self.mi {
            return Ok(StepOutcome::Done);
        }
        self.ensure_configured(env)?;
        let (i0, j0) = (self.i0, self.j0);
        let m_rows = self.stripe_rows(i0);
        let tm_eff = m_rows.div_ceil(self.dim);
        let tn_eff = (self.nb - j0 * self.plan.tn).min(self.plan.tn);
        let kt = self.kb.div_ceil(self.plan.tk);

        for k0 in 0..kt {
            let aslot = self.ensure_a(env, i0, k0)?;
            let bslot = self.ensure_b(env, k0, j0)?;
            let tk_eff = (self.kb - k0 * self.plan.tk).min(self.plan.tk);
            for jbi in 0..tn_eff {
                let nblk = j0 * self.plan.tn + jbi;
                let b_cols = self.block_cols_n(nblk);
                let c_col_base = (jbi * self.plan.tm * self.dim) as u32;
                for kbi in 0..tk_eff {
                    let kblk = k0 * self.plan.tk + kbi;
                    let b_rows = self.block_cols_k(kblk);
                    let accumulate = k0 > 0 || kbi > 0;
                    let b_row = self.b_base[bslot]
                        + (jbi * self.plan.tk * self.dim + kbi * self.dim) as u32;
                    for ibi in 0..tm_eff {
                        let a_rows = (m_rows - ibi * self.dim).min(self.dim);
                        let a_row = self.a_base[aslot]
                            + (kbi * self.plan.tm * self.dim + ibi * self.dim) as u32;
                        let c_row = c_col_base + (ibi * self.dim) as u32;
                        let (b_operand, pb_rows, pb_cols) = if ibi == 0 {
                            (LocalAddr::Sp { row: b_row }, b_rows as u16, b_cols as u16)
                        } else {
                            (LocalAddr::None, 0, b_cols as u16)
                        };
                        env.accel.issue(
                            &mut env.ctx,
                            Instruction::Preload {
                                b: b_operand,
                                c: LocalAddr::Acc {
                                    row: c_row,
                                    accumulate,
                                },
                                b_rows: pb_rows,
                                b_cols: pb_cols,
                            },
                        )?;
                        env.accel.issue(
                            &mut env.ctx,
                            Instruction::ComputePreloaded {
                                a: LocalAddr::Sp { row: a_row },
                                d: LocalAddr::None,
                                a_rows: a_rows as u16,
                                a_cols: b_rows as u16,
                            },
                        )?;
                    }
                }
            }
        }

        // Store the finished C tile.
        env.accel.issue(
            &mut env.ctx,
            Instruction::ConfigSt {
                stride: self.params.c_stride as u64,
            },
        )?;
        for jbi in 0..tn_eff {
            let nblk = j0 * self.plan.tn + jbi;
            let cols = self.block_cols_n(nblk);
            let dram = self.params.c.add(
                (i0 * self.plan.tm * self.dim * self.params.c_stride + nblk * self.dim) as u64,
            );
            env.accel.issue(
                &mut env.ctx,
                Instruction::Mvout {
                    dram_addr: dram,
                    local: LocalAddr::Acc {
                        row: (jbi * self.plan.tm * self.dim) as u32,
                        accumulate: false,
                    },
                    rows: m_rows as u16,
                    cols: cols as u16,
                },
            )?;
        }

        self.j0 += 1;
        if self.j0 >= self.nj {
            self.j0 = 0;
            self.i0 += 1;
        }
        Ok(if self.i0 >= self.mi {
            StepOutcome::Done
        } else {
            StepOutcome::Working
        })
    }
}

/// Residual addition: streams both operands through the accumulator with
/// 8-bit widening mvins (Gemmini's shrunk mvin) and stores the saturated
/// sum — zero reuse, purely memory bound.
#[derive(Debug)]
pub struct ResAddKernel {
    a: VirtAddr,
    b: VirtAddr,
    c: VirtAddr,
    rows_total: usize,
    dim: usize,
    chunk_rows: usize,
    row_pos: usize,
    parity: bool,
    configured: bool,
}

impl ResAddKernel {
    /// Builds a residual-add kernel over `elements` int8 values.
    /// Buffers must be padded to a multiple of the array dimension.
    pub fn new(
        config: &gemmini_core::config::GemminiConfig,
        a: VirtAddr,
        b: VirtAddr,
        c: VirtAddr,
        elements: usize,
    ) -> Self {
        let dim = config.dim();
        Self {
            a,
            b,
            c,
            rows_total: elements.div_ceil(dim),
            dim,
            chunk_rows: (config.acc_rows() / 2).max(1),
            row_pos: 0,
            parity: false,
            configured: false,
        }
    }
}

impl Kernel for ResAddKernel {
    fn step(&mut self, env: &mut KernelEnv<'_>) -> Result<StepOutcome, AccelError> {
        if self.row_pos >= self.rows_total {
            return Ok(StepOutcome::Done);
        }
        if !self.configured {
            env.accel.issue(
                &mut env.ctx,
                Instruction::ConfigEx {
                    dataflow: Dataflow::WeightStationary,
                    activation: Activation::None,
                    acc_scale: 1.0,
                },
            )?;
            env.accel.issue(
                &mut env.ctx,
                Instruction::ConfigLd {
                    stride: self.dim as u64,
                    shrink: true,
                },
            )?;
            env.accel.issue(
                &mut env.ctx,
                Instruction::ConfigSt {
                    stride: self.dim as u64,
                },
            )?;
            self.configured = true;
        }
        let rows = (self.rows_total - self.row_pos).min(self.chunk_rows);
        let acc_row = if self.parity {
            self.chunk_rows as u32
        } else {
            0
        };
        self.parity = !self.parity;
        let off = (self.row_pos * self.dim) as u64;
        env.accel.issue(
            &mut env.ctx,
            Instruction::Mvin {
                dram_addr: self.a.add(off),
                local: LocalAddr::Acc {
                    row: acc_row,
                    accumulate: false,
                },
                rows: rows as u16,
                cols: self.dim as u16,
            },
        )?;
        env.accel.issue(
            &mut env.ctx,
            Instruction::Mvin {
                dram_addr: self.b.add(off),
                local: LocalAddr::Acc {
                    row: acc_row,
                    accumulate: true,
                },
                rows: rows as u16,
                cols: self.dim as u16,
            },
        )?;
        env.accel.issue(
            &mut env.ctx,
            Instruction::Mvout {
                dram_addr: self.c.add(off),
                local: LocalAddr::Acc {
                    row: acc_row,
                    accumulate: false,
                },
                rows: rows as u16,
                cols: self.dim as u16,
            },
        )?;
        self.row_pos += rows;
        Ok(if self.row_pos >= self.rows_total {
            StepOutcome::Done
        } else {
            StepOutcome::Working
        })
    }
}

/// Pooling: streams the input feature map through the pooling block and
/// stores the pooled output (Gemmini pools in the store path).
#[derive(Debug)]
pub struct PoolKernel {
    input: VirtAddr,
    output: VirtAddr,
    channels: usize,
    in_h: usize,
    in_w: usize,
    out_h: usize,
    out_w: usize,
    window: usize,
    unit: PoolingUnit,
    /// Functional pooled output, flat: `channels * out_h` rows of `out_w`
    /// bytes packed back to back.
    out_data: Option<Vec<u8>>,
    done: bool,
}

impl PoolKernel {
    /// Builds a pooling kernel. `out_data` carries the functional result
    /// computed by the runtime's golden path (None in timing mode).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: &gemmini_core::config::GemminiConfig,
        input: VirtAddr,
        output: VirtAddr,
        channels: usize,
        in_hw: (usize, usize),
        out_hw: (usize, usize),
        window: usize,
        out_data: Option<Vec<u8>>,
    ) -> Self {
        Self {
            input,
            output,
            channels,
            in_h: in_hw.0,
            in_w: in_hw.1,
            out_h: out_hw.0,
            out_w: out_hw.1,
            window,
            unit: PoolingUnit::for_dim(config.dim()),
            out_data,
            done: false,
        }
    }
}

impl Kernel for PoolKernel {
    fn step(&mut self, env: &mut KernelEnv<'_>) -> Result<StepOutcome, AccelError> {
        if self.done {
            return Ok(StepOutcome::Done);
        }
        let in_done = env.accel.mvin_raw(
            &mut env.ctx,
            self.input,
            self.channels * self.in_h,
            self.in_w as u64,
            self.in_w as u64,
        )?;
        let cycles = self
            .unit
            .pool_cycles(self.channels * self.out_h * self.out_w, self.window);
        env.accel.charge_execute_after(in_done, cycles);
        env.accel.mvout_raw(
            &mut env.ctx,
            self.output,
            self.channels * self.out_h,
            self.out_w as u64,
            self.out_w as u64,
            self.out_data.as_deref(),
        )?;
        self.done = true;
        Ok(StepOutcome::Done)
    }
}

/// A layer executed entirely by the host CPU (softmax, layer norm, or any
/// operator on an accelerator configured without the matching block).
#[derive(Debug)]
pub struct CpuLayerKernel {
    cycles: u64,
    done: bool,
}

impl CpuLayerKernel {
    /// Builds a CPU layer costing `cycles` host cycles.
    pub fn new(cycles: u64) -> Self {
        Self {
            cycles,
            done: false,
        }
    }
}

impl Kernel for CpuLayerKernel {
    fn step(&mut self, env: &mut KernelEnv<'_>) -> Result<StepOutcome, AccelError> {
        if !self.done {
            let now = env.accel.now();
            env.accel.advance_to(now + self.cycles);
            self.done = true;
        }
        Ok(StepOutcome::Done)
    }
}

/// Depthwise convolution: each channel is an independent tiny GEMM
/// (`m = oh·ow`, `k = kernel²`, `n = 1`) — the low-reuse mapping that makes
/// MobileNet-class layers inefficient on spatial arrays (Section IV-B).
#[derive(Debug)]
pub struct DwConvKernel {
    config: gemmini_core::config::GemminiConfig,
    input: VirtAddr,
    weights: VirtAddr,
    output: VirtAddr,
    channels: usize,
    in_hw: (usize, usize),
    out_hw: (usize, usize),
    kernel: usize,
    stride: usize,
    padding: usize,
    activation: Activation,
    acc_scale: f32,
    patches_per_channel: Option<Vec<Tensor<i8>>>,
    /// When the accelerator lacks the im2col block, the CPU materializes
    /// per-channel patch matrices here and channels read them as plain
    /// memory operands.
    materialized_patches: Option<VirtAddr>,
    channel: usize,
    inner: Option<TiledMatmulKernel>,
}

impl DwConvKernel {
    /// Builds a depthwise-convolution kernel.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        config: &gemmini_core::config::GemminiConfig,
        input: VirtAddr,
        weights: VirtAddr,
        output: VirtAddr,
        channels: usize,
        in_hw: (usize, usize),
        out_hw: (usize, usize),
        kernel: usize,
        stride: usize,
        padding: usize,
        activation: Activation,
        acc_scale: f32,
        patches_per_channel: Option<Vec<Tensor<i8>>>,
        materialized_patches: Option<VirtAddr>,
    ) -> Self {
        Self {
            config: config.clone(),
            input,
            weights,
            output,
            channels,
            in_hw,
            out_hw,
            kernel,
            stride,
            padding,
            activation,
            acc_scale,
            patches_per_channel,
            materialized_patches,
            channel: 0,
            inner: None,
        }
    }
}

impl Kernel for DwConvKernel {
    fn step(&mut self, env: &mut KernelEnv<'_>) -> Result<StepOutcome, AccelError> {
        if self.channel >= self.channels {
            return Ok(StepOutcome::Done);
        }
        if self.inner.is_none() {
            let m = self.out_hw.0 * self.out_hw.1;
            let kk = self.kernel * self.kernel;
            // Output is NHWC: channel ch of pixel p lives at p*channels + ch.
            // Each per-channel GEMM writes an m x 1 column; with n = the
            // full channel count as the row stride, columns interleave into
            // NHWC naturally. We express that by giving the sub-GEMM
            // n = channels and pointing c at the channel offset.
            let dim = self.config.dim();
            let (params, source) = if let Some(pa) = self.materialized_patches {
                (
                    MatmulParams {
                        a: pa.add((self.channel * m * kk) as u64),
                        b: self.weights.add((self.channel * kk * dim) as u64),
                        c: self.output.add(self.channel as u64),
                        m,
                        k: kk,
                        n: 1,
                        c_stride: self.channels,
                        activation: self.activation,
                        acc_scale: self.acc_scale,
                    },
                    ASource::Memory,
                )
            } else {
                (
                    MatmulParams {
                        a: VirtAddr::new(0), // unused for im2col source
                        b: self.weights.add((self.channel * kk * dim) as u64),
                        c: self.output.add(self.channel as u64),
                        m,
                        k: kk,
                        n: 1,
                        c_stride: self.channels,
                        activation: self.activation,
                        acc_scale: self.acc_scale,
                    },
                    ASource::Im2col(Im2colParams {
                        input: self.input.add(self.channel as u64),
                        channels: 1,
                        in_h: self.in_hw.0,
                        in_w: self.in_hw.1,
                        row_pitch: self.in_hw.1 * self.channels,
                        kernel: self.kernel,
                        stride: self.stride,
                        padding: self.padding,
                        out_w: self.out_hw.1,
                        patches: self
                            .patches_per_channel
                            .as_ref()
                            .map(|v| v[self.channel].clone()),
                    }),
                )
            };
            self.inner = Some(TiledMatmulKernel::new(&self.config, params, source));
        }
        let done = matches!(
            self.inner
                .as_mut()
                .expect("inner kernel exists")
                .step(env)?,
            StepOutcome::Done
        );
        if done {
            self.inner = None;
            self.channel += 1;
        }
        Ok(if self.channel >= self.channels {
            StepOutcome::Done
        } else {
            StepOutcome::Working
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemmini_core::config::GemminiConfig;
    use gemmini_dnn::ops::matmul;
    use gemmini_dnn::quant::{requantize_tensor, QuantParams};
    use gemmini_mem::addr::PAGE_SIZE;
    use gemmini_mem::dram::MainMemory;
    use gemmini_mem::MemorySystem;
    use gemmini_vm::page::FrameAllocator;
    use gemmini_vm::page_table::AddressSpace;
    use gemmini_vm::translator::{TranslationConfig, TranslationSystem};

    struct Rig {
        space: AddressSpace,
        translation: TranslationSystem,
        mem: MemorySystem,
        data: MainMemory,
        frames: FrameAllocator,
    }

    fn rig() -> Rig {
        let mut frames = FrameAllocator::new();
        let space = AddressSpace::new(&mut frames);
        Rig {
            space,
            translation: TranslationSystem::new(TranslationConfig::default()),
            mem: MemorySystem::default(),
            data: MainMemory::new(),
            frames,
        }
    }

    impl Rig {
        fn alloc(&mut self, len: usize) -> VirtAddr {
            self.space.alloc(
                &mut self.frames,
                (len as u64).max(1).div_ceil(PAGE_SIZE) * PAGE_SIZE,
            )
        }

        fn write_i8(&mut self, va: VirtAddr, vals: &[i8]) {
            let bytes: Vec<u8> = vals.iter().map(|&x| x as u8).collect();
            let mut off = 0usize;
            while off < bytes.len() {
                let cur = va.add(off as u64);
                let pa = self.space.translate(cur).unwrap();
                let n = ((PAGE_SIZE - cur.offset_in_page()) as usize).min(bytes.len() - off);
                self.data.write(pa, &bytes[off..off + n]);
                off += n;
            }
        }

        fn read_i8(&self, va: VirtAddr, len: usize) -> Vec<i8> {
            let mut out = vec![0u8; len];
            let mut off = 0usize;
            while off < len {
                let cur = va.add(off as u64);
                let pa = self.space.translate(cur).unwrap();
                let n = ((PAGE_SIZE - cur.offset_in_page()) as usize).min(len - off);
                let mut buf = vec![0u8; n];
                self.data.read(pa, &mut buf);
                out[off..off + n].copy_from_slice(&buf);
                off += n;
            }
            out.iter().map(|&b| b as i8).collect()
        }
    }

    fn run_kernel(rig: &mut Rig, accel: &mut Accelerator, kernel: &mut dyn Kernel) {
        let cpu = CpuModel::new(gemmini_cpu::CpuKind::Rocket);
        loop {
            let mut env = KernelEnv {
                accel,
                cpu: &cpu,
                ctx: MemCtx {
                    space: &rig.space,
                    translation: &mut rig.translation,
                    mem: &mut rig.mem,
                    data: Some(&mut rig.data),
                    port: 0,
                },
            };
            if matches!(kernel.step(&mut env).unwrap(), StepOutcome::Done) {
                break;
            }
        }
    }

    fn check_matmul(m: usize, k: usize, n: usize, seed: u64) {
        let cfg = GemminiConfig::edge();
        let mut r = rig();
        let a = Tensor::<i8>::random(&[m, k], seed);
        let b = Tensor::<i8>::random(&[k, n], seed + 1);
        let va_a = r.alloc(m * k);
        let va_b = r.alloc(packed_b_len(k, n, 16));
        let va_c = r.alloc(m * n);
        r.write_i8(va_a, a.as_slice());
        r.write_i8(va_b, &pack_b_panels(&b, 16));

        let mut accel = Accelerator::new(cfg.clone());
        let mut kernel = TiledMatmulKernel::new(
            &cfg,
            MatmulParams {
                a: va_a,
                b: va_b,
                c: va_c,
                m,
                k,
                n,
                c_stride: n,
                activation: Activation::None,
                acc_scale: 1.0,
            },
            ASource::Memory,
        );
        run_kernel(&mut r, &mut accel, &mut kernel);

        let got = r.read_i8(va_c, m * n);
        let want = requantize_tensor(&matmul(&a, &b), QuantParams::new(1.0));
        assert_eq!(got, want.as_slice(), "matmul {m}x{k}x{n}");
    }

    #[test]
    fn matmul_single_tile() {
        check_matmul(16, 16, 16, 1);
    }

    #[test]
    fn matmul_multi_tile_k_reduction() {
        check_matmul(16, 128, 16, 2);
    }

    #[test]
    fn matmul_rectangular_multi_tile() {
        check_matmul(64, 48, 80, 3);
    }

    #[test]
    fn matmul_ragged_edges() {
        // Dimensions not multiples of 16 exercise partial blocks.
        check_matmul(18, 33, 21, 4);
        check_matmul(1, 100, 10, 5);
    }

    #[test]
    fn matmul_larger_than_tile_plan() {
        check_matmul(100, 70, 90, 6);
    }

    #[test]
    fn conv_via_im2col_source_matches_reference() {
        use gemmini_dnn::layout::to_nhwc;
        use gemmini_dnn::ops::conv::{conv2d, ConvSpec};
        use gemmini_dnn::ops::im2col::{im2col_nhwc, weights_to_matrix_nhwc};

        let cfg = GemminiConfig::edge();
        let mut r = rig();
        let (c_in, h, w, c_out, ksz) = (3usize, 10usize, 10usize, 8usize, 3usize);
        let spec = ConvSpec {
            kernel: ksz,
            stride: 1,
            padding: 1,
        };
        let input = Tensor::<i8>::random(&[1, c_in, h, w], 7);
        let weights = Tensor::<i8>::random(&[c_out, c_in, ksz, ksz], 8);
        let (oh, ow) = (spec.out_size(h), spec.out_size(w));
        let m = oh * ow;
        let k = ksz * ksz * c_in;

        let va_in = r.alloc(c_in * h * w);
        let va_w = r.alloc(packed_b_len(k, c_out, 16));
        let va_out = r.alloc(m * c_out);
        // Activations live in memory in NHWC layout.
        r.write_i8(va_in, &to_nhwc(&input));
        let wmat = weights_to_matrix_nhwc(&weights);
        r.write_i8(va_w, &pack_b_panels(&wmat, 16));

        let patches = im2col_nhwc(&input, spec);
        let mut accel = Accelerator::new(cfg.clone());
        let mut kernel = TiledMatmulKernel::new(
            &cfg,
            MatmulParams {
                a: VirtAddr::new(0),
                b: va_w,
                c: va_out,
                m,
                k,
                n: c_out,
                c_stride: c_out,
                activation: Activation::None,
                acc_scale: 1.0,
            },
            ASource::Im2col(Im2colParams {
                input: va_in,
                channels: c_in,
                in_h: h,
                in_w: w,
                row_pitch: w * c_in,
                kernel: ksz,
                stride: 1,
                padding: 1,
                out_w: ow,
                patches: Some(patches),
            }),
        );
        run_kernel(&mut r, &mut accel, &mut kernel);

        let got = r.read_i8(va_out, m * c_out);
        let reference = conv2d(&input, &weights, spec);
        // The GEMM layout is [pixel, oc]; reference is NCHW.
        for oc in 0..c_out {
            for y in 0..oh {
                for x in 0..ow {
                    let pix = y * ow + x;
                    let want = gemmini_dnn::quant::requantize(
                        reference.at4(0, oc, y, x),
                        QuantParams::new(1.0),
                    );
                    assert_eq!(got[pix * c_out + oc], want, "oc={oc} y={y} x={x}");
                }
            }
        }
    }

    #[test]
    fn im2col_source_moves_less_data_than_materialized_patches() {
        // The whole point of the block: raw traffic ≈ input bytes, not k².
        let cfg = GemminiConfig::edge();
        let (c_in, h, w, c_out, ksz) = (16usize, 32usize, 32usize, 16usize, 3usize);
        let m = h * w;
        let k = ksz * ksz * c_in;

        let run = |source_is_im2col: bool| -> u64 {
            let mut r = rig();
            let va_in = r.alloc(c_in * h * w);
            let va_a = r.alloc(m * k);
            let va_w = r.alloc(packed_b_len(k, c_out, 16));
            let va_out = r.alloc(m * c_out);
            let mut accel = Accelerator::new(cfg.clone());
            let params = MatmulParams {
                a: va_a,
                b: va_w,
                c: va_out,
                m,
                k,
                n: c_out,
                c_stride: c_out,
                activation: Activation::None,
                acc_scale: 1.0,
            };
            let source = if source_is_im2col {
                ASource::Im2col(Im2colParams {
                    input: va_in,
                    channels: c_in,
                    in_h: h,
                    in_w: w,
                    row_pitch: w * c_in,
                    kernel: ksz,
                    stride: 1,
                    padding: 1,
                    out_w: w,
                    patches: None,
                })
            } else {
                ASource::Memory
            };
            let mut kernel = TiledMatmulKernel::new(&cfg, params, source);
            // Timing-only run.
            let cpu = CpuModel::new(gemmini_cpu::CpuKind::Rocket);
            loop {
                let mut env = KernelEnv {
                    accel: &mut accel,
                    cpu: &cpu,
                    ctx: MemCtx {
                        space: &r.space,
                        translation: &mut r.translation,
                        mem: &mut r.mem,
                        data: None,
                        port: 0,
                    },
                };
                if matches!(kernel.step(&mut env).unwrap(), StepOutcome::Done) {
                    break;
                }
            }
            accel.dma_stats().bytes_in
        };

        let raw = run(true);
        let materialized = run(false);
        assert!(
            raw * 2 < materialized,
            "im2col source should move far less: raw={raw} materialized={materialized}"
        );
    }

    #[test]
    fn resadd_matches_saturating_reference() {
        use gemmini_dnn::ops::resadd_i8;
        let cfg = GemminiConfig::edge();
        let mut r = rig();
        let n = 1000usize;
        let padded = n.div_ceil(16) * 16;
        let a = Tensor::<i8>::random(&[padded], 10);
        let b = Tensor::<i8>::random(&[padded], 11);
        let va_a = r.alloc(padded);
        let va_b = r.alloc(padded);
        let va_c = r.alloc(padded);
        r.write_i8(va_a, a.as_slice());
        r.write_i8(va_b, b.as_slice());

        let mut accel = Accelerator::new(cfg.clone());
        let mut kernel = ResAddKernel::new(&cfg, va_a, va_b, va_c, n);
        run_kernel(&mut r, &mut accel, &mut kernel);

        let got = r.read_i8(va_c, n);
        let want = resadd_i8(&a, &b);
        assert_eq!(&got[..], &want.as_slice()[..n]);
    }

    #[test]
    fn resadd_with_saturation_values() {
        let cfg = GemminiConfig::edge();
        let mut r = rig();
        let vals_a = vec![127i8; 32];
        let vals_b = vec![127i8; 32];
        let va_a = r.alloc(32);
        let va_b = r.alloc(32);
        let va_c = r.alloc(32);
        r.write_i8(va_a, &vals_a);
        r.write_i8(va_b, &vals_b);
        let mut accel = Accelerator::new(cfg.clone());
        let mut kernel = ResAddKernel::new(&cfg, va_a, va_b, va_c, 32);
        run_kernel(&mut r, &mut accel, &mut kernel);
        assert_eq!(r.read_i8(va_c, 32), vec![127i8; 32]);
    }

    #[test]
    fn pool_kernel_streams_and_writes_functional_output() {
        let cfg = GemminiConfig::edge();
        let mut r = rig();
        let va_in = r.alloc(4 * 8 * 8);
        let va_out = r.alloc(4 * 4 * 4);
        // Functional pooled rows: 4 channels * 4 rows of 4 bytes, value 9,
        // packed flat.
        let rows = vec![9u8; 64];
        let mut accel = Accelerator::new(cfg.clone());
        let mut kernel = PoolKernel::new(&cfg, va_in, va_out, 4, (8, 8), (4, 4), 2, Some(rows));
        run_kernel(&mut r, &mut accel, &mut kernel);
        assert_eq!(r.read_i8(va_out, 64), vec![9i8; 64]);
        assert!(accel.stats().finish > 0);
        assert_eq!(accel.dma_stats().bytes_in, 4 * 8 * 8);
        assert_eq!(accel.dma_stats().bytes_out, 4 * 4 * 4);
    }

    #[test]
    fn cpu_layer_kernel_advances_time() {
        let cfg = GemminiConfig::edge();
        let mut r = rig();
        let mut accel = Accelerator::new(cfg);
        let mut kernel = CpuLayerKernel::new(12345);
        run_kernel(&mut r, &mut accel, &mut kernel);
        assert_eq!(accel.now(), 12345);
    }

    #[test]
    fn dwconv_matches_reference() {
        use gemmini_dnn::layout::to_nhwc;
        use gemmini_dnn::ops::conv::{dwconv2d, ConvSpec};
        use gemmini_dnn::ops::im2col::im2col;

        let cfg = GemminiConfig::edge();
        let mut r = rig();
        let (c, h, w, ksz) = (4usize, 6usize, 6usize, 3usize);
        let spec = ConvSpec {
            kernel: ksz,
            stride: 1,
            padding: 1,
        };
        let input = Tensor::<i8>::random(&[1, c, h, w], 20);
        let weights = Tensor::<i8>::random(&[c, ksz, ksz], 21);
        let (oh, ow) = (h, w);

        let va_in = r.alloc(c * h * w);
        let va_w = r.alloc(c * ksz * ksz * 16);
        let va_out = r.alloc(c * oh * ow);
        r.write_i8(va_in, &to_nhwc(&input));
        // Weight layout: per-channel [k², 1] panels padded to dim columns.
        let mut panels = Vec::new();
        for ch in 0..c {
            let col = Tensor::from_vec(
                &[ksz * ksz, 1],
                weights.as_slice()[ch * ksz * ksz..(ch + 1) * ksz * ksz].to_vec(),
            );
            panels.extend(pack_b_panels(&col, 16));
        }
        r.write_i8(va_w, &panels);

        // Per-channel patch matrices.
        let patches: Vec<Tensor<i8>> = (0..c)
            .map(|ch| {
                let chan = Tensor::from_vec(
                    &[1, 1, h, w],
                    input.as_slice()[ch * h * w..(ch + 1) * h * w].to_vec(),
                );
                im2col(&chan, spec)
            })
            .collect();

        let mut accel = Accelerator::new(cfg.clone());
        let mut kernel = DwConvKernel::new(
            &cfg,
            va_in,
            va_w,
            va_out,
            c,
            (h, w),
            (oh, ow),
            ksz,
            1,
            1,
            Activation::None,
            1.0,
            Some(patches),
            None,
        );
        run_kernel(&mut r, &mut accel, &mut kernel);

        // Output is NHWC: pixel-major, channels interleaved.
        let got = r.read_i8(va_out, c * oh * ow);
        let reference = dwconv2d(&input, &weights, spec);
        for ch in 0..c {
            for y in 0..oh {
                for x in 0..ow {
                    let want = gemmini_dnn::quant::requantize(
                        reference.at4(0, ch, y, x),
                        QuantParams::new(1.0),
                    );
                    assert_eq!(got[(y * ow + x) * c + ch], want, "ch={ch} y={y} x={x}");
                }
            }
        }
    }

    #[test]
    fn relu_activation_applies_through_kernel() {
        let cfg = GemminiConfig::edge();
        let mut r = rig();
        // A = [-1], B = [1] -> product -1 -> relu -> 0.
        let va_a = r.alloc(16);
        let va_b = r.alloc(16);
        let va_c = r.alloc(16);
        r.write_i8(va_a, &[-1]);
        // 1x1 B, panel-padded to 16 columns.
        r.write_i8(
            va_b,
            &pack_b_panels(&Tensor::from_vec(&[1, 1], vec![1i8]), 16),
        );
        let mut accel = Accelerator::new(cfg.clone());
        let mut kernel = TiledMatmulKernel::new(
            &cfg,
            MatmulParams {
                a: va_a,
                b: va_b,
                c: va_c,
                m: 1,
                k: 1,
                n: 1,
                c_stride: 1,
                activation: Activation::Relu,
                acc_scale: 1.0,
            },
            ASource::Memory,
        );
        run_kernel(&mut r, &mut accel, &mut kernel);
        assert_eq!(r.read_i8(va_c, 1), vec![0i8]);
    }
}
