#![warn(missing_docs)]

//! Full-SoC integration and the multi-level software stack.
//!
//! This crate is where the paper's "full-stack" claim lives: it combines
//! the generated accelerator (`gemmini-core`), the host CPU models
//! (`gemmini-cpu`), virtual memory (`gemmini-vm`) and the shared memory
//! system (`gemmini-mem`) into bootable-SoC-shaped simulations, and layers
//! the software stack on top:
//!
//! * [`tiling`] — the runtime data-staging heuristic (Section III-B):
//!   computes loop tile sizes that maximize scratchpad residency, with a
//!   manual override mirroring the low-level C API.
//! * [`kernel`] — the tuned kernel library: tiled matmul (with either a
//!   materialized A matrix or the on-the-fly im2col block), depthwise
//!   convolution, residual addition, pooling and CPU-side vector ops, all
//!   expressed as resumable state machines so multi-core simulations can
//!   interleave at tile granularity.
//! * [`runtime`] — the push-button flow: takes a [`gemmini_dnn::Network`]
//!   (our ONNX substitute) and executes it layer by layer, choosing
//!   accelerator or CPU per operator exactly as the real stack does.
//! * [`soc`] — SoC configuration: cores (CPU + accelerator + translation
//!   hardware), the shared L2/DRAM, and multi-core construction (Fig. 5).
//! * [`os`] — OS noise: periodic context switches that flush translation
//!   state, reproducing the paper's observation that a real OS perturbs
//!   accelerator state in ways bare-metal runs never see.
//! * [`roofline`] — analytic compute/memory lower bounds used as a
//!   self-check on the timing model (no simulated layer may beat them).
//! * [`run`] — the experiment driver: runs one network per core to
//!   completion and produces the per-layer / per-class / translation /
//!   cache reports every figure of the evaluation consumes.
//! * [`sweep`] — the parallel design-space sweep executor: runs a batch
//!   of named [`soc::SocConfig`] points across a worker pool with
//!   per-point fault isolation and deterministic result ordering; every
//!   figure binary drives its sweep through this.
//! * [`prune`] — attribution-guided sweep pruning: skips grid points
//!   whose dominant cycle bucket the swept axis provably cannot move,
//!   serving the group basis's report as a prediction and recording the
//!   evidence (basis + dominant bucket + axis-insensitivity rule) in the
//!   checkpoint.
//! * [`telemetry`] — live sweep observability: atomic JSON heartbeat
//!   files (`--status`), Prometheus text exposition (`--metrics`), and
//!   the p50-based ETA derivation behind the progress lines and the
//!   supervisor's fleet view.
//! * [`shard`] — sharded multi-process sweeps on top of [`sweep`]:
//!   deterministic `--shard i/N` strided planning, a crash-resilient
//!   supervisor that retries killed *and hung* worker processes from
//!   their checkpoints (heartbeat-staleness watchdog, jittered
//!   exponential backoff), and an exact `--merge` that stitches shard
//!   checkpoint files back into the single-process result.
//! * [`fault`] — deterministic fault injection: a `GEMMINI_FAULTS`-armed
//!   failpoint registry threaded through the checkpoint writer, shard
//!   supervisor, heartbeat writer and sweep executor, so every recovery
//!   path above is testable on demand (and free when disarmed).
//!
//! # Example
//!
//! ```no_run
//! use gemmini_soc::run::{run_networks, RunOptions};
//! use gemmini_soc::soc::SocConfig;
//! use gemmini_dnn::zoo;
//!
//! let report = run_networks(
//!     &SocConfig::edge_single_core(),
//!     &[zoo::resnet50()],
//!     &RunOptions::timing(),
//! ).expect("run succeeds");
//! println!("ResNet50: {} cycles", report.cores[0].total_cycles);
//! ```

pub mod checkpoint;
pub mod fault;
pub mod kernel;
pub mod os;
pub mod prune;
pub mod roofline;
pub mod run;
pub mod runtime;
pub mod shard;
pub mod soc;
pub mod sweep;
pub mod telemetry;
pub mod tiling;

pub use prune::{Attributed, PruneEvidence, PrunePolicy, PruneSummary};
pub use run::{run_networks, CoreReport, RunOptions, SocReport};
pub use shard::{run_sharded, ShardCli, ShardError, ShardSpec};
pub use soc::{CoreConfig, SocConfig};
pub use sweep::{run_sweep, run_sweep_with, DesignPoint, SweepError, SweepOptions, SweepResult};
pub use tiling::TilePlan;
