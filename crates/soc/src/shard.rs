//! Sharded, multi-process sweep execution: strided shard planning, a
//! crash-resilient child-process supervisor, and an exact shard merge.
//!
//! The in-process worker pool in [`crate::sweep`] parallelises one
//! process; it cannot survive a hard crash (an abort, OOM kill or
//! segfault takes every in-flight point with it) and cannot span
//! processes or hosts. This module layers process-level resilience on
//! top of the checkpoint substrate:
//!
//! * **Shard planning** — [`ShardSpec`] names one strided slice of a
//!   point list (`--shard i/N`): point `p` belongs to shard `p mod N`.
//!   Striding (rather than chunking) balances grids whose expensive
//!   points cluster, and the plan is a pure function of the grid order,
//!   so every process — workers, supervisor, merge — derives the same
//!   partition independently. [`shard_path`] derives the per-shard
//!   checkpoint file from the sweep's base `--json` path the same way.
//! * **Supervision** — [`supervise`] spawns one child process per shard
//!   (normally the current binary re-invoked with `--shard i/N
//!   --resume`), streams each child's output tagged `[shard i/N]`, and
//!   on a *crashed* child (non-zero exit or death by signal) retries
//!   that shard with bounded exponential backoff, deterministically
//!   jittered per shard so a fleet that died together does not retry in
//!   lock-step. With a `--watchdog` budget, the supervisor also detects
//!   *hung* children: a worker whose heartbeat `done` count has not
//!   advanced for the budget is killed and retried exactly like a
//!   crash. A child exiting with [`EXIT_RECORDED_FAILURES`] finished
//!   its slice with recorded point failures on the books (e.g. point
//!   timeouts); that is terminal — retrying would only re-serve the
//!   same recorded failures. Because the child resumes from its shard
//!   checkpoint, completed points are never re-simulated: a crash loses
//!   at most the in-flight points of one shard. With `--status`, the
//!   supervisor also reads each child's heartbeat file (at the
//!   [`shard_path`] of the status base) every ~2 s, renders a one-line
//!   `fleet:` view — per-shard phase, progress, throughput, ETA and
//!   retry count, with dead workers' frozen heartbeats rendered
//!   `stale` — and rewrites the absorbed aggregate [`Heartbeat`] at
//!   the base status path, so one `watch cat` covers the whole fleet.
//! * **Merge** — [`merge_shards`] loads the shard checkpoints
//!   (quarantining any damaged lines to `.bad` sidecars, see
//!   [`Checkpoint::load_quarantining`]), validates every expected
//!   `(label, fingerprint)` pair against them (reporting points that
//!   are missing or stale; recorded failures satisfy coverage), and
//!   stitches the lines back in grid submission order. Downstream
//!   totals fold through `merge_memory_stats`, whose stat types are
//!   exact merge monoids, so the merged output is bit-identical to a
//!   single-process run.
//!
//! [`run_sharded`] ties the three together behind the sweep binaries'
//! shared CLI (`--shard` / `--shards` / `--merge`, parsed by
//! [`ShardCli`]).

use std::fmt;
use std::io::{self, BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::checkpoint::{Checkpoint, CheckpointEntry, CheckpointWriter, Line};
use crate::prune::{Attributed, PrunePolicy};
use crate::sweep::{
    sweep_map_checkpointed, SweepError, SweepOptions, SweepResult, CRASH_AFTER_ENV,
    EXIT_RECORDED_FAILURES, HANG_AFTER_ENV,
};
use crate::telemetry::{
    format_eta, heartbeat_age, read_heartbeat, write_heartbeat, write_prometheus, Heartbeat,
};
use gemmini_core::metrics::Counter;
use gemmini_core::AccelError;
use gemmini_mem::json::{FromJson, ToJson};

/// Test-only companion to [`CRASH_AFTER_ENV`]: when set to a shard
/// index, only that shard's worker process keeps the crash hook armed;
/// every other shard disarms it on startup (by clearing the variable in
/// its own environment, before any sweep threads exist). Lets a test
/// kill exactly one shard of a supervised sweep.
pub const CRASH_SHARD_ENV: &str = "GEMMINI_TEST_CRASH_SHARD";

/// One strided shard of a sweep partition: `index` in `0..count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    /// This shard's position in the partition.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

impl ShardSpec {
    /// Validated constructor: `count` must be positive and `index` in
    /// range.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for a zero count or an
    /// out-of-range index.
    pub fn new(index: usize, count: usize) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be at least 1".to_string());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} shard(s) (expected 0..{count})"
            ));
        }
        Ok(Self { index, count })
    }

    /// Parses the CLI form `i/N` (e.g. `0/4`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for anything that is not a valid
    /// `index/count` pair.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| format!("invalid shard spec '{s}' (expected i/N, e.g. 0/4)"))?;
        let index = index
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("invalid shard index in '{s}'"))?;
        let count = count
            .trim()
            .parse::<usize>()
            .map_err(|_| format!("invalid shard count in '{s}'"))?;
        Self::new(index, count)
    }

    /// Whether grid position `position` belongs to this shard.
    pub fn owns(&self, position: usize) -> bool {
        position % self.count == self.index
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// The strided slice of `items` owned by `spec`, preserving grid order.
/// Deterministic for any list: every shard derives its own slice from
/// the full grid, no coordination needed.
pub fn shard_items<X>(items: Vec<X>, spec: ShardSpec) -> Vec<X> {
    items
        .into_iter()
        .enumerate()
        .filter(|(position, _)| spec.owns(*position))
        .map(|(_, item)| item)
        .collect()
}

/// Like [`shard_items`], but partitions whole prune groups instead of
/// individual points: a group's basis and members always land on the
/// same shard, so each worker can make (and persist) its own prune
/// decisions without cross-process coordination. Slots are assigned to
/// groups by first appearance in grid order — still a pure function of
/// the grid and the policy, so workers, supervisor and merge agree.
pub fn shard_items_grouped<I>(
    items: Vec<(String, u64, I)>,
    spec: ShardSpec,
    policy: &PrunePolicy,
) -> Vec<(String, u64, I)> {
    let mut slot_of_key: std::collections::HashMap<String, usize> =
        std::collections::HashMap::new();
    let mut next_slot = 0usize;
    items
        .into_iter()
        .filter(|(label, ..)| {
            // A member shares its group basis's slot; a basis or an
            // ungrouped point keys on its own label.
            let key = policy
                .group_of_member(label)
                .map_or(label.as_str(), |g| g.basis.as_str());
            let slot = *slot_of_key.entry(key.to_string()).or_insert_with(|| {
                let slot = next_slot;
                next_slot += 1;
                slot
            });
            spec.owns(slot)
        })
        .collect()
}

/// The per-shard checkpoint path derived from the sweep's base path:
/// `sweep.jsonl` → `sweep.shard0of4.jsonl` (extension preserved; a path
/// without one gets the suffix appended). Workers, the supervisor and
/// the merge all derive the same name independently.
pub fn shard_path(base: &Path, spec: ShardSpec) -> PathBuf {
    let stem = base.file_stem().and_then(|s| s.to_str()).unwrap_or("sweep");
    let suffix = format!("shard{}of{}", spec.index, spec.count);
    let name = match base.extension().and_then(|e| e.to_str()) {
        Some(ext) => format!("{stem}.{suffix}.{ext}"),
        None => format!("{stem}.{suffix}"),
    };
    base.with_file_name(name)
}

/// The `.bad` quarantine sidecar next to a checkpoint file (see
/// [`Checkpoint::load_quarantining`]).
fn sidecar_of(path: &Path) -> PathBuf {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("checkpoint.jsonl");
    path.with_file_name(format!("{file_name}.bad"))
}

/// Supervisor retry policy.
#[derive(Debug, Clone)]
pub struct SupervisorOptions {
    /// Total attempts per shard, including the first run.
    pub max_attempts: usize,
    /// Backoff before the first retry; doubles per subsequent retry,
    /// plus a deterministic per-shard jitter (see [`backoff_delay`]).
    pub backoff: Duration,
    /// Per-shard crash-retry counters, indexed by shard index and bumped
    /// the moment a retry is scheduled (not when it recovers), so the
    /// fleet monitor can render live retry counts. `None` skips the
    /// bookkeeping.
    pub retry_counts: Option<Arc<Vec<AtomicU64>>>,
    /// Hung-shard watchdog budget: a child whose heartbeat `done` count
    /// has not advanced for this long is killed and retried like a
    /// crash. Requires `status_base` (the watchdog reads the child
    /// heartbeat at its [`shard_path`]); `None` disables the watchdog.
    pub watchdog: Option<Duration>,
    /// The base `--status` path whose [`shard_path`] locates each
    /// child's heartbeat file for the watchdog.
    pub status_base: Option<PathBuf>,
}

impl Default for SupervisorOptions {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff: Duration::from_millis(250),
            retry_counts: None,
            watchdog: None,
            status_base: None,
        }
    }
}

/// How one supervised shard concluded (successfully).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutcome {
    /// The shard.
    pub spec: ShardSpec,
    /// Attempts it took, `1` meaning no crash.
    pub attempts: usize,
    /// The final attempt exited with [`EXIT_RECORDED_FAILURES`]: the
    /// slice is fully covered, but some points carry recorded failures
    /// (e.g. point timeouts). Terminal — a retry would only re-serve
    /// the same recorded failures from the checkpoint.
    pub completed_with_failures: bool,
}

/// Why supervision failed. Every shard still runs to completion or
/// retry-exhaustion before this is returned; the error describes the
/// first shard (by index) that exhausted its attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorError {
    /// The shard's child process could not be spawned at all.
    Spawn {
        /// The shard whose child failed to spawn.
        spec: ShardSpec,
        /// The OS error text.
        message: String,
    },
    /// Waiting on the child failed.
    Wait {
        /// The shard whose child could not be waited on.
        spec: ShardSpec,
        /// The OS error text.
        message: String,
    },
    /// The shard crashed on every attempt.
    Exhausted {
        /// The shard that kept crashing.
        spec: ShardSpec,
        /// Attempts made.
        attempts: usize,
        /// Description of the final exit status (code or signal).
        last_status: String,
    },
}

impl fmt::Display for SupervisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Spawn { spec, message } => {
                write!(f, "cannot spawn worker for shard {spec}: {message}")
            }
            Self::Wait { spec, message } => {
                write!(f, "cannot wait on worker for shard {spec}: {message}")
            }
            Self::Exhausted {
                spec,
                attempts,
                last_status,
            } => write!(
                f,
                "shard {spec} crashed on all {attempts} attempt(s); last status: {last_status}"
            ),
        }
    }
}

impl std::error::Error for SupervisorError {}

/// Forwards every line of a child stream to our stderr under the
/// shard's tag, so N children interleave legibly in one terminal.
fn forward_lines<R: Read + Send + 'static>(
    prefix: String,
    stream: R,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        for line in BufReader::new(stream).lines() {
            match line {
                Ok(line) => eprintln!("{prefix}{line}"),
                Err(_) => break,
            }
        }
    })
}

/// Deterministic per-shard jitter in `[0, 1)`: a splitmix64-style bit
/// mix of the shard index and the attempt number. Desynchronises the
/// retry stampede of a fleet that crashed together (e.g. a shared
/// filesystem blip taking every worker down at once) without
/// introducing real randomness — the same `(shard, attempt)` always
/// backs off for exactly the same duration, so supervised runs stay
/// reproducible.
fn jitter_fraction(shard_index: usize, completed_attempts: usize) -> f64 {
    let mut z = (shard_index as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(completed_attempts as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Top 53 bits map exactly onto the double mantissa: uniform [0, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// The supervisor's retry delay: exponential in the number of completed
/// attempts, plus up to +50% deterministic per-shard jitter, capped at
/// 10 s overall.
fn backoff_delay(base: Duration, completed_attempts: usize, shard_index: usize) -> Duration {
    const CAP: Duration = Duration::from_secs(10);
    let factor = 1u32 << completed_attempts.saturating_sub(1).min(8);
    let exponential = (base * factor).min(CAP);
    let jitter = exponential.mul_f64(0.5 * jitter_fraction(shard_index, completed_attempts));
    (exponential + jitter).min(CAP)
}

fn run_one_shard<C>(
    spec: ShardSpec,
    make_child: &C,
    opts: &SupervisorOptions,
) -> Result<ShardOutcome, SupervisorError>
where
    C: Fn(ShardSpec) -> Command,
{
    let max_attempts = opts.max_attempts.max(1);
    // The watchdog needs both a budget and a heartbeat to read.
    let heartbeat_path = match (&opts.watchdog, &opts.status_base) {
        (Some(_), Some(base)) => Some(shard_path(base, spec)),
        _ => None,
    };
    let mut last_status = String::new();
    for attempt in 1..=max_attempts {
        let mut cmd = make_child(spec);
        cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
        let mut child = cmd.spawn().map_err(|e| SupervisorError::Spawn {
            spec,
            message: e.to_string(),
        })?;
        let forwarders: Vec<_> = [
            child
                .stdout
                .take()
                .map(|s| forward_lines(format!("[shard {spec}] "), s)),
            child
                .stderr
                .take()
                .map(|s| forward_lines(format!("[shard {spec}] "), s)),
        ]
        .into_iter()
        .flatten()
        .collect();
        // Poll rather than block so the watchdog can act while the child
        // lives. Progress is the heartbeat's `done` count advancing, not
        // the file's freshness: a worker wedged inside one point keeps
        // rewriting its heartbeat (its monitor thread is alive) while
        // `done` stays frozen.
        let mut watchdog_fired = false;
        let mut last_done: Option<usize> = None;
        let mut last_progress = Instant::now();
        let status = loop {
            match child.try_wait() {
                Ok(Some(status)) => break status,
                Ok(None) => {}
                Err(e) => {
                    return Err(SupervisorError::Wait {
                        spec,
                        message: e.to_string(),
                    })
                }
            }
            if let (Some(budget), Some(path)) = (opts.watchdog, &heartbeat_path) {
                if let Some(hb) = read_heartbeat(path) {
                    if last_done != Some(hb.done) {
                        last_done = Some(hb.done);
                        last_progress = Instant::now();
                    }
                }
                if last_progress.elapsed() >= budget {
                    eprintln!(
                        "supervisor: shard {spec} hung (no heartbeat progress for {:.0}s); killing it",
                        last_progress.elapsed().as_secs_f64()
                    );
                    watchdog_fired = true;
                    let _ = child.kill();
                    break child.wait().map_err(|e| SupervisorError::Wait {
                        spec,
                        message: e.to_string(),
                    })?;
                }
            }
            std::thread::sleep(Duration::from_millis(100));
        };
        for handle in forwarders {
            let _ = handle.join();
        }
        let completed_with_failures = status.code() == Some(EXIT_RECORDED_FAILURES);
        if status.success() || completed_with_failures {
            if attempt > 1 {
                eprintln!("supervisor: shard {spec} recovered on attempt {attempt}");
            }
            if completed_with_failures {
                eprintln!(
                    "supervisor: shard {spec} completed with recorded point failures \
                     (exit {EXIT_RECORDED_FAILURES}); not retrying — the failures are on the books"
                );
            }
            return Ok(ShardOutcome {
                spec,
                attempts: attempt,
                completed_with_failures,
            });
        }
        last_status = if watchdog_fired {
            format!("killed by watchdog: {status}")
        } else {
            status.to_string()
        };
        if attempt < max_attempts {
            if let Some(counts) = &opts.retry_counts {
                if let Some(slot) = counts.get(spec.index) {
                    slot.fetch_add(1, Ordering::Relaxed);
                }
            }
            let delay = backoff_delay(opts.backoff, attempt, spec.index);
            eprintln!(
                "supervisor: shard {spec} crashed ({last_status}); retrying from its checkpoint in {:.2}s (attempt {}/{max_attempts})",
                delay.as_secs_f64(),
                attempt + 1
            );
            std::thread::sleep(delay);
        }
    }
    Err(SupervisorError::Exhausted {
        spec,
        attempts: max_attempts,
        last_status,
    })
}

/// Runs `count` shard worker processes to completion, retrying crashed
/// shards (non-zero exit or death by signal) with bounded exponential
/// backoff, deterministically jittered per shard. With a watchdog
/// budget and a status base in `opts`, a child whose heartbeat `done`
/// count does not advance for the budget is killed and retried like a
/// crash. A child exiting with [`EXIT_RECORDED_FAILURES`] is accepted
/// as terminal (`completed_with_failures` in its outcome) — its slice
/// is fully covered, and a retry would only re-serve the recorded
/// failures. `make_child` builds the command for one shard — normally
/// the current binary re-invoked with `--shard i/N --resume`, so a
/// retried shard resumes from its checkpoint and never re-simulates
/// completed points. All shards run concurrently; each child's stdout
/// and stderr stream to our stderr tagged `[shard i/N]`.
///
/// Every shard runs to completion or retry-exhaustion even when another
/// shard fails permanently (their checkpoints remain valid for a later
/// resume); the first failure (by shard index) is then returned.
///
/// # Errors
///
/// Returns [`SupervisorError`] if any shard cannot be spawned, cannot be
/// waited on, or crashes on every attempt.
///
/// # Panics
///
/// Panics if `count` is zero or an internal supervisor thread panics.
pub fn supervise<C>(
    count: usize,
    make_child: C,
    opts: &SupervisorOptions,
) -> Result<Vec<ShardOutcome>, SupervisorError>
where
    C: Fn(ShardSpec) -> Command + Sync,
{
    assert!(count > 0, "cannot supervise zero shards");
    let results: Vec<Result<ShardOutcome, SupervisorError>> = std::thread::scope(|scope| {
        let make_child = &make_child;
        let handles: Vec<_> = (0..count)
            .map(|index| {
                let spec = ShardSpec { index, count };
                scope.spawn(move || run_one_shard(spec, make_child, opts))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard supervisor thread panicked"))
            .collect()
    });
    results.into_iter().collect()
}

/// How old a child heartbeat may grow before the fleet view renders the
/// shard `stale` (used when no `--watchdog` budget overrides it). A
/// live worker rewrites its heartbeat every ~2 s even when wedged, so a
/// file this old means the writer is gone.
const DEFAULT_STALENESS: Duration = Duration::from_secs(10);

/// One child heartbeat read for the fleet view: `None` until the shard
/// writes its first heartbeat, then the heartbeat plus its file age
/// (`None` when the filesystem withholds an mtime).
type ChildRead = Option<(Heartbeat, Option<Duration>)>;

/// Reads every child heartbeat (at the [`shard_path`] of the status
/// base) and folds them into one fleet [`Heartbeat`], stamping in the
/// supervisor's retry counters. Children that have not written yet read
/// as `None` and contribute nothing — the aggregate grows as the fleet
/// comes up. Returns the aggregate plus the per-child reads (each with
/// its heartbeat file's age) for rendering.
fn fleet_snapshot(
    status_base: &Path,
    specs: &[ShardSpec],
    retry_counts: &[AtomicU64],
) -> (Heartbeat, Vec<ChildRead>) {
    let children: Vec<ChildRead> = specs
        .iter()
        .map(|spec| {
            let path = shard_path(status_base, *spec);
            read_heartbeat(&path).map(|hb| (hb, heartbeat_age(&path)))
        })
        .collect();
    let mut fleet = Heartbeat::starting(0);
    for (child, _) in children.iter().flatten() {
        fleet.absorb(child);
    }
    fleet.retries = retry_counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    (fleet, children)
}

/// One `fleet:` progress line: a bracketed segment per shard (phase,
/// position, throughput, ETA, retries) followed by the aggregate. A
/// shard whose heartbeat says `run` but whose file has not been
/// rewritten within the staleness budget is rendered `stale`: its
/// writer is gone (killed or crashed mid-run), so the frozen rate and
/// ETA would be lies and are suppressed.
fn fleet_line(
    specs: &[ShardSpec],
    children: &[ChildRead],
    retry_counts: &[AtomicU64],
    fleet: &Heartbeat,
    staleness: Duration,
) -> String {
    let mut segments = Vec::with_capacity(specs.len());
    for (spec, child) in specs.iter().zip(children) {
        let mut seg = match child {
            Some((hb, age)) => {
                let stale = hb.phase == "run" && age.is_some_and(|a| a > staleness);
                let phase = if stale { "stale" } else { hb.phase.as_str() };
                let mut s = format!("{} {phase} {}/{}", spec.index, hb.done, hb.total);
                if hb.phase == "run" && !stale {
                    s.push_str(&format!(" {:.2}pts/s", hb.rate_pts_per_sec));
                    if let Some(eta) = hb.eta_secs {
                        s.push_str(&format!(" eta {}", format_eta(eta)));
                    }
                }
                s
            }
            None => format!("{} starting", spec.index),
        };
        let retries = retry_counts
            .get(spec.index)
            .map_or(0, |c| c.load(Ordering::Relaxed));
        if retries > 0 {
            seg.push_str(&format!(" r{retries}"));
        }
        segments.push(format!("[{seg}]"));
    }
    let mut line = format!(
        "fleet: {} | {}/{} pts",
        segments.join(" "),
        fleet.done,
        fleet.total
    );
    if fleet.rate_pts_per_sec > 0.0 {
        line.push_str(&format!(", {:.2} pts/s", fleet.rate_pts_per_sec));
    }
    if let Some(eta) = fleet.eta_secs {
        line.push_str(&format!(", eta {}", format_eta(eta)));
    }
    if fleet.retries > 0 {
        line.push_str(&format!(
            ", {} retr{}",
            fleet.retries,
            if fleet.retries == 1 { "y" } else { "ies" }
        ));
    }
    line
}

/// Background thread behind the supervisor's fleet view: every ~2 s it
/// absorbs the children's heartbeats into an aggregate written at the
/// base status path and prints a `fleet:` line (once at least one child
/// has reported — silence instead of a wall of `starting` brackets).
/// Dropping it stops and joins the thread; the supervisor then writes
/// the final `done`/`failed` aggregate itself so the monitor can never
/// overwrite the terminal state.
struct FleetMonitor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl FleetMonitor {
    fn spawn(
        status_base: Option<PathBuf>,
        specs: &[ShardSpec],
        retry_counts: &Arc<Vec<AtomicU64>>,
        staleness: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let Some(base) = status_base else {
            return Self { stop, handle: None };
        };
        let thread_stop = Arc::clone(&stop);
        let specs = specs.to_vec();
        let retry_counts = Arc::clone(retry_counts);
        let handle = std::thread::spawn(move || {
            loop {
                // Check before the read-render pass so that after stop is
                // raised we render exactly once more: the children have
                // exited and written their final heartbeats by then, so a
                // fleet too fast for the 2 s cadence still gets one line.
                let stopping = thread_stop.load(Ordering::Relaxed);
                let (fleet, children) = fleet_snapshot(&base, &specs, &retry_counts);
                let _ = write_heartbeat(&base, &fleet);
                if children.iter().any(Option::is_some) {
                    eprintln!(
                        "{}",
                        fleet_line(&specs, &children, &retry_counts, &fleet, staleness)
                    );
                }
                if stopping {
                    break;
                }
                // Sleep in short slices so shutdown stays prompt.
                for _ in 0..8 {
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(250));
                }
            }
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for FleetMonitor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Writes the supervisor's terminal heartbeat (`done` or `failed`): the
/// absorbed children with the final retry totals, ETA cleared. On
/// success with `--metrics`, also renders the fleet's merged registry
/// snapshot as Prometheus exposition at the base metrics path.
fn finalize_fleet(
    opts: &SweepOptions,
    specs: &[ShardSpec],
    retry_counts: &[AtomicU64],
    phase: &str,
) {
    let Some(status) = &opts.status else { return };
    let (mut fleet, _) = fleet_snapshot(status, specs, retry_counts);
    fleet.phase = phase.to_string();
    fleet.eta_secs = None;
    let _ = write_heartbeat(status, &fleet);
    if phase == "done" {
        if let Some(prom) = &opts.prometheus {
            let _ = write_prometheus(prom, &fleet.metrics.clone().unwrap_or_default());
        }
    }
}

/// Why a shard merge could not produce the full grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// A shard checkpoint file could not be read.
    Io {
        /// The unreadable file.
        path: PathBuf,
        /// The OS error text.
        message: String,
    },
    /// The shard checkpoints do not cover the grid exactly.
    Incomplete {
        /// Grid labels with no entry in any shard checkpoint.
        missing: Vec<String>,
        /// Grid labels whose entries carry a stale fingerprint (the
        /// design point changed since the shard ran).
        stale: Vec<String>,
    },
    /// Pruned entries whose recorded evidence the stitched set cannot
    /// back: the named basis is missing, was itself pruned, or carries a
    /// different fingerprint than the evidence — the shards disagree on
    /// the prune decision and must run again.
    PruneMismatch {
        /// Labels of the pruned points with unbacked evidence.
        disagreeing: Vec<String>,
    },
}

fn preview(labels: &[String]) -> String {
    const SHOW: usize = 5;
    let mut s = labels
        .iter()
        .take(SHOW)
        .map(String::as_str)
        .collect::<Vec<_>>()
        .join(", ");
    if labels.len() > SHOW {
        s.push_str(&format!(", … {} more", labels.len() - SHOW));
    }
    s
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, message } => {
                write!(
                    f,
                    "cannot read shard checkpoint {}: {message}",
                    path.display()
                )
            }
            Self::Incomplete { missing, stale } => {
                write!(f, "shard checkpoints do not cover the grid:")?;
                if !missing.is_empty() {
                    write!(
                        f,
                        " {} point(s) missing ({})",
                        missing.len(),
                        preview(missing)
                    )?;
                }
                if !stale.is_empty() {
                    write!(f, " {} point(s) stale ({})", stale.len(), preview(stale))?;
                }
                Ok(())
            }
            Self::PruneMismatch { disagreeing } => write!(
                f,
                "shards disagree on prune decisions: {} pruned point(s) whose basis is missing, \
                 pruned, or fingerprint-mismatched ({})",
                disagreeing.len(),
                preview(disagreeing)
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// The product of a successful shard merge: one [`Line`] per expected
/// grid point in submission order — completed entries plus any recorded
/// failures (which satisfy coverage: the grid *finished*, just with
/// those failures on the books) — and the per-shard quarantine tallies
/// from loading the checkpoint files.
#[derive(Debug)]
pub struct MergedGrid<T> {
    /// One line per grid point, in submission order.
    pub lines: Vec<Line<T>>,
    /// For each shard checkpoint loaded (in the order given), how many
    /// damaged lines were quarantined to its `.bad` sidecar.
    pub quarantined: Vec<(PathBuf, usize)>,
}

impl<T> MergedGrid<T> {
    /// Labels of the grid points carried as recorded failures, in
    /// submission order.
    pub fn failed_labels(&self) -> Vec<String> {
        self.lines
            .iter()
            .filter_map(|line| match line {
                Line::Failed(f) => Some(f.label.clone()),
                Line::Completed(_) => None,
            })
            .collect()
    }

    /// Total damaged lines quarantined across all shard files.
    pub fn total_quarantined(&self) -> usize {
        self.quarantined.iter().map(|(_, n)| n).sum()
    }
}

/// Loads shard checkpoint files and stitches one line per expected
/// `(label, fingerprint)` pair, in the order given — grid submission
/// order — regardless of which shard ran which point or in what order
/// points completed. Damaged lines are quarantined to each file's
/// `.bad` sidecar while loading (see [`Checkpoint::load_quarantining`])
/// and tallied per shard in the result. Validation is exact: a grid
/// point with no entry is reported missing, and one whose entry's
/// fingerprint no longer matches is reported stale (either means the
/// shards must run again before the merge can succeed). A recorded
/// failure with a current fingerprint covers its point.
///
/// # Errors
///
/// Returns [`MergeError::Io`] for an unreadable shard file (a missing
/// file reads as empty, surfacing as missing points instead) and
/// [`MergeError::Incomplete`] listing every missing or stale label.
pub fn merge_shards<T: FromJson>(
    expected: &[(String, u64)],
    paths: &[PathBuf],
) -> Result<MergedGrid<T>, MergeError> {
    let mut combined = Checkpoint::<T>::default();
    let mut quarantined = Vec::with_capacity(paths.len());
    for path in paths {
        let (loaded, quarantine) =
            Checkpoint::load_quarantining(path).map_err(|e| MergeError::Io {
                path: path.clone(),
                message: e.to_string(),
            })?;
        quarantined.push((path.clone(), quarantine.lines));
        combined.absorb(loaded);
    }
    let mut lines = Vec::with_capacity(expected.len());
    let mut missing = Vec::new();
    let mut stale = Vec::new();
    for (label, fingerprint) in expected {
        if let Some(entry) = combined.take(label, *fingerprint) {
            lines.push(Line::Completed(entry));
        } else if let Some(failed) = combined.take_failed(label, *fingerprint) {
            lines.push(Line::Failed(failed));
        } else if combined.entries().iter().any(|e| &e.label == label)
            || combined.failed().iter().any(|e| &e.label == label)
        {
            stale.push(label.clone());
        } else {
            missing.push(label.clone());
        }
    }
    if !missing.is_empty() || !stale.is_empty() {
        return Err(MergeError::Incomplete { missing, stale });
    }
    // Every pruned entry must be backed by the stitched set itself: its
    // basis present, really simulated, and carrying the fingerprint the
    // evidence recorded. Anything else means the shards pruned against a
    // different grid than the one being merged. Recorded failures carry
    // no payload and can neither back nor hold evidence.
    let completed: Vec<&CheckpointEntry<T>> = lines
        .iter()
        .filter_map(|line| match line {
            Line::Completed(entry) => Some(entry),
            Line::Failed(_) => None,
        })
        .collect();
    let by_label: std::collections::HashMap<&str, (&u64, bool)> = completed
        .iter()
        .map(|e| (e.label.as_str(), (&e.fingerprint, e.pruned.is_some())))
        .collect();
    let disagreeing: Vec<String> = completed
        .iter()
        .filter(|e| {
            e.pruned.as_ref().is_some_and(|ev| {
                !matches!(
                    by_label.get(ev.basis_label.as_str()),
                    Some((fp, false)) if **fp == ev.basis_fingerprint
                )
            })
        })
        .map(|e| e.label.clone())
        .collect();
    if disagreeing.is_empty() {
        Ok(MergedGrid { lines, quarantined })
    } else {
        Err(MergeError::PruneMismatch { disagreeing })
    }
}

/// Writes merged lines to `path` as a fresh checkpoint file — the
/// supervisor's final step, leaving the base `--json` path holding the
/// same submission-ordered lines a single-process serial run would have
/// produced (modulo each point's recorded wall-clock).
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_entries<T: ToJson>(path: &Path, lines: &[Line<T>]) -> io::Result<()> {
    let writer = CheckpointWriter::create(path)?;
    for line in lines {
        match line {
            Line::Completed(entry) => writer.append(entry)?,
            Line::Failed(entry) => writer.append_failed(entry)?,
        }
    }
    Ok(())
}

/// Converts a merged checkpoint entry into the sweep result shape the
/// figure binaries consume (`cached: true` — the point was simulated in
/// a worker process, not here).
pub fn entry_result<T>(entry: CheckpointEntry<T>) -> SweepResult<T> {
    SweepResult {
        label: entry.label,
        outcome: Ok(entry.payload),
        wall: entry.wall,
        cached: true,
        pruned: entry.pruned,
    }
}

/// Converts one merged checkpoint line into the sweep result shape the
/// figure binaries consume: a completed entry as a cached success, a
/// recorded failure as a cached [`SweepError::Recorded`].
pub fn line_result<T>(line: Line<T>) -> SweepResult<T> {
    match line {
        Line::Completed(entry) => entry_result(entry),
        Line::Failed(failed) => SweepResult {
            label: failed.label,
            outcome: Err(SweepError::Recorded(failed.reason)),
            wall: failed.wall,
            cached: true,
            pruned: None,
        },
    }
}

/// The sharding arguments shared by every sweep binary. At most one of
/// the three modes may be active; all of them need the sweep's `--json`
/// base path to locate shard checkpoints.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardCli {
    /// `--shard i/N`: run only that strided slice of the grid.
    pub shard: Option<ShardSpec>,
    /// `--shards N`: supervise N worker processes of this binary.
    pub supervise: Option<usize>,
    /// `--merge <file>…`: stitch existing shard checkpoints; no
    /// simulation.
    pub merge: Vec<PathBuf>,
}

impl ShardCli {
    /// Parses the sharding flags out of an argument list, ignoring every
    /// argument it does not own (the binaries parse `--quick`, `--json`,
    /// `--resume`, … separately).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed values or
    /// conflicting modes.
    pub fn from_args<A>(args: A) -> Result<Self, String>
    where
        A: IntoIterator<Item = String>,
    {
        let mut cli = Self::default();
        let mut it = args.into_iter().peekable();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--shard" => {
                    let v = it
                        .next()
                        .ok_or_else(|| "--shard requires an i/N argument".to_string())?;
                    cli.shard = Some(ShardSpec::parse(&v)?);
                }
                "--shards" => {
                    let v = it
                        .next()
                        .ok_or_else(|| "--shards requires a shard count".to_string())?;
                    let count = v
                        .trim()
                        .parse::<usize>()
                        .map_err(|_| format!("invalid --shards count '{v}'"))?;
                    if count == 0 {
                        return Err("--shards count must be at least 1".to_string());
                    }
                    cli.supervise = Some(count);
                }
                "--merge" => {
                    while it.peek().is_some_and(|a| !a.starts_with("--")) {
                        cli.merge.push(PathBuf::from(it.next().expect("peeked")));
                    }
                    if cli.merge.is_empty() {
                        return Err(
                            "--merge requires at least one shard checkpoint path".to_string()
                        );
                    }
                }
                _ => {}
            }
        }
        let active = [
            cli.shard.is_some(),
            cli.supervise.is_some(),
            !cli.merge.is_empty(),
        ]
        .into_iter()
        .filter(|&on| on)
        .count();
        if active > 1 {
            return Err("--shard, --shards and --merge are mutually exclusive".to_string());
        }
        Ok(cli)
    }

    /// Whether any sharding mode is active.
    pub fn is_active(&self) -> bool {
        self.shard.is_some() || self.supervise.is_some() || !self.merge.is_empty()
    }
}

/// Why a sharded sweep failed.
#[derive(Debug)]
pub enum ShardError {
    /// The active mode needs a `--json` base path and none was given.
    NeedsCheckpoint(&'static str),
    /// The supervisor gave up on a shard.
    Supervisor(SupervisorError),
    /// The shard checkpoints could not be stitched into the full grid.
    Merge(MergeError),
    /// A filesystem operation on a checkpoint path failed.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The OS error text.
        message: String,
    },
    /// This shard worker finished, but some of its points failed
    /// (simulation error or panic); they were not persisted, so a retry
    /// or resume will re-run exactly them.
    PointsFailed {
        /// The shard that ran.
        spec: ShardSpec,
        /// Labels of the failed points.
        labels: Vec<String>,
    },
    /// This shard worker finished its slice, but some points carry
    /// *recorded* failures (e.g. `failed:timeout` checkpoint entries,
    /// written now or served from a resume). The slice will not improve
    /// by retrying — the worker should exit [`EXIT_RECORDED_FAILURES`]
    /// so the supervisor accepts the shard as terminal.
    RecordedFailures {
        /// The shard that ran.
        spec: ShardSpec,
        /// Labels of the points with recorded failures.
        labels: Vec<String>,
    },
    /// Post-flight verification failed: points this worker completed are
    /// missing from (or damaged in) its own checkpoint file — a torn
    /// write or an injected I/O fault swallowed them. Exiting non-zero
    /// lets a supervisor retry resume, quarantine any damaged lines, and
    /// re-run exactly these points.
    Unpersisted {
        /// The shard that ran.
        spec: ShardSpec,
        /// Labels of the unpersisted points.
        labels: Vec<String>,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NeedsCheckpoint(flag) => {
                write!(f, "{flag} requires --json <path> (the sweep checkpoint base path)")
            }
            Self::Supervisor(e) => write!(f, "{e}"),
            Self::Merge(e) => write!(f, "{e}"),
            Self::Io { path, message } => write!(f, "{}: {message}", path.display()),
            Self::PointsFailed { spec, labels } => write!(
                f,
                "shard {spec}: {} point(s) failed ({}); they were not persisted and will re-run on resume",
                labels.len(),
                preview(labels)
            ),
            Self::RecordedFailures { spec, labels } => write!(
                f,
                "shard {spec}: {} point(s) carry recorded failures ({}); the slice is complete \
                 and a retry would not improve it",
                labels.len(),
                preview(labels)
            ),
            Self::Unpersisted { spec, labels } => write!(
                f,
                "shard {spec}: {} completed point(s) missing or damaged in its checkpoint ({}); \
                 a resume will quarantine any damaged lines and re-run exactly them",
                labels.len(),
                preview(labels)
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// Disarms the crash- and hang-test hooks unless this worker is the
/// shard the test singled out via [`CRASH_SHARD_ENV`]. Mutates only
/// this process's environment, before the sweep spawns any threads.
fn disarm_crash_hook_for_other_shards(spec: ShardSpec) {
    if let Ok(v) = std::env::var(CRASH_SHARD_ENV) {
        if v.trim().parse::<usize>().ok() != Some(spec.index) {
            std::env::remove_var(CRASH_AFTER_ENV);
            std::env::remove_var(HANG_AFTER_ENV);
        }
    }
}

fn expected_of<I>(items: &[(String, u64, I)]) -> Vec<(String, u64)> {
    items
        .iter()
        .map(|(label, fingerprint, _)| (label.clone(), *fingerprint))
        .collect()
}

/// Runs `items` under the mode `cli` selects:
///
/// * **merge** — stitch the named shard checkpoints into full-grid
///   results; nothing is simulated. Returns `Some(results)`.
/// * **shard** — run only this worker's strided slice, checkpointing to
///   the [`shard_path`] derived from `opts.checkpoint`. Returns `None`
///   (a worker has nothing to render); failed points surface as
///   [`ShardError::PointsFailed`] so the process exits non-zero and a
///   supervisor retry re-runs them.
/// * **supervise** — spawn one `make_child(spec)` process per shard,
///   retry crashed shards from their checkpoints, merge the shard files,
///   and write the stitched entries back to the base path (leaving it
///   exactly as a single-process run would have, modulo wall-clock).
///   Returns `Some(results)`.
/// * **none of the three** — a plain (possibly checkpointed) in-process
///   sweep. Returns `Some(results)`.
///
/// # Errors
///
/// Returns [`ShardError`] when the active mode lacks a checkpoint base
/// path, the supervisor exhausts a shard's retries, the merge finds
/// missing or stale points, or shard bookkeeping I/O fails.
pub fn run_sharded<I, T, F, C>(
    items: Vec<(String, u64, I)>,
    cli: &ShardCli,
    opts: SweepOptions,
    make_child: C,
    f: F,
) -> Result<Option<Vec<SweepResult<T>>>, ShardError>
where
    I: Send,
    T: ToJson + FromJson + Clone + Attributed + Send,
    F: Fn(I) -> Result<T, AccelError> + Sync,
    C: Fn(ShardSpec) -> Command + Sync,
{
    if !cli.merge.is_empty() {
        let expected = expected_of(&items);
        let merged = merge_shards::<T>(&expected, &cli.merge).map_err(ShardError::Merge)?;
        for (path, count) in &merged.quarantined {
            if *count > 0 {
                eprintln!(
                    "merge: quarantined {count} damaged line(s) from {} (kept in its .bad sidecar)",
                    path.display()
                );
            }
        }
        let failed = merged.failed_labels();
        let note = if failed.is_empty() {
            String::new()
        } else {
            format!(
                " ({} recorded failure(s): {})",
                failed.len(),
                preview(&failed)
            )
        };
        eprintln!(
            "merge: stitched {} point(s) from {} shard checkpoint(s){note}",
            merged.lines.len(),
            cli.merge.len()
        );
        return Ok(Some(merged.lines.into_iter().map(line_result).collect()));
    }

    if let Some(spec) = cli.shard {
        let base = opts
            .checkpoint
            .clone()
            .ok_or(ShardError::NeedsCheckpoint("--shard"))?;
        disarm_crash_hook_for_other_shards(spec);
        // A fleet-wide fault schedule scoped with GEMMINI_FAULTS_SHARD
        // arms in exactly one worker; everyone else disarms here.
        crate::fault::scope_to_shard(Some(spec.index));
        let grid_total = items.len();
        // With pruning on, partition whole groups so every member's
        // basis runs (and its attribution is decided) in this process.
        let slice = match &opts.prune {
            Some(policy) => shard_items_grouped(items, spec, policy),
            None => shard_items(items, spec),
        };
        let slice_len = slice.len();
        let slice_expected = expected_of(&slice);
        let shard_file = shard_path(&base, spec);
        // Telemetry files shard alongside the checkpoint: the supervisor
        // reads each child's heartbeat at the shard path of the base
        // status path, and per-shard Prometheus files never collide.
        let run_opts = SweepOptions {
            checkpoint: Some(shard_file.clone()),
            status: opts.status.as_ref().map(|p| shard_path(p, spec)),
            prometheus: opts.prometheus.as_ref().map(|p| shard_path(p, spec)),
            ..opts
        };
        let results = sweep_map_checkpointed(slice, run_opts, f);
        let mut exec_failed = Vec::new();
        let mut recorded = Vec::new();
        for result in &results {
            match &result.outcome {
                Ok(_) => {}
                Err(SweepError::Recorded(_)) => recorded.push(result.label.clone()),
                Err(_) => exec_failed.push(result.label.clone()),
            }
        }
        eprintln!(
            "shard {spec}: {}/{slice_len} point(s) complete (slice of grid {grid_total}) -> {}",
            slice_len - exec_failed.len() - recorded.len(),
            shard_file.display()
        );
        if !exec_failed.is_empty() {
            return Err(ShardError::PointsFailed {
                spec,
                labels: exec_failed,
            });
        }
        // Post-flight verification: re-load our own checkpoint and
        // require every slice point to be covered by a decodable line.
        // A line damaged on the way to disk (torn write, injected I/O
        // fault) surfaces here as missing; exiting non-zero lets the
        // supervisor retry resume, quarantine the damage, and re-run
        // exactly the affected points.
        let written = Checkpoint::<T>::load(&shard_file).map_err(|e| ShardError::Io {
            path: shard_file.clone(),
            message: e.to_string(),
        })?;
        let unpersisted: Vec<String> = slice_expected
            .iter()
            .filter(|(label, fingerprint)| {
                written.lookup(label, *fingerprint).is_none()
                    && written.lookup_failed(label, *fingerprint).is_none()
            })
            .map(|(label, _)| label.clone())
            .collect();
        if !unpersisted.is_empty() {
            return Err(ShardError::Unpersisted {
                spec,
                labels: unpersisted,
            });
        }
        if !recorded.is_empty() {
            return Err(ShardError::RecordedFailures {
                spec,
                labels: recorded,
            });
        }
        return Ok(None);
    }

    if let Some(count) = cli.supervise {
        let base = opts
            .checkpoint
            .clone()
            .ok_or(ShardError::NeedsCheckpoint("--shards"))?;
        // The supervisor never takes faults itself when the schedule is
        // scoped to a worker; children inherit the environment and make
        // their own scoping decision.
        crate::fault::scope_to_shard(None);
        let specs: Vec<ShardSpec> = (0..count).map(|index| ShardSpec { index, count }).collect();
        if !opts.resume {
            // A fresh supervised sweep must not resurrect earlier shard
            // runs; workers are always spawned with --resume so that
            // crash *retries* pick up mid-shard. Quarantine sidecars from
            // earlier fleets go too, so `.bad` files always describe the
            // current run.
            for spec in &specs {
                let path = shard_path(&base, *spec);
                let sidecar = sidecar_of(&path);
                if let Err(e) = std::fs::remove_file(&path) {
                    if e.kind() != io::ErrorKind::NotFound {
                        return Err(ShardError::Io {
                            path,
                            message: e.to_string(),
                        });
                    }
                }
                let _ = std::fs::remove_file(sidecar);
            }
        }
        // Stale heartbeats from an earlier fleet (possibly with a
        // different shard count) must not leak into this fleet's view.
        if let Some(status) = &opts.status {
            for spec in &specs {
                let _ = std::fs::remove_file(shard_path(status, *spec));
            }
        }
        let retry_counts: Arc<Vec<AtomicU64>> =
            Arc::new((0..count).map(|_| AtomicU64::new(0)).collect());
        let staleness = opts.watchdog.unwrap_or(DEFAULT_STALENESS);
        let monitor = FleetMonitor::spawn(opts.status.clone(), &specs, &retry_counts, staleness);
        let sup_opts = SupervisorOptions {
            retry_counts: Some(Arc::clone(&retry_counts)),
            watchdog: opts.watchdog,
            status_base: opts.status.clone(),
            ..SupervisorOptions::default()
        };
        let supervision = supervise(count, make_child, &sup_opts);
        drop(monitor);
        let total_retries: u64 = retry_counts.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        opts.metrics.add(Counter::ShardRetries, total_retries);
        let outcomes = match supervision {
            Ok(outcomes) => outcomes,
            Err(e) => {
                finalize_fleet(&opts, &specs, &retry_counts, "failed");
                return Err(ShardError::Supervisor(e));
            }
        };
        let retried = outcomes.iter().filter(|o| o.attempts > 1).count();
        let with_failures = outcomes
            .iter()
            .filter(|o| o.completed_with_failures)
            .count();
        let expected = expected_of(&items);
        let shard_files: Vec<PathBuf> = specs.iter().map(|s| shard_path(&base, *s)).collect();
        let merged = match merge_shards::<T>(&expected, &shard_files) {
            Ok(merged) => merged,
            Err(e) => {
                finalize_fleet(&opts, &specs, &retry_counts, "failed");
                return Err(ShardError::Merge(e));
            }
        };
        for (path, quarantined) in &merged.quarantined {
            if *quarantined > 0 {
                eprintln!(
                    "supervisor: quarantined {quarantined} damaged line(s) from {} \
                     (kept in its .bad sidecar)",
                    path.display()
                );
            }
        }
        write_entries(&base, &merged.lines).map_err(|e| ShardError::Io {
            path: base.clone(),
            message: e.to_string(),
        })?;
        finalize_fleet(&opts, &specs, &retry_counts, "done");
        if opts.status.is_none() {
            if let (Some(prom), Some(snapshot)) = (&opts.prometheus, opts.metrics.snapshot()) {
                // Without heartbeats there is no fleet snapshot to merge;
                // expose at least the supervisor's own registry.
                let _ = write_prometheus(prom, &snapshot);
            }
        }
        let failure_note = if with_failures > 0 {
            format!(", {with_failures} with recorded failures")
        } else {
            String::new()
        };
        eprintln!(
            "supervisor: {count} shard(s) complete ({retried} retried{failure_note}); \
             merged {} point(s) into {}",
            merged.lines.len(),
            base.display()
        );
        return Ok(Some(merged.lines.into_iter().map(line_result).collect()));
    }

    Ok(Some(sweep_map_checkpointed(items, opts, f)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gemmini_shard_{}_{name}", std::process::id()))
    }

    #[test]
    fn spec_parsing_and_validation() {
        assert_eq!(
            ShardSpec::parse("0/4").unwrap(),
            ShardSpec { index: 0, count: 4 }
        );
        assert_eq!(ShardSpec::parse("3/4").unwrap().to_string(), "3/4");
        assert!(ShardSpec::parse("4/4").is_err(), "index out of range");
        assert!(ShardSpec::parse("0/0").is_err(), "zero count");
        assert!(ShardSpec::parse("1").is_err());
        assert!(ShardSpec::parse("a/b").is_err());
    }

    #[test]
    fn strided_slices_partition_the_grid() {
        let items: Vec<usize> = (0..10).collect();
        let s0 = shard_items(items.clone(), ShardSpec { index: 0, count: 3 });
        let s1 = shard_items(items.clone(), ShardSpec { index: 1, count: 3 });
        let s2 = shard_items(items.clone(), ShardSpec { index: 2, count: 3 });
        assert_eq!(s0, vec![0, 3, 6, 9]);
        assert_eq!(s1, vec![1, 4, 7]);
        assert_eq!(s2, vec![2, 5, 8]);
        // Exact partition: every item lands in exactly one shard.
        let mut all: Vec<usize> = s0.into_iter().chain(s1).chain(s2).collect();
        all.sort_unstable();
        assert_eq!(all, items);
    }

    #[test]
    fn grouped_slices_partition_the_grid_and_keep_groups_whole() {
        use gemmini_mem::stats::SweepAxis;
        // Grid: two groups of three plus two ungrouped points, interleaved.
        let labels = ["b0", "m0a", "m0b", "lone0", "b1", "m1a", "m1b", "lone1"];
        let items: Vec<(String, u64, usize)> = labels
            .iter()
            .enumerate()
            .map(|(i, l)| ((*l).to_string(), i as u64, i))
            .collect();
        let policy = PrunePolicy::new(SweepAxis::TlbEntries, 0.05)
            .group("b0", ["m0a".to_string(), "m0b".to_string()])
            .group("b1", ["m1a".to_string(), "m1b".to_string()]);
        let spec = |index| ShardSpec { index, count: 2 };
        let s0 = shard_items_grouped(items.clone(), spec(0), &policy);
        let s1 = shard_items_grouped(items.clone(), spec(1), &policy);
        // Slots by first appearance: b0-group=0, lone0=1, b1-group=2, lone1=3.
        let labels_of =
            |s: &[(String, u64, usize)]| s.iter().map(|(l, ..)| l.clone()).collect::<Vec<_>>();
        assert_eq!(labels_of(&s0), ["b0", "m0a", "m0b", "b1", "m1a", "m1b"]);
        assert_eq!(labels_of(&s1), ["lone0", "lone1"]);
        // Exact partition, grid order preserved within each slice.
        let mut all: Vec<usize> = s0.iter().chain(&s1).map(|&(_, _, i)| i).collect();
        all.sort_unstable();
        assert_eq!(all, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn merge_rejects_prune_evidence_the_stitched_set_cannot_back() {
        use crate::checkpoint::CheckpointWriter;
        use crate::prune::PruneEvidence;
        use gemmini_mem::stats::{CycleBucket, SweepAxis};
        let evidence = |basis: &str, fp: u64| PruneEvidence {
            basis_label: basis.to_string(),
            basis_fingerprint: fp,
            axis: SweepAxis::TlbEntries,
            dominant: CycleBucket::Compute,
            dominance: 0.9,
            movable_fraction: 0.02,
            tolerance: 0.05,
        };
        let entry = |label: &str, fp: u64, pruned: Option<PruneEvidence>| CheckpointEntry {
            label: label.to_string(),
            fingerprint: fp,
            wall: Duration::ZERO,
            payload: 7u64,
            pruned,
        };
        let write = |name: &str, entries: Vec<CheckpointEntry<u64>>| {
            let path = temp_path(name);
            let w = CheckpointWriter::create(&path).unwrap();
            for e in &entries {
                w.append(e).unwrap();
            }
            path
        };
        let expected = vec![
            ("basis".to_string(), 1u64),
            ("ok".to_string(), 2),
            ("drifted".to_string(), 3),
        ];

        // Sound: both pruned entries name the stitched basis fingerprint.
        let sound = write(
            "merge_prune_sound.jsonl",
            vec![
                entry("basis", 1, None),
                entry("ok", 2, Some(evidence("basis", 1))),
                entry("drifted", 3, Some(evidence("basis", 1))),
            ],
        );
        assert!(merge_shards::<u64>(&expected, std::slice::from_ref(&sound)).is_ok());
        std::fs::remove_file(&sound).unwrap();

        // Unsound: 'drifted' was pruned against a basis fingerprint the
        // stitched set does not hold — the shards disagree on the grid.
        let unsound = write(
            "merge_prune_unsound.jsonl",
            vec![
                entry("basis", 1, None),
                entry("ok", 2, Some(evidence("basis", 1))),
                entry("drifted", 3, Some(evidence("basis", 999))),
            ],
        );
        match merge_shards::<u64>(&expected, std::slice::from_ref(&unsound)) {
            Err(MergeError::PruneMismatch { disagreeing }) => {
                assert_eq!(disagreeing, vec!["drifted".to_string()]);
            }
            other => panic!("expected a prune mismatch, got {other:?}"),
        }
        std::fs::remove_file(&unsound).unwrap();

        // Also unsound: evidence naming a basis that is itself pruned.
        let circular = write(
            "merge_prune_circular.jsonl",
            vec![
                entry("basis", 1, Some(evidence("ok", 2))),
                entry("ok", 2, Some(evidence("basis", 1))),
                entry("drifted", 3, None),
            ],
        );
        match merge_shards::<u64>(&expected, std::slice::from_ref(&circular)) {
            Err(MergeError::PruneMismatch { disagreeing }) => {
                assert_eq!(
                    disagreeing,
                    vec!["basis".to_string(), "ok".to_string()],
                    "a predicted basis cannot back another prediction"
                );
            }
            other => panic!("expected a prune mismatch, got {other:?}"),
        }
        std::fs::remove_file(&circular).unwrap();
    }

    #[test]
    fn shard_paths_embed_the_spec() {
        let spec = ShardSpec { index: 1, count: 4 };
        assert_eq!(
            shard_path(Path::new("/tmp/sweep.jsonl"), spec),
            Path::new("/tmp/sweep.shard1of4.jsonl")
        );
        assert_eq!(
            shard_path(Path::new("results"), spec),
            Path::new("results.shard1of4")
        );
    }

    #[test]
    fn cli_parses_each_mode_and_rejects_conflicts() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let cli = ShardCli::from_args(args(&["--quick", "--shard", "1/2", "--json", "x"])).unwrap();
        assert_eq!(cli.shard, Some(ShardSpec { index: 1, count: 2 }));
        assert!(cli.is_active());

        let cli = ShardCli::from_args(args(&["--shards", "4"])).unwrap();
        assert_eq!(cli.supervise, Some(4));

        let cli = ShardCli::from_args(args(&["--merge", "a.jsonl", "b.jsonl", "--quick"])).unwrap();
        assert_eq!(
            cli.merge,
            vec![PathBuf::from("a.jsonl"), PathBuf::from("b.jsonl")]
        );

        assert!(!ShardCli::from_args(args(&["--quick"])).unwrap().is_active());
        assert!(ShardCli::from_args(args(&["--shards", "0"])).is_err());
        assert!(ShardCli::from_args(args(&["--merge"])).is_err());
        assert!(ShardCli::from_args(args(&["--shard", "0/2", "--shards", "2"])).is_err());
    }

    #[test]
    fn merge_reports_missing_and_stale_points() {
        use crate::checkpoint::CheckpointWriter;
        let path = temp_path("merge_validation.jsonl");
        let writer = CheckpointWriter::create(&path).unwrap();
        for entry in [
            CheckpointEntry {
                label: "a".into(),
                fingerprint: 1,
                wall: Duration::ZERO,
                payload: 10u64,
                pruned: None,
            },
            CheckpointEntry {
                label: "b".into(),
                fingerprint: 99,
                wall: Duration::ZERO,
                payload: 20u64,
                pruned: None,
            },
        ] {
            writer.append(&entry).unwrap();
        }
        drop(writer);

        let expected = vec![
            ("a".to_string(), 1u64),
            ("b".to_string(), 2u64), // on disk with fingerprint 99: stale
            ("c".to_string(), 3u64), // nowhere: missing
        ];
        match merge_shards::<u64>(&expected, std::slice::from_ref(&path)) {
            Err(MergeError::Incomplete { missing, stale }) => {
                assert_eq!(missing, vec!["c".to_string()]);
                assert_eq!(stale, vec!["b".to_string()]);
            }
            other => panic!("expected incomplete merge, got {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn merge_stitches_submission_order_across_shards() {
        use crate::checkpoint::CheckpointWriter;
        let p0 = temp_path("merge_s0.jsonl");
        let p1 = temp_path("merge_s1.jsonl");
        // Shard files hold interleaved halves, each in its own order.
        let w0 = CheckpointWriter::create(&p0).unwrap();
        let w1 = CheckpointWriter::create(&p1).unwrap();
        for i in (0..8).rev() {
            let entry = CheckpointEntry {
                label: format!("p{i}"),
                fingerprint: i,
                wall: Duration::from_micros(i),
                payload: i * 100,
                pruned: None,
            };
            if i % 2 == 0 {
                w0.append(&entry).unwrap();
            } else {
                w1.append(&entry).unwrap();
            }
        }
        drop((w0, w1));

        let expected: Vec<(String, u64)> = (0..8).map(|i| (format!("p{i}"), i)).collect();
        let merged = merge_shards::<u64>(&expected, &[p0.clone(), p1.clone()]).unwrap();
        assert_eq!(merged.total_quarantined(), 0);
        let entries: Vec<CheckpointEntry<u64>> = merged
            .lines
            .into_iter()
            .map(|line| match line {
                Line::Completed(entry) => entry,
                Line::Failed(f) => panic!("unexpected recorded failure for {}", f.label),
            })
            .collect();
        let labels: Vec<&str> = entries.iter().map(|e| e.label.as_str()).collect();
        assert_eq!(labels, vec!["p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"]);
        assert!(entries
            .iter()
            .enumerate()
            .all(|(i, e)| e.payload == i as u64 * 100));
        std::fs::remove_file(&p0).unwrap();
        std::fs::remove_file(&p1).unwrap();
    }

    #[test]
    fn merge_serves_recorded_failures_and_quarantines_damage() {
        use crate::checkpoint::{CheckpointWriter, FailedEntry};
        let path = temp_path("merge_failed_quarantine.jsonl");
        let _ = std::fs::remove_file(sidecar_of(&path));
        let writer = CheckpointWriter::create(&path).unwrap();
        writer
            .append(&CheckpointEntry {
                label: "a".to_string(),
                fingerprint: 1,
                wall: Duration::ZERO,
                payload: 10u64,
                pruned: None,
            })
            .unwrap();
        writer
            .append_failed(&FailedEntry {
                label: "b".to_string(),
                fingerprint: 2,
                wall: Duration::from_secs(5),
                reason: "timeout".to_string(),
            })
            .unwrap();
        drop(writer);
        // Damage the file the way a torn write would: a truncated line.
        {
            use std::io::Write as _;
            let mut fh = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            writeln!(fh, "{{\"version\":2,\"label\":\"torn").unwrap();
        }

        let expected = vec![("a".to_string(), 1u64), ("b".to_string(), 2u64)];
        let merged = merge_shards::<u64>(&expected, std::slice::from_ref(&path)).unwrap();
        assert_eq!(merged.total_quarantined(), 1);
        assert_eq!(merged.quarantined[0].1, 1);
        assert_eq!(merged.failed_labels(), vec!["b".to_string()]);
        match &merged.lines[1] {
            Line::Failed(f) => {
                assert_eq!(f.reason, "timeout");
                assert_eq!(f.wall, Duration::from_secs(5));
            }
            other => panic!("expected a recorded failure, got {other:?}"),
        }
        // The recorded failure round-trips through the result shape.
        let results: Vec<SweepResult<u64>> = merged.lines.into_iter().map(line_result).collect();
        assert!(matches!(&results[1].outcome, Err(SweepError::Recorded(r)) if r == "timeout"));
        assert!(results[1].cached);

        // A second merge finds a clean file: the damage was quarantined
        // exactly once.
        let again = merge_shards::<u64>(&expected, std::slice::from_ref(&path)).unwrap();
        assert_eq!(again.total_quarantined(), 0);
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(sidecar_of(&path)).unwrap();
    }

    #[test]
    fn supervisor_retries_a_crashed_shard() {
        let marker = temp_path("retry_marker");
        let _ = std::fs::remove_file(&marker);
        let retry_counts: Arc<Vec<AtomicU64>> =
            Arc::new((0..2).map(|_| AtomicU64::new(0)).collect());
        let opts = SupervisorOptions {
            max_attempts: 3,
            backoff: Duration::from_millis(1),
            retry_counts: Some(Arc::clone(&retry_counts)),
            ..SupervisorOptions::default()
        };
        let marker_str = marker.display().to_string();
        let outcomes = supervise(
            2,
            |spec| {
                let mut cmd = Command::new("sh");
                if spec.index == 0 {
                    // First attempt "crashes" (and leaves a marker, the
                    // way a real shard leaves its checkpoint); the retry
                    // finds the marker and completes.
                    cmd.arg("-c").arg(format!(
                        "if [ -e '{marker_str}' ]; then echo resumed; else touch '{marker_str}'; echo 'dying' >&2; exit 42; fi"
                    ));
                } else {
                    cmd.arg("-c").arg("echo ok");
                }
                cmd
            },
            &opts,
        )
        .expect("supervision recovers the crashed shard");
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].attempts, 2, "shard 0 needed one retry");
        assert_eq!(outcomes[1].attempts, 1);
        assert_eq!(retry_counts[0].load(Ordering::Relaxed), 1);
        assert_eq!(retry_counts[1].load(Ordering::Relaxed), 0);
        let _ = std::fs::remove_file(&marker);
    }

    #[test]
    fn supervisor_exhaustion_counts_every_retry() {
        let retry_counts: Arc<Vec<AtomicU64>> = Arc::new(vec![AtomicU64::new(0)]);
        let opts = SupervisorOptions {
            max_attempts: 3,
            backoff: Duration::from_millis(1),
            retry_counts: Some(Arc::clone(&retry_counts)),
            ..SupervisorOptions::default()
        };
        let err = supervise(
            1,
            |_| {
                let mut cmd = Command::new("sh");
                cmd.arg("-c").arg("exit 9");
                cmd
            },
            &opts,
        )
        .expect_err("always-crashing shard exhausts");
        assert!(matches!(
            err,
            SupervisorError::Exhausted { attempts: 3, .. }
        ));
        // The final crash exhausts rather than retries: 2 retries, not 3.
        assert_eq!(retry_counts[0].load(Ordering::Relaxed), 2);
    }

    #[test]
    fn fleet_snapshot_absorbs_child_heartbeats() {
        let base = temp_path("fleet_status.json");
        let specs = [
            ShardSpec { index: 0, count: 2 },
            ShardSpec { index: 1, count: 2 },
        ];
        // Only shard 1 has reported so far.
        let mut child = Heartbeat::starting(16);
        child.done = 6;
        child.cached = 2;
        child.rate_pts_per_sec = 1.5;
        child.eta_secs = Some(40.0);
        child.point_wall.record(2_000);
        write_heartbeat(&shard_path(&base, specs[1]), &child).unwrap();
        let retry_counts = [AtomicU64::new(1), AtomicU64::new(0)];

        let (fleet, children) = fleet_snapshot(&base, &specs, &retry_counts);
        assert!(children[0].is_none(), "shard 0 has not started");
        assert_eq!(children[1].as_ref().unwrap().0.done, 6);
        assert!(
            children[1].as_ref().unwrap().1.is_some(),
            "a freshly written heartbeat has an age"
        );
        assert_eq!(fleet.done, 6);
        assert_eq!(fleet.total, 16);
        assert_eq!(fleet.cached, 2);
        assert_eq!(fleet.retries, 1, "supervisor retries stamp the aggregate");
        assert_eq!(fleet.point_wall.count, 1);

        let line = fleet_line(&specs, &children, &retry_counts, &fleet, DEFAULT_STALENESS);
        assert!(line.starts_with("fleet: "), "line: {line}");
        assert!(line.contains("[0 starting r1]"), "line: {line}");
        assert!(line.contains("[1 run 6/16"), "line: {line}");
        assert!(line.contains("6/16 pts"), "line: {line}");
        assert!(line.contains("1 retry"), "line: {line}");
        std::fs::remove_file(shard_path(&base, specs[1])).unwrap();
    }

    #[test]
    fn fleet_line_marks_dead_workers_stale() {
        let specs = [
            ShardSpec { index: 0, count: 2 },
            ShardSpec { index: 1, count: 2 },
        ];
        let mut dead = Heartbeat::starting(8);
        dead.phase = "run".to_string();
        dead.done = 3;
        dead.rate_pts_per_sec = 2.0;
        dead.eta_secs = Some(10.0);
        let mut live = Heartbeat::starting(8);
        live.phase = "run".to_string();
        live.done = 5;
        live.rate_pts_per_sec = 2.0;
        // Shard 0's heartbeat file is two minutes old — its writer is
        // gone; shard 1's was just rewritten.
        let children = vec![
            Some((dead.clone(), Some(Duration::from_secs(120)))),
            Some((live.clone(), Some(Duration::from_secs(1)))),
        ];
        let mut fleet = Heartbeat::starting(0);
        fleet.absorb(&dead);
        fleet.absorb(&live);
        let retry_counts = [AtomicU64::new(0), AtomicU64::new(0)];
        let line = fleet_line(&specs, &children, &retry_counts, &fleet, DEFAULT_STALENESS);
        assert!(line.contains("[0 stale 3/8]"), "line: {line}");
        assert!(
            !line.contains("eta") || !line.contains("[0 stale 3/8 "),
            "a stale shard's frozen rate and ETA must be suppressed: {line}"
        );
        assert!(line.contains("[1 run 5/8 2.00pts/s"), "line: {line}");
        // A terminal phase never reads as stale, however old the file.
        let mut done = dead.clone();
        done.phase = "done".to_string();
        let children = vec![
            Some((done, Some(Duration::from_secs(3600)))),
            Some((live, Some(Duration::from_secs(1)))),
        ];
        let line = fleet_line(&specs, &children, &retry_counts, &fleet, DEFAULT_STALENESS);
        assert!(line.contains("[0 done 3/8]"), "line: {line}");
    }

    #[test]
    fn watchdog_kills_and_retries_a_hung_shard() {
        let marker = temp_path("hang_marker");
        let _ = std::fs::remove_file(&marker);
        let status_base = temp_path("hang_status.json");
        let opts = SupervisorOptions {
            max_attempts: 2,
            backoff: Duration::from_millis(1),
            watchdog: Some(Duration::from_millis(400)),
            status_base: Some(status_base),
            ..SupervisorOptions::default()
        };
        let marker_str = marker.display().to_string();
        let outcomes = supervise(
            1,
            |_| {
                // First attempt wedges (no heartbeat ever advances);
                // the watchdog kills it and the retry completes.
                let mut cmd = Command::new("sh");
                cmd.arg("-c").arg(format!(
                    "if [ -e '{marker_str}' ]; then echo resumed; \
                     else touch '{marker_str}'; sleep 30; fi"
                ));
                cmd
            },
            &opts,
        )
        .expect("watchdog recovers the hung shard");
        assert_eq!(outcomes[0].attempts, 2, "one watchdog kill, one retry");
        assert!(!outcomes[0].completed_with_failures);
        let _ = std::fs::remove_file(&marker);
    }

    #[test]
    fn exit_code_three_is_terminal_success_with_failures() {
        let opts = SupervisorOptions {
            max_attempts: 3,
            backoff: Duration::from_millis(1),
            ..SupervisorOptions::default()
        };
        let outcomes = supervise(
            1,
            |_| {
                let mut cmd = Command::new("sh");
                cmd.arg("-c").arg(format!("exit {EXIT_RECORDED_FAILURES}"));
                cmd
            },
            &opts,
        )
        .expect("recorded-failure exits are terminal, not retried");
        assert_eq!(outcomes[0].attempts, 1, "no retry");
        assert!(outcomes[0].completed_with_failures);
    }

    #[test]
    fn supervisor_reports_exhaustion_with_last_status() {
        let opts = SupervisorOptions {
            max_attempts: 2,
            backoff: Duration::from_millis(1),
            ..SupervisorOptions::default()
        };
        let err = supervise(
            1,
            |_| {
                let mut cmd = Command::new("sh");
                cmd.arg("-c").arg("exit 7");
                cmd
            },
            &opts,
        )
        .expect_err("a shard that always crashes must exhaust");
        match err {
            SupervisorError::Exhausted {
                spec,
                attempts,
                last_status,
            } => {
                assert_eq!(spec, ShardSpec { index: 0, count: 1 });
                assert_eq!(attempts, 2);
                assert!(last_status.contains('7'), "status: {last_status}");
            }
            other => panic!("expected exhaustion, got {other}"),
        }
    }

    #[test]
    fn backoff_is_bounded() {
        let base = Duration::from_millis(250);
        for shard in 0..8 {
            // Exponential floor, at most +50% jitter, 10 s hard cap.
            assert!(backoff_delay(base, 1, shard) >= Duration::from_millis(250));
            assert!(backoff_delay(base, 1, shard) <= Duration::from_millis(375));
            assert!(backoff_delay(base, 2, shard) >= Duration::from_millis(500));
            assert!(backoff_delay(base, 2, shard) <= Duration::from_millis(750));
            assert!(backoff_delay(base, 3, shard) >= Duration::from_secs(1));
            assert!(backoff_delay(base, 3, shard) <= Duration::from_millis(1500));
            assert!(backoff_delay(base, 64, shard) <= Duration::from_secs(10));
        }
    }

    #[test]
    fn backoff_jitter_is_deterministic_and_per_shard() {
        let base = Duration::from_millis(250);
        // Same (shard, attempt) → exactly the same delay, every time.
        for shard in 0..8 {
            for attempt in 1..6 {
                assert_eq!(
                    backoff_delay(base, attempt, shard),
                    backoff_delay(base, attempt, shard)
                );
            }
        }
        // Different shards desynchronise: for the same attempt, the 8
        // delays are not all identical (the whole point of the jitter).
        let delays: std::collections::HashSet<Duration> =
            (0..8).map(|shard| backoff_delay(base, 2, shard)).collect();
        assert!(delays.len() > 1, "jitter must separate shard delays");
        // The fraction itself is well-formed for a broad range of seeds.
        for shard in 0..64 {
            for attempt in 1..8 {
                let f = jitter_fraction(shard, attempt);
                assert!((0.0..1.0).contains(&f), "fraction {f} out of range");
            }
        }
    }
}
