//! Roofline lower bounds — a self-check for the timing model.
//!
//! For any layer, no schedule can beat (a) the compute bound (MACs divided
//! by the array's peak rate) or (b) the memory bound (compulsory traffic
//! divided by the DMA bus width). The simulator's per-layer cycle counts
//! must therefore always sit **on or above** the roofline; a layer below it
//! would be a timing-model bug. `tests/` enforce this over whole networks.

use gemmini_core::config::GemminiConfig;
use gemmini_dnn::graph::Layer;
use gemmini_mem::Cycle;

/// Roofline lower bound for one layer on one accelerator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RooflineBound {
    /// Minimum cycles implied by arithmetic throughput.
    pub compute_cycles: Cycle,
    /// Minimum cycles implied by compulsory DMA traffic.
    pub memory_cycles: Cycle,
}

impl RooflineBound {
    /// The binding constraint: `max(compute, memory)`.
    pub fn cycles(&self) -> Cycle {
        self.compute_cycles.max(self.memory_cycles)
    }

    /// Whether the layer is memory-bound at this configuration.
    pub fn memory_bound(&self) -> bool {
        self.memory_cycles >= self.compute_cycles
    }
}

/// Computes the roofline bound for `layer` on `config`.
///
/// Compulsory traffic counts each operand once: inputs + weights in,
/// outputs out (residual adds read both operands). Reuse can only *add*
/// traffic, never remove compulsory bytes, so this is a true lower bound.
///
/// # Example
///
/// ```
/// use gemmini_soc::roofline::layer_roofline;
/// use gemmini_core::config::GemminiConfig;
/// use gemmini_dnn::graph::{Layer, Activation};
///
/// let cfg = GemminiConfig::edge();
/// let fc = Layer::Matmul { m: 256, k: 256, n: 256, activation: Activation::None };
/// let bound = layer_roofline(&cfg, &fc);
/// assert!(bound.compute_cycles >= 256 * 256 * 256 / 256);
/// ```
pub fn layer_roofline(config: &GemminiConfig, layer: &Layer) -> RooflineBound {
    let peak = (config.dim() * config.dim()) as u64;
    let compute_cycles = layer.macs().div_ceil(peak);
    let bytes = layer.input_bytes() + layer.weight_bytes() + layer.output_bytes();
    let memory_cycles = bytes.div_ceil(config.dma_bus_bytes);
    RooflineBound {
        compute_cycles,
        memory_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemmini_dnn::graph::Activation;

    fn edge() -> GemminiConfig {
        GemminiConfig::edge()
    }

    #[test]
    fn big_matmul_is_compute_bound() {
        let l = Layer::Matmul {
            m: 1024,
            k: 1024,
            n: 1024,
            activation: Activation::None,
        };
        let b = layer_roofline(&edge(), &l);
        assert!(!b.memory_bound());
        assert_eq!(b.compute_cycles, 1024u64 * 1024 * 1024 / 256);
    }

    #[test]
    fn resadd_is_memory_bound() {
        let l = Layer::ResAdd { elements: 1 << 20 };
        let b = layer_roofline(&edge(), &l);
        assert!(b.memory_bound());
        assert_eq!(b.compute_cycles, 0);
        // 3 MiB moved (two reads + one write) over 16 B/cycle.
        assert_eq!(b.memory_cycles, 3 * (1u64 << 20) / 16);
    }

    #[test]
    fn fc_layers_are_memory_bound_weights_dominate() {
        // AlexNet fc6: 1x9216x4096 — weights dwarf compute.
        let l = Layer::Matmul {
            m: 1,
            k: 9216,
            n: 4096,
            activation: Activation::None,
        };
        let b = layer_roofline(&edge(), &l);
        assert!(b.memory_bound());
    }

    #[test]
    fn deep_conv_is_compute_bound() {
        let l = Layer::Conv {
            in_channels: 256,
            out_channels: 256,
            kernel: 3,
            stride: 1,
            padding: 1,
            in_hw: (14, 14),
            activation: Activation::Relu,
        };
        assert!(!layer_roofline(&edge(), &l).memory_bound());
    }

    #[test]
    fn wider_arrays_lower_the_compute_bound_only() {
        let l = Layer::Matmul {
            m: 512,
            k: 512,
            n: 512,
            activation: Activation::None,
        };
        let small = layer_roofline(&edge(), &l);
        let big = layer_roofline(
            &GemminiConfig {
                mesh_rows: 32,
                mesh_cols: 32,
                ..edge()
            },
            &l,
        );
        assert!(big.compute_cycles < small.compute_cycles);
        assert_eq!(big.memory_cycles, small.memory_cycles);
    }
}
